//! # selftune
//!
//! A complete reproduction of **"Self-tuning Schedulers for Legacy
//! Real-Time Applications"** (T. Cucinotta, F. Checconi, L. Abeni,
//! L. Palopoli — EuroSys 2010) as a Rust library.
//!
//! The paper schedules *legacy* soft real-time applications — ones that
//! expose no timing information and call no real-time API — by combining:
//!
//! 1. a low-overhead kernel tracer recording system-call timestamps
//!    ([`tracer`]),
//! 2. a frequency-domain period analyser over the traced event train
//!    ([`spectrum`]),
//! 3. an adaptive-reservation feedback controller (LFS++) that dimensions
//!    a CBS reservation from a consumed-CPU-time sensor and a quantile
//!    predictor ([`core`]),
//! 4. a supervisor enforcing Σ Qᵢ/Tᵢ ≤ U_lub over all reservations
//!    ([`sched`]).
//!
//! The Linux-kernel substrate of the paper is replaced by a deterministic
//! discrete-event simulator ([`simcore`]); see `DESIGN.md` for the
//! substitution argument. Analytical figures are reproduced by [`analysis`]
//! and the paper's workloads by [`apps`].
//!
//! Beyond the paper, [`cluster`] replicates the whole stack across a
//! simulated fleet: declarative scenarios, schedulability-backed
//! cross-node admission, a deterministic parallel runner and fleet-wide
//! aggregate metrics. [`journal`] records every fleet decision into a
//! compact deterministic journal, replays it to byte-identical
//! aggregates, and answers what-if queries with one policy swapped.
//! [`distrib`] ships that journal over a wire as the run executes: a
//! hot-standby follower mirrors the leader byte for byte, verifies
//! checkpoints, and can be promoted on leader death with zero decision
//! loss.
//!
//! ## Quickstart
//!
//! ```
//! use selftune::prelude::*;
//!
//! // A kernel with the AQuoSA-style reservation scheduler and tracer.
//! let mut kernel = Kernel::new(ReservationScheduler::new());
//! let (hook, reader) = Tracer::create(TracerConfig::default());
//! kernel.install_hook(Box::new(hook));
//!
//! // A legacy application: mplayer playing a 25 fps movie.
//! let player = MediaPlayer::new(MediaConfig::mplayer_video_25fps(), Rng::new(1));
//! let tid = kernel.spawn("mplayer", Box::new(player));
//!
//! // The self-tuning manager: detects the period, creates a reservation,
//! // and keeps the budget tracking demand.
//! let mut manager = SelfTuningManager::new(ManagerConfig::default(), reader);
//! manager.manage(tid, "mplayer", ControllerConfig::default());
//! manager.run(&mut kernel, Time::ZERO + Dur::secs(5));
//!
//! assert!(manager.server_of(tid).is_some(), "player got a reservation");
//! ```

pub use selftune_analysis as analysis;
pub use selftune_apps as apps;
pub use selftune_cluster as cluster;
pub use selftune_core as core;
pub use selftune_distrib as distrib;
pub use selftune_journal as journal;
pub use selftune_sched as sched;
pub use selftune_simcore as simcore;
pub use selftune_spectrum as spectrum;
pub use selftune_tracer as tracer;
pub use selftune_virt as virt;

/// One-stop imports for the common experiment setup.
pub mod prelude {
    pub use selftune_analysis::PeriodicTask;
    pub use selftune_apps::{
        Aperiodic, CpuHog, MediaConfig, MediaPlayer, PeriodicRt, Streamer, StreamerConfig,
        TranscodeConfig, Transcoder,
    };
    pub use selftune_core::{
        ControllerConfig, FeedbackKind, LfsConfig, LfsPpConfig, ManagerConfig, SelfTuningManager,
    };
    pub use selftune_sched::{
        CbsMode, Place, ReservationScheduler, ServerConfig, ServerId, Supervisor,
    };
    pub use selftune_simcore::{
        Action, Blocking, Dur, Kernel, Metrics, Rng, Script, SyscallNr, TaskId, Time, Workload,
    };
    pub use selftune_spectrum::{AnalyserConfig, PeakConfig, PeriodAnalyser, SpectrumConfig};
    pub use selftune_tracer::{TraceFilter, Tracer, TracerConfig, TracerKind};
    pub use selftune_virt::{GuestPolicy, GuestSched, VirtPlatform, VirtScheduler, VmConfig, VmId};
}
