//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This build environment has no network access, so the real crates.io
//! package cannot be vendored. This shim implements the API surface the
//! workspace benches use — `Criterion::bench_function`/`benchmark_group`,
//! `BenchmarkGroup` with `throughput`/`sample_size`/`bench_with_input`,
//! `BenchmarkId`, `Throughput`, `Bencher::iter` and the
//! `criterion_group!`/`criterion_main!` macros — over a simple
//! calibrate-then-sample wall-clock measurement.
//!
//! It reports median and spread per benchmark as plain text. There is no
//! HTML report, no statistical regression testing, and no saved baselines;
//! the numbers are for before/after comparison within one machine.

use std::fmt;
use std::time::{Duration, Instant};

/// Target measuring time per sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);
/// Warm-up time before sampling.
const WARMUP_TARGET: Duration = Duration::from_millis(100);

/// Measures one benchmark routine.
pub struct Bencher {
    /// Collected per-iteration nanosecond estimates, one per sample.
    samples: Vec<f64>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Bencher {
        Bencher {
            samples: Vec::new(),
            sample_count,
        }
    }

    /// Times `routine`, storing per-iteration estimates.
    ///
    /// The routine is first run repeatedly for a warm-up window, then the
    /// iteration count per sample is calibrated so each sample measures a
    /// meaningful stretch of wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find how many iterations fill the
        // sample target.
        let mut iters_per_sample = 1u64;
        let warmup_end = Instant::now() + WARMUP_TARGET;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let dt = start.elapsed();
            if dt >= SAMPLE_TARGET {
                break;
            }
            if Instant::now() >= warmup_end && dt >= SAMPLE_TARGET / 4 {
                break;
            }
            iters_per_sample = iters_per_sample.saturating_mul(2);
        }

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let dt = start.elapsed();
            self.samples
                .push(dt.as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn report(name: &str, samples: &mut [f64], throughput: Option<Throughput>) {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let med = median(samples);
    let lo = samples.first().copied().unwrap_or(f64::NAN);
    let hi = samples.last().copied().unwrap_or(f64::NAN);
    let mut line = format!(
        "{name:<44} time: [{} {} {}]",
        fmt_ns(lo),
        fmt_ns(med),
        fmt_ns(hi)
    );
    if let Some(t) = throughput {
        let (units, label) = match t {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        let rate = units / (med / 1e9);
        line.push_str(&format!("  thrpt: {rate:.3e} {label}"));
    }
    println!("{line}");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rate numbers for subsequent
    /// benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_count);
        routine(&mut b, input);
        report(
            &format!("{}/{}", self.name, id),
            &mut b.samples,
            self.throughput,
        );
        self
    }

    /// Benchmarks a routine with no extra input.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        routine(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            &mut b.samples,
            self.throughput,
        );
        self
    }

    /// Ends the group (a no-op in the shim; kept for API parity).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {
    sample_count: usize,
}

impl Criterion {
    fn effective_samples(&self) -> usize {
        if self.sample_count == 0 {
            10
        } else {
            self.sample_count
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher::new(self.effective_samples());
        routine(&mut b);
        report(name, &mut b.samples, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_count = self.effective_samples();
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            throughput: None,
            sample_count,
        }
    }
}

/// Collects benchmark functions into a named group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_sorted() {
        assert_eq!(median(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(3);
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 3);
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("dft", 128).to_string(), "dft/128");
        assert_eq!(BenchmarkId::from_parameter(0.5).to_string(), "0.5");
    }
}
