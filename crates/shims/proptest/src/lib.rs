//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! This build environment has no network access, so the real crates.io
//! package cannot be vendored. This shim implements the (small) slice of
//! the proptest API the workspace's property tests use — the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`, numeric-range and collection
//! strategies, `Just`, `prop_oneof!`, `.prop_map(..)` and `any::<bool>()`
//! — over a deterministic in-crate RNG.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the sampled inputs left
//!   implicit; rerun with `PROPTEST_CASES=1` and a debugger instead of
//!   expecting a minimal counterexample.
//! * **Deterministic seeding.** Cases are derived from the test's module
//!   path and name, so every run explores the same inputs (CI-stable).
//! * `PROPTEST_CASES` overrides the per-test case count (default 256).

pub mod test_runner {
    //! Deterministic case generation.

    /// SplitMix64 step: the seed expander and sample stream.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The deterministic generator behind every strategy sample.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator keyed on `(test name, case index)`: stable across
        /// runs and independent across tests.
        pub fn deterministic(name: &str, case: u64) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut state = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            // One warm-up step decorrelates neighbouring case indices.
            let _ = splitmix64(&mut state);
            TestRng { state }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Cases per property: `PROPTEST_CASES` or 256.
    pub fn case_count() -> u64 {
        case_count_with_default(256)
    }

    /// Cases per property with an explicit default (set by
    /// `proptest_config`); the `PROPTEST_CASES` env var still wins.
    pub fn case_count_with_default(default: u64) -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Per-block configuration (the `#![proptest_config(..)]` attribute).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Cases to run per property.
        pub cases: u64,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u64) -> Config {
            Config {
                cases: cases.max(1),
            }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe producing values of an associated type from the test RNG.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(move |rng: &mut TestRng| self.sample(rng)),
            }
        }
    }

    /// A type-erased strategy (the result of [`Strategy::boxed`]).
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.inner)(rng)
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (the `prop_oneof!` macro).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width range: every u64 value is valid.
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            // Closed interval: stretch the half-open unit sample slightly
            // so `hi` is reachable.
            let u = rng.unit_f64() * (1.0 + f64::EPSILON);
            (lo + (hi - lo) * u).min(hi)
        }
    }

    /// Uniform `bool` (the `any::<bool>()` strategy).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5)
    );
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::{AnyBool, Strategy};

    /// Types with a canonical strategy over their whole value space.
    pub trait Arbitrary: Sized {
        /// The canonical strategy.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// The canonical strategy for `A` (e.g. `any::<bool>()`).
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with length in `size` (half-open, like proptest's
    /// `a..b` size ranges).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each property runs [`test_runner::case_count`] times with
/// deterministically seeded inputs. No shrinking is attempted.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let __cases = $crate::test_runner::case_count_with_default(__cfg.cases);
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// Skips the current case when its inputs fail a precondition. In the
/// real crate this rejects the case (with global rejection accounting);
/// here the case simply passes vacuously — `proptest!` expands bodies
/// inside a per-case loop, so `continue` moves to the next case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a property-test condition (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among the listed strategies (all must produce the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of the real crate's `prelude::prop` module.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in -2.0f64..2.0, p in 0.0f64..=1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn vec_lengths_respect_range(xs in prop::collection::vec(0u8..4, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            prop_assert!(xs.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![Just(0u64), (5u64..8).prop_map(|x| x * 10)]) {
            prop_assert!(v == 0 || (50..80).contains(&v));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 1..20);
        let mut r1 = crate::test_runner::TestRng::deterministic("t", 7);
        let mut r2 = crate::test_runner::TestRng::deterministic("t", 7);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
