//! Differential property test for the reservation scheduler's dispatch
//! caches: a cached scheduler and a scan-dispatch scheduler fed the same
//! random event stream must agree on every `pick` and `next_timer`.
//!
//! This is the safety net behind the PR that made the kernel's hot loop
//! cache the EDF winner and the earliest replenishment between state
//! changes — any missed invalidation shows up as a divergence here.

use proptest::prelude::*;
use selftune_sched::{CbsMode, Place, ReservationScheduler, ServerConfig};
use selftune_simcore::scheduler::Scheduler;
use selftune_simcore::task::TaskId;
use selftune_simcore::time::{Dur, Time};

/// One step of the synthetic event stream.
#[derive(Clone, Copy, Debug)]
enum Op {
    Ready(u8),
    Block(u8),
    /// Charge the currently picked task for the given microseconds.
    Charge(u16),
    Timer,
    /// Re-parameterise a server (budget_us, period slot).
    SetParams(u8, u16),
    Advance(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6).prop_map(Op::Ready),
        (0u8..6).prop_map(Op::Block),
        (1u16..20_000).prop_map(Op::Charge),
        Just(Op::Timer),
        (0u8..3, 100u16..20_000).prop_map(|(s, b)| Op::SetParams(s, b)),
        (1u16..5_000).prop_map(Op::Advance),
    ]
}

fn build(scan: bool, soft_third: bool) -> ReservationScheduler {
    let mut s = ReservationScheduler::new();
    if scan {
        s.use_scan_dispatch();
    }
    for i in 0..3u64 {
        let mode = if soft_third && i == 2 {
            CbsMode::Soft
        } else {
            CbsMode::Hard
        };
        let sid = s
            .create_server(ServerConfig::new(Dur::ms(2 + i), Dur::ms(20 + 10 * i)).with_mode(mode));
        // Two tasks per server; plus fair tasks 6 and 7 via default place.
        s.place(TaskId(i as u32 * 2), Place::Server(sid));
        s.place(TaskId(i as u32 * 2 + 1), Place::Server(sid));
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cached_and_scan_dispatch_agree(
        ops in prop::collection::vec(op_strategy(), 1..200),
        soft_third in any::<bool>(),
    ) {
        let mut cached = build(false, soft_third);
        let mut scan = build(true, soft_third);
        let mut now = Time::ZERO;
        // Which tasks are currently ready (kernel contract: one on_ready
        // per wake, removal on block).
        let mut ready = [false; 6];
        for op in ops {
            match op {
                Op::Ready(t) => {
                    let t = t as usize % 6;
                    if !ready[t] {
                        ready[t] = true;
                        cached.on_ready(TaskId(t as u32), now);
                        scan.on_ready(TaskId(t as u32), now);
                    }
                }
                Op::Block(t) => {
                    let t = t as usize % 6;
                    if ready[t] {
                        ready[t] = false;
                        cached.on_block(TaskId(t as u32), now);
                        scan.on_block(TaskId(t as u32), now);
                    }
                }
                Op::Charge(us) => {
                    let a = cached.pick(now);
                    let b = scan.pick(now);
                    prop_assert_eq!(a, b, "pick diverged before charge");
                    if let Some(t) = a {
                        now += Dur::us(u64::from(us));
                        cached.charge(t, Dur::us(u64::from(us)), now);
                        scan.charge(t, Dur::us(u64::from(us)), now);
                    }
                }
                Op::Timer => {
                    let ta = cached.next_timer(now);
                    let tb = scan.next_timer(now);
                    prop_assert_eq!(ta, tb, "next_timer diverged");
                    if let Some(t) = ta {
                        now = now.max(t);
                        cached.on_timer(now);
                        scan.on_timer(now);
                    }
                }
                Op::SetParams(srv, budget_us) => {
                    let sid = selftune_sched::ServerId(u32::from(srv) % 3);
                    let period = cached.server(sid).config().period;
                    let budget = Dur::us(u64::from(budget_us)).min(period);
                    cached.server_mut(sid).set_params(budget, period);
                    scan.server_mut(sid).set_params(budget, period);
                }
                Op::Advance(us) => now += Dur::us(u64::from(us)),
            }
            prop_assert_eq!(cached.pick(now), scan.pick(now));
            prop_assert_eq!(cached.next_timer(now), scan.next_timer(now));
            // The nested-dispatch path caches the sorted EDF order across
            // unchanged states; with every server choosing its own front
            // task it must agree with the always-rescanning scheduler.
            let via_hook = cached.pick_with(now, |_, srv| srv.front_task());
            let via_scan = scan.pick_with(now, |_, srv| srv.front_task());
            prop_assert_eq!(via_hook, via_scan, "pick_with diverged");
        }
    }
}
