//! Property-based tests for the CBS server, the reservation scheduler and
//! the supervisor.

use proptest::prelude::*;
use selftune_sched::{
    BwRequest, ReservationScheduler, Server, ServerConfig, ServerState, Supervisor,
};
use selftune_simcore::task::TaskId;
use selftune_simcore::time::{Dur, Time};

/// Random operations against one CBS server.
#[derive(Debug, Clone)]
enum Op {
    Wake,
    Block,
    Charge(u64),
    Advance(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Wake),
        Just(Op::Block),
        (1u64..3_000).prop_map(Op::Charge),
        (1u64..10_000).prop_map(Op::Advance),
    ]
}

proptest! {
    /// Budget never exceeds Q; consumed time accumulates exactly; the
    /// deadline never moves backwards; throttled implies a pending
    /// replenishment.
    #[test]
    fn cbs_invariants_hold_under_random_ops(
        q_us in 500u64..5_000,
        extra_us in 1u64..20_000,
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let q = Dur::us(q_us);
        let t = Dur::us(q_us + extra_us);
        let mut s = Server::new(ServerConfig::new(q, t));
        let task = TaskId(1);
        let mut now = Time::ZERO;
        let mut queued = false;
        let mut charged = Dur::ZERO;
        let mut last_deadline = Time::ZERO;
        for op in ops {
            match op {
                Op::Wake if !queued => {
                    s.wake(task, now);
                    queued = true;
                }
                Op::Block if queued => {
                    s.remove(task, now);
                    queued = false;
                }
                Op::Charge(us) if queued && s.runnable() => {
                    let amount = Dur::us(us).min(s.remaining_budget());
                    if !amount.is_zero() {
                        now += amount;
                        s.replenish_if_due(now);
                        s.charge(amount, now);
                        charged += amount;
                    }
                }
                Op::Advance(us) => {
                    now += Dur::us(us);
                    s.replenish_if_due(now);
                }
                _ => {}
            }
            prop_assert!(s.remaining_budget() <= q, "budget above Q");
            prop_assert_eq!(s.stats().consumed, charged);
            if s.state() == ServerState::Throttled {
                prop_assert!(s.replenish_at().is_some());
            } else {
                prop_assert!(s.replenish_at().is_none());
            }
            prop_assert!(s.deadline() >= last_deadline, "deadline went backwards");
            last_deadline = s.deadline();
        }
    }

    /// After apply(), the total reserved bandwidth never exceeds U_lub and
    /// proportional grants never exceed their requests.
    #[test]
    fn supervisor_bound_holds(
        ulub in 0.3f64..1.0,
        reqs in prop::collection::vec((100u64..50_000, 100u64..50_000), 1..8),
    ) {
        let mut sched = ReservationScheduler::new();
        let mut batch = Vec::new();
        for &(q_us, extra) in &reqs {
            let period = Dur::us(q_us + extra);
            let sid = sched.create_server(ServerConfig::new(Dur::us(100).min(period), period));
            batch.push(BwRequest { server: sid, budget: Dur::us(q_us), period });
        }
        let sup = Supervisor::new(ulub);
        let grants = sup.apply(&mut sched, &batch);
        let total = sched.total_reserved_bandwidth();
        // The floor-budget clamp can push slightly above in pathological
        // tiny-period cases; allow the floor slack.
        let slack: f64 = batch
            .iter()
            .map(|r| sup.min_budget.ratio(r.period))
            .sum();
        prop_assert!(total <= ulub + slack + 1e-6, "total {total} > ulub {ulub}");
        for (g, r) in grants.iter().zip(&batch) {
            prop_assert!(
                g.budget <= r.budget.max(sup.min_budget),
                "grant above request"
            );
            prop_assert_eq!(g.period, r.period);
        }
    }

    /// Proportional compression preserves request ratios (up to the floor).
    #[test]
    fn compression_is_proportional(
        q1 in 30_000u64..80_000,
        q2 in 30_000u64..80_000,
    ) {
        let mut sched = ReservationScheduler::new();
        let period = Dur::ms(100);
        let s1 = sched.create_server(ServerConfig::new(Dur::us(100), period));
        let s2 = sched.create_server(ServerConfig::new(Dur::us(100), period));
        let sup = Supervisor::new(0.5);
        let grants = sup.apply(
            &mut sched,
            &[
                BwRequest { server: s1, budget: Dur::us(q1), period },
                BwRequest { server: s2, budget: Dur::us(q2), period },
            ],
        );
        let ratio_req = q1 as f64 / q2 as f64;
        let ratio_grant = grants[0].budget.as_ns() as f64 / grants[1].budget.as_ns() as f64;
        prop_assert!((ratio_req - ratio_grant).abs() / ratio_req < 0.01,
            "ratios {ratio_req} vs {ratio_grant}");
    }
}
