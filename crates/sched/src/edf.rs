//! Task-level Earliest Deadline First scheduling with implicit deadlines.
//!
//! The CBS layer of the paper builds on EDF among *servers*; this module
//! provides plain EDF among *tasks* for validation: a periodic task set with
//! total utilisation ≤ 1 is schedulable under preemptive EDF, which the
//! integration tests cross-check against the simulator.
//!
//! Each registered task has a relative deadline; a job's absolute deadline
//! is assigned when the task wakes (job activation), and a deadline miss is
//! detected when the job completes (blocks) after its deadline.

use selftune_simcore::scheduler::Scheduler;
use selftune_simcore::task::TaskId;
use selftune_simcore::time::{Dur, Time};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct EdfEntry {
    deadline: Time,
    ready: bool,
}

/// Preemptive task-level EDF with per-task relative deadlines.
#[derive(Debug, Default)]
pub struct EdfScheduler {
    rel_deadline: HashMap<TaskId, Dur>,
    entries: HashMap<TaskId, EdfEntry>,
    misses: u64,
    completions: u64,
}

impl EdfScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> EdfScheduler {
        EdfScheduler::default()
    }

    /// Registers the relative (implicit) deadline of a task — its period,
    /// for a periodic task.
    ///
    /// # Panics
    ///
    /// Panics if `rel` is zero.
    pub fn set_relative_deadline(&mut self, task: TaskId, rel: Dur) {
        assert!(!rel.is_zero(), "relative deadline must be positive");
        self.rel_deadline.insert(task, rel);
    }

    /// Number of observed deadline misses (job completed after deadline).
    pub fn deadline_misses(&self) -> u64 {
        self.misses
    }

    /// Number of observed job completions.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Absolute deadline of the task's current job, if it is ready.
    pub fn current_deadline(&self, task: TaskId) -> Option<Time> {
        self.entries
            .get(&task)
            .filter(|e| e.ready)
            .map(|e| e.deadline)
    }
}

impl Scheduler for EdfScheduler {
    fn on_ready(&mut self, task: TaskId, now: Time) {
        let rel = self
            .rel_deadline
            .get(&task)
            .copied()
            .unwrap_or(Dur::secs(3600));
        self.entries.insert(
            task,
            EdfEntry {
                deadline: now + rel,
                ready: true,
            },
        );
    }

    fn on_block(&mut self, task: TaskId, now: Time) {
        if let Some(e) = self.entries.get_mut(&task) {
            if e.ready {
                e.ready = false;
                self.completions += 1;
                if now > e.deadline {
                    self.misses += 1;
                }
            }
        }
    }

    fn on_exit(&mut self, task: TaskId, _now: Time) {
        self.entries.remove(&task);
    }

    fn charge(&mut self, _task: TaskId, _ran: Dur, _now: Time) {}

    fn pick(&mut self, _now: Time) -> Option<TaskId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.ready)
            .min_by_key(|(t, e)| (e.deadline, **t))
            .map(|(t, _)| *t)
    }

    fn horizon(&self, _task: TaskId, _now: Time) -> Option<Dur> {
        None
    }

    fn next_timer(&self, _now: Time) -> Option<Time> {
        None
    }

    fn on_timer(&mut self, _now: Time) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: Time = Time::ZERO;

    fn t(ms: u64) -> Time {
        T0 + Dur::ms(ms)
    }

    #[test]
    fn earliest_deadline_first() {
        let mut e = EdfScheduler::new();
        e.set_relative_deadline(TaskId(1), Dur::ms(100));
        e.set_relative_deadline(TaskId(2), Dur::ms(50));
        e.on_ready(TaskId(1), T0);
        e.on_ready(TaskId(2), T0);
        assert_eq!(e.pick(T0), Some(TaskId(2)));
        e.on_block(TaskId(2), t(10));
        assert_eq!(e.pick(t(10)), Some(TaskId(1)));
    }

    #[test]
    fn deadline_assigned_at_wake() {
        let mut e = EdfScheduler::new();
        e.set_relative_deadline(TaskId(1), Dur::ms(50));
        e.on_ready(TaskId(1), t(10));
        assert_eq!(e.current_deadline(TaskId(1)), Some(t(60)));
    }

    #[test]
    fn miss_counted_on_late_completion() {
        let mut e = EdfScheduler::new();
        e.set_relative_deadline(TaskId(1), Dur::ms(10));
        e.on_ready(TaskId(1), T0);
        e.on_block(TaskId(1), t(15)); // finished 5ms late
        assert_eq!(e.deadline_misses(), 1);
        assert_eq!(e.completions(), 1);
        e.on_ready(TaskId(1), t(20));
        e.on_block(TaskId(1), t(25)); // on time
        assert_eq!(e.deadline_misses(), 1);
        assert_eq!(e.completions(), 2);
    }

    #[test]
    fn ties_break_by_task_id() {
        let mut e = EdfScheduler::new();
        e.set_relative_deadline(TaskId(5), Dur::ms(10));
        e.set_relative_deadline(TaskId(3), Dur::ms(10));
        e.on_ready(TaskId(5), T0);
        e.on_ready(TaskId(3), T0);
        assert_eq!(e.pick(T0), Some(TaskId(3)));
    }

    #[test]
    fn exited_task_disappears() {
        let mut e = EdfScheduler::new();
        e.set_relative_deadline(TaskId(1), Dur::ms(10));
        e.on_ready(TaskId(1), T0);
        e.on_exit(TaskId(1), t(1));
        assert_eq!(e.pick(t(1)), None);
    }
}
