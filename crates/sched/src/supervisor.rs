//! The supervisor: admission control and bandwidth compression.
//!
//! Task controllers submit `(Q_req, T)` requests; the supervisor enforces
//! the schedulability condition Σ Qᵢ/Tᵢ ≤ U_lub (Equation (1) of the paper,
//! with U_lub ≤ 1 leaving headroom for non-reserved activity). Requests that
//! fit are granted verbatim; otherwise they are *curbed* to fit the bound,
//! using one of the compression policies described for AQuoSA (\[23\]).

use crate::cbs::ServerId;
use crate::reservation::ReservationScheduler;
use selftune_simcore::time::Dur;

/// How requests are compressed when they exceed the available bandwidth.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Compression {
    /// Scale every request by the same factor (AQuoSA's default weights).
    #[default]
    Proportional,
    /// Give every requester the same share of what is available, capped at
    /// its own request.
    Equal,
}

/// One bandwidth request from a task controller.
#[derive(Copy, Clone, Debug)]
pub struct BwRequest {
    /// The server whose parameters should change.
    pub server: ServerId,
    /// Requested budget `Q_req`.
    pub budget: Dur,
    /// Requested reservation period `T` (the detected task period).
    pub period: Dur,
}

/// The grant actually applied for a request.
#[derive(Copy, Clone, Debug)]
pub struct Grant {
    /// The server the grant applies to.
    pub server: ServerId,
    /// Granted budget (≤ requested).
    pub budget: Dur,
    /// Granted period (always the requested period).
    pub period: Dur,
    /// Whether the request was curbed.
    pub compressed: bool,
}

impl Grant {
    /// Granted fraction of the CPU.
    pub fn bandwidth(&self) -> f64 {
        self.budget.ratio(self.period)
    }
}

/// The arithmetic behind one [`Supervisor::apply`] pass — the inputs a
/// decision journal records so a compressed grant is explainable.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct ApplyReport {
    /// Bandwidth pinned by servers that did not request this pass.
    pub fixed: f64,
    /// `max(ulub − fixed, 0)`: what the requesters shared.
    pub available: f64,
    /// Total bandwidth the (sanitised) requests asked for.
    pub requested: f64,
    /// How many grants were curbed.
    pub compressed: u32,
}

/// Supervisor configuration and entry point.
#[derive(Copy, Clone, Debug)]
pub struct Supervisor {
    /// Total bandwidth available to reservations (Σ Q/T bound).
    pub ulub: f64,
    /// Compression policy under saturation.
    pub policy: Compression,
    /// Floor below which no grant is compressed (keeps starving servers
    /// alive so their controllers can still observe progress).
    pub min_budget: Dur,
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor {
            ulub: 0.95,
            policy: Compression::Proportional,
            min_budget: Dur::us(200),
        }
    }
}

impl Supervisor {
    /// Creates a supervisor with the given utilisation bound.
    ///
    /// # Panics
    ///
    /// Panics if `ulub` is not in `(0, 1]`.
    pub fn new(ulub: f64) -> Supervisor {
        assert!(ulub > 0.0 && ulub <= 1.0, "ulub {ulub} out of (0, 1]");
        Supervisor {
            ulub,
            ..Supervisor::default()
        }
    }

    /// The smallest budget a fresh server is parameterised with at
    /// `period`: the compression floor clamped into `(0, period]` (a
    /// 10 µs hard minimum keeps degenerate floors schedulable). Shared by
    /// every creation path — task reservations, VM shares, elastic
    /// re-grants — so the floor rule cannot diverge between layers.
    pub fn budget_floor(&self, period: Dur) -> Dur {
        self.min_budget.min(period).max(Dur::us(10))
    }

    /// Would admitting a brand-new reservation `(budget, period)` keep the
    /// system schedulable, given what is already reserved?
    pub fn admits(&self, sched: &ReservationScheduler, budget: Dur, period: Dur) -> bool {
        sched.total_reserved_bandwidth() + budget.ratio(period) <= self.ulub + 1e-9
    }

    /// Applies a batch of requests, compressing if they would saturate the
    /// bound, and updates the servers' parameters.
    ///
    /// Servers *not* named in `reqs` keep their current bandwidth; the
    /// requesters share what remains.
    pub fn apply(&self, sched: &mut ReservationScheduler, reqs: &[BwRequest]) -> Vec<Grant> {
        self.apply_detailed(sched, reqs).0
    }

    /// [`Supervisor::apply`] plus the [`ApplyReport`] a decision journal
    /// records alongside the grants.
    pub fn apply_detailed(
        &self,
        sched: &mut ReservationScheduler,
        reqs: &[BwRequest],
    ) -> (Vec<Grant>, ApplyReport) {
        // Sanitise: a zero-period request cannot parameterise a server at
        // all (drop it — its server keeps its current bandwidth); a zero
        // budget becomes a tiny floor so the reservation stays alive.
        let reqs: Vec<BwRequest> = reqs
            .iter()
            .filter(|r| !r.period.is_zero())
            .map(|r| BwRequest {
                budget: r.budget.max(Dur::us(10)).min(r.period),
                ..*r
            })
            .collect();
        let reqs = &reqs[..];
        if reqs.is_empty() {
            return (Vec::new(), ApplyReport::default());
        }
        // Bandwidth pinned by servers that did not submit a request.
        let fixed: f64 = (0..sched.server_count())
            .map(|i| ServerId(i as u32))
            .filter(|sid| reqs.iter().all(|r| r.server != *sid))
            .map(|sid| sched.server(sid).config().bandwidth())
            .sum();
        let available = (self.ulub - fixed).max(0.0);
        let requested: f64 = reqs.iter().map(|r| r.budget.ratio(r.period)).sum();

        let grants: Vec<Grant> = if requested <= available + 1e-9 {
            reqs.iter()
                .map(|r| Grant {
                    server: r.server,
                    budget: r.budget,
                    period: r.period,
                    compressed: false,
                })
                .collect()
        } else {
            match self.policy {
                Compression::Proportional => {
                    let factor = if requested > 0.0 {
                        available / requested
                    } else {
                        0.0
                    };
                    reqs.iter()
                        .map(|r| {
                            let b = r.budget.mul_f64(factor).max(self.min_budget).min(r.period);
                            Grant {
                                server: r.server,
                                budget: b,
                                period: r.period,
                                compressed: true,
                            }
                        })
                        .collect()
                }
                Compression::Equal => {
                    let share = available / reqs.len() as f64;
                    reqs.iter()
                        .map(|r| {
                            let req_bw = r.budget.ratio(r.period);
                            let bw = req_bw.min(share);
                            let b = r.period.mul_f64(bw).max(self.min_budget).min(r.period);
                            Grant {
                                server: r.server,
                                budget: b,
                                period: r.period,
                                compressed: req_bw > share,
                            }
                        })
                        .collect()
                }
            }
        };

        for g in &grants {
            sched.server_mut(g.server).set_params(g.budget, g.period);
        }
        let report = ApplyReport {
            fixed,
            available,
            requested,
            compressed: grants.iter().filter(|g| g.compressed).count() as u32,
        };
        (grants, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cbs::ServerConfig;

    fn sched_with(servers: &[(u64, u64)]) -> (ReservationScheduler, Vec<ServerId>) {
        let mut s = ReservationScheduler::new();
        let ids = servers
            .iter()
            .map(|&(q, t)| s.create_server(ServerConfig::new(Dur::ms(q), Dur::ms(t))))
            .collect();
        (s, ids)
    }

    #[test]
    fn grants_fit_verbatim() {
        let (mut s, ids) = sched_with(&[(10, 100), (10, 100)]);
        let sup = Supervisor::new(0.9);
        let grants = sup.apply(
            &mut s,
            &[BwRequest {
                server: ids[0],
                budget: Dur::ms(30),
                period: Dur::ms(100),
            }],
        );
        assert_eq!(grants.len(), 1);
        assert!(!grants[0].compressed);
        assert_eq!(grants[0].budget, Dur::ms(30));
        assert_eq!(s.server(ids[0]).config().budget, Dur::ms(30));
    }

    #[test]
    fn proportional_compression_fits_bound() {
        let (mut s, ids) = sched_with(&[(10, 100), (10, 100)]);
        let sup = Supervisor::new(0.8);
        // Request 0.6 + 0.6 = 1.2 > 0.8 → scale by 2/3.
        let grants = sup.apply(
            &mut s,
            &[
                BwRequest {
                    server: ids[0],
                    budget: Dur::ms(60),
                    period: Dur::ms(100),
                },
                BwRequest {
                    server: ids[1],
                    budget: Dur::ms(60),
                    period: Dur::ms(100),
                },
            ],
        );
        assert!(grants.iter().all(|g| g.compressed));
        let total = s.total_reserved_bandwidth();
        assert!(total <= 0.8 + 1e-6, "total {total}");
        assert!((grants[0].bandwidth() - 0.4).abs() < 1e-3);
    }

    #[test]
    fn fixed_servers_reduce_available_share() {
        let (mut s, ids) = sched_with(&[(50, 100), (10, 100)]);
        let sup = Supervisor::new(0.9);
        // Server 0 keeps its 0.5; only 0.4 left for server 1's 0.6 request.
        let grants = sup.apply(
            &mut s,
            &[BwRequest {
                server: ids[1],
                budget: Dur::ms(60),
                period: Dur::ms(100),
            }],
        );
        assert!(grants[0].compressed);
        assert!((grants[0].bandwidth() - 0.4).abs() < 1e-3);
        assert!(s.total_reserved_bandwidth() <= 0.9 + 1e-6);
    }

    #[test]
    fn equal_compression_caps_at_request() {
        let (mut s, ids) = sched_with(&[(10, 100), (10, 100)]);
        let mut sup = Supervisor::new(0.6);
        sup.policy = Compression::Equal;
        // Requests 0.1 and 0.9: equal share is 0.3 each, but the first only
        // wants 0.1, so it is granted fully.
        let grants = sup.apply(
            &mut s,
            &[
                BwRequest {
                    server: ids[0],
                    budget: Dur::ms(10),
                    period: Dur::ms(100),
                },
                BwRequest {
                    server: ids[1],
                    budget: Dur::ms(90),
                    period: Dur::ms(100),
                },
            ],
        );
        assert!(!grants[0].compressed);
        assert!((grants[0].bandwidth() - 0.1).abs() < 1e-6);
        assert!(grants[1].compressed);
        assert!((grants[1].bandwidth() - 0.3).abs() < 1e-3);
    }

    #[test]
    fn degenerate_requests_are_sanitised_not_fatal() {
        let (mut s, ids) = sched_with(&[(10, 100), (10, 100)]);
        let sup = Supervisor::new(0.9);
        let grants = sup.apply(
            &mut s,
            &[
                // Zero period: unparameterisable, dropped.
                BwRequest {
                    server: ids[0],
                    budget: Dur::ms(5),
                    period: Dur::ZERO,
                },
                // Zero budget: floored, not zeroed.
                BwRequest {
                    server: ids[1],
                    budget: Dur::ZERO,
                    period: Dur::ms(50),
                },
            ],
        );
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].server, ids[1]);
        assert!(!grants[0].budget.is_zero());
        // The dropped request's server keeps its old parameters.
        assert_eq!(s.server(ids[0]).config().budget, Dur::ms(10));
    }

    #[test]
    fn apply_detailed_reports_the_booking_math() {
        let (mut s, ids) = sched_with(&[(50, 100), (10, 100)]);
        let sup = Supervisor::new(0.9);
        // Server 0 keeps its 0.5 pinned; server 1 asks for 0.6 of the 0.4
        // left — one compressed grant.
        let (grants, report) = sup.apply_detailed(
            &mut s,
            &[BwRequest {
                server: ids[1],
                budget: Dur::ms(60),
                period: Dur::ms(100),
            }],
        );
        assert_eq!(grants.len(), 1);
        assert!((report.fixed - 0.5).abs() < 1e-9);
        assert!((report.available - 0.4).abs() < 1e-9);
        assert!((report.requested - 0.6).abs() < 1e-9);
        assert_eq!(report.compressed, 1);
        // Empty batch: all-zero report.
        let (_, empty) = sup.apply_detailed(&mut s, &[]);
        assert_eq!(empty, ApplyReport::default());
    }

    #[test]
    fn admits_respects_existing_load() {
        let (s, _) = sched_with(&[(50, 100)]);
        let sup = Supervisor::new(0.9);
        assert!(sup.admits(&s, Dur::ms(30), Dur::ms(100)));
        assert!(!sup.admits(&s, Dur::ms(50), Dur::ms(100)));
    }

    #[test]
    fn empty_request_batch_is_noop() {
        let (mut s, _) = sched_with(&[(10, 100)]);
        let sup = Supervisor::default();
        assert!(sup.apply(&mut s, &[]).is_empty());
        assert!((s.total_reserved_bandwidth() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn invalid_ulub_panics() {
        let _ = Supervisor::new(1.5);
    }
}
