//! Weighted proportional-share scheduling (virtual-time based).
//!
//! Section 3.2 of the paper remarks that Proportional Share algorithms do
//! not expose a *scheduling period*, which makes them inherently wasteful
//! for periodic real-time tasks compared to a well-dimensioned reservation.
//! This policy exists to demonstrate that effect in ablation experiments:
//! a weighted-fair scheduler in the style of CFS/WF²Q with a configurable
//! scheduling granularity.

use selftune_simcore::scheduler::Scheduler;
use selftune_simcore::task::TaskId;
use selftune_simcore::time::{Dur, Time};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct PsEntry {
    weight: u64,
    /// Virtual runtime in weighted nanoseconds.
    vruntime: f64,
    ready: bool,
}

/// Weighted proportional-share scheduler.
///
/// Each ready task accrues virtual time at rate `1/weight`; the task with
/// the minimum virtual runtime runs, preempted at `granularity` boundaries.
#[derive(Debug)]
pub struct ProportionalShare {
    entries: HashMap<TaskId, PsEntry>,
    granularity: Dur,
    default_weight: u64,
}

impl ProportionalShare {
    /// Creates a scheduler with the given preemption granularity.
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is zero.
    pub fn new(granularity: Dur) -> ProportionalShare {
        assert!(!granularity.is_zero(), "granularity must be positive");
        ProportionalShare {
            entries: HashMap::new(),
            granularity,
            default_weight: 100,
        }
    }

    /// Sets the weight of a task (default 100); larger = more CPU share.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero.
    pub fn set_weight(&mut self, task: TaskId, weight: u64) {
        assert!(weight > 0, "weight must be positive");
        let w = weight;
        self.entries
            .entry(task)
            .and_modify(|e| e.weight = w)
            .or_insert(PsEntry {
                weight: w,
                vruntime: 0.0,
                ready: false,
            });
        // Remember for re-insertion after exit/re-ready cycles.
        if !self.entries.contains_key(&task) {
            self.default_weight = weight;
        }
    }

    fn min_ready_vruntime(&self) -> Option<f64> {
        self.entries
            .values()
            .filter(|e| e.ready)
            .map(|e| e.vruntime)
            .min_by(|a, b| a.partial_cmp(b).expect("vruntime NaN"))
    }
}

impl Scheduler for ProportionalShare {
    fn on_ready(&mut self, task: TaskId, _now: Time) {
        // A waking task must not hoard CPU from having slept: lift its
        // vruntime to the current minimum (CFS-style placement).
        let floor = self.min_ready_vruntime().unwrap_or(0.0);
        let w = self.default_weight;
        let e = self.entries.entry(task).or_insert(PsEntry {
            weight: w,
            vruntime: 0.0,
            ready: false,
        });
        e.ready = true;
        if e.vruntime < floor {
            e.vruntime = floor;
        }
    }

    fn on_block(&mut self, task: TaskId, _now: Time) {
        if let Some(e) = self.entries.get_mut(&task) {
            e.ready = false;
        }
    }

    fn on_exit(&mut self, task: TaskId, _now: Time) {
        self.entries.remove(&task);
    }

    fn charge(&mut self, task: TaskId, ran: Dur, _now: Time) {
        if let Some(e) = self.entries.get_mut(&task) {
            e.vruntime += ran.as_ns() as f64 / e.weight as f64;
        }
    }

    fn pick(&mut self, _now: Time) -> Option<TaskId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.ready)
            .min_by(|(ta, a), (tb, b)| {
                a.vruntime
                    .partial_cmp(&b.vruntime)
                    .expect("vruntime NaN")
                    .then(ta.cmp(tb))
            })
            .map(|(t, _)| *t)
    }

    fn horizon(&self, _task: TaskId, _now: Time) -> Option<Dur> {
        Some(self.granularity)
    }

    fn next_timer(&self, _now: Time) -> Option<Time> {
        None
    }

    fn on_timer(&mut self, _now: Time) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: Time = Time::ZERO;

    #[test]
    fn equal_weights_alternate() {
        let mut ps = ProportionalShare::new(Dur::ms(1));
        ps.on_ready(TaskId(1), T0);
        ps.on_ready(TaskId(2), T0);
        let first = ps.pick(T0).unwrap();
        ps.charge(first, Dur::ms(1), T0 + Dur::ms(1));
        let second = ps.pick(T0 + Dur::ms(1)).unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn weights_bias_share() {
        let mut ps = ProportionalShare::new(Dur::ms(1));
        ps.set_weight(TaskId(1), 300);
        ps.set_weight(TaskId(2), 100);
        ps.on_ready(TaskId(1), T0);
        ps.on_ready(TaskId(2), T0);
        // Run 40 granules; count how many go to the heavy task.
        let mut heavy = 0;
        let mut now = T0;
        for _ in 0..40 {
            let t = ps.pick(now).unwrap();
            if t == TaskId(1) {
                heavy += 1;
            }
            ps.charge(t, Dur::ms(1), now + Dur::ms(1));
            now += Dur::ms(1);
        }
        // Expect roughly 3:1 split.
        assert!((28..=32).contains(&heavy), "heavy got {heavy}/40");
    }

    #[test]
    fn waking_task_does_not_hoard() {
        let mut ps = ProportionalShare::new(Dur::ms(1));
        ps.on_ready(TaskId(1), T0);
        // Task 1 runs for a long time.
        for i in 0..50 {
            ps.charge(TaskId(1), Dur::ms(1), T0 + Dur::ms(i + 1));
        }
        // Task 2 wakes late; its vruntime is lifted to the floor, so task 1
        // is not starved for 50ms afterwards.
        ps.on_ready(TaskId(2), T0 + Dur::ms(50));
        let t = ps.pick(T0 + Dur::ms(50)).unwrap();
        ps.charge(t, Dur::ms(1), T0 + Dur::ms(51));
        let u = ps.pick(T0 + Dur::ms(51)).unwrap();
        assert_ne!(t, u, "both tasks should interleave after a wake");
    }

    #[test]
    fn horizon_is_granularity() {
        let ps = ProportionalShare::new(Dur::ms(2));
        assert_eq!(ps.horizon(TaskId(1), T0), Some(Dur::ms(2)));
    }

    #[test]
    fn blocked_tasks_not_picked() {
        let mut ps = ProportionalShare::new(Dur::ms(1));
        ps.on_ready(TaskId(1), T0);
        ps.on_block(TaskId(1), T0);
        assert_eq!(ps.pick(T0), None);
    }
}
