//! # selftune-sched
//!
//! Scheduling policies for the `selftune` reproduction of *"Self-tuning
//! Schedulers for Legacy Real-Time Applications"* (EuroSys 2010):
//!
//! * [`cbs`] — the Constant Bandwidth Server state machine (hard & soft),
//!   with FIFO or fixed-priority dispatch among attached tasks.
//! * [`reservation`] — EDF over CBS servers plus RT-FIFO and fair classes;
//!   the simulated AQuoSA scheduling stack.
//! * [`supervisor`] — admission control and bandwidth compression
//!   enforcing Σ Qᵢ/Tᵢ ≤ U_lub (Equation (1) of the paper).
//! * [`fp`] — preemptive fixed priority (`SCHED_FIFO` baseline) and
//!   rate-monotonic priority assignment.
//! * [`edf`] — plain task-level EDF, used to validate the simulator against
//!   schedulability theory.
//! * [`ps`] — weighted proportional share, the Section 3.2 ablation
//!   baseline that has no notion of a scheduling period.

pub mod cbs;
pub mod edf;
pub mod fp;
pub mod ps;
pub mod reservation;
pub mod supervisor;

pub use cbs::{CbsMode, InnerPolicy, Server, ServerConfig, ServerId, ServerState};
pub use edf::EdfScheduler;
pub use fp::{rate_monotonic, FixedPriority};
pub use ps::ProportionalShare;
pub use reservation::{Place, ReservationScheduler};
pub use supervisor::{ApplyReport, BwRequest, Compression, Grant, Supervisor};
