//! The reservation scheduler: EDF over CBS servers, with a fixed-priority
//! RT class and a best-effort fair class below.
//!
//! This is the simulated counterpart of the AQuoSA scheduling stack used in
//! the paper: reserved tasks run inside [`Server`]s dispatched earliest-
//! deadline-first; plain `SCHED_FIFO` tasks come next; everything else gets
//! round-robin time sharing. During the *detection* phase a legacy task runs
//! in the fair class; once its period is identified the manager attaches it
//! to a server.

use crate::cbs::{Server, ServerConfig, ServerId};
use selftune_simcore::scheduler::{RoundRobin, Scheduler};
use selftune_simcore::task::TaskId;
use selftune_simcore::time::{Dur, Time};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Where a task is scheduled.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Place {
    /// Inside a CBS reservation.
    Server(ServerId),
    /// Fixed-priority RT class (lower value = higher priority).
    Fifo(u32),
    /// Best-effort round-robin class (the default).
    Fair,
}

/// EDF-over-CBS reservation scheduler with RT-FIFO and fair classes.
///
/// # Class precedence
///
/// Reservations (EDF among runnable servers) > FIFO > fair. This mirrors
/// AQuoSA, where the CBS hooks sit above the stock Linux policies.
pub struct ReservationScheduler {
    servers: Vec<Server>,
    placement: HashMap<TaskId, Place>,
    fifo: BTreeMap<u32, VecDeque<TaskId>>,
    fair: RoundRobin,
    /// Deadline-miss bookkeeping for experiments: server deadline at the
    /// instant each reserved task last became ready.
    running_server: Option<ServerId>,
}

impl Default for ReservationScheduler {
    fn default() -> Self {
        ReservationScheduler::new()
    }
}

impl ReservationScheduler {
    /// Creates a scheduler with a 4 ms fair-class timeslice.
    pub fn new() -> ReservationScheduler {
        ReservationScheduler::with_fair_slice(Dur::ms(4))
    }

    /// Creates a scheduler with the given fair-class timeslice.
    pub fn with_fair_slice(slice: Dur) -> ReservationScheduler {
        ReservationScheduler {
            servers: Vec::new(),
            placement: HashMap::new(),
            fifo: BTreeMap::new(),
            fair: RoundRobin::new(slice),
            running_server: None,
        }
    }

    /// Creates a new server and returns its id.
    pub fn create_server(&mut self, cfg: ServerConfig) -> ServerId {
        let id = ServerId(self.servers.len() as u32);
        self.servers.push(Server::new(cfg));
        id
    }

    /// Read access to a server.
    pub fn server(&self, id: ServerId) -> &Server {
        &self.servers[id.index()]
    }

    /// Mutable access to a server (parameter changes, sensor reads).
    pub fn server_mut(&mut self, id: ServerId) -> &mut Server {
        &mut self.servers[id.index()]
    }

    /// Number of servers created so far.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Total bandwidth currently reserved, Σ Qᵢ/Tᵢ.
    pub fn total_reserved_bandwidth(&self) -> f64 {
        self.servers.iter().map(|s| s.config().bandwidth()).sum()
    }

    /// Current placement of a task (fair if never placed).
    pub fn place_of(&self, task: TaskId) -> Place {
        self.placement.get(&task).copied().unwrap_or(Place::Fair)
    }

    /// Sets the scheduling class of a task that is blocked or not yet
    /// started (no ready-queue bookkeeping is touched).
    ///
    /// For a task that is currently ready or running use
    /// [`ReservationScheduler::place_ready`].
    ///
    /// # Panics
    ///
    /// Panics if `place` names an unknown server.
    pub fn place(&mut self, task: TaskId, place: Place) {
        if let Place::Server(sid) = place {
            assert!(sid.index() < self.servers.len(), "unknown {sid}");
        }
        self.placement.insert(task, place);
    }

    /// Migrates a *ready* task to a new scheduling class at `now`: removes
    /// it from its current class queue and enqueues it in the new one.
    ///
    /// This is how the manager attaches a legacy application to its freshly
    /// created reservation while the application keeps running.
    ///
    /// # Panics
    ///
    /// Panics if `place` names an unknown server.
    pub fn place_ready(&mut self, task: TaskId, place: Place, now: Time) {
        self.on_block(task, now); // dequeue from the old class
        self.place(task, place);
        self.on_ready(task, now); // enqueue in the new class
    }

    /// The EDF-minimal runnable server, if any.
    fn edf_pick(&self) -> Option<ServerId> {
        self.servers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.runnable())
            .min_by_key(|(i, s)| (s.deadline(), *i))
            .map(|(i, _)| ServerId(i as u32))
    }

    fn fifo_pick(&self) -> Option<TaskId> {
        self.fifo
            .values()
            .find(|q| !q.is_empty())
            .and_then(|q| q.front().copied())
    }
}

impl Scheduler for ReservationScheduler {
    fn on_ready(&mut self, task: TaskId, now: Time) {
        match self.place_of(task) {
            Place::Server(sid) => self.servers[sid.index()].wake(task, now),
            Place::Fifo(p) => self.fifo.entry(p).or_default().push_back(task),
            Place::Fair => self.fair.on_ready(task, now),
        }
    }

    fn on_block(&mut self, task: TaskId, now: Time) {
        match self.place_of(task) {
            Place::Server(sid) => self.servers[sid.index()].remove(task, now),
            Place::Fifo(p) => {
                if let Some(q) = self.fifo.get_mut(&p) {
                    q.retain(|&t| t != task);
                }
            }
            Place::Fair => self.fair.on_block(task, now),
        }
    }

    fn on_exit(&mut self, task: TaskId, now: Time) {
        self.on_block(task, now);
    }

    fn charge(&mut self, task: TaskId, ran: Dur, now: Time) {
        match self.place_of(task) {
            Place::Server(sid) => self.servers[sid.index()].charge(ran, now),
            Place::Fifo(_) => {}
            Place::Fair => self.fair.charge(task, ran, now),
        }
    }

    fn pick(&mut self, now: Time) -> Option<TaskId> {
        if let Some(sid) = self.edf_pick() {
            self.running_server = Some(sid);
            return self.servers[sid.index()].front_task();
        }
        self.running_server = None;
        if let Some(t) = self.fifo_pick() {
            return Some(t);
        }
        self.fair.pick(now)
    }

    fn horizon(&self, task: TaskId, now: Time) -> Option<Dur> {
        match self.place_of(task) {
            Place::Server(sid) => Some(self.servers[sid.index()].remaining_budget()),
            Place::Fifo(_) => None,
            Place::Fair => self.fair.horizon(task, now),
        }
    }

    fn next_timer(&self, _now: Time) -> Option<Time> {
        self.servers.iter().filter_map(Server::replenish_at).min()
    }

    fn on_timer(&mut self, now: Time) {
        for s in &mut self.servers {
            s.replenish_if_due(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cbs::{CbsMode, ServerState};

    const T0: Time = Time::ZERO;

    fn t(ms: u64) -> Time {
        T0 + Dur::ms(ms)
    }

    fn sched_with_two_servers() -> (ReservationScheduler, ServerId, ServerId) {
        let mut s = ReservationScheduler::new();
        let a = s.create_server(ServerConfig::new(Dur::ms(10), Dur::ms(50)));
        let b = s.create_server(ServerConfig::new(Dur::ms(10), Dur::ms(100)));
        (s, a, b)
    }

    #[test]
    fn edf_prefers_earlier_deadline() {
        let (mut s, a, b) = sched_with_two_servers();
        s.place(TaskId(1), Place::Server(a));
        s.place(TaskId(2), Place::Server(b));
        s.on_ready(TaskId(1), T0); // deadline 50ms
        s.on_ready(TaskId(2), T0); // deadline 100ms
        assert_eq!(s.pick(T0), Some(TaskId(1)));
        s.on_block(TaskId(1), t(5));
        assert_eq!(s.pick(t(5)), Some(TaskId(2)));
    }

    #[test]
    fn throttled_server_yields_cpu() {
        let (mut s, a, b) = sched_with_two_servers();
        s.place(TaskId(1), Place::Server(a));
        s.place(TaskId(2), Place::Server(b));
        s.on_ready(TaskId(1), T0);
        s.on_ready(TaskId(2), T0);
        // Deplete server a's 10ms budget.
        s.charge(TaskId(1), Dur::ms(10), t(10));
        assert_eq!(s.server(a).state(), ServerState::Throttled);
        assert_eq!(s.pick(t(10)), Some(TaskId(2)));
        // Replenishment is the next timer (at server a's deadline, 50ms).
        assert_eq!(s.next_timer(t(10)), Some(t(50)));
        s.on_timer(t(50));
        assert_eq!(s.pick(t(50)), Some(TaskId(1)));
    }

    #[test]
    fn reservations_beat_fifo_and_fair() {
        let (mut s, a, _b) = sched_with_two_servers();
        s.place(TaskId(1), Place::Server(a));
        s.place(TaskId(2), Place::Fifo(1));
        // TaskId(3) stays fair by default.
        s.on_ready(TaskId(3), T0);
        s.on_ready(TaskId(2), T0);
        s.on_ready(TaskId(1), T0);
        assert_eq!(s.pick(T0), Some(TaskId(1)));
        s.on_block(TaskId(1), t(1));
        assert_eq!(s.pick(t(1)), Some(TaskId(2)));
        s.on_block(TaskId(2), t(2));
        assert_eq!(s.pick(t(2)), Some(TaskId(3)));
    }

    #[test]
    fn fifo_priority_order() {
        let mut s = ReservationScheduler::new();
        s.place(TaskId(1), Place::Fifo(5));
        s.place(TaskId(2), Place::Fifo(1));
        s.on_ready(TaskId(1), T0);
        s.on_ready(TaskId(2), T0);
        assert_eq!(s.pick(T0), Some(TaskId(2)));
    }

    #[test]
    fn horizon_is_remaining_budget() {
        let (mut s, a, _) = sched_with_two_servers();
        s.place(TaskId(1), Place::Server(a));
        s.on_ready(TaskId(1), T0);
        assert_eq!(s.pick(T0), Some(TaskId(1)));
        assert_eq!(s.horizon(TaskId(1), T0), Some(Dur::ms(10)));
        s.charge(TaskId(1), Dur::ms(4), t(4));
        assert_eq!(s.horizon(TaskId(1), t(4)), Some(Dur::ms(6)));
    }

    #[test]
    fn soft_server_keeps_running_with_postponed_deadline() {
        let mut s = ReservationScheduler::new();
        let a =
            s.create_server(ServerConfig::new(Dur::ms(10), Dur::ms(50)).with_mode(CbsMode::Soft));
        s.place(TaskId(1), Place::Server(a));
        s.on_ready(TaskId(1), T0);
        s.charge(TaskId(1), Dur::ms(10), t(10));
        // Soft: still runnable, deadline postponed to 100ms.
        assert_eq!(s.pick(t(10)), Some(TaskId(1)));
        assert_eq!(s.server(a).deadline(), t(100));
    }

    #[test]
    fn two_tasks_in_one_fifo_server() {
        let mut s = ReservationScheduler::new();
        let a = s.create_server(ServerConfig::new(Dur::ms(20), Dur::ms(50)));
        s.place(TaskId(1), Place::Server(a));
        s.place(TaskId(2), Place::Server(a));
        s.on_ready(TaskId(1), T0);
        s.on_ready(TaskId(2), T0);
        assert_eq!(s.pick(T0), Some(TaskId(1)));
        s.on_block(TaskId(1), t(3));
        assert_eq!(s.pick(t(3)), Some(TaskId(2)));
        assert_eq!(s.server(a).ready_count(), 1);
    }

    #[test]
    fn total_reserved_bandwidth_sums() {
        let (s, _, _) = sched_with_two_servers();
        // 10/50 + 10/100 = 0.3.
        assert!((s.total_reserved_bandwidth() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn default_place_is_fair() {
        let s = ReservationScheduler::new();
        assert_eq!(s.place_of(TaskId(7)), Place::Fair);
    }

    #[test]
    fn place_ready_migrates_running_task() {
        let mut s = ReservationScheduler::new();
        // Starts in the fair class (detection phase)...
        s.on_ready(TaskId(1), T0);
        assert_eq!(s.pick(T0), Some(TaskId(1)));
        // ... then the manager attaches it to a fresh reservation.
        let a = s.create_server(ServerConfig::new(Dur::ms(10), Dur::ms(40)));
        s.place_ready(TaskId(1), Place::Server(a), t(5));
        assert_eq!(s.place_of(TaskId(1)), Place::Server(a));
        assert_eq!(s.pick(t(5)), Some(TaskId(1)));
        // It now consumes server budget.
        s.charge(TaskId(1), Dur::ms(10), t(15));
        assert_eq!(s.server(a).state(), ServerState::Throttled);
        assert_eq!(s.pick(t(15)), None);
    }

    #[test]
    fn fair_class_round_robins() {
        let mut s = ReservationScheduler::new();
        s.on_ready(TaskId(1), T0);
        s.on_ready(TaskId(2), T0);
        let first = s.pick(T0).unwrap();
        s.charge(first, Dur::ms(4), t(4));
        let second = s.pick(t(4)).unwrap();
        assert_ne!(first, second);
    }
}
