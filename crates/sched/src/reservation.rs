//! The reservation scheduler: EDF over CBS servers, with a fixed-priority
//! RT class and a best-effort fair class below.
//!
//! This is the simulated counterpart of the AQuoSA scheduling stack used in
//! the paper: reserved tasks run inside [`Server`]s dispatched earliest-
//! deadline-first; plain `SCHED_FIFO` tasks come next; everything else gets
//! round-robin time sharing. During the *detection* phase a legacy task runs
//! in the fair class; once its period is identified the manager attaches it
//! to a server.

use crate::cbs::{Server, ServerConfig, ServerId};
use selftune_simcore::scheduler::{RoundRobin, Scheduler};
use selftune_simcore::task::TaskId;
use selftune_simcore::time::{Dur, Time};
use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};

/// Where a task is scheduled.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Place {
    /// Inside a CBS reservation.
    Server(ServerId),
    /// Fixed-priority RT class (lower value = higher priority).
    Fifo(u32),
    /// Best-effort round-robin class (the default).
    #[default]
    Fair,
}

/// EDF-over-CBS reservation scheduler with RT-FIFO and fair classes.
///
/// # Class precedence
///
/// Reservations (EDF among runnable servers) > FIFO > fair. This mirrors
/// AQuoSA, where the CBS hooks sit above the stock Linux policies.
///
/// # Dispatch caching
///
/// The EDF winner and the earliest replenishment instant are cached
/// between state changes: the kernel calls [`Scheduler::pick`] and
/// [`Scheduler::next_timer`] on every loop iteration, but the underlying
/// inputs (server deadlines, runnability, pending replenishments) only
/// change on wake/block/depletion/replenish/parameter events. Every
/// mutating entry point invalidates the caches; plain budget decrements
/// do not (see [`Server::charge`]). The pre-cache full-scan dispatcher is
/// kept behind [`ReservationScheduler::use_scan_dispatch`] for
/// before/after benchmarking and differential testing.
pub struct ReservationScheduler {
    servers: Vec<Server>,
    /// Dense task placement, indexed by `TaskId` (default fair). Dense
    /// because every `on_ready`/`charge`/`horizon` resolves a placement.
    placement: Vec<Place>,
    fifo: BTreeMap<u32, VecDeque<TaskId>>,
    fair: RoundRobin,
    /// Deadline-miss bookkeeping for experiments: server deadline at the
    /// instant each reserved task last became ready.
    running_server: Option<ServerId>,
    /// Cached EDF winner (`None` = dirty, recompute on next pick).
    edf_cache: Option<Option<ServerId>>,
    /// Cached earliest replenishment (`None` = dirty). A `Cell` because
    /// [`Scheduler::next_timer`] takes `&self`.
    timer_cache: Cell<Option<Option<Time>>>,
    /// Benchmark toggle: bypass both caches and rescan on every query.
    scan_dispatch: bool,
    /// Reused EDF-order buffer for [`ReservationScheduler::pick_with`]:
    /// one allocation serves every nested dispatch.
    order_scratch: Vec<(Time, u32)>,
    /// Dispatch-state version: bumped by every [`ReservationScheduler::touch`].
    epoch: u64,
    /// The epoch `order_scratch` was last rebuilt at (`None` = dirty).
    order_epoch: Option<u64>,
}

impl Default for ReservationScheduler {
    fn default() -> Self {
        ReservationScheduler::new()
    }
}

impl ReservationScheduler {
    /// Creates a scheduler with a 4 ms fair-class timeslice.
    pub fn new() -> ReservationScheduler {
        ReservationScheduler::with_fair_slice(Dur::ms(4))
    }

    /// Creates a scheduler with the given fair-class timeslice.
    pub fn with_fair_slice(slice: Dur) -> ReservationScheduler {
        ReservationScheduler {
            servers: Vec::new(),
            placement: Vec::new(),
            fifo: BTreeMap::new(),
            fair: RoundRobin::new(slice),
            running_server: None,
            edf_cache: None,
            timer_cache: Cell::new(None),
            scan_dispatch: false,
            order_scratch: Vec::new(),
            epoch: 0,
            order_epoch: None,
        }
    }

    /// Disables the dispatch caches: every `pick`/`next_timer` rescans all
    /// servers (the pre-cache implementation), for before/after
    /// benchmarking and differential testing only.
    #[doc(hidden)]
    pub fn use_scan_dispatch(&mut self) {
        self.scan_dispatch = true;
        self.touch();
    }

    /// Whether the scan-dispatch toggle is active (layered schedulers
    /// disable their own caches too, so before/after comparisons measure
    /// the whole stack).
    #[doc(hidden)]
    pub fn uses_scan_dispatch(&self) -> bool {
        self.scan_dispatch
    }

    /// Invalidates the cached dispatch decision and timer.
    fn touch(&mut self) {
        self.edf_cache = None;
        self.timer_cache.set(None);
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// Monotonic version of the dispatch-relevant state (server set,
    /// deadlines, runnability, pending replenishments, parameters). Any
    /// mutation that could change a dispatch decision bumps it — including
    /// supervisor re-grants, which go through
    /// [`ReservationScheduler::server_mut`]. Callers layering their own
    /// dispatch caches on top (the virt scheduler's nested pick, its
    /// stacked timer) validate against this instead of subscribing to
    /// individual transitions.
    pub fn dispatch_epoch(&self) -> u64 {
        self.epoch
    }

    /// Creates a new server and returns its id.
    pub fn create_server(&mut self, cfg: ServerConfig) -> ServerId {
        let id = ServerId(self.servers.len() as u32);
        self.servers.push(Server::new(cfg));
        self.touch();
        id
    }

    /// Read access to a server.
    pub fn server(&self, id: ServerId) -> &Server {
        &self.servers[id.index()]
    }

    /// Mutable access to a server (parameter changes, sensor reads).
    ///
    /// Conservatively invalidates the dispatch caches: the caller may
    /// change parameters, deadlines or throttle state through the returned
    /// reference.
    pub fn server_mut(&mut self, id: ServerId) -> &mut Server {
        self.touch();
        &mut self.servers[id.index()]
    }

    /// Number of servers created so far.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Total bandwidth currently reserved, Σ Qᵢ/Tᵢ.
    pub fn total_reserved_bandwidth(&self) -> f64 {
        self.servers.iter().map(|s| s.config().bandwidth()).sum()
    }

    /// Current placement of a task (fair if never placed).
    pub fn place_of(&self, task: TaskId) -> Place {
        self.placement
            .get(task.index())
            .copied()
            .unwrap_or(Place::Fair)
    }

    /// Sets the scheduling class of a task that is blocked or not yet
    /// started (no ready-queue bookkeeping is touched).
    ///
    /// For a task that is currently ready or running use
    /// [`ReservationScheduler::place_ready`].
    ///
    /// # Panics
    ///
    /// Panics if `place` names an unknown server.
    pub fn place(&mut self, task: TaskId, place: Place) {
        if let Place::Server(sid) = place {
            assert!(sid.index() < self.servers.len(), "unknown {sid}");
        }
        if self.placement.len() <= task.index() {
            self.placement.resize(task.index() + 1, Place::Fair);
        }
        self.placement[task.index()] = place;
    }

    /// Migrates a *ready* task to a new scheduling class at `now`: removes
    /// it from its current class queue and enqueues it in the new one.
    ///
    /// This is how the manager attaches a legacy application to its freshly
    /// created reservation while the application keeps running.
    ///
    /// # Panics
    ///
    /// Panics if `place` names an unknown server.
    pub fn place_ready(&mut self, task: TaskId, place: Place, now: Time) {
        self.on_block(task, now); // dequeue from the old class
        self.place(task, place);
        self.on_ready(task, now); // enqueue in the new class
    }

    /// The EDF-minimal runnable server, if any (full scan).
    fn edf_pick(&self) -> Option<ServerId> {
        self.servers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.runnable())
            .min_by_key(|(i, s)| (s.deadline(), *i))
            .map(|(i, _)| ServerId(i as u32))
    }

    /// The EDF-minimal runnable server, through the dispatch cache.
    fn edf_winner(&mut self) -> Option<ServerId> {
        if self.scan_dispatch {
            return self.edf_pick();
        }
        match self.edf_cache {
            Some(cached) => cached,
            None => {
                let winner = self.edf_pick();
                self.edf_cache = Some(winner);
                winner
            }
        }
    }

    fn fifo_pick(&self) -> Option<TaskId> {
        self.fifo
            .values()
            .find(|q| !q.is_empty())
            .and_then(|q| q.front().copied())
    }

    /// Dispatch with an external per-server task chooser — the nested
    /// scheduling hook the `selftune-virt` layer builds on.
    ///
    /// Walks the *runnable* servers in EDF order and asks `choose` which
    /// task the server would run; a server may decline (return `None`, e.g.
    /// a guest scheduler whose inner reservations are all throttled), in
    /// which case the next server in deadline order is offered the CPU.
    /// Falls back to the FIFO and fair classes when no server dispatches.
    ///
    /// Plain [`Scheduler::pick`] is equivalent to `pick_with` where every
    /// server chooses its own [`Server::front_task`].
    pub fn pick_with(
        &mut self,
        now: Time,
        mut choose: impl FnMut(ServerId, &Server) -> Option<TaskId>,
    ) -> Option<TaskId> {
        // The runnable set and the deadlines only change when some
        // transition bumps the epoch (wake/block/depletion/replenish/
        // re-grant); between transitions the sorted order is reused —
        // only the guests' willingness to dispatch is re-queried.
        let mut order = core::mem::take(&mut self.order_scratch);
        if self.scan_dispatch || self.order_epoch != Some(self.epoch) {
            order.clear();
            order.extend(
                self.servers
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.runnable())
                    .map(|(i, s)| (s.deadline(), i as u32)),
            );
            order.sort_unstable();
            self.order_epoch = Some(self.epoch);
        }
        let mut picked = None;
        for &(_, i) in &order {
            let sid = ServerId(i);
            if let Some(t) = choose(sid, &self.servers[sid.index()]) {
                self.running_server = Some(sid);
                picked = Some(t);
                break;
            }
        }
        self.order_scratch = order;
        if picked.is_some() {
            return picked;
        }
        self.running_server = None;
        if let Some(t) = self.fifo_pick() {
            return Some(t);
        }
        self.fair.pick(now)
    }
}

impl Scheduler for ReservationScheduler {
    fn on_ready(&mut self, task: TaskId, now: Time) {
        match self.place_of(task) {
            Place::Server(sid) => {
                self.servers[sid.index()].wake(task, now);
                self.touch();
            }
            Place::Fifo(p) => self.fifo.entry(p).or_default().push_back(task),
            Place::Fair => self.fair.on_ready(task, now),
        }
    }

    fn on_block(&mut self, task: TaskId, now: Time) {
        match self.place_of(task) {
            Place::Server(sid) => {
                self.servers[sid.index()].remove(task, now);
                self.touch();
            }
            Place::Fifo(p) => {
                if let Some(q) = self.fifo.get_mut(&p) {
                    q.retain(|&t| t != task);
                }
            }
            Place::Fair => self.fair.on_block(task, now),
        }
    }

    fn on_exit(&mut self, task: TaskId, now: Time) {
        self.on_block(task, now);
    }

    fn charge(&mut self, task: TaskId, ran: Dur, now: Time) {
        match self.place_of(task) {
            Place::Server(sid) => {
                if self.servers[sid.index()].charge(ran, now) {
                    self.touch();
                }
            }
            Place::Fifo(_) => {}
            Place::Fair => self.fair.charge(task, ran, now),
        }
    }

    fn pick(&mut self, now: Time) -> Option<TaskId> {
        if let Some(sid) = self.edf_winner() {
            self.running_server = Some(sid);
            return self.servers[sid.index()].front_task();
        }
        self.running_server = None;
        if let Some(t) = self.fifo_pick() {
            return Some(t);
        }
        self.fair.pick(now)
    }

    fn horizon(&self, task: TaskId, now: Time) -> Option<Dur> {
        match self.place_of(task) {
            Place::Server(sid) => Some(self.servers[sid.index()].remaining_budget()),
            Place::Fifo(_) => None,
            Place::Fair => self.fair.horizon(task, now),
        }
    }

    fn next_timer(&self, _now: Time) -> Option<Time> {
        if self.scan_dispatch {
            return self.servers.iter().filter_map(Server::replenish_at).min();
        }
        if let Some(cached) = self.timer_cache.get() {
            return cached;
        }
        let t = self.servers.iter().filter_map(Server::replenish_at).min();
        self.timer_cache.set(Some(t));
        t
    }

    fn on_timer(&mut self, now: Time) {
        let mut changed = false;
        for s in &mut self.servers {
            changed |= s.replenish_if_due(now);
        }
        if changed {
            self.touch();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cbs::{CbsMode, ServerState};

    const T0: Time = Time::ZERO;

    fn t(ms: u64) -> Time {
        T0 + Dur::ms(ms)
    }

    fn sched_with_two_servers() -> (ReservationScheduler, ServerId, ServerId) {
        let mut s = ReservationScheduler::new();
        let a = s.create_server(ServerConfig::new(Dur::ms(10), Dur::ms(50)));
        let b = s.create_server(ServerConfig::new(Dur::ms(10), Dur::ms(100)));
        (s, a, b)
    }

    #[test]
    fn edf_prefers_earlier_deadline() {
        let (mut s, a, b) = sched_with_two_servers();
        s.place(TaskId(1), Place::Server(a));
        s.place(TaskId(2), Place::Server(b));
        s.on_ready(TaskId(1), T0); // deadline 50ms
        s.on_ready(TaskId(2), T0); // deadline 100ms
        assert_eq!(s.pick(T0), Some(TaskId(1)));
        s.on_block(TaskId(1), t(5));
        assert_eq!(s.pick(t(5)), Some(TaskId(2)));
    }

    #[test]
    fn throttled_server_yields_cpu() {
        let (mut s, a, b) = sched_with_two_servers();
        s.place(TaskId(1), Place::Server(a));
        s.place(TaskId(2), Place::Server(b));
        s.on_ready(TaskId(1), T0);
        s.on_ready(TaskId(2), T0);
        // Deplete server a's 10ms budget.
        s.charge(TaskId(1), Dur::ms(10), t(10));
        assert_eq!(s.server(a).state(), ServerState::Throttled);
        assert_eq!(s.pick(t(10)), Some(TaskId(2)));
        // Replenishment is the next timer (at server a's deadline, 50ms).
        assert_eq!(s.next_timer(t(10)), Some(t(50)));
        s.on_timer(t(50));
        assert_eq!(s.pick(t(50)), Some(TaskId(1)));
    }

    #[test]
    fn reservations_beat_fifo_and_fair() {
        let (mut s, a, _b) = sched_with_two_servers();
        s.place(TaskId(1), Place::Server(a));
        s.place(TaskId(2), Place::Fifo(1));
        // TaskId(3) stays fair by default.
        s.on_ready(TaskId(3), T0);
        s.on_ready(TaskId(2), T0);
        s.on_ready(TaskId(1), T0);
        assert_eq!(s.pick(T0), Some(TaskId(1)));
        s.on_block(TaskId(1), t(1));
        assert_eq!(s.pick(t(1)), Some(TaskId(2)));
        s.on_block(TaskId(2), t(2));
        assert_eq!(s.pick(t(2)), Some(TaskId(3)));
    }

    #[test]
    fn fifo_priority_order() {
        let mut s = ReservationScheduler::new();
        s.place(TaskId(1), Place::Fifo(5));
        s.place(TaskId(2), Place::Fifo(1));
        s.on_ready(TaskId(1), T0);
        s.on_ready(TaskId(2), T0);
        assert_eq!(s.pick(T0), Some(TaskId(2)));
    }

    #[test]
    fn horizon_is_remaining_budget() {
        let (mut s, a, _) = sched_with_two_servers();
        s.place(TaskId(1), Place::Server(a));
        s.on_ready(TaskId(1), T0);
        assert_eq!(s.pick(T0), Some(TaskId(1)));
        assert_eq!(s.horizon(TaskId(1), T0), Some(Dur::ms(10)));
        s.charge(TaskId(1), Dur::ms(4), t(4));
        assert_eq!(s.horizon(TaskId(1), t(4)), Some(Dur::ms(6)));
    }

    #[test]
    fn soft_server_keeps_running_with_postponed_deadline() {
        let mut s = ReservationScheduler::new();
        let a =
            s.create_server(ServerConfig::new(Dur::ms(10), Dur::ms(50)).with_mode(CbsMode::Soft));
        s.place(TaskId(1), Place::Server(a));
        s.on_ready(TaskId(1), T0);
        s.charge(TaskId(1), Dur::ms(10), t(10));
        // Soft: still runnable, deadline postponed to 100ms.
        assert_eq!(s.pick(t(10)), Some(TaskId(1)));
        assert_eq!(s.server(a).deadline(), t(100));
    }

    #[test]
    fn two_tasks_in_one_fifo_server() {
        let mut s = ReservationScheduler::new();
        let a = s.create_server(ServerConfig::new(Dur::ms(20), Dur::ms(50)));
        s.place(TaskId(1), Place::Server(a));
        s.place(TaskId(2), Place::Server(a));
        s.on_ready(TaskId(1), T0);
        s.on_ready(TaskId(2), T0);
        assert_eq!(s.pick(T0), Some(TaskId(1)));
        s.on_block(TaskId(1), t(3));
        assert_eq!(s.pick(t(3)), Some(TaskId(2)));
        assert_eq!(s.server(a).ready_count(), 1);
    }

    #[test]
    fn total_reserved_bandwidth_sums() {
        let (s, _, _) = sched_with_two_servers();
        // 10/50 + 10/100 = 0.3.
        assert!((s.total_reserved_bandwidth() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn default_place_is_fair() {
        let s = ReservationScheduler::new();
        assert_eq!(s.place_of(TaskId(7)), Place::Fair);
    }

    #[test]
    fn place_ready_migrates_running_task() {
        let mut s = ReservationScheduler::new();
        // Starts in the fair class (detection phase)...
        s.on_ready(TaskId(1), T0);
        assert_eq!(s.pick(T0), Some(TaskId(1)));
        // ... then the manager attaches it to a fresh reservation.
        let a = s.create_server(ServerConfig::new(Dur::ms(10), Dur::ms(40)));
        s.place_ready(TaskId(1), Place::Server(a), t(5));
        assert_eq!(s.place_of(TaskId(1)), Place::Server(a));
        assert_eq!(s.pick(t(5)), Some(TaskId(1)));
        // It now consumes server budget.
        s.charge(TaskId(1), Dur::ms(10), t(15));
        assert_eq!(s.server(a).state(), ServerState::Throttled);
        assert_eq!(s.pick(t(15)), None);
    }

    #[test]
    fn pick_with_lets_a_server_decline() {
        let (mut s, a, b) = sched_with_two_servers();
        s.place(TaskId(1), Place::Server(a));
        s.place(TaskId(2), Place::Server(b));
        s.on_ready(TaskId(1), T0); // deadline 50ms: EDF winner
        s.on_ready(TaskId(2), T0); // deadline 100ms
                                   // Server a declines (a nested guest with nothing dispatchable):
                                   // the CPU falls through to server b in deadline order.
        let picked = s.pick_with(
            T0,
            |sid, srv| {
                if sid == a {
                    None
                } else {
                    srv.front_task()
                }
            },
        );
        assert_eq!(picked, Some(TaskId(2)));
        // With every server choosing its own front task, pick_with and
        // pick agree.
        let via_hook = s.pick_with(T0, |_, srv| srv.front_task());
        assert_eq!(via_hook, s.pick(T0));
    }

    #[test]
    fn pick_with_falls_back_to_fifo_and_fair() {
        let mut s = ReservationScheduler::new();
        s.place(TaskId(2), Place::Fifo(1));
        s.on_ready(TaskId(2), T0);
        s.on_ready(TaskId(3), T0); // fair
        assert_eq!(s.pick_with(T0, |_, _| None), Some(TaskId(2)));
        s.on_block(TaskId(2), t(1));
        assert_eq!(s.pick_with(t(1), |_, _| None), Some(TaskId(3)));
    }

    #[test]
    fn cached_dispatch_tracks_state_changes() {
        let (mut s, a, b) = sched_with_two_servers();
        s.place(TaskId(1), Place::Server(a));
        s.place(TaskId(2), Place::Server(b));
        s.on_ready(TaskId(1), T0);
        // Repeated picks hit the cache and stay stable.
        assert_eq!(s.pick(T0), Some(TaskId(1)));
        assert_eq!(s.pick(T0), Some(TaskId(1)));
        // A wake changes the EDF input; the cache must notice... but the
        // earlier deadline still wins.
        s.on_ready(TaskId(2), T0);
        assert_eq!(s.pick(T0), Some(TaskId(1)));
        // Depleting server a flips the winner and arms a replenishment.
        s.charge(TaskId(1), Dur::ms(10), t(10));
        assert_eq!(s.pick(t(10)), Some(TaskId(2)));
        assert_eq!(s.next_timer(t(10)), Some(t(50)));
        assert_eq!(s.next_timer(t(10)), Some(t(50))); // cached
        s.on_timer(t(50));
        assert_eq!(s.next_timer(t(50)), None);
        assert_eq!(s.pick(t(50)), Some(TaskId(1)));
        // Parameter changes through server_mut invalidate conservatively.
        s.server_mut(a).set_params(Dur::ms(1), Dur::ms(200));
        s.charge(TaskId(1), Dur::ms(1), t(51));
        assert_eq!(s.pick(t(51)), Some(TaskId(2)));
    }

    #[test]
    fn fair_class_round_robins() {
        let mut s = ReservationScheduler::new();
        s.on_ready(TaskId(1), T0);
        s.on_ready(TaskId(2), T0);
        let first = s.pick(T0).unwrap();
        s.charge(first, Dur::ms(4), t(4));
        let second = s.pick(t(4)).unwrap();
        assert_ne!(first, second);
    }
}
