//! The Constant Bandwidth Server (CBS) state machine.
//!
//! A CBS [`Server`] owns a budget `Q` replenished every reservation period
//! `T` and a scheduling deadline used by the EDF layer
//! ([`crate::reservation::ReservationScheduler`]). The rules follow Abeni &
//! Buttazzo's original formulation (the paper's reference \[1\]):
//!
//! * **Wake-up rule** — when a task arrives at an idle server at time `t`:
//!   if the pair `(q, d)` satisfies `q ≤ (d − t)·Q/T` it is kept, otherwise
//!   the server gets a fresh pair `q = Q`, `d = t + T`.
//! * **Depletion (hard mode)** — when the budget is exhausted the server is
//!   *throttled* until its current deadline, at which point `q = Q` and
//!   `d += T` (the AQuoSA hard-reservation behaviour the paper relies on so
//!   that consumed time tracks the reservation).
//! * **Depletion (soft mode)** — budget is recharged immediately and the
//!   deadline is postponed by `T`; the server keeps competing at a lower
//!   EDF priority.
//!
//! Several tasks can share one server (Section 3.2 of the paper); within a
//! server the ready queue is FIFO or fixed-priority (rate-monotonic when
//! priorities are assigned by period).

use selftune_simcore::task::TaskId;
use selftune_simcore::time::{Dur, Time};

/// Identifier of a server within one reservation scheduler.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ServerId(pub u32);

impl ServerId {
    /// Index into dense per-server arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for ServerId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "srv{}", self.0)
    }
}

/// Budget depletion behaviour.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum CbsMode {
    /// Throttle until the current deadline, then replenish (AQuoSA-style
    /// hard reservation; the paper's default).
    #[default]
    Hard,
    /// Immediately recharge and postpone the deadline (original soft CBS).
    Soft,
}

/// Scheduling discipline among the tasks attached to one server.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum InnerPolicy {
    /// First-come-first-served among ready tasks.
    #[default]
    Fifo,
    /// Fixed priority (lower value = higher priority); rate-monotonic when
    /// priorities are assigned proportionally to activation rate.
    FixedPriority,
}

/// Lifecycle state of a server.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ServerState {
    /// No ready tasks attached.
    Idle,
    /// Has ready tasks and budget; competes under EDF.
    Active,
    /// Budget exhausted (hard mode); waiting for replenishment.
    Throttled,
}

/// Static parameters of a server.
#[derive(Copy, Clone, Debug)]
pub struct ServerConfig {
    /// Maximum budget `Q` per period.
    pub budget: Dur,
    /// Reservation period `T`.
    pub period: Dur,
    /// Depletion behaviour.
    pub mode: CbsMode,
    /// Discipline among attached tasks.
    pub policy: InnerPolicy,
}

impl ServerConfig {
    /// A hard FIFO server with the given `(Q, T)`.
    ///
    /// # Panics
    ///
    /// Panics if `budget` or `period` is zero, or `budget > period`.
    pub fn new(budget: Dur, period: Dur) -> ServerConfig {
        assert!(!budget.is_zero(), "server budget must be positive");
        assert!(!period.is_zero(), "server period must be positive");
        assert!(budget <= period, "server budget must not exceed its period");
        ServerConfig {
            budget,
            period,
            mode: CbsMode::Hard,
            policy: InnerPolicy::Fifo,
        }
    }

    /// Sets the depletion mode.
    pub fn with_mode(mut self, mode: CbsMode) -> ServerConfig {
        self.mode = mode;
        self
    }

    /// Sets the inner scheduling policy.
    pub fn with_policy(mut self, policy: InnerPolicy) -> ServerConfig {
        self.policy = policy;
        self
    }

    /// Reserved fraction of the CPU, `Q/T`.
    pub fn bandwidth(&self) -> f64 {
        self.budget.ratio(self.period)
    }
}

/// Counters exposed for controllers and experiments.
#[derive(Copy, Clone, Debug, Default)]
pub struct ServerStats {
    /// Cumulative CPU consumed by tasks of this server (the
    /// `qres_get_time()` sensor of the paper).
    pub consumed: Dur,
    /// Number of budget depletions.
    pub exhaustions: u64,
    /// Number of deadline postponements (soft mode).
    pub postponements: u64,
    /// Number of replenishments (hard mode).
    pub replenishments: u64,
}

/// One Constant Bandwidth Server.
#[derive(Debug)]
pub struct Server {
    cfg: ServerConfig,
    budget: Dur,
    deadline: Time,
    state: ServerState,
    repl_at: Option<Time>,
    /// Ready tasks in dispatch order (FIFO arrival order; for
    /// `FixedPriority` the dispatch scan picks the best priority).
    ready: Vec<TaskId>,
    /// Priorities of attached tasks (used by `InnerPolicy::FixedPriority`).
    prio: Vec<(TaskId, u32)>,
    stats: ServerStats,
    /// Set when the budget depleted since the last controller read
    /// (the binary sensor of the original LFS scheme).
    exhausted_flag: bool,
}

impl Server {
    /// Creates an idle server with the given configuration.
    pub fn new(cfg: ServerConfig) -> Server {
        Server {
            cfg,
            budget: cfg.budget,
            deadline: Time::ZERO,
            state: ServerState::Idle,
            repl_at: None,
            ready: Vec::new(),
            prio: Vec::new(),
            stats: ServerStats::default(),
            exhausted_flag: false,
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Current remaining budget.
    pub fn remaining_budget(&self) -> Dur {
        self.budget
    }

    /// Current scheduling deadline.
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ServerState {
        self.state
    }

    /// Counters (consumed time, exhaustions, ...).
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Instant of the pending replenishment, if throttled.
    pub fn replenish_at(&self) -> Option<Time> {
        self.repl_at
    }

    /// Reads and clears the "budget depleted since last read" flag — the
    /// binary sensor used by the original LFS controller.
    pub fn take_exhausted_flag(&mut self) -> bool {
        core::mem::take(&mut self.exhausted_flag)
    }

    /// Assigns a fixed priority to a task for `InnerPolicy::FixedPriority`
    /// dispatch (lower value = higher priority).
    pub fn set_task_priority(&mut self, task: TaskId, prio: u32) {
        if let Some(p) = self.prio.iter_mut().find(|(t, _)| *t == task) {
            p.1 = prio;
        } else {
            self.prio.push((task, prio));
        }
    }

    fn priority_of(&self, task: TaskId) -> u32 {
        self.prio
            .iter()
            .find(|(t, _)| *t == task)
            .map(|&(_, p)| p)
            .unwrap_or(u32::MAX)
    }

    /// True if the server is ready to compete under EDF.
    pub fn runnable(&self) -> bool {
        self.state == ServerState::Active && !self.ready.is_empty() && self.budget > Dur::ZERO
    }

    /// The task the server would dispatch, per its inner policy.
    pub fn front_task(&self) -> Option<TaskId> {
        match self.cfg.policy {
            InnerPolicy::Fifo => self.ready.first().copied(),
            InnerPolicy::FixedPriority => self
                .ready
                .iter()
                .copied()
                .min_by_key(|&t| (self.priority_of(t), self.ready.iter().position(|&x| x == t))),
        }
    }

    /// Number of ready tasks.
    pub fn ready_count(&self) -> usize {
        self.ready.len()
    }

    /// A task attached to this server became ready.
    pub fn wake(&mut self, task: TaskId, now: Time) {
        debug_assert!(!self.ready.contains(&task), "{task} woken twice");
        self.ready.push(task);
        match self.state {
            ServerState::Idle => {
                // CBS wake-up rule: reuse (q, d) only if it cannot exceed
                // the reserved bandwidth.
                let keep = self.deadline > now && {
                    let q = self.budget.as_ns() as u128;
                    let t_rem = (self.deadline - now).as_ns() as u128;
                    let qmax = self.cfg.budget.as_ns() as u128;
                    let period = self.cfg.period.as_ns() as u128;
                    q * period <= t_rem * qmax
                };
                if !keep {
                    self.budget = self.cfg.budget;
                    self.deadline = now + self.cfg.period;
                }
                self.state = ServerState::Active;
            }
            ServerState::Active | ServerState::Throttled => {
                // Queued; nothing else changes.
            }
        }
    }

    /// A ready task of this server blocked or exited.
    pub fn remove(&mut self, task: TaskId, _now: Time) {
        self.ready.retain(|&t| t != task);
        if self.ready.is_empty() && self.state == ServerState::Active {
            // Keep (q, d) for the wake-up rule.
            self.state = ServerState::Idle;
        }
    }

    /// Charges `ran` of execution ending at `now` and applies the depletion
    /// rule when the budget runs out.
    ///
    /// Returns `true` when the charge changed the server's dispatch state
    /// (depletion handled: throttle, postponement or immediate replenish) —
    /// the signal the scheduler's dispatch cache invalidates on. A plain
    /// budget decrement leaves the EDF key and runnability untouched.
    pub fn charge(&mut self, ran: Dur, now: Time) -> bool {
        self.stats.consumed += ran;
        self.budget = self.budget.saturating_sub(ran);
        if self.budget.is_zero() && self.state == ServerState::Active {
            self.exhausted_flag = true;
            self.stats.exhaustions += 1;
            match self.cfg.mode {
                CbsMode::Hard => {
                    if self.deadline > now {
                        self.state = ServerState::Throttled;
                        self.repl_at = Some(self.deadline);
                    } else {
                        // Deadline already passed (overload): replenish
                        // immediately with a fresh deadline.
                        self.budget = self.cfg.budget;
                        while self.deadline <= now {
                            self.deadline += self.cfg.period;
                        }
                        self.stats.replenishments += 1;
                    }
                }
                CbsMode::Soft => {
                    self.budget = self.cfg.budget;
                    self.deadline += self.cfg.period;
                    self.stats.postponements += 1;
                }
            }
            return true;
        }
        false
    }

    /// Performs the pending replenishment if due at `now`; returns `true`
    /// if a replenishment happened (dispatch state changed).
    pub fn replenish_if_due(&mut self, now: Time) -> bool {
        if let Some(t) = self.repl_at {
            if t <= now {
                self.repl_at = None;
                self.budget = self.cfg.budget;
                self.deadline += self.cfg.period;
                self.stats.replenishments += 1;
                self.state = if self.ready.is_empty() {
                    ServerState::Idle
                } else {
                    ServerState::Active
                };
                return true;
            }
        }
        false
    }

    /// Applies new reservation parameters `(Q, T)` immediately.
    ///
    /// Budget increases take effect at once (granting the delta, and lifting
    /// a hard throttle if any), so an upward correction by the feedback
    /// controller becomes effective without waiting a full period — this is
    /// what lets LFS++ adapt "almost immediately" (Section 5.4). Budget
    /// decreases clamp the current budget.
    ///
    /// # Panics
    ///
    /// Panics if the new parameters are invalid (zero, or `Q > T`).
    pub fn set_params(&mut self, budget: Dur, period: Dur) {
        assert!(!budget.is_zero() && !period.is_zero() && budget <= period);
        let old = self.cfg.budget;
        self.cfg.budget = budget;
        self.cfg.period = period;
        if budget > old {
            self.budget += budget - old;
            if self.state == ServerState::Throttled && self.budget > Dur::ZERO {
                self.repl_at = None;
                self.state = if self.ready.is_empty() {
                    ServerState::Idle
                } else {
                    ServerState::Active
                };
            }
        } else {
            self.budget = self.budget.min(budget);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: Time = Time::ZERO;

    fn server(q_ms: u64, t_ms: u64) -> Server {
        Server::new(ServerConfig::new(Dur::ms(q_ms), Dur::ms(t_ms)))
    }

    #[test]
    fn fresh_deadline_on_first_wake() {
        let mut s = server(10, 100);
        s.wake(TaskId(1), T0 + Dur::ms(5));
        assert_eq!(s.state(), ServerState::Active);
        assert_eq!(s.deadline(), T0 + Dur::ms(105));
        assert_eq!(s.remaining_budget(), Dur::ms(10));
        assert!(s.runnable());
    }

    #[test]
    fn wakeup_rule_keeps_safe_pair() {
        let mut s = server(10, 100);
        s.wake(TaskId(1), T0);
        s.charge(Dur::ms(4), T0 + Dur::ms(4));
        s.remove(TaskId(1), T0 + Dur::ms(4));
        assert_eq!(s.state(), ServerState::Idle);
        // Re-wake at 20ms: q=6ms, d=100ms, (d-t)·Q/T = 8ms ≥ 6ms → keep.
        s.wake(TaskId(1), T0 + Dur::ms(20));
        assert_eq!(s.deadline(), T0 + Dur::ms(100));
        assert_eq!(s.remaining_budget(), Dur::ms(6));
    }

    #[test]
    fn wakeup_rule_resets_unsafe_pair() {
        let mut s = server(10, 100);
        s.wake(TaskId(1), T0);
        s.charge(Dur::ms(4), T0 + Dur::ms(4));
        s.remove(TaskId(1), T0 + Dur::ms(4));
        // Re-wake at 95ms: (d-t)·Q/T = 0.5ms < 6ms → fresh pair.
        s.wake(TaskId(1), T0 + Dur::ms(95));
        assert_eq!(s.deadline(), T0 + Dur::ms(195));
        assert_eq!(s.remaining_budget(), Dur::ms(10));
    }

    #[test]
    fn wakeup_after_deadline_resets() {
        let mut s = server(10, 100);
        s.wake(TaskId(1), T0);
        s.charge(Dur::ms(1), T0 + Dur::ms(1));
        s.remove(TaskId(1), T0 + Dur::ms(1));
        s.wake(TaskId(1), T0 + Dur::ms(500));
        assert_eq!(s.deadline(), T0 + Dur::ms(600));
        assert_eq!(s.remaining_budget(), Dur::ms(10));
    }

    #[test]
    fn hard_depletion_throttles_until_deadline() {
        let mut s = server(10, 100);
        s.wake(TaskId(1), T0);
        s.charge(Dur::ms(10), T0 + Dur::ms(10));
        assert_eq!(s.state(), ServerState::Throttled);
        assert!(!s.runnable());
        assert_eq!(s.replenish_at(), Some(T0 + Dur::ms(100)));
        // Replenish at the deadline: fresh budget, deadline += T.
        s.replenish_if_due(T0 + Dur::ms(100));
        assert_eq!(s.state(), ServerState::Active);
        assert_eq!(s.remaining_budget(), Dur::ms(10));
        assert_eq!(s.deadline(), T0 + Dur::ms(200));
        assert_eq!(s.stats().replenishments, 1);
    }

    #[test]
    fn soft_depletion_postpones() {
        let mut s =
            Server::new(ServerConfig::new(Dur::ms(10), Dur::ms(100)).with_mode(CbsMode::Soft));
        s.wake(TaskId(1), T0);
        s.charge(Dur::ms(10), T0 + Dur::ms(10));
        assert_eq!(s.state(), ServerState::Active);
        assert_eq!(s.remaining_budget(), Dur::ms(10));
        assert_eq!(s.deadline(), T0 + Dur::ms(200));
        assert_eq!(s.stats().postponements, 1);
        assert!(s.runnable());
    }

    #[test]
    fn consumed_accumulates() {
        let mut s = server(10, 100);
        s.wake(TaskId(1), T0);
        s.charge(Dur::ms(3), T0 + Dur::ms(3));
        s.charge(Dur::ms(2), T0 + Dur::ms(5));
        assert_eq!(s.stats().consumed, Dur::ms(5));
    }

    #[test]
    fn exhausted_flag_reads_once() {
        let mut s = server(5, 100);
        s.wake(TaskId(1), T0);
        s.charge(Dur::ms(5), T0 + Dur::ms(5));
        assert!(s.take_exhausted_flag());
        assert!(!s.take_exhausted_flag());
    }

    #[test]
    fn fifo_front_in_arrival_order() {
        let mut s = server(10, 100);
        s.wake(TaskId(2), T0);
        s.wake(TaskId(1), T0 + Dur::ms(1));
        assert_eq!(s.front_task(), Some(TaskId(2)));
        s.remove(TaskId(2), T0 + Dur::ms(2));
        assert_eq!(s.front_task(), Some(TaskId(1)));
    }

    #[test]
    fn fixed_priority_front_prefers_low_value() {
        let mut s = Server::new(
            ServerConfig::new(Dur::ms(10), Dur::ms(100)).with_policy(InnerPolicy::FixedPriority),
        );
        s.set_task_priority(TaskId(1), 2);
        s.set_task_priority(TaskId(2), 1);
        s.wake(TaskId(1), T0);
        s.wake(TaskId(2), T0);
        assert_eq!(s.front_task(), Some(TaskId(2)));
    }

    #[test]
    fn idle_keeps_pair_for_wakeup_rule() {
        let mut s = server(10, 100);
        s.wake(TaskId(1), T0);
        s.charge(Dur::ms(2), T0 + Dur::ms(2));
        let d = s.deadline();
        let q = s.remaining_budget();
        s.remove(TaskId(1), T0 + Dur::ms(2));
        assert_eq!(s.state(), ServerState::Idle);
        assert_eq!(s.deadline(), d);
        assert_eq!(s.remaining_budget(), q);
    }

    #[test]
    fn grow_budget_applies_immediately_and_unthrottles() {
        let mut s = server(5, 100);
        s.wake(TaskId(1), T0);
        s.charge(Dur::ms(5), T0 + Dur::ms(5));
        assert_eq!(s.state(), ServerState::Throttled);
        s.set_params(Dur::ms(20), Dur::ms(100));
        assert_eq!(s.state(), ServerState::Active);
        assert_eq!(s.remaining_budget(), Dur::ms(15));
        assert!(s.replenish_at().is_none());
    }

    #[test]
    fn shrink_budget_clamps() {
        let mut s = server(20, 100);
        s.wake(TaskId(1), T0);
        s.set_params(Dur::ms(5), Dur::ms(100));
        assert_eq!(s.remaining_budget(), Dur::ms(5));
    }

    #[test]
    fn depletion_past_deadline_replenishes_immediately() {
        let mut s = server(10, 100);
        s.wake(TaskId(1), T0);
        // Simulate execution that finishes well after the deadline (e.g.
        // parameters were changed under overload).
        s.set_params(Dur::ms(10), Dur::ms(100));
        s.charge(Dur::ms(4), T0 + Dur::ms(50));
        s.charge(Dur::ms(6), T0 + Dur::ms(150));
        // Deadline (100ms) < now (150ms): immediate fresh pair.
        assert_eq!(s.state(), ServerState::Active);
        assert_eq!(s.remaining_budget(), Dur::ms(10));
        assert!(s.deadline() > T0 + Dur::ms(150));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn invalid_config_panics() {
        let _ = ServerConfig::new(Dur::ms(200), Dur::ms(100));
    }

    #[test]
    fn bandwidth_ratio() {
        let cfg = ServerConfig::new(Dur::ms(20), Dur::ms(100));
        assert!((cfg.bandwidth() - 0.2).abs() < 1e-12);
    }
}
