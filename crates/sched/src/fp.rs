//! Preemptive fixed-priority scheduling (`SCHED_FIFO`-style).
//!
//! The paper's Section 1 observes that plain fixed priorities — the only RT
//! support in stock general-purpose kernels — are "known to be unfit for
//! soft real-time applications": one greedy task starves everything below
//! it. This baseline exists to demonstrate exactly that in experiments, and
//! as the intra-server discipline reference (rate-monotonic assignment).

use selftune_simcore::scheduler::Scheduler;
use selftune_simcore::task::TaskId;
use selftune_simcore::time::{Dur, Time};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Preemptive fixed-priority scheduler; lower value = higher priority.
///
/// Tasks not registered get [`FixedPriority::DEFAULT_PRIO`].
#[derive(Debug, Default)]
pub struct FixedPriority {
    prio: HashMap<TaskId, u32>,
    ready: BTreeMap<u32, VecDeque<TaskId>>,
}

impl FixedPriority {
    /// Priority assigned to unregistered tasks.
    pub const DEFAULT_PRIO: u32 = 100;

    /// Creates an empty scheduler.
    pub fn new() -> FixedPriority {
        FixedPriority::default()
    }

    /// Registers the priority of a task (before it becomes ready).
    pub fn set_priority(&mut self, task: TaskId, prio: u32) {
        self.prio.insert(task, prio);
    }

    /// Priority of a task.
    pub fn priority(&self, task: TaskId) -> u32 {
        self.prio.get(&task).copied().unwrap_or(Self::DEFAULT_PRIO)
    }

    fn queue_remove(&mut self, task: TaskId) {
        let p = self.priority(task);
        if let Some(q) = self.ready.get_mut(&p) {
            q.retain(|&t| t != task);
            if q.is_empty() {
                self.ready.remove(&p);
            }
        }
    }
}

/// Assigns rate-monotonic priorities: shorter period = higher priority
/// (lower value). Returns `(task, priority)` pairs.
pub fn rate_monotonic(periods: &[(TaskId, Dur)]) -> Vec<(TaskId, u32)> {
    let mut by_period: Vec<_> = periods.to_vec();
    by_period.sort_by_key(|&(t, p)| (p, t));
    by_period
        .into_iter()
        .enumerate()
        .map(|(i, (t, _))| (t, i as u32))
        .collect()
}

impl Scheduler for FixedPriority {
    fn on_ready(&mut self, task: TaskId, _now: Time) {
        let p = self.priority(task);
        self.ready.entry(p).or_default().push_back(task);
    }

    fn on_block(&mut self, task: TaskId, _now: Time) {
        self.queue_remove(task);
    }

    fn on_exit(&mut self, task: TaskId, _now: Time) {
        self.queue_remove(task);
    }

    fn charge(&mut self, _task: TaskId, _ran: Dur, _now: Time) {}

    fn pick(&mut self, _now: Time) -> Option<TaskId> {
        self.ready.values().next().and_then(|q| q.front().copied())
    }

    fn horizon(&self, _task: TaskId, _now: Time) -> Option<Dur> {
        None
    }

    fn next_timer(&self, _now: Time) -> Option<Time> {
        None
    }

    fn on_timer(&mut self, _now: Time) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: Time = Time::ZERO;

    #[test]
    fn highest_priority_wins() {
        let mut fp = FixedPriority::new();
        fp.set_priority(TaskId(1), 10);
        fp.set_priority(TaskId(2), 5);
        fp.on_ready(TaskId(1), T0);
        fp.on_ready(TaskId(2), T0);
        assert_eq!(fp.pick(T0), Some(TaskId(2)));
        fp.on_block(TaskId(2), T0);
        assert_eq!(fp.pick(T0), Some(TaskId(1)));
    }

    #[test]
    fn fifo_within_priority() {
        let mut fp = FixedPriority::new();
        fp.set_priority(TaskId(1), 5);
        fp.set_priority(TaskId(2), 5);
        fp.on_ready(TaskId(2), T0);
        fp.on_ready(TaskId(1), T0);
        assert_eq!(fp.pick(T0), Some(TaskId(2)));
    }

    #[test]
    fn unregistered_tasks_get_default() {
        let fp = FixedPriority::new();
        assert_eq!(fp.priority(TaskId(9)), FixedPriority::DEFAULT_PRIO);
    }

    #[test]
    fn rate_monotonic_orders_by_period() {
        let prios = rate_monotonic(&[
            (TaskId(1), Dur::ms(30)),
            (TaskId(2), Dur::ms(15)),
            (TaskId(3), Dur::ms(20)),
        ]);
        let map: std::collections::HashMap<_, _> = prios.into_iter().collect();
        assert_eq!(map[&TaskId(2)], 0);
        assert_eq!(map[&TaskId(3)], 1);
        assert_eq!(map[&TaskId(1)], 2);
    }

    #[test]
    fn exit_removes_from_queue() {
        let mut fp = FixedPriority::new();
        fp.on_ready(TaskId(1), T0);
        fp.on_exit(TaskId(1), T0);
        assert_eq!(fp.pick(T0), None);
    }
}
