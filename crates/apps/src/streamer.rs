//! A network media streamer: a soft-periodic legacy app whose releases
//! are paced by packet arrivals rather than a local timer, so its period
//! carries network jitter.
//!
//! This is the stress case for the period analyser the paper's multimedia
//! examples only brush against: the fundamental is smeared by arrival
//! jitter, and the controller must still recover a usable reservation
//! period. Marks `"<label>.frame"` like the other players.

use selftune_simcore::metrics::LazyKey;
use selftune_simcore::rng::Rng;
use selftune_simcore::syscall::SyscallNr;
use selftune_simcore::task::{Action, Blocking, TaskCtx, Workload};
use selftune_simcore::time::{Dur, Time};
use std::collections::VecDeque;

/// Streamer configuration.
#[derive(Clone, Debug)]
pub struct StreamerConfig {
    /// Metric-key prefix.
    pub label: String,
    /// Nominal packet/frame rate in Hz.
    pub rate_hz: f64,
    /// Standard deviation of the arrival jitter, as a fraction of the
    /// period (network-induced).
    pub jitter_frac: f64,
    /// Mean CPU cost to depacketise + decode one frame.
    pub decode: Dur,
    /// Relative noise on the decode cost.
    pub decode_noise: f64,
    /// Syscalls per frame (recvfrom + ioctl + clock reads).
    pub burst: u32,
}

impl StreamerConfig {
    /// A 30 fps RTP-style video stream with 10% arrival jitter.
    pub fn rtp_video_30fps() -> StreamerConfig {
        StreamerConfig {
            label: "stream".to_owned(),
            rate_hz: 30.0,
            jitter_frac: 0.10,
            decode: Dur::from_ms_f64(7.0),
            decode_noise: 0.15,
            burst: 8,
        }
    }

    /// Nominal period `1/rate`.
    pub fn period(&self) -> Dur {
        Dur::from_secs_f64(1.0 / self.rate_hz)
    }
}

/// The streamer workload: block on the socket until the (jittered) next
/// packet, receive, decode, display.
pub struct Streamer {
    cfg: StreamerConfig,
    rng: Rng,
    plan: VecDeque<Action>,
    next_nominal: Option<Time>,
    mark_pending: bool,
    frame_key: LazyKey,
}

impl Streamer {
    /// Creates a streamer with its own random stream.
    pub fn new(cfg: StreamerConfig, rng: Rng) -> Streamer {
        let frame_key = LazyKey::new(format!("{}.frame", cfg.label));
        Streamer {
            cfg,
            rng,
            plan: VecDeque::new(),
            next_nominal: None,
            mark_pending: false,
            frame_key,
        }
    }
}

impl Workload for Streamer {
    fn next(&mut self, ctx: &mut TaskCtx<'_>) -> Action {
        if let Some(a) = self.plan.pop_front() {
            return a;
        }
        if self.mark_pending {
            let k = self.frame_key.get(ctx.metrics);
            ctx.metrics.mark_k(k, ctx.now);
            self.mark_pending = false;
        }
        let period = self.cfg.period();
        // The packet arrival grid is the sender's clock (stable), each
        // arrival jittered around its grid point.
        let nominal = match self.next_nominal {
            None => ctx.now,
            Some(t) => t + period,
        };
        self.next_nominal = Some(nominal);
        let jitter = self
            .rng
            .normal(0.0, self.cfg.jitter_frac * period.as_secs_f64())
            .abs();
        let arrival = nominal + Dur::from_secs_f64(jitter);
        if arrival > ctx.now {
            // Blocked in recvfrom until the packet lands.
            self.plan.push_back(Action::Syscall {
                nr: SyscallNr::Recvfrom,
                kernel: SyscallNr::Recvfrom.default_cost(),
                block: Blocking::Until(arrival),
            });
        } else {
            // Packet already queued: non-blocking receive.
            self.plan.push_back(Action::syscall(SyscallNr::Recvfrom));
        }
        for _ in 0..self.cfg.burst {
            self.plan.push_back(Action::syscall(SyscallNr::Ioctl));
        }
        let cost = self.rng.normal_dur(
            self.cfg.decode,
            self.cfg.decode.mul_f64(self.cfg.decode_noise),
            Dur::us(50),
        );
        self.plan.push_back(Action::Compute(cost));
        self.plan.push_back(Action::syscall(SyscallNr::Writev));
        self.mark_pending = true;
        self.plan.pop_front().expect("plan is never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selftune_simcore::kernel::Kernel;
    use selftune_simcore::scheduler::RoundRobin;
    use selftune_simcore::stats::{mean, std_dev};
    use selftune_simcore::time::Time;

    #[test]
    fn long_run_rate_matches_nominal() {
        let mut k = Kernel::new(RoundRobin::new(Dur::ms(4)));
        let s = Streamer::new(StreamerConfig::rtp_video_30fps(), Rng::new(11));
        k.spawn("stream", Box::new(s));
        k.run_until(Time::ZERO + Dur::secs(5));
        let ift = k.metrics().inter_mark_times_ms("stream.frame");
        assert!(ift.len() > 130);
        let m = mean(&ift);
        assert!((m - 1000.0 / 30.0).abs() < 0.5, "mean IFT {m}");
        // Jitter shows: per-frame IFTs vary by several ms.
        assert!(std_dev(&ift) > 1.0, "sd {}", std_dev(&ift));
    }

    #[test]
    fn period_is_detectable_despite_jitter() {
        use selftune_simcore::kernel::SyscallHook;
        // Collect entry times through a minimal inline hook.
        struct Collect(std::rc::Rc<std::cell::RefCell<Vec<f64>>>);
        impl SyscallHook for Collect {
            fn on_enter(
                &mut self,
                _t: selftune_simcore::task::TaskId,
                _nr: SyscallNr,
                now: Time,
            ) -> Dur {
                self.0.borrow_mut().push(now.as_secs_f64());
                Dur::ZERO
            }
            fn on_exit(
                &mut self,
                _t: selftune_simcore::task::TaskId,
                _nr: SyscallNr,
                _now: Time,
            ) -> Dur {
                Dur::ZERO
            }
        }
        let times = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut k = Kernel::new(RoundRobin::new(Dur::ms(4)));
        k.install_hook(Box::new(Collect(std::rc::Rc::clone(&times))));
        let s = Streamer::new(StreamerConfig::rtp_video_30fps(), Rng::new(11));
        k.spawn("stream", Box::new(s));
        k.run_until(Time::ZERO + Dur::secs(3));

        let events = times.borrow().clone();
        let spec = selftune_spectrum::amplitude_spectrum(
            &events,
            selftune_spectrum::SpectrumConfig::default(),
        );
        let f = selftune_spectrum::detect(&spec, &selftune_spectrum::PeakConfig::default())
            .detection
            .frequency()
            .expect("detected");
        assert!((f - 30.0).abs() < 0.5, "detected {f} Hz under jitter");
    }
}
