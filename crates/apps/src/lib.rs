//! # selftune-apps
//!
//! Generative models of the legacy applications the paper evaluates on:
//!
//! * [`media`] — `mplayer` playing a 25 fps movie (GOP-shaped decode
//!   costs, burst syscalls at job boundaries, frame-display marks) and an
//!   mp3 stream at 32.5 jobs/s (Figures 5, 10–14; Tables 2–3).
//! * [`transcode`] — the CPU-bound `ffmpeg` transcode used to measure
//!   tracer overhead (Table 1).
//! * [`synthetic`] — periodic RT load generators (Table 2's background
//!   reservations), CPU hogs, and aperiodic workloads for the analyser's
//!   non-periodic verdict.
//!
//! These are *black boxes* to the self-tuning machinery: they issue
//! computation and system calls, never scheduler API calls.

pub mod media;
pub mod streamer;
pub mod synthetic;
pub mod transcode;

pub use media::{CostModel, MediaConfig, MediaPlayer, SyscallMix};
pub use streamer::{Streamer, StreamerConfig};
pub use synthetic::{table2_background_tasks, Aperiodic, CpuHog, PeriodicRt};
pub use transcode::{TranscodeConfig, Transcoder};
