//! CPU-bound batch transcoder (the paper's `ffmpeg` stand-in).
//!
//! Table 1 measures tracer overhead as the wall-clock inflation of a video
//! transcode. The model: a fixed number of frames, each costing a noisy
//! slice of CPU split into chunks interleaved with `read`/`write` system
//! calls — so the run is CPU-bound but still issues a realistic stream of
//! syscalls for the tracer to intercept.
//!
//! On completion the workload marks `"<label>.done"`; experiments read the
//! mark's timestamp as the total transcoding time.

use selftune_simcore::metrics::LazyKey;
use selftune_simcore::rng::Rng;
use selftune_simcore::syscall::SyscallNr;
use selftune_simcore::task::{Action, TaskCtx, Workload};
use selftune_simcore::time::Dur;
use std::collections::VecDeque;

/// Transcoder configuration.
#[derive(Clone, Debug)]
pub struct TranscodeConfig {
    /// Metric-key prefix.
    pub label: String,
    /// Number of frames to transcode.
    pub frames: u32,
    /// Mean CPU cost per frame.
    pub per_frame: Dur,
    /// Relative Gaussian noise on the per-frame cost.
    pub noise_frac: f64,
    /// Syscalls issued per frame (alternating reads and writes).
    pub syscalls_per_frame: u32,
}

impl TranscodeConfig {
    /// The Table 1 workload: ≈ 21 s of CPU, ≈ 147k syscalls total
    /// (≈ 7k syscalls per CPU-second, a realistic I/O-chunked transcode).
    pub fn ffmpeg_table1() -> TranscodeConfig {
        TranscodeConfig {
            label: "ffmpeg".to_owned(),
            frames: 525,
            per_frame: Dur::ms(40),
            noise_frac: 0.10,
            syscalls_per_frame: 280,
        }
    }

    /// Total expected CPU work (excluding syscall bodies).
    pub fn total_work(&self) -> Dur {
        self.per_frame * u64::from(self.frames)
    }

    /// Total syscalls the run will issue.
    pub fn total_syscalls(&self) -> u64 {
        u64::from(self.frames) * u64::from(self.syscalls_per_frame)
    }
}

/// The transcoder workload.
pub struct Transcoder {
    cfg: TranscodeConfig,
    rng: Rng,
    plan: VecDeque<Action>,
    frames_left: u32,
    done_key: LazyKey,
    finished: bool,
}

impl Transcoder {
    /// Creates a transcoder with its own random stream.
    pub fn new(cfg: TranscodeConfig, rng: Rng) -> Transcoder {
        let done_key = LazyKey::new(format!("{}.done", cfg.label));
        let frames_left = cfg.frames;
        Transcoder {
            cfg,
            rng,
            plan: VecDeque::new(),
            frames_left,
            done_key,
            finished: false,
        }
    }

    fn build_frame(&mut self) {
        let n = self.cfg.syscalls_per_frame.max(1);
        let cost = self.rng.normal_dur(
            self.cfg.per_frame,
            self.cfg.per_frame.mul_f64(self.cfg.noise_frac),
            Dur::us(100),
        );
        let chunk = cost / u64::from(n);
        for i in 0..n {
            self.plan.push_back(Action::Compute(chunk));
            let nr = if i % 2 == 0 {
                SyscallNr::Read
            } else {
                SyscallNr::Write
            };
            self.plan.push_back(Action::syscall(nr));
        }
    }
}

impl Workload for Transcoder {
    fn next(&mut self, ctx: &mut TaskCtx<'_>) -> Action {
        if let Some(a) = self.plan.pop_front() {
            return a;
        }
        if self.frames_left == 0 {
            if !self.finished {
                self.finished = true;
                let k = self.done_key.get(ctx.metrics);
                ctx.metrics.mark_k(k, ctx.now);
            }
            return Action::Exit;
        }
        self.frames_left -= 1;
        self.build_frame();
        self.plan.pop_front().expect("frame plan is never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selftune_simcore::kernel::Kernel;
    use selftune_simcore::scheduler::RoundRobin;
    use selftune_simcore::task::TaskId;
    use selftune_simcore::time::Time;

    fn small_cfg() -> TranscodeConfig {
        TranscodeConfig {
            label: "t".to_owned(),
            frames: 10,
            per_frame: Dur::ms(5),
            noise_frac: 0.0,
            syscalls_per_frame: 10,
        }
    }

    #[test]
    fn runs_to_completion_and_marks_done() {
        let mut k = Kernel::new(RoundRobin::new(Dur::ms(4)));
        k.spawn("t", Box::new(Transcoder::new(small_cfg(), Rng::new(1))));
        k.run_until(Time::ZERO + Dur::secs(1));
        let done = k.metrics().marks("t.done");
        assert_eq!(done.len(), 1);
        // 10 frames × (5ms + 10 syscall bodies) ≈ 50ms + small kernel time.
        let t = done[0].as_ms_f64();
        assert!(t > 50.0 && t < 55.0, "done at {t}ms");
    }

    #[test]
    fn issues_expected_syscall_count() {
        let mut k = Kernel::new(RoundRobin::new(Dur::ms(4)));
        let cfg = small_cfg();
        let expected = cfg.total_syscalls();
        k.spawn("t", Box::new(Transcoder::new(cfg, Rng::new(1))));
        k.run_until(Time::ZERO + Dur::secs(1));
        assert_eq!(k.syscall_count(TaskId(0)), expected);
    }

    #[test]
    fn table1_config_magnitudes() {
        let cfg = TranscodeConfig::ffmpeg_table1();
        assert_eq!(cfg.total_work(), Dur::secs(21));
        assert_eq!(cfg.total_syscalls(), 147_000);
    }

    #[test]
    fn noise_shifts_total_time() {
        // Two seeds give different totals with noise enabled.
        let mut cfg = small_cfg();
        cfg.noise_frac = 0.2;
        let mut done = Vec::new();
        for seed in [1, 2] {
            let mut k = Kernel::new(RoundRobin::new(Dur::ms(4)));
            k.spawn("t", Box::new(Transcoder::new(cfg.clone(), Rng::new(seed))));
            k.run_until(Time::ZERO + Dur::secs(1));
            done.push(k.metrics().marks("t.done")[0]);
        }
        assert_ne!(done[0], done[1]);
    }
}
