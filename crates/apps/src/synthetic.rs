//! Synthetic workloads: periodic RT load generators, CPU hogs and
//! aperiodic (bursty) applications.
//!
//! The paper's Section 5.3 loads the system with "instances of a simple
//! real-time periodic application" at various utilisations; [`PeriodicRt`]
//! is that application. [`CpuHog`] saturates the fair class, and
//! [`Aperiodic`] exercises the analyser's non-periodic verdict.

use selftune_simcore::metrics::LazyKey;
use selftune_simcore::rng::Rng;
use selftune_simcore::syscall::SyscallNr;
use selftune_simcore::task::{Action, Blocking, TaskCtx, Workload};
use selftune_simcore::time::{Dur, Time};
use std::collections::VecDeque;

/// A periodic real-time task: compute `C` (± noise), then sleep until the
/// next multiple of `P` on an absolute timer.
///
/// Marks `"<label>.job"` at each job completion; experiments derive
/// response times and deadline misses from the marks.
pub struct PeriodicRt {
    label_key: LazyKey,
    wcet: Dur,
    period: Dur,
    noise_frac: f64,
    rng: Rng,
    next_release: Option<Time>,
    plan: VecDeque<Action>,
    mark_pending: bool,
}

impl PeriodicRt {
    /// Creates a periodic task with mean job cost `wcet` and period
    /// `period`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < wcet <= period`.
    pub fn new(label: &str, wcet: Dur, period: Dur, noise_frac: f64, rng: Rng) -> PeriodicRt {
        assert!(
            !wcet.is_zero() && wcet <= period,
            "invalid (C={wcet}, P={period})"
        );
        PeriodicRt {
            label_key: LazyKey::new(format!("{label}.job")),
            wcet,
            period,
            noise_frac,
            rng,
            next_release: None,
            plan: VecDeque::new(),
            mark_pending: false,
        }
    }

    /// Mean utilisation `C/P`.
    pub fn utilisation(&self) -> f64 {
        self.wcet.ratio(self.period)
    }
}

impl Workload for PeriodicRt {
    fn next(&mut self, ctx: &mut TaskCtx<'_>) -> Action {
        if let Some(a) = self.plan.pop_front() {
            return a;
        }
        if self.mark_pending {
            let k = self.label_key.get(ctx.metrics);
            ctx.metrics.mark_k(k, ctx.now);
            self.mark_pending = false;
        }
        let release = match self.next_release {
            None => ctx.now,
            Some(r) => {
                let mut r = r + self.period;
                // Skip releases we are hopelessly behind on (overload).
                while r + self.period <= ctx.now {
                    r += self.period;
                }
                r
            }
        };
        self.next_release = Some(release);
        if release > ctx.now {
            self.plan.push_back(Action::syscall_blocking(
                SyscallNr::ClockNanosleep,
                Blocking::Until(release),
            ));
        }
        // Job-boundary I/O issued regardless of lateness (a real RT app
        // reads its clock and writes its output even when backlogged) —
        // this is what keeps the task observable to the tracer under
        // overload.
        self.plan
            .push_back(Action::syscall(SyscallNr::ClockGettime));
        let cost = self
            .rng
            .normal_dur(self.wcet, self.wcet.mul_f64(self.noise_frac), Dur::us(10));
        self.plan.push_back(Action::Compute(cost));
        self.plan.push_back(Action::syscall(SyscallNr::Write));
        self.mark_pending = true;
        self.plan.pop_front().expect("plan is never empty")
    }
}

/// A pure CPU hog: computes forever in large chunks, never blocks.
pub struct CpuHog {
    chunk: Dur,
}

impl CpuHog {
    /// Creates a hog that computes in `chunk`-sized slices.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn new(chunk: Dur) -> CpuHog {
        assert!(!chunk.is_zero());
        CpuHog { chunk }
    }
}

impl Workload for CpuHog {
    fn next(&mut self, _ctx: &mut TaskCtx<'_>) -> Action {
        Action::Compute(self.chunk)
    }
}

/// An aperiodic application: exponential think times, then a burst of
/// syscalls and a random slice of computation. Its event train has no
/// dominant periodic component.
pub struct Aperiodic {
    rng: Rng,
    mean_gap: Dur,
    mean_work: Dur,
    burst: u32,
    plan: VecDeque<Action>,
}

impl Aperiodic {
    /// Creates an aperiodic workload with mean inter-burst gap `mean_gap`
    /// and mean per-burst computation `mean_work`.
    pub fn new(mean_gap: Dur, mean_work: Dur, burst: u32, rng: Rng) -> Aperiodic {
        assert!(!mean_gap.is_zero() && !mean_work.is_zero());
        Aperiodic {
            rng,
            mean_gap,
            mean_work,
            burst,
            plan: VecDeque::new(),
        }
    }
}

impl Workload for Aperiodic {
    fn next(&mut self, _ctx: &mut TaskCtx<'_>) -> Action {
        if let Some(a) = self.plan.pop_front() {
            return a;
        }
        let gap = Dur::from_secs_f64(self.rng.exp(1.0 / self.mean_gap.as_secs_f64()));
        self.plan.push_back(Action::SleepFor(gap.max(Dur::us(1))));
        for _ in 0..self.burst {
            self.plan.push_back(Action::syscall(SyscallNr::Read));
        }
        let work = Dur::from_secs_f64(self.rng.exp(1.0 / self.mean_work.as_secs_f64()));
        self.plan.push_back(Action::Compute(work.max(Dur::us(10))));
        self.plan.pop_front().expect("plan is never empty")
    }
}

/// Builds the paper's Table 2 background reservations for a cumulative
/// load level. Each reservation is worth 15% of the CPU (e.g.
/// 645 µs / 4300 µs); row `L%` of the table runs `L/15` instances, the
/// "new reservation" column being the one added last.
///
/// Returns `(wcet, period)` pairs; the job cost fills the whole budget.
///
/// # Panics
///
/// Panics if `load_percent` is not one of the table's rows
/// (0, 15, 30, 45, 60).
pub fn table2_background_tasks(load_percent: u32) -> Vec<(Dur, Dur)> {
    let rows = [
        (Dur::us(645), Dur::us(4_300)),
        (Dur::us(1_200), Dur::us(8_000)),
        (Dur::us(1_650), Dur::us(11_000)),
        (Dur::us(2_250), Dur::us(15_000)),
    ];
    match load_percent {
        0 | 15 | 30 | 45 | 60 => rows[..(load_percent / 15) as usize].to_vec(),
        other => panic!("no Table 2 row for {other}% load"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selftune_simcore::kernel::Kernel;
    use selftune_simcore::scheduler::RoundRobin;
    use selftune_simcore::stats::mean;
    use selftune_simcore::task::TaskId;

    #[test]
    fn periodic_jobs_land_on_schedule() {
        let mut k = Kernel::new(RoundRobin::new(Dur::ms(4)));
        k.spawn(
            "rt",
            Box::new(PeriodicRt::new(
                "rt",
                Dur::ms(2),
                Dur::ms(10),
                0.0,
                Rng::new(5),
            )),
        );
        k.run_until(Time::ZERO + Dur::secs(1));
        let gaps = k.metrics().inter_mark_times_ms("rt.job");
        assert!(gaps.len() > 90);
        assert!((mean(&gaps) - 10.0).abs() < 0.1, "mean {}", mean(&gaps));
    }

    #[test]
    fn periodic_utilisation_measured() {
        let mut k = Kernel::new(RoundRobin::new(Dur::ms(4)));
        let w = PeriodicRt::new("rt", Dur::ms(3), Dur::ms(10), 0.05, Rng::new(5));
        assert!((w.utilisation() - 0.3).abs() < 1e-12);
        k.spawn("rt", Box::new(w));
        k.run_until(Time::ZERO + Dur::secs(2));
        let frac = k.thread_time(TaskId(0)).ratio(Dur::secs(2));
        assert!((frac - 0.3).abs() < 0.03, "measured {frac}");
    }

    #[test]
    fn hog_eats_everything() {
        let mut k = Kernel::new(RoundRobin::new(Dur::ms(4)));
        k.spawn("hog", Box::new(CpuHog::new(Dur::ms(10))));
        k.run_until(Time::ZERO + Dur::secs(1));
        assert_eq!(k.thread_time(TaskId(0)), Dur::secs(1));
        assert_eq!(k.idle_time(), Dur::ZERO);
    }

    #[test]
    fn aperiodic_keeps_running_without_periodicity() {
        let mut k = Kernel::new(RoundRobin::new(Dur::ms(4)));
        k.spawn(
            "ap",
            Box::new(Aperiodic::new(Dur::ms(20), Dur::ms(3), 4, Rng::new(9))),
        );
        k.run_until(Time::ZERO + Dur::secs(2));
        let n = k.syscall_count(TaskId(0));
        assert!(n > 100, "only {n} syscalls");
        // Far from saturating the CPU.
        assert!(k.idle_time() > Dur::ms(500));
    }

    #[test]
    fn table2_rows_match_paper() {
        assert!(table2_background_tasks(0).is_empty());
        let (c, p) = table2_background_tasks(15)[0];
        assert_eq!((c, p), (Dur::us(645), Dur::us(4_300)));
        // The cumulative utilisation matches the claimed load level.
        for load in [15u32, 30, 45, 60] {
            let rows = table2_background_tasks(load);
            assert_eq!(rows.len() as u32, load / 15);
            let u: f64 = rows.iter().map(|&(c, p)| c.ratio(p)).sum();
            assert!((u - f64::from(load) / 100.0).abs() < 0.01, "{load}%: u={u}");
        }
    }

    #[test]
    #[should_panic(expected = "no Table 2 row")]
    fn unknown_load_panics() {
        let _ = table2_background_tasks(33);
    }
}
