//! Media-player workload models (the paper's `mplayer` stand-ins).
//!
//! A media player is modelled as a periodic job stream: each job wakes on
//! an absolute timer (`clock_nanosleep`), performs a burst of system calls
//! (demuxing reads, ALSA `ioctl`s, clock queries), decodes (pure CPU, with
//! an MPEG GOP cost pattern for video), performs the output burst ending in
//! the frame-display `writev`, then sleeps until the next release. This
//! reproduces the two observable signatures the paper's machinery relies
//! on: syscall bursts concentrated at job boundaries (Figure 5) and a
//! GOP-shaped execution-time profile (Section 4.4, remark 1).
//!
//! Timing marks: on each displayed frame the workload marks
//! `"<label>.frame"`, from which experiments compute inter-frame times; the
//! counter `"<label>.dropped"` counts frames skipped under starvation.

use selftune_simcore::metrics::LazyKey;
use selftune_simcore::rng::Rng;
use selftune_simcore::syscall::SyscallNr;
use selftune_simcore::task::{Action, Blocking, TaskCtx, Workload};
use selftune_simcore::time::{Dur, Time};
use std::collections::VecDeque;

/// Per-job decode cost model.
#[derive(Clone, Debug)]
pub enum CostModel {
    /// Near-constant cost (audio decoding).
    Constant {
        /// Mean cost per job.
        mean: Dur,
        /// Gaussian noise standard deviation.
        sd: Dur,
    },
    /// MPEG group-of-pictures pattern: per-frame multipliers applied to a
    /// base cost, cycled (e.g. `I B B P B B ...`).
    Gop {
        /// Base (P-frame) cost.
        base: Dur,
        /// Multipliers per GOP position.
        pattern: Vec<f64>,
        /// Relative Gaussian noise (fraction of the frame's own mean).
        noise_frac: f64,
    },
}

impl CostModel {
    fn sample(&self, frame: u64, rng: &mut Rng) -> Dur {
        match self {
            CostModel::Constant { mean, sd } => rng.normal_dur(*mean, *sd, Dur::us(50)),
            CostModel::Gop {
                base,
                pattern,
                noise_frac,
            } => {
                let mult = pattern[(frame as usize) % pattern.len()];
                let mean = base.mul_f64(mult);
                let sd = mean.mul_f64(*noise_frac);
                rng.normal_dur(mean, sd, Dur::us(50))
            }
        }
    }

    /// Long-run mean cost of one job.
    pub fn mean(&self) -> Dur {
        match self {
            CostModel::Constant { mean, .. } => *mean,
            CostModel::Gop { base, pattern, .. } => {
                let avg: f64 = pattern.iter().sum::<f64>() / pattern.len() as f64;
                base.mul_f64(avg)
            }
        }
    }
}

/// A weighted system-call mix for burst generation.
#[derive(Clone, Debug)]
pub struct SyscallMix {
    entries: Vec<(SyscallNr, f64)>,
    total: f64,
}

impl SyscallMix {
    /// Creates a mix from `(call, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or any weight is non-positive.
    pub fn new(entries: Vec<(SyscallNr, f64)>) -> SyscallMix {
        assert!(!entries.is_empty(), "empty syscall mix");
        assert!(entries.iter().all(|&(_, w)| w > 0.0), "non-positive weight");
        let total = entries.iter().map(|&(_, w)| w).sum();
        SyscallMix { entries, total }
    }

    /// The ALSA-heavy mix observed for `mplayer` in the paper's Figure 4:
    /// `ioctl` dominates, followed by clock reads and I/O.
    pub fn mplayer() -> SyscallMix {
        SyscallMix::new(vec![
            (SyscallNr::Ioctl, 55.0),
            (SyscallNr::Gettimeofday, 12.0),
            (SyscallNr::ClockGettime, 8.0),
            (SyscallNr::Read, 8.0),
            (SyscallNr::Writev, 5.0),
            (SyscallNr::Futex, 4.0),
            (SyscallNr::Select, 3.0),
            (SyscallNr::Munmap, 2.0),
            (SyscallNr::Mmap, 2.0),
            (SyscallNr::Lseek, 1.0),
        ])
    }

    fn sample(&self, rng: &mut Rng) -> SyscallNr {
        let mut x = rng.f64() * self.total;
        for &(nr, w) in &self.entries {
            if x < w {
                return nr;
            }
            x -= w;
        }
        self.entries.last().expect("non-empty mix").0
    }
}

/// Configuration of a media-player workload.
#[derive(Clone, Debug)]
pub struct MediaConfig {
    /// Metric-key prefix (e.g. `"mplayer"`).
    pub label: String,
    /// Job rate in Hz (25 for the paper's video, 32.5 for its mp3 runs).
    pub rate_hz: f64,
    /// Decode cost model.
    pub cost: CostModel,
    /// Syscalls in the job-start burst.
    pub start_burst: u32,
    /// Syscalls in the job-end burst (the last one is the display
    /// `writev`).
    pub end_burst: u32,
    /// Mean user-space gap between burst syscalls (exponential).
    pub intra_burst_gap: Dur,
    /// Syscall mix for burst calls.
    pub mix: SyscallMix,
    /// Drop frames when running later than this behind the release
    /// schedule; `None` plays every frame regardless of lateness.
    pub drop_lateness: Option<Dur>,
    /// Whether the output burst waits for the presentation timestamp
    /// (video A/V sync). Audio pipelines write to the device right after
    /// decoding instead, so their output burst drifts with load — the
    /// effect behind the paper's Table 2 degradation.
    pub pts_display: bool,
}

impl MediaConfig {
    /// The paper's main test subject: `mplayer` playing a 25 fps movie.
    pub fn mplayer_video_25fps() -> MediaConfig {
        MediaConfig {
            label: "mplayer".to_owned(),
            rate_hz: 25.0,
            cost: CostModel::Gop {
                base: Dur::from_ms_f64(12.0),
                // A 12-frame IBBPBB GOP. Decode-cost contrast is moderate
                // (I ≈ 1.75x a B frame): motion compensation makes P/B
                // decoding almost as expensive as intra frames.
                pattern: vec![1.4, 0.8, 0.8, 1.0, 0.8, 0.8, 1.0, 0.8, 0.8, 1.0, 0.8, 0.8],
                noise_frac: 0.12,
            },
            start_burst: 10,
            end_burst: 8,
            intra_burst_gap: Dur::us(60),
            mix: SyscallMix::mplayer(),
            drop_lateness: Some(Dur::ms(80)),
            pts_display: true,
        }
    }

    /// `mplayer` playing an mp3: 32.5 jobs/s (the paper's Figures 10–12).
    ///
    /// The decode cost reflects the paper's 800 MHz testbed (mp3 decoding
    /// plus resampling is a noticeable fraction of such a CPU), which is
    /// what makes the detection sensitive to background RT load (Table 2).
    pub fn mplayer_mp3() -> MediaConfig {
        MediaConfig {
            label: "mp3".to_owned(),
            rate_hz: 32.5,
            cost: CostModel::Constant {
                mean: Dur::from_ms_f64(12.0),
                sd: Dur::from_ms_f64(1.4),
            },
            start_burst: 9,
            end_burst: 6,
            intra_burst_gap: Dur::us(40),
            mix: SyscallMix::mplayer(),
            drop_lateness: None,
            // Audio pacing: the device write blocks until the ALSA buffer
            // grid — so the output burst is device-clock aligned while the
            // player keeps up, and free-runs once it falls behind
            // (buffer underrun), which is what degrades detection under
            // load (Table 2).
            pts_display: true,
        }
    }

    /// The job period `1/rate`.
    pub fn period(&self) -> Dur {
        Dur::from_secs_f64(1.0 / self.rate_hz)
    }

    /// Long-run CPU utilisation of the player (decode only; burst syscall
    /// costs add a little on top).
    pub fn utilisation(&self) -> f64 {
        self.cost.mean().ratio(self.period())
    }
}

/// The media-player workload.
pub struct MediaPlayer {
    cfg: MediaConfig,
    rng: Rng,
    plan: VecDeque<Action>,
    frame: u64,
    next_release: Option<Time>,
    mark_pending: bool,
    frame_key: LazyKey,
    dropped_key: LazyKey,
}

impl MediaPlayer {
    /// Creates a player with its own random stream.
    pub fn new(cfg: MediaConfig, rng: Rng) -> MediaPlayer {
        let frame_key = LazyKey::new(format!("{}.frame", cfg.label));
        let dropped_key = LazyKey::new(format!("{}.dropped", cfg.label));
        MediaPlayer {
            cfg,
            rng,
            plan: VecDeque::new(),
            frame: 0,
            next_release: None,
            mark_pending: false,
            frame_key,
            dropped_key,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MediaConfig {
        &self.cfg
    }

    fn push_burst(&mut self, count: u32, display_last: bool) {
        for i in 0..count {
            let gap = Dur::from_secs_f64(
                self.rng
                    .exp(1.0 / self.cfg.intra_burst_gap.as_secs_f64().max(1e-9)),
            );
            self.plan.push_back(Action::Compute(gap));
            let nr = if display_last && i + 1 == count {
                SyscallNr::Writev
            } else {
                self.cfg.mix.sample(&mut self.rng)
            };
            self.plan.push_back(Action::syscall(nr));
        }
    }

    fn build_frame(&mut self, ctx: &mut TaskCtx<'_>) {
        let period = self.cfg.period();
        let release = match self.next_release {
            None => ctx.now,
            Some(r) => {
                let mut r = r + period;
                if let Some(lateness) = self.cfg.drop_lateness {
                    while r + lateness <= ctx.now {
                        r += period;
                        self.frame += 1;
                        let k = self.dropped_key.get(ctx.metrics);
                        ctx.metrics.add_k(k, 1);
                    }
                }
                r
            }
        };
        self.next_release = Some(release);
        if release > ctx.now {
            // Timer-driven release through a traced absolute sleep.
            self.plan.push_back(Action::syscall_blocking(
                SyscallNr::ClockNanosleep,
                Blocking::Until(release),
            ));
        }
        self.push_burst(self.cfg.start_burst, false);
        let decode = self.cfg.cost.sample(self.frame, &mut self.rng);
        self.plan.push_back(Action::Compute(decode));
        if self.cfg.pts_display {
            // A/V sync: the frame is displayed at its presentation
            // timestamp, one period after release (a non-blocking no-op if
            // decoding already overran the PTS).
            self.plan.push_back(Action::syscall_blocking(
                SyscallNr::ClockNanosleep,
                Blocking::Until(release + period),
            ));
        }
        self.push_burst(self.cfg.end_burst, true);
        self.frame += 1;
        self.mark_pending = true;
    }
}

impl Workload for MediaPlayer {
    fn next(&mut self, ctx: &mut TaskCtx<'_>) -> Action {
        if let Some(a) = self.plan.pop_front() {
            return a;
        }
        if self.mark_pending {
            // The previous frame's display syscall just completed.
            let k = self.frame_key.get(ctx.metrics);
            ctx.metrics.mark_k(k, ctx.now);
            self.mark_pending = false;
        }
        self.build_frame(ctx);
        self.plan.pop_front().expect("frame plan is never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selftune_simcore::kernel::Kernel;
    use selftune_simcore::scheduler::RoundRobin;
    use selftune_simcore::stats::{mean, std_dev};

    fn run_player(cfg: MediaConfig, secs: u64) -> Kernel<RoundRobin> {
        let mut k = Kernel::new(RoundRobin::new(Dur::ms(4)));
        let player = MediaPlayer::new(cfg, Rng::new(42));
        k.spawn("player", Box::new(player));
        k.run_until(Time::ZERO + Dur::secs(secs));
        k
    }

    #[test]
    fn unloaded_video_hits_its_frame_rate() {
        let k = run_player(MediaConfig::mplayer_video_25fps(), 4);
        let ift = k.metrics().inter_mark_times_ms("mplayer.frame");
        assert!(ift.len() > 80, "only {} frames", ift.len());
        let m = mean(&ift);
        assert!((m - 40.0).abs() < 1.0, "mean IFT {m}");
        // Unloaded: very regular.
        assert!(std_dev(&ift) < 5.0, "sd {}", std_dev(&ift));
        assert_eq!(k.metrics().counter("mplayer.dropped"), 0);
    }

    #[test]
    fn mp3_run_rate_is_32_5hz() {
        let k = run_player(MediaConfig::mplayer_mp3(), 4);
        let ift = k.metrics().inter_mark_times_ms("mp3.frame");
        let m = mean(&ift);
        assert!((m - 1000.0 / 32.5).abs() < 0.5, "mean IFT {m}");
    }

    #[test]
    fn utilisation_is_moderate() {
        let cfg = MediaConfig::mplayer_video_25fps();
        let u = cfg.utilisation();
        assert!(u > 0.15 && u < 0.45, "u = {u}");
        let k = run_player(cfg, 4);
        let exec = k.thread_time(selftune_simcore::task::TaskId(0));
        let frac = exec.ratio(Dur::secs(4));
        assert!(frac > 0.15 && frac < 0.45, "measured {frac}");
    }

    #[test]
    fn gop_pattern_creates_cost_variance() {
        let cfg = MediaConfig::mplayer_video_25fps();
        let mut rng = Rng::new(7);
        let costs: Vec<f64> = (0..120)
            .map(|f| cfg.cost.sample(f, &mut rng).as_ms_f64())
            .collect();
        // I frames are clearly more expensive than B frames.
        let max = costs.iter().copied().fold(0.0_f64, f64::max);
        let min = costs.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max / min > 2.0, "max {max} min {min}");
    }

    #[test]
    fn cost_model_mean_matches_pattern() {
        let cost = CostModel::Gop {
            base: Dur::ms(10),
            pattern: vec![2.0, 1.0, 1.0],
            noise_frac: 0.0,
        };
        assert_eq!(cost.mean(), Dur::from_ms_f64(10.0 * 4.0 / 3.0));
    }

    #[test]
    fn mix_is_ioctl_dominated() {
        let mix = SyscallMix::mplayer();
        let mut rng = Rng::new(3);
        let mut ioctl = 0;
        for _ in 0..10_000 {
            if mix.sample(&mut rng) == SyscallNr::Ioctl {
                ioctl += 1;
            }
        }
        assert!(ioctl > 4_500, "ioctl {ioctl}/10000");
    }

    #[test]
    fn syscalls_cluster_at_job_boundaries() {
        let cfg = MediaConfig::mplayer_mp3();
        let period_ms = cfg.period().as_ms_f64();
        let k = run_player(cfg, 2);
        // The player's own activity alternates bursts and silence: verify
        // the task made roughly (start+end+1) syscalls per job.
        let jobs = k.metrics().marks("mp3.frame").len() as u64;
        let per_job = k.syscall_count(selftune_simcore::task::TaskId(0)) / jobs.max(1);
        assert!(
            (14..=18).contains(&per_job),
            "{per_job} syscalls/job (period {period_ms}ms)"
        );
    }

    #[test]
    #[should_panic(expected = "empty syscall mix")]
    fn empty_mix_panics() {
        let _ = SyscallMix::new(vec![]);
    }
}
