//! Property-based tests for the replication stream.
//!
//! One invariant, stated twice:
//!
//! * **No silent divergence** — whatever a faulty transport does to the
//!   chunk stream (drop, duplicate, reorder, truncate mid-frame, or all
//!   at once), every fault the follower sees surfaces as a *named*
//!   [`StreamError`]; a fault never corrupts the replica. After one
//!   clean retransmission of the suffix the follower is missing
//!   (`Shipper::frames_from`), the replica's final aggregates equal the
//!   leader's byte for byte.
//! * **Checkpoint resume converges** — a brand-new follower attached
//!   from whatever checkpoint the faulty pass managed to verify, fed the
//!   retained frames from that point, converges to the same bytes.
//!
//! The leader run is fault-independent, so it is executed once and
//! shared across cases; each case only varies the fault pattern.

use std::sync::OnceLock;

use proptest::prelude::*;
use selftune_cluster::prelude::*;
use selftune_distrib::prelude::*;

/// Diurnal wave + flash crowd with all three control planes on, small
/// enough to mirror at property-test case counts.
fn composed_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::diurnal_demo(3, 6)
        .with_rebalance(ScenarioSpec::diurnal_rebalance())
        .with_node_share(ScenarioSpec::diurnal_node_share());
    for vm in &mut spec.vms {
        vm.elastic = true;
    }
    spec
}

struct LeaderRun {
    summary: String,
    shipper: Shipper<ChannelTransport>,
    chunks: Vec<Vec<u8>>,
}

/// The shared leader run: shipped once with checkpoints every 2 epochs.
fn leader() -> &'static LeaderRun {
    static RUN: OnceLock<LeaderRun> = OnceLock::new();
    RUN.get_or_init(|| {
        let spec = composed_spec();
        let (tx, mut rx) = ChannelTransport::pair();
        let mut shipper = Shipper::new(tx, &spec, 42, 2, Some(2));
        let metrics = ClusterRunner::new(2).run_logged_with(&spec, 42, &mut shipper);
        let chunks = std::iter::from_fn(|| rx.recv()).collect();
        LeaderRun {
            summary: metrics.summary_csv(),
            shipper,
            chunks,
        }
    })
}

/// Replays the leader's chunk stream through a fault-injecting transport
/// chain and returns what comes out the far end.
fn faulted_stream(
    seed: u64,
    drop_rate: f64,
    dup_rate: f64,
    swap_rate: f64,
    cut_rate: f64,
) -> Vec<Vec<u8>> {
    let (tx, mut rx) = ChannelTransport::pair();
    let lossy = LossyTransport::new(tx, seed, drop_rate);
    let dup = DuplicatingTransport::new(lossy, seed.wrapping_add(1), dup_rate);
    let cut = TruncatingTransport::new(dup, seed.wrapping_add(2), cut_rate);
    let mut reorder = ReorderTransport::new(cut, seed.wrapping_add(3), swap_rate);
    for chunk in &leader().chunks {
        reorder.send(chunk.clone());
    }
    std::iter::from_fn(|| rx.recv()).collect()
}

/// Feeds chunks, asserting every rejection is a named *transport* fault —
/// a protocol violation or divergence here would mean a fault corrupted
/// the replica instead of being caught.
fn feed_all(follower: &mut Follower, chunks: &[Vec<u8>]) {
    for chunk in chunks {
        match follower.feed(chunk) {
            Ok(_) => {}
            Err(StreamError::Frame(_))
            | Err(StreamError::Gap { .. })
            | Err(StreamError::Duplicate { .. }) => {}
            Err(e) => panic!("transport fault surfaced as {e} — replica state was corrupted"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn faults_are_named_and_retransmission_converges(
        seed in 0u64..1_000,
        drop_rate in 0.0f64..0.4,
        dup_rate in 0.0f64..0.4,
        swap_rate in 0.0f64..0.4,
        cut_rate in 0.0f64..0.4,
        threads in 1usize..4,
    ) {
        let run = leader();
        let faulty = faulted_stream(seed, drop_rate, dup_rate, swap_rate, cut_rate);
        let mut follower = Follower::new(threads);
        feed_all(&mut follower, &faulty);

        // The replica is either already complete or cleanly resumable:
        // one retransmission of the missing suffix finishes the stream.
        if follower.finale().is_none() {
            let resume_from = follower.expected_seq();
            for chunk in run.shipper.frames_from(resume_from) {
                follower
                    .feed(chunk)
                    .unwrap_or_else(|e| {
                        panic!("clean retransmission from seq {resume_from} rejected: {e}")
                    });
            }
        }
        let finale = follower.finale().expect("stream complete after retransmission");
        prop_assert_eq!(
            &finale.summary_csv(),
            &run.summary,
            "replica diverged from the leader after faults + retransmission"
        );
        // Bookkeeping is consistent: everything the transport mangled
        // was counted, and the happy path applied every frame once.
        let stats = follower.stats();
        prop_assert_eq!(stats.applied, run.shipper.progress().frames);
        prop_assert_eq!(stats.divergences, 0);
        let lag = follower.lag(&run.shipper.progress());
        prop_assert_eq!((lag.epochs, lag.records, lag.frames), (0, 0, 0));
    }

    #[test]
    fn checkpoint_resume_converges_after_faults(
        seed in 0u64..1_000,
        drop_rate in 0.0f64..0.3,
        cut_rate in 0.0f64..0.3,
        threads in 1usize..4,
    ) {
        let run = leader();
        // A lossy first pass: whatever checkpoint it verifies becomes the
        // durable resume point.
        let faulty = faulted_stream(seed, drop_rate, 0.0, 0.0, cut_rate);
        let mut first = Follower::new(threads);
        feed_all(&mut first, &faulty);
        // When the faults ate every checkpoint frame there is nothing to
        // resume from; the retransmission property above covers that.
        prop_assume!(first.last_checkpoint().is_some());
        // Durability round-trip, then attach a fresh follower and replay
        // only the retained suffix.
        let text = first.last_checkpoint().expect("checked").to_text();
        let ckpt = Checkpoint::from_text(&text).expect("checkpoint text parses");
        let mut joiner =
            Follower::from_checkpoint(&ckpt, threads).expect("checkpoint verifies");
        for chunk in run.shipper.frames_from(ckpt.next_seq) {
            joiner
                .feed(chunk)
                .unwrap_or_else(|e| panic!("resume feed rejected: {e}"));
        }
        prop_assert_eq!(
            &joiner.finale().expect("resumed stream completes").summary_csv(),
            &run.summary,
            "checkpoint-resumed replica diverged from the leader"
        );
    }
}
