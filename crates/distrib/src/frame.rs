//! Wire framing for the replication stream.
//!
//! One frame carries one protocol message as a length-prefixed,
//! CRC-checked binary chunk:
//!
//! ```text
//!   ┌───────┬─────────┬────────┬─────────┬─────────────┬─────────┐
//!   │ magic │ seq     │ kind   │ len     │ payload     │ crc32   │
//!   │ SJD1  │ u64 LE  │ u8     │ u32 LE  │ len bytes   │ u32 LE  │
//!   └───────┴─────────┴────────┴─────────┴─────────────┴─────────┘
//! ```
//!
//! The CRC (IEEE 802.3, reflected polynomial `0xEDB8_8320`) covers
//! everything before it, so a chunk truncated mid-frame, a flipped bit
//! in the payload and a corrupted header are all rejected with a named
//! [`FrameError`] — never parsed as a shorter-but-valid frame. Payloads
//! are the journal crate's line-oriented text (`key = value` headers
//! plus one decision record per line), so a captured stream is
//! greppable with the same eyes as a journal file.

use std::fmt;

/// The four magic bytes every frame starts with ("selftune journal
/// decision", wire format 1).
pub const MAGIC: [u8; 4] = *b"SJD1";

/// Fixed bytes before the payload: magic + seq + kind + len.
const HEADER_LEN: usize = 4 + 8 + 1 + 4;

/// Bytes of the trailing checksum.
const CRC_LEN: usize = 4;

/// CRC-32 (IEEE 802.3), bitwise, reflected polynomial `0xEDB8_8320`.
/// Hand-rolled so the wire format has zero dependencies.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a 64-bit hash — the cheap content fingerprint checkpoints carry
/// alongside the full summary text (a fast first-pass divergence check
/// before the byte-for-byte comparison).
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// What one frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Stream header: format version, seed, leader thread count,
    /// checkpoint cadence and the full scenario text. Always `seq = 0`.
    Hello = 0,
    /// The plan-time decisions: admission statistics plus every
    /// task/VM admission record. Shipped up front so a follower holds a
    /// complete placement pin table at *any* later cut point.
    Plan = 1,
    /// One epoch's decision batch, in canonical order within the batch.
    Records = 2,
    /// A verification point: cursor epoch, instant, summary hash and the
    /// leader's full interim `summary_csv` at that boundary.
    Checkpoint = 3,
    /// End of stream: the leader's final `summary_csv`.
    Finish = 4,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<FrameKind> {
        match b {
            0 => Some(FrameKind::Hello),
            1 => Some(FrameKind::Plan),
            2 => Some(FrameKind::Records),
            3 => Some(FrameKind::Checkpoint),
            4 => Some(FrameKind::Finish),
            _ => None,
        }
    }
}

/// Why a chunk failed to decode as a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The chunk does not start with [`MAGIC`].
    BadMagic,
    /// The chunk is shorter than its header + declared payload + CRC
    /// (truncated mid-frame), or longer (two frames glued together).
    BadLength {
        /// Bytes the header promised.
        want: usize,
        /// Bytes the chunk actually holds.
        got: usize,
    },
    /// The trailing checksum does not match the content.
    BadCrc {
        /// Checksum recomputed over the received bytes.
        want: u32,
        /// Checksum the chunk carried.
        got: u32,
    },
    /// Unknown frame kind byte.
    BadKind(u8),
    /// The payload is not valid UTF-8 text.
    BadPayload(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic (not a SJD1 chunk)"),
            FrameError::BadLength { want, got } => {
                write!(
                    f,
                    "bad frame length: header promises {want} bytes, chunk has {got}"
                )
            }
            FrameError::BadCrc { want, got } => {
                write!(
                    f,
                    "frame checksum mismatch: computed {want:#010x}, carried {got:#010x}"
                )
            }
            FrameError::BadKind(b) => write!(f, "unknown frame kind byte {b}"),
            FrameError::BadPayload(e) => write!(f, "bad frame payload: {e}"),
        }
    }
}

/// One decoded replication frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Position in the stream; the shipper numbers from 0 with no gaps.
    pub seq: u64,
    /// What the payload is.
    pub kind: FrameKind,
    /// Line-oriented text payload (journal codec style).
    pub payload: String,
}

impl Frame {
    /// Encodes the frame into one self-checking chunk.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.payload.as_bytes();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CRC_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.push(self.kind as u8);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes one chunk, rejecting truncation, corruption and unknown
    /// kinds with a named error.
    pub fn decode(chunk: &[u8]) -> Result<Frame, FrameError> {
        if chunk.len() < 4 || chunk[..4] != MAGIC {
            return Err(FrameError::BadMagic);
        }
        if chunk.len() < HEADER_LEN + CRC_LEN {
            return Err(FrameError::BadLength {
                want: HEADER_LEN + CRC_LEN,
                got: chunk.len(),
            });
        }
        let seq = u64::from_le_bytes(chunk[4..12].try_into().expect("8 bytes"));
        let kind_byte = chunk[12];
        let len = u32::from_le_bytes(chunk[13..17].try_into().expect("4 bytes")) as usize;
        let want = HEADER_LEN + len + CRC_LEN;
        if chunk.len() != want {
            return Err(FrameError::BadLength {
                want,
                got: chunk.len(),
            });
        }
        let body = &chunk[..HEADER_LEN + len];
        let carried = u32::from_le_bytes(chunk[HEADER_LEN + len..].try_into().expect("4 bytes"));
        let computed = crc32(body);
        if carried != computed {
            return Err(FrameError::BadCrc {
                want: computed,
                got: carried,
            });
        }
        let kind = FrameKind::from_u8(kind_byte).ok_or(FrameError::BadKind(kind_byte))?;
        let payload = String::from_utf8(chunk[HEADER_LEN..HEADER_LEN + len].to_vec())
            .map_err(|e| FrameError::BadPayload(e.to_string()))?;
        Ok(Frame { seq, kind, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Frame {
        Frame {
            seq: 7,
            kind: FrameKind::Records,
            payload: "epoch = 3\nat = 750000000\nkill = at=1 node=0 id=4\n".to_owned(),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv1a64_matches_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn encode_decode_round_trips() {
        let frame = demo();
        assert_eq!(Frame::decode(&frame.encode()).expect("decode"), frame);
        // Empty payloads are legal (an epoch with no decisions).
        let empty = Frame {
            seq: 0,
            kind: FrameKind::Hello,
            payload: String::new(),
        };
        assert_eq!(Frame::decode(&empty.encode()).expect("decode"), empty);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let chunk = demo().encode();
        for keep in 0..chunk.len() {
            let err = Frame::decode(&chunk[..keep]).expect_err("truncated chunk accepted");
            assert!(
                matches!(err, FrameError::BadMagic | FrameError::BadLength { .. }),
                "truncation at {keep} gave unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let chunk = demo().encode();
        for i in 0..chunk.len() {
            let mut bad = chunk.clone();
            bad[i] ^= 0x01;
            assert!(
                Frame::decode(&bad).is_err(),
                "bit flip at byte {i} decoded cleanly"
            );
        }
    }

    #[test]
    fn glued_frames_and_bad_kinds_are_rejected() {
        let mut glued = demo().encode();
        glued.extend_from_slice(&demo().encode());
        assert!(matches!(
            Frame::decode(&glued),
            Err(FrameError::BadLength { .. })
        ));
        // A kind byte outside the enum fails *after* the CRC proves the
        // chunk intact (so the error names the real offence).
        let mut frame = demo();
        frame.payload.clear();
        let mut chunk = frame.encode();
        chunk[12] = 9;
        let crc = crc32(&chunk[..chunk.len() - 4]);
        let n = chunk.len();
        chunk[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(Frame::decode(&chunk), Err(FrameError::BadKind(9)));
    }
}
