//! Chunk transports: how encoded frames travel from leader to follower.
//!
//! The replication layer is transport-agnostic — anything that can move
//! opaque byte chunks in order *most of the time* works, because the
//! frame layer (seq numbers + CRC) catches what the transport drops,
//! duplicates, reorders or truncates. This module provides the
//! in-process [`ChannelTransport`] the experiments run over, plus
//! deterministic fault-injection wrappers ([`LossyTransport`],
//! [`DuplicatingTransport`], [`ReorderTransport`],
//! [`TruncatingTransport`]) that the property tests drive to prove every
//! stream fault surfaces as a named error, never as silent divergence.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use selftune_simcore::rng::Rng;

/// Moves opaque byte chunks from a sender to a receiver, preserving
/// chunk boundaries. `recv` returns `None` when nothing is pending.
pub trait Transport: Send {
    /// Hands one chunk to the transport.
    fn send(&mut self, chunk: Vec<u8>);
    /// Takes the next pending chunk, if any.
    fn recv(&mut self) -> Option<Vec<u8>>;
}

/// An in-process, unbounded, FIFO chunk queue. [`ChannelTransport::pair`]
/// returns the two ends: chunks sent on one end are received on the
/// other (full duplex; the replication stream only uses one direction).
pub struct ChannelTransport {
    out: Arc<Mutex<VecDeque<Vec<u8>>>>,
    inn: Arc<Mutex<VecDeque<Vec<u8>>>>,
}

impl ChannelTransport {
    /// Creates a connected pair of transport ends.
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let a = Arc::new(Mutex::new(VecDeque::new()));
        let b = Arc::new(Mutex::new(VecDeque::new()));
        (
            ChannelTransport {
                out: Arc::clone(&a),
                inn: Arc::clone(&b),
            },
            ChannelTransport { out: b, inn: a },
        )
    }

    /// Chunks queued towards the peer but not yet received — the wire
    /// depth, one ingredient of follower lag.
    pub fn in_flight(&self) -> usize {
        self.out.lock().expect("transport lock").len()
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, chunk: Vec<u8>) {
        self.out.lock().expect("transport lock").push_back(chunk);
    }

    fn recv(&mut self) -> Option<Vec<u8>> {
        self.inn.lock().expect("transport lock").pop_front()
    }
}

/// Drops a deterministic fraction of sent chunks (the follower sees a
/// sequence gap).
pub struct LossyTransport<T: Transport> {
    inner: T,
    rng: Rng,
    drop_rate: f64,
    /// Chunks silently dropped so far.
    pub dropped: usize,
}

impl<T: Transport> LossyTransport<T> {
    /// Wraps `inner`, dropping each sent chunk with probability
    /// `drop_rate`, deterministically from `seed`.
    pub fn new(inner: T, seed: u64, drop_rate: f64) -> LossyTransport<T> {
        LossyTransport {
            inner,
            rng: Rng::new(seed),
            drop_rate,
            dropped: 0,
        }
    }
}

impl<T: Transport> Transport for LossyTransport<T> {
    fn send(&mut self, chunk: Vec<u8>) {
        if self.rng.uniform(0.0, 1.0) < self.drop_rate {
            self.dropped += 1;
        } else {
            self.inner.send(chunk);
        }
    }

    fn recv(&mut self) -> Option<Vec<u8>> {
        self.inner.recv()
    }
}

/// Sends a deterministic fraction of chunks twice (the follower sees a
/// duplicate sequence number).
pub struct DuplicatingTransport<T: Transport> {
    inner: T,
    rng: Rng,
    dup_rate: f64,
    /// Chunks sent twice so far.
    pub duplicated: usize,
}

impl<T: Transport> DuplicatingTransport<T> {
    /// Wraps `inner`, re-sending each chunk with probability `dup_rate`.
    pub fn new(inner: T, seed: u64, dup_rate: f64) -> DuplicatingTransport<T> {
        DuplicatingTransport {
            inner,
            rng: Rng::new(seed),
            dup_rate,
            duplicated: 0,
        }
    }
}

impl<T: Transport> Transport for DuplicatingTransport<T> {
    fn send(&mut self, chunk: Vec<u8>) {
        if self.rng.uniform(0.0, 1.0) < self.dup_rate {
            self.duplicated += 1;
            self.inner.send(chunk.clone());
        }
        self.inner.send(chunk);
    }

    fn recv(&mut self) -> Option<Vec<u8>> {
        self.inner.recv()
    }
}

/// Holds back a deterministic fraction of chunks and emits them after
/// the next chunk (pairwise reordering: the follower sees a gap, then
/// the missing sequence number).
pub struct ReorderTransport<T: Transport> {
    inner: T,
    rng: Rng,
    swap_rate: f64,
    held: Option<Vec<u8>>,
    /// Adjacent pairs swapped so far.
    pub swapped: usize,
}

impl<T: Transport> ReorderTransport<T> {
    /// Wraps `inner`, swapping each adjacent chunk pair with probability
    /// `swap_rate`.
    pub fn new(inner: T, seed: u64, swap_rate: f64) -> ReorderTransport<T> {
        ReorderTransport {
            inner,
            rng: Rng::new(seed),
            swap_rate,
            held: None,
            swapped: 0,
        }
    }
}

impl<T: Transport> Transport for ReorderTransport<T> {
    fn send(&mut self, chunk: Vec<u8>) {
        if let Some(held) = self.held.take() {
            // Late release: the held chunk goes out *after* its successor.
            self.inner.send(chunk);
            self.inner.send(held);
            self.swapped += 1;
        } else if self.rng.uniform(0.0, 1.0) < self.swap_rate {
            self.held = Some(chunk);
        } else {
            self.inner.send(chunk);
        }
    }

    fn recv(&mut self) -> Option<Vec<u8>> {
        self.inner.recv()
    }
}

/// Cuts a deterministic fraction of chunks off mid-frame (the follower's
/// CRC/length check rejects them, which then shows up as a gap).
pub struct TruncatingTransport<T: Transport> {
    inner: T,
    rng: Rng,
    cut_rate: f64,
    /// Chunks truncated so far.
    pub truncated: usize,
}

impl<T: Transport> TruncatingTransport<T> {
    /// Wraps `inner`, truncating each chunk with probability `cut_rate`
    /// at a deterministic offset.
    pub fn new(inner: T, seed: u64, cut_rate: f64) -> TruncatingTransport<T> {
        TruncatingTransport {
            inner,
            rng: Rng::new(seed),
            cut_rate,
            truncated: 0,
        }
    }
}

impl<T: Transport> Transport for TruncatingTransport<T> {
    fn send(&mut self, mut chunk: Vec<u8>) {
        if self.rng.uniform(0.0, 1.0) < self.cut_rate && !chunk.is_empty() {
            let keep = (self.rng.uniform(0.0, 1.0) * chunk.len() as f64) as usize;
            chunk.truncate(keep.min(chunk.len() - 1));
            self.truncated += 1;
        }
        self.inner.send(chunk);
    }

    fn recv(&mut self) -> Option<Vec<u8>> {
        self.inner.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunks(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![i as u8; 8]).collect()
    }

    fn drain<T: Transport>(t: &mut T) -> Vec<Vec<u8>> {
        std::iter::from_fn(|| t.recv()).collect()
    }

    #[test]
    fn channel_pair_is_fifo_and_duplex() {
        let (mut a, mut b) = ChannelTransport::pair();
        for c in chunks(5) {
            a.send(c);
        }
        assert_eq!(a.in_flight(), 5);
        assert_eq!(drain(&mut b), chunks(5));
        assert_eq!(a.in_flight(), 0);
        b.send(vec![9]);
        assert_eq!(a.recv(), Some(vec![9]));
        assert_eq!(a.recv(), None);
    }

    #[test]
    fn fault_wrappers_are_deterministic_and_fault() {
        // Same seed → same fault pattern; each wrapper actually faults at
        // a high rate over enough chunks.
        let mut outcomes = Vec::new();
        for _ in 0..2 {
            let (tx, mut rx) = ChannelTransport::pair();
            let mut lossy = LossyTransport::new(tx, 11, 0.5);
            for c in chunks(64) {
                lossy.send(c);
            }
            outcomes.push((lossy.dropped, drain(&mut rx)));
        }
        assert_eq!(outcomes[0], outcomes[1], "lossy wrapper not deterministic");
        assert!(outcomes[0].0 > 0, "lossy wrapper never dropped");
        assert_eq!(outcomes[0].0 + outcomes[0].1.len(), 64);

        let (tx, mut rx) = ChannelTransport::pair();
        let mut dup = DuplicatingTransport::new(tx, 12, 0.5);
        for c in chunks(64) {
            dup.send(c);
        }
        assert!(dup.duplicated > 0);
        assert_eq!(drain(&mut rx).len(), 64 + dup.duplicated);

        let (tx, mut rx) = ChannelTransport::pair();
        let mut reorder = ReorderTransport::new(tx, 13, 0.5);
        for c in chunks(64) {
            reorder.send(c);
        }
        assert!(reorder.swapped > 0);
        let got = drain(&mut rx);
        let mut sorted = got.clone();
        sorted.sort();
        assert_ne!(got, sorted, "reorder wrapper kept the order");
        assert_eq!(sorted, chunks(64), "reorder wrapper lost or altered chunks");

        let (tx, mut rx) = ChannelTransport::pair();
        let mut cut = TruncatingTransport::new(tx, 14, 0.5);
        for c in chunks(64) {
            cut.send(c);
        }
        assert!(cut.truncated > 0);
        let got = drain(&mut rx);
        assert_eq!(got.len(), 64);
        assert!(
            got.iter().any(|c| c.len() < 8),
            "truncating wrapper never shortened a chunk"
        );
    }
}
