//! Durable replication checkpoints: everything a late joiner (or a
//! follower restarting after a crash) needs to attach to the stream
//! without replaying it from frame zero.
//!
//! A checkpoint embeds the journal *prefix* — scenario, seed, admission
//! statistics, every record applied so far and the leader's interim
//! summary at the cursor — plus the stream position (`next_seq`) to
//! resume receiving from. [`Checkpoint::verify`] re-executes the prefix
//! and byte-compares, so a corrupted or stale checkpoint is caught
//! before a follower trusts it.

use selftune_cluster::runner::plan_fleet_pinned;
use selftune_cluster::{AggregateMetrics, ClusterRunner};
use selftune_journal::record::Journal;
use selftune_simcore::time::Time;

use crate::frame::fnv1a64;

/// Version of the checkpoint text format this crate writes and reads.
pub const CHECKPOINT_VERSION: u32 = 1;

/// A verified point on the replication stream: the follower's state at
/// epoch boundary `cursor`, durable as text.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// The epoch boundary the checkpoint stands at: decisions of epochs
    /// `< cursor` are applied, epoch `cursor`'s decision has not run.
    pub cursor: usize,
    /// The virtual instant of the boundary.
    pub at: Time,
    /// FNV-1a 64 of the interim summary (fast staleness check).
    pub hash: u64,
    /// The next frame sequence number to expect after attaching.
    pub next_seq: u64,
    /// The journal prefix: scenario, seed, admission, records applied so
    /// far, and the leader's interim summary as the `summary` field.
    pub journal: Journal,
}

impl Checkpoint {
    /// Serialises the checkpoint (journal prefix embedded verbatim).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# selftune replication checkpoint\n");
        out.push_str(&format!("version = {CHECKPOINT_VERSION}\n"));
        out.push_str(&format!("cursor = {}\n", self.cursor));
        out.push_str(&format!("at = {}\n", self.at.as_ns()));
        out.push_str(&format!("hash = {:016x}\n", self.hash));
        out.push_str(&format!("next_seq = {}\n", self.next_seq));
        out.push_str("journal_begin\n");
        out.push_str(&self.journal.to_text());
        out.push_str("journal_end\n");
        out
    }

    /// Parses a checkpoint written by [`Checkpoint::to_text`].
    ///
    /// # Errors
    ///
    /// Names the first offence — missing headers, malformed values, an
    /// unterminated or invalid embedded journal — rather than defaulting.
    pub fn from_text(text: &str) -> Result<Checkpoint, String> {
        let mut cursor: Option<usize> = None;
        let mut at: Option<Time> = None;
        let mut hash: Option<u64> = None;
        let mut next_seq: Option<u64> = None;
        let mut journal: Option<Journal> = None;
        let mut version_seen = false;

        let mut lines = text.lines();
        while let Some(raw) = lines.next() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "journal_begin" {
                let mut block = String::new();
                let mut closed = false;
                for inner in lines.by_ref() {
                    if inner.trim() == "journal_end" {
                        closed = true;
                        break;
                    }
                    block.push_str(inner);
                    block.push('\n');
                }
                if !closed {
                    return Err("unterminated journal block (missing `journal_end`)".into());
                }
                journal = Some(Journal::from_text(&block)?);
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("expected `key = value`, got {line:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "version" => {
                    let v: u32 = value
                        .parse()
                        .map_err(|_| format!("bad checkpoint version: {value:?}"))?;
                    if v != CHECKPOINT_VERSION {
                        return Err(format!(
                            "unsupported checkpoint version {v} (this build reads {CHECKPOINT_VERSION})"
                        ));
                    }
                    version_seen = true;
                }
                "cursor" => {
                    cursor = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad cursor: {value:?}"))?,
                    )
                }
                "at" => {
                    at = Some(Time::from_ns(
                        value
                            .parse()
                            .map_err(|_| format!("bad instant (ns): {value:?}"))?,
                    ))
                }
                "hash" => {
                    hash = Some(
                        u64::from_str_radix(value, 16)
                            .map_err(|_| format!("bad hash (want hex): {value:?}"))?,
                    )
                }
                "next_seq" => {
                    next_seq = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad next_seq: {value:?}"))?,
                    )
                }
                other => return Err(format!("unknown checkpoint key: {other:?}")),
            }
        }
        if !version_seen {
            return Err("missing required key `version`".into());
        }
        Ok(Checkpoint {
            cursor: cursor.ok_or("missing required key `cursor`")?,
            at: at.ok_or("missing required key `at`")?,
            hash: hash.ok_or("missing required key `hash`")?,
            next_seq: next_seq.ok_or("missing required key `next_seq`")?,
            journal: journal.ok_or("missing journal block")?,
        })
    }

    /// Re-executes the embedded prefix on `threads` workers and
    /// byte-compares against the stored interim summary — a checkpoint
    /// that fails this must never be attached to.
    ///
    /// # Errors
    ///
    /// Names the first differing summary line, or the hash mismatch.
    pub fn verify(&self, threads: usize) -> Result<AggregateMetrics, String> {
        let journal = &self.journal;
        if fnv1a64(journal.summary.as_bytes()) != self.hash {
            return Err(format!(
                "checkpoint hash mismatch: header {:016x}, embedded summary hashes to {:016x}",
                self.hash,
                fnv1a64(journal.summary.as_bytes())
            ));
        }
        let plan = plan_fleet_pinned(&journal.scenario, journal.seed, &journal.pinned_plan());
        let mirror = ClusterRunner::new(threads).run_pinned_prefix(
            &journal.scenario,
            journal.seed,
            &plan,
            &journal.pinned_moves(None),
            self.cursor,
        );
        let ours = mirror.summary_csv();
        if ours == journal.summary {
            return Ok(mirror);
        }
        let diverged = journal
            .summary
            .lines()
            .zip(ours.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        Err(match diverged {
            Some((i, (rec, rep))) => format!(
                "checkpoint {} diverged at summary line {}: stored {rec:?}, mirrored {rep:?}",
                self.cursor,
                i + 1
            ),
            None => format!(
                "checkpoint {} diverged in summary length: stored {} lines, mirrored {}",
                self.cursor,
                journal.summary.lines().count(),
                ours.lines().count()
            ),
        })
    }
}
