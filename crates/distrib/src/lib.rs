//! # selftune-distrib
//!
//! Log-shipped fleet replication for the `selftune` reproduction of
//! *"Self-tuning Schedulers for Legacy Real-Time Applications"*
//! (EuroSys 2010): stream the decision journal to a hot-standby
//! follower while the leader runs, verify byte identity at checkpoints,
//! and promote the follower on leader death with zero decision loss.
//!
//! ## Architecture
//!
//! ```text
//!   leader                                      follower
//!   ClusterRunner::run_logged_with              Follower::feed
//!        │ JournalSink callbacks                     ▲
//!        ▼                                          │ chunks
//!   Shipper ──► Frame (seq, CRC32) ──► Transport ───┘
//!        │         Hello / Plan / Records /
//!        │         Checkpoint / Finish
//!        └─ retained frames ──► frames_from(seq)  (retransmission)
//!
//!   follower at Checkpoint(cursor):
//!     run_pinned_prefix(records so far, cursor) ══ leader interim bytes
//!   follower at leader death:
//!     promote() = received epochs pinned + live beyond
//!               ══ the uninterrupted run, byte for byte
//! ```
//!
//! * [`frame`] — the wire format: length-prefixed, CRC-checked chunks
//!   with journal-codec text payloads; truncation and corruption are
//!   named [`FrameError`]s, never silent.
//! * [`transport`] — the [`Transport`] trait, the in-process
//!   [`ChannelTransport`], and deterministic lossy / duplicating /
//!   reordering / truncating fault wrappers for the property tests.
//! * [`ship`] — the leader side: a [`JournalSink`](selftune_cluster::JournalSink)
//!   that frames each epoch's decision batch as it happens and retains
//!   sent frames for reconnect replay.
//! * [`follower`] — the standby: strict in-sequence apply, named
//!   [`StreamError`]s for every fault, checkpoint mirroring
//!   (byte-compared against the leader's interim summary), lag metrics,
//!   and [`Follower::promote`].
//! * [`checkpoint`] — durable [`Checkpoint`] text files a late joiner
//!   attaches from, self-verifying before any state is adopted.
//!
//! ## Why decisions, not state
//!
//! The stream carries the *decisions* (admissions, grants, migrations,
//! re-bounds) rather than node state. The simulation is deterministic
//! given those decisions, so the follower reconstructs bit-exact state
//! at any thread count by re-executing pinned to the stream — the same
//! property the journal's replay engine enforces, now incremental. A
//! promoted follower therefore continues the run as if the leader had
//! never died: no state transfer, no divergence window.
//!
//! ## Example
//!
//! ```
//! use selftune_cluster::prelude::*;
//! use selftune_distrib::prelude::*;
//!
//! let spec = ScenarioSpec::diurnal_demo(3, 6)
//!     .with_rebalance(ScenarioSpec::diurnal_rebalance());
//! let (tx, mut rx) = ChannelTransport::pair();
//! let mut shipper = Shipper::new(tx, &spec, 42, 2, Some(4));
//! let leader = ClusterRunner::new(2).run_logged_with(&spec, 42, &mut shipper);
//!
//! let mut follower = Follower::new(1);
//! while let Some(chunk) = rx.recv() {
//!     follower.feed(&chunk).expect("clean wire");
//! }
//! // The replica verified the full run byte for byte.
//! assert_eq!(
//!     follower.finale().expect("finished").summary_csv(),
//!     leader.summary_csv(),
//! );
//! ```

pub mod checkpoint;
pub mod follower;
pub mod frame;
pub mod ship;
pub mod transport;

/// Version of the wire protocol this crate speaks (the Hello frame
/// carries it; mismatches are rejected).
pub const WIRE_VERSION: u32 = 1;

pub use checkpoint::{Checkpoint, CHECKPOINT_VERSION};
pub use follower::{Applied, Follower, FollowerStats, Lag, StreamError};
pub use frame::{crc32, fnv1a64, Frame, FrameError, FrameKind};
pub use ship::{Shipper, ShipperProgress};
pub use transport::{
    ChannelTransport, DuplicatingTransport, LossyTransport, ReorderTransport, Transport,
    TruncatingTransport,
};

/// One-stop imports for replication experiments.
pub mod prelude {
    pub use crate::checkpoint::Checkpoint;
    pub use crate::follower::{Applied, Follower, FollowerStats, Lag, StreamError};
    pub use crate::frame::{Frame, FrameError, FrameKind};
    pub use crate::ship::{Shipper, ShipperProgress};
    pub use crate::transport::{
        ChannelTransport, DuplicatingTransport, LossyTransport, ReorderTransport, Transport,
        TruncatingTransport,
    };
    pub use crate::WIRE_VERSION;
}

#[cfg(test)]
mod tests {
    use selftune_cluster::prelude::*;

    use crate::follower::{Applied, Follower, StreamError};
    use crate::frame::{Frame, FrameKind};
    use crate::ship::Shipper;
    use crate::transport::{ChannelTransport, Transport};

    /// Diurnal wave + flash crowd with all three control planes on —
    /// the stream has admissions, grants, re-bounds and migrations.
    fn composed_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::diurnal_demo(4, 8)
            .with_rebalance(ScenarioSpec::diurnal_rebalance())
            .with_node_share(ScenarioSpec::diurnal_node_share());
        for vm in &mut spec.vms {
            vm.elastic = true;
        }
        spec
    }

    fn ship_run(
        spec: &ScenarioSpec,
        seed: u64,
        threads: usize,
        every: Option<usize>,
    ) -> (AggregateMetrics, Shipper<ChannelTransport>, Vec<Vec<u8>>) {
        let (tx, mut rx) = ChannelTransport::pair();
        let mut shipper = Shipper::new(tx, spec, seed, threads, every);
        let leader = ClusterRunner::new(threads).run_logged_with(spec, seed, &mut shipper);
        let chunks: Vec<Vec<u8>> = std::iter::from_fn(|| rx.recv()).collect();
        (leader, shipper, chunks)
    }

    #[test]
    fn clean_stream_replicates_byte_for_byte_with_checkpoints() {
        let spec = composed_spec();
        let (leader, shipper, chunks) = ship_run(&spec, 42, 2, Some(2));
        assert_eq!(chunks.len() as u64, shipper.progress().frames);
        assert!(shipper.progress().checkpoints >= 3, "too few checkpoints");

        // A follower on a *different* thread count mirrors exactly.
        let mut follower = Follower::new(3);
        let mut checkpoints = 0;
        for chunk in &chunks {
            if let Applied::Checkpoint { .. } =
                follower.feed(chunk).expect("clean stream must apply")
            {
                checkpoints += 1;
            }
        }
        assert_eq!(checkpoints, shipper.progress().checkpoints);
        assert_eq!(follower.stats().applied, shipper.progress().frames);
        assert_eq!(follower.stats().dropped, 0);
        assert_eq!(
            follower.finale().expect("finished").summary_csv(),
            leader.summary_csv(),
            "replica finale diverged from the leader"
        );
        // Caught up: zero lag against the leader's final position.
        let lag = follower.lag(&shipper.progress());
        assert_eq!((lag.epochs, lag.records, lag.frames), (0, 0, 0));
    }

    #[test]
    fn promotion_mid_stream_equals_the_uninterrupted_run() {
        let spec = composed_spec();
        let (leader, shipper, chunks) = ship_run(&spec, 42, 2, Some(2));
        // Kill the leader after the first few epoch batches: feed only a
        // prefix of the stream, then promote.
        for cut in [4usize, 7, 10] {
            let cut = cut.min(chunks.len() - 1);
            let mut follower = Follower::new(2);
            for chunk in &chunks[..cut] {
                follower.feed(chunk).expect("prefix applies");
            }
            assert!(follower.lag(&shipper.progress()).frames > 0);
            let promoted = follower.promote().expect("promotable");
            assert_eq!(
                promoted.summary_csv(),
                leader.summary_csv(),
                "promotion after {cut} frames diverged from the uninterrupted run"
            );
        }
    }

    #[test]
    fn tampered_records_surface_as_named_divergence_at_the_next_checkpoint() {
        let spec = composed_spec();
        let (_, _, chunks) = ship_run(&spec, 42, 2, Some(2));
        // Alter one *pinned decision* in a Records frame (valid CRC,
        // valid protocol — only the decision changes), so nothing but
        // checkpoint mirroring can catch it: the rebalance pass's failed
        // count, which the mirror pins and the summary reports.
        let mut tampered = None;
        for (i, chunk) in chunks.iter().enumerate() {
            let frame = Frame::decode(chunk).expect("clean chunk");
            if frame.kind != FrameKind::Records {
                continue;
            }
            if let Some(pos) = frame.payload.find(" failed=") {
                let digits_at = pos + " failed=".len();
                let digits: String = frame.payload[digits_at..]
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect();
                let bumped: u64 = digits.parse::<u64>().expect("failed count") + 1;
                let mut payload = frame.payload.clone();
                payload.replace_range(digits_at..digits_at + digits.len(), &bumped.to_string());
                tampered = Some((i, Frame { payload, ..frame }.encode()));
                break;
            }
        }
        let (i, bad) = tampered.expect("composed run should hold a rebalance record");
        let mut follower = Follower::new(2);
        let mut diverged = None;
        for (j, chunk) in chunks.iter().enumerate() {
            let chunk = if j == i { &bad } else { chunk };
            match follower.feed(chunk) {
                Ok(_) => {}
                Err(StreamError::Divergence(msg)) => {
                    diverged = Some(msg);
                    break;
                }
                Err(e) => panic!("expected divergence, got {e}"),
            }
        }
        let msg = diverged.expect("tampered decision must be caught at a checkpoint");
        assert!(
            msg.contains("checkpoint") || msg.contains("finish"),
            "divergence message should say where: {msg}"
        );
        assert_eq!(follower.stats().divergences, 1);
    }

    #[test]
    fn out_of_order_and_duplicate_chunks_are_named_and_state_preserving() {
        let spec = composed_spec();
        let (leader, _, chunks) = ship_run(&spec, 42, 2, None);
        let mut follower = Follower::new(1);
        follower.feed(&chunks[0]).expect("hello");
        // Skip ahead: gap named, nothing applied.
        assert!(matches!(
            follower.feed(&chunks[2]),
            Err(StreamError::Gap {
                expected: 1,
                got: 2
            })
        ));
        // Re-deliver the applied chunk: duplicate named.
        assert!(matches!(
            follower.feed(&chunks[0]),
            Err(StreamError::Duplicate {
                seq: 0,
                expected: 1
            })
        ));
        // Garbage: frame error named.
        assert!(matches!(
            follower.feed(b"not a frame"),
            Err(StreamError::Frame(_))
        ));
        // The stream still completes cleanly from where it stood — the
        // faults above left the replica untouched.
        for chunk in &chunks[1..] {
            follower.feed(chunk).expect("in-sequence after faults");
        }
        assert_eq!(
            follower.finale().expect("finished").summary_csv(),
            leader.summary_csv()
        );
        let stats = follower.stats();
        assert_eq!(stats.gaps, 1);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.dropped, 3);
        assert_eq!(
            stats.retried, 1,
            "chunk 2 was applied on its second attempt"
        );
    }

    #[test]
    fn late_joiner_attaches_from_a_checkpoint_and_converges() {
        let spec = composed_spec();
        let (leader, shipper, chunks) = ship_run(&spec, 42, 2, Some(2));
        // First follower consumes the stream until some checkpoint, then
        // "crashes", leaving only its durable checkpoint text behind.
        let mut first = Follower::new(2);
        let mut ckpt_text = None;
        for chunk in &chunks {
            if let Applied::Checkpoint { cursor } = first.feed(chunk).expect("applies") {
                if cursor >= 4 {
                    ckpt_text = Some(first.last_checkpoint().expect("stored").to_text());
                    break;
                }
            }
        }
        let text = ckpt_text.expect("stream should checkpoint past epoch 4");
        let parsed = crate::checkpoint::Checkpoint::from_text(&text).expect("parses");
        assert_eq!(parsed, *first.last_checkpoint().expect("stored"));

        // A brand-new follower attaches from the checkpoint and replays
        // only the retained suffix.
        let mut joiner = Follower::from_checkpoint(&parsed, 1).expect("checkpoint verifies");
        assert_eq!(joiner.expected_seq(), parsed.next_seq);
        for chunk in shipper.frames_from(parsed.next_seq) {
            joiner.feed(chunk).expect("suffix applies");
        }
        assert_eq!(
            joiner.finale().expect("finished").summary_csv(),
            leader.summary_csv(),
            "late joiner diverged from the leader"
        );
    }
}
