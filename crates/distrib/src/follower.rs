//! The hot-standby side: consume the replication stream, mirror the
//! leader's state, verify checkpoints byte for byte, and take over on
//! leader death.
//!
//! A [`Follower`] applies frames strictly in sequence. Every stream
//! fault is a *named* error — [`StreamError::Gap`] for lost chunks,
//! [`StreamError::Duplicate`] for re-deliveries, frame-level errors for
//! truncation and corruption, [`StreamError::Divergence`] when a
//! checkpoint mirror stops matching the leader's bytes. A faulted feed
//! leaves the follower's state untouched, so the leader can simply
//! retransmit from the follower's last good position
//! (`Shipper::frames_from`).
//!
//! Promotion ([`Follower::promote`]) re-executes the scenario with every
//! received epoch pinned and everything after the crash decided live —
//! because the journal pins *decisions*, not state, the promoted run is
//! byte-identical to what the leader would have produced had it kept
//! running through the received prefix.

use std::fmt;

use selftune_cluster::runner::plan_fleet_pinned;
use selftune_cluster::{AdmissionStats, AggregateMetrics, ClusterRunner, ScenarioSpec};
use selftune_journal::codec::record_from_line;
use selftune_journal::record::{sort_records, DecisionRecord, Journal};
use selftune_journal::replay::Replayer;
use selftune_simcore::metrics::{LazyKey, Metrics};
use selftune_simcore::time::Time;

use crate::checkpoint::Checkpoint;
use crate::frame::{fnv1a64, Frame, FrameError, FrameKind};
use crate::ship::ShipperProgress;
use crate::WIRE_VERSION;

/// Why a fed chunk was not applied.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamError {
    /// The chunk is not a valid frame (truncated, corrupt, unknown kind).
    Frame(FrameError),
    /// A sequence number was skipped — chunks were lost in transit.
    Gap {
        /// The next sequence number the follower needs.
        expected: u64,
        /// The sequence number that arrived instead.
        got: u64,
    },
    /// An already-applied sequence number arrived again.
    Duplicate {
        /// The re-delivered sequence number.
        seq: u64,
        /// The next sequence number the follower needs.
        expected: u64,
    },
    /// The frame arrived intact but violates the protocol state machine
    /// (e.g. records before the plan, a checkpoint at the wrong cursor).
    Protocol(String),
    /// The mirrored state stopped matching the leader's bytes; the
    /// message names the first mismatching summary line.
    Divergence(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Frame(e) => write!(f, "{e}"),
            StreamError::Gap { expected, got } => {
                write!(f, "stream gap: expected seq {expected}, got {got}")
            }
            StreamError::Duplicate { seq, expected } => {
                write!(f, "duplicate seq {seq} (next expected {expected})")
            }
            StreamError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            StreamError::Divergence(msg) => write!(f, "replica divergence: {msg}"),
        }
    }
}

/// What one successfully fed chunk did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Applied {
    /// Stream header accepted; the scenario is known.
    Hello,
    /// Plan-time decisions applied.
    Plan {
        /// Admission records in the frame.
        records: usize,
    },
    /// One epoch's decision batch applied.
    Epoch {
        /// The epoch index.
        epoch: usize,
        /// Records in the batch.
        records: usize,
    },
    /// A checkpoint arrived, the mirror matched, and it is now the
    /// follower's durable resume point.
    Checkpoint {
        /// The verified cursor.
        cursor: usize,
    },
    /// End of stream; the full replica verified byte-for-byte.
    Finish,
}

/// Stream counters — applied/dropped/retried chunks, faults by kind,
/// and replica progress.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FollowerStats {
    /// Chunks applied in sequence.
    pub applied: u64,
    /// Chunks rejected (bad frames, gaps, duplicates, protocol faults).
    pub dropped: u64,
    /// Rejections that were re-deliveries of applied chunks.
    pub duplicates: u64,
    /// Rejections that skipped ahead of the expected sequence number.
    pub gaps: u64,
    /// Chunks applied on a later attempt after first being gapped over.
    pub retried: u64,
    /// Checkpoint mirrors that failed the byte comparison.
    pub divergences: u64,
    /// Decision records applied.
    pub records: u64,
    /// Epoch batches applied.
    pub epochs: usize,
    /// Checkpoints verified.
    pub checkpoints: usize,
}

/// How far the follower trails the leader's stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Lag {
    /// Epoch batches the leader has shipped but the follower has not
    /// applied.
    pub epochs: usize,
    /// Decision records shipped but not applied.
    pub records: u64,
    /// Frames shipped but not applied.
    pub frames: u64,
}

/// A hot-standby replica of a leader's fleet run.
pub struct Follower {
    threads: usize,
    expected_seq: u64,
    gap_at: Option<u64>,
    scenario: Option<ScenarioSpec>,
    seed: u64,
    leader_threads: usize,
    checkpoint_every: Option<usize>,
    admission: Option<AdmissionStats>,
    records: Vec<DecisionRecord>,
    next_epoch: usize,
    last_checkpoint: Option<Checkpoint>,
    finale: Option<AggregateMetrics>,
    stats: FollowerStats,
    k_lag_epochs: LazyKey,
    k_lag_records: LazyKey,
    k_applied: LazyKey,
    k_dropped: LazyKey,
    k_retried: LazyKey,
}

impl Follower {
    /// A fresh follower that will mirror on `threads` worker threads
    /// (independent of the leader's thread count — byte identity is the
    /// whole point).
    pub fn new(threads: usize) -> Follower {
        Follower {
            threads: threads.max(1),
            expected_seq: 0,
            gap_at: None,
            scenario: None,
            seed: 0,
            leader_threads: 0,
            checkpoint_every: None,
            admission: None,
            records: Vec::new(),
            next_epoch: 0,
            last_checkpoint: None,
            finale: None,
            stats: FollowerStats::default(),
            k_lag_epochs: LazyKey::new("distrib.lag.epochs"),
            k_lag_records: LazyKey::new("distrib.lag.records"),
            k_applied: LazyKey::new("distrib.chunks.applied"),
            k_dropped: LazyKey::new("distrib.chunks.dropped"),
            k_retried: LazyKey::new("distrib.chunks.retried"),
        }
    }

    /// Attaches a late joiner from a durable checkpoint: the embedded
    /// prefix is verified (mirror re-executed and byte-compared) before
    /// any state is adopted.
    ///
    /// # Errors
    ///
    /// Propagates [`Checkpoint::verify`]'s named divergence.
    pub fn from_checkpoint(ckpt: &Checkpoint, threads: usize) -> Result<Follower, String> {
        ckpt.verify(threads)?;
        let mut f = Follower::new(threads);
        f.expected_seq = ckpt.next_seq;
        f.scenario = Some(ckpt.journal.scenario.clone());
        f.seed = ckpt.journal.seed;
        f.leader_threads = ckpt.journal.threads;
        f.admission = Some(ckpt.journal.admission);
        f.records = ckpt.journal.records.clone();
        f.next_epoch = ckpt.cursor;
        f.stats.records = ckpt.journal.records.len() as u64;
        f.stats.epochs = ckpt.cursor;
        f.last_checkpoint = Some(ckpt.clone());
        Ok(f)
    }

    /// Stream counters.
    pub fn stats(&self) -> FollowerStats {
        self.stats
    }

    /// The next frame sequence number the follower will accept.
    pub fn expected_seq(&self) -> u64 {
        self.expected_seq
    }

    /// Epoch batches applied so far (the replica's epoch cursor).
    pub fn epochs_applied(&self) -> usize {
        self.next_epoch
    }

    /// The follower's durable resume point, if a checkpoint has verified.
    pub fn last_checkpoint(&self) -> Option<&Checkpoint> {
        self.last_checkpoint.as_ref()
    }

    /// The verified final aggregates, once [`Applied::Finish`] has been
    /// returned.
    pub fn finale(&self) -> Option<&AggregateMetrics> {
        self.finale.as_ref()
    }

    /// How far this follower trails `leader`'s stream position.
    pub fn lag(&self, leader: &ShipperProgress) -> Lag {
        Lag {
            epochs: leader.epochs.saturating_sub(self.stats.epochs),
            records: leader.records.saturating_sub(self.stats.records),
            frames: leader.frames.saturating_sub(self.stats.applied),
        }
    }

    /// Samples lag and chunk counters into `metrics` under interned
    /// `distrib.*` keys (keys are resolved once and cached).
    pub fn observe_lag(&mut self, metrics: &mut Metrics, leader: &ShipperProgress, now: Time) {
        let lag = self.lag(leader);
        let k = self.k_lag_epochs.get(metrics);
        metrics.record_k(k, now, lag.epochs as f64);
        let k = self.k_lag_records.get(metrics);
        metrics.record_k(k, now, lag.records as f64);
        let k = self.k_applied.get(metrics);
        metrics.record_k(k, now, self.stats.applied as f64);
        let k = self.k_dropped.get(metrics);
        metrics.record_k(k, now, self.stats.dropped as f64);
        let k = self.k_retried.get(metrics);
        metrics.record_k(k, now, self.stats.retried as f64);
    }

    /// Feeds one transport chunk. Applies it if it is the next frame in
    /// sequence; otherwise reports the named fault and leaves the
    /// replica untouched (safe to retransmit and retry).
    ///
    /// # Errors
    ///
    /// [`StreamError`] naming the fault: frame-level corruption, a gap,
    /// a duplicate, a protocol violation, or replica divergence.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Applied, StreamError> {
        let frame = Frame::decode(chunk).map_err(|e| {
            self.stats.dropped += 1;
            StreamError::Frame(e)
        })?;
        if frame.seq != self.expected_seq {
            self.stats.dropped += 1;
            return Err(if frame.seq < self.expected_seq {
                self.stats.duplicates += 1;
                StreamError::Duplicate {
                    seq: frame.seq,
                    expected: self.expected_seq,
                }
            } else {
                self.stats.gaps += 1;
                self.gap_at = Some(self.expected_seq);
                StreamError::Gap {
                    expected: self.expected_seq,
                    got: frame.seq,
                }
            });
        }
        let applied = self.apply(&frame)?;
        if self.gap_at == Some(frame.seq) {
            self.stats.retried += 1;
            self.gap_at = None;
        }
        self.expected_seq = frame.seq + 1;
        self.stats.applied += 1;
        Ok(applied)
    }

    /// Continues the run *without* the leader: every received epoch is
    /// pinned to the stream, every epoch after the cut is decided live
    /// by the follower's own control planes. Because the stream pins
    /// decisions (not state), this equals the uninterrupted run byte for
    /// byte over the shared prefix — the zero-loss failover property the
    /// e2e test asserts.
    ///
    /// # Errors
    ///
    /// If promotion is attempted before the Hello and Plan frames have
    /// been applied (the follower has nothing to continue from).
    pub fn promote(&self) -> Result<AggregateMetrics, String> {
        let spec = self
            .scenario
            .as_ref()
            .ok_or("cannot promote: no Hello frame applied (scenario unknown)")?;
        if self.admission.is_none() {
            return Err("cannot promote: no Plan frame applied (placements unknown)".into());
        }
        let journal = self.replica_journal(String::new());
        let plan = plan_fleet_pinned(spec, self.seed, &journal.pinned_plan());
        let moves = journal.pinned_moves(Some(self.next_epoch));
        Ok(ClusterRunner::new(self.threads).run_pinned(spec, self.seed, &plan, &moves))
    }

    /// The replica's journal: scenario, seed, admission statistics and
    /// every record applied so far, in canonical order. Carries the
    /// verified finale summary once the stream has finished (an
    /// unfinished replica carries an empty summary). `None` before the
    /// Plan frame has been applied.
    pub fn journal(&self) -> Option<Journal> {
        if self.scenario.is_none() || self.admission.is_none() {
            return None;
        }
        let summary = self
            .finale
            .as_ref()
            .map(|m| m.summary_csv())
            .unwrap_or_default();
        Some(self.replica_journal(summary))
    }

    /// The replica's journal prefix in canonical record order, with
    /// `summary` substituted (checkpoints store the leader's interim
    /// summary there; promotion does not need one).
    fn replica_journal(&self, summary: String) -> Journal {
        let mut records = self.records.clone();
        sort_records(&mut records);
        Journal {
            scenario: self.scenario.clone().expect("scenario known"),
            seed: self.seed,
            threads: self.leader_threads,
            admission: self.admission.expect("plan applied"),
            summary,
            records,
        }
    }

    fn protocol(&mut self, msg: String) -> StreamError {
        self.stats.dropped += 1;
        StreamError::Protocol(msg)
    }

    fn apply(&mut self, frame: &Frame) -> Result<Applied, StreamError> {
        match frame.kind {
            FrameKind::Hello => self.apply_hello(&frame.payload),
            FrameKind::Plan => self.apply_plan(&frame.payload),
            FrameKind::Records => self.apply_records(&frame.payload),
            FrameKind::Checkpoint => self.apply_checkpoint(frame),
            FrameKind::Finish => self.apply_finish(&frame.payload),
        }
    }

    fn apply_hello(&mut self, payload: &str) -> Result<Applied, StreamError> {
        if self.scenario.is_some() {
            return Err(self.protocol("second Hello on an attached stream".into()));
        }
        let mut seed = None;
        let mut threads = None;
        let mut every = None;
        let mut scenario = None;
        let mut version_ok = false;
        let mut lines = payload.lines();
        while let Some(raw) = lines.next() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "scenario_begin" {
                let mut block = String::new();
                let mut closed = false;
                for inner in lines.by_ref() {
                    if inner.trim() == "scenario_end" {
                        closed = true;
                        break;
                    }
                    block.push_str(inner);
                    block.push('\n');
                }
                if !closed {
                    return Err(self.protocol("Hello: unterminated scenario block".into()));
                }
                match ScenarioSpec::from_text(&block) {
                    Ok(s) => scenario = Some(s),
                    Err(e) => return Err(self.protocol(format!("Hello: bad scenario: {e}"))),
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(self.protocol(format!("Hello: expected `key = value`, got {line:?}")));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "version" => match value.parse::<u32>() {
                    Ok(v) if v == WIRE_VERSION => version_ok = true,
                    Ok(v) => {
                        return Err(self.protocol(format!(
                            "Hello: wire version {v} unsupported (this build speaks {WIRE_VERSION})"
                        )))
                    }
                    Err(_) => return Err(self.protocol(format!("Hello: bad version: {value:?}"))),
                },
                "seed" => match value.parse() {
                    Ok(v) => seed = Some(v),
                    Err(_) => return Err(self.protocol(format!("Hello: bad seed: {value:?}"))),
                },
                "threads" => match value.parse() {
                    Ok(v) => threads = Some(v),
                    Err(_) => return Err(self.protocol(format!("Hello: bad threads: {value:?}"))),
                },
                "checkpoint_every" => {
                    every = if value == "-" {
                        Some(None)
                    } else {
                        match value.parse() {
                            Ok(v) => Some(Some(v)),
                            Err(_) => {
                                return Err(self
                                    .protocol(format!("Hello: bad checkpoint_every: {value:?}")))
                            }
                        }
                    }
                }
                other => return Err(self.protocol(format!("Hello: unknown key {other:?}"))),
            }
        }
        if !version_ok {
            return Err(self.protocol("Hello: missing version".into()));
        }
        let (Some(seed), Some(threads), Some(every), Some(scenario)) =
            (seed, threads, every, scenario)
        else {
            return Err(
                self.protocol("Hello: missing seed/threads/checkpoint_every/scenario".into())
            );
        };
        self.seed = seed;
        self.leader_threads = threads;
        self.checkpoint_every = every;
        self.scenario = Some(scenario);
        Ok(Applied::Hello)
    }

    fn apply_plan(&mut self, payload: &str) -> Result<Applied, StreamError> {
        if self.scenario.is_none() {
            return Err(self.protocol("Plan before Hello".into()));
        }
        if self.admission.is_some() {
            return Err(self.protocol("second Plan on an attached stream".into()));
        }
        let mut admission = None;
        let mut records = Vec::new();
        for raw in payload.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(value) = line.strip_prefix("admission =") {
                match parse_admission(value.trim()) {
                    Ok(a) => admission = Some(a),
                    Err(e) => return Err(self.protocol(format!("Plan: {e}"))),
                }
                continue;
            }
            match record_from_line(line) {
                Ok(r) => records.push(r),
                Err(e) => return Err(self.protocol(format!("Plan: {e}"))),
            }
        }
        let Some(admission) = admission else {
            return Err(self.protocol("Plan: missing admission line".into()));
        };
        let n = records.len();
        self.admission = Some(admission);
        self.stats.records += n as u64;
        self.records.extend(records);
        Ok(Applied::Plan { records: n })
    }

    fn apply_records(&mut self, payload: &str) -> Result<Applied, StreamError> {
        if self.admission.is_none() {
            return Err(self.protocol("Records before Plan".into()));
        }
        let mut lines = payload.lines();
        let epoch = match lines.next().and_then(|l| l.strip_prefix("epoch =")) {
            Some(v) => match v.trim().parse::<usize>() {
                Ok(e) => e,
                Err(_) => return Err(self.protocol(format!("Records: bad epoch: {v:?}"))),
            },
            None => return Err(self.protocol("Records: missing epoch header".into())),
        };
        if lines.next().and_then(|l| l.strip_prefix("at =")).is_none() {
            return Err(self.protocol("Records: missing at header".into()));
        }
        if epoch != self.next_epoch {
            return Err(self.protocol(format!(
                "Records: epoch {epoch} arrived while the replica expects epoch {}",
                self.next_epoch
            )));
        }
        let mut records = Vec::new();
        for raw in lines {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match record_from_line(line) {
                Ok(r) => records.push(r),
                Err(e) => return Err(self.protocol(format!("Records: {e}"))),
            }
        }
        let n = records.len();
        self.records.extend(records);
        self.next_epoch += 1;
        self.stats.epochs += 1;
        self.stats.records += n as u64;
        Ok(Applied::Epoch { epoch, records: n })
    }

    fn apply_checkpoint(&mut self, frame: &Frame) -> Result<Applied, StreamError> {
        if self.admission.is_none() {
            return Err(self.protocol("Checkpoint before Plan".into()));
        }
        let (cursor, at, hash, summary) = match parse_checkpoint_payload(&frame.payload) {
            Ok(parts) => parts,
            Err(e) => return Err(self.protocol(format!("Checkpoint: {e}"))),
        };
        if cursor != self.next_epoch {
            return Err(self.protocol(format!(
                "Checkpoint: cursor {cursor} arrived while the replica stands at epoch {}",
                self.next_epoch
            )));
        }
        // Mirror: re-execute the prefix on our own thread count and
        // demand byte identity with the leader's interim summary.
        let journal = self.replica_journal(summary.clone());
        let plan = plan_fleet_pinned(&journal.scenario, journal.seed, &journal.pinned_plan());
        let mirror = ClusterRunner::new(self.threads).run_pinned_prefix(
            &journal.scenario,
            journal.seed,
            &plan,
            &journal.pinned_moves(None),
            cursor,
        );
        let ours = mirror.summary_csv();
        if fnv1a64(ours.as_bytes()) != hash || ours != summary {
            self.stats.divergences += 1;
            let msg = match summary
                .lines()
                .zip(ours.lines())
                .enumerate()
                .find(|(_, (a, b))| a != b)
            {
                Some((i, (leader, follower))) => format!(
                    "checkpoint {cursor} at summary line {}: leader {leader:?}, follower {follower:?}",
                    i + 1
                ),
                None => format!(
                    "checkpoint {cursor}: summary length differs (leader {} lines, follower {})",
                    summary.lines().count(),
                    ours.lines().count()
                ),
            };
            return Err(StreamError::Divergence(msg));
        }
        self.last_checkpoint = Some(Checkpoint {
            cursor,
            at,
            hash,
            next_seq: frame.seq + 1,
            journal,
        });
        self.stats.checkpoints += 1;
        Ok(Applied::Checkpoint { cursor })
    }

    fn apply_finish(&mut self, payload: &str) -> Result<Applied, StreamError> {
        if self.admission.is_none() {
            return Err(self.protocol("Finish before Plan".into()));
        }
        let summary = match parse_summary_block(payload) {
            Ok(s) => s,
            Err(e) => return Err(self.protocol(format!("Finish: {e}"))),
        };
        let journal = self.replica_journal(summary);
        match Replayer::new(self.threads).verify(&journal) {
            Ok(metrics) => {
                self.finale = Some(metrics);
                Ok(Applied::Finish)
            }
            Err(e) => {
                self.stats.divergences += 1;
                Err(StreamError::Divergence(format!("at finish: {e}")))
            }
        }
    }
}

fn parse_admission(value: &str) -> Result<AdmissionStats, String> {
    let parts: Vec<&str> = value.split_whitespace().collect();
    let [adm, rej, be, mig, vadm, vrej] = parts.as_slice() else {
        return Err(format!("admission needs 6 fields: {value:?}"));
    };
    let field = |s: &str, what: &str| -> Result<u64, String> {
        s.parse().map_err(|_| format!("bad {what}: {s:?}"))
    };
    Ok(AdmissionStats {
        admitted: field(adm, "admitted")?,
        rejected: field(rej, "rejected")?,
        best_effort: field(be, "best_effort")?,
        migrations: field(mig, "migrations")?,
        vms_admitted: field(vadm, "vms_admitted")?,
        vms_rejected: field(vrej, "vms_rejected")?,
    })
}

fn parse_summary_block(payload: &str) -> Result<String, String> {
    let mut lines = payload.lines();
    for raw in lines.by_ref() {
        if raw.trim() == "summary_begin" {
            let mut block = String::new();
            for inner in lines.by_ref() {
                if inner.trim() == "summary_end" {
                    return Ok(block);
                }
                block.push_str(inner);
                block.push('\n');
            }
            return Err("unterminated summary block".into());
        }
    }
    Err("missing summary block".into())
}

fn parse_checkpoint_payload(payload: &str) -> Result<(usize, Time, u64, String), String> {
    let mut cursor = None;
    let mut at = None;
    let mut hash = None;
    for raw in payload.lines() {
        let line = raw.trim();
        if line == "summary_begin" {
            break;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("expected `key = value`, got {line:?}"));
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "cursor" => {
                cursor = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad cursor: {value:?}"))?,
                )
            }
            "at" => {
                at = Some(Time::from_ns(
                    value.parse().map_err(|_| format!("bad at: {value:?}"))?,
                ))
            }
            "hash" => {
                hash = Some(
                    u64::from_str_radix(value, 16).map_err(|_| format!("bad hash: {value:?}"))?,
                )
            }
            other => return Err(format!("unknown checkpoint key {other:?}")),
        }
    }
    let summary = parse_summary_block(payload)?;
    Ok((
        cursor.ok_or("missing cursor")?,
        at.ok_or("missing at")?,
        hash.ok_or("missing hash")?,
        summary,
    ))
}
