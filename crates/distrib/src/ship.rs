//! The leader side: a [`JournalSink`] that frames decision batches onto
//! a [`Transport`] as the run executes.
//!
//! The [`Shipper`] plugs straight into
//! `ClusterRunner::run_logged_with` — the runner calls it at every
//! epoch barrier with that epoch's decision batch (already in canonical
//! order within the batch), at every checkpoint boundary with the
//! interim aggregates, and once at the end with the finale. Each
//! callback becomes exactly one frame, so the wire stream *is* the
//! journal, chunked: a follower that concatenates the record payloads
//! and re-sorts holds the same bytes `Journal::record` would have
//! written.
//!
//! Sent frames are retained in order. After a follower reconnects from
//! a checkpoint it asks for [`Shipper::frames_from`] and replays the
//! suffix — retransmission needs no journal re-read and no run re-run.

use selftune_cluster::events::JournalSink;
use selftune_cluster::{AdmissionStats, AggregateMetrics, FleetEvent, ScenarioSpec};
use selftune_journal::codec::record_line;
use selftune_journal::record::DecisionRecord;
use selftune_simcore::time::Time;

use crate::frame::{fnv1a64, Frame, FrameKind};
use crate::transport::Transport;
use crate::WIRE_VERSION;

/// How far the leader's stream has progressed — the reference point
/// follower lag is measured against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShipperProgress {
    /// Frames sent (including Hello/Plan/Checkpoint/Finish).
    pub frames: u64,
    /// Decision records shipped across Plan and Records frames.
    pub records: u64,
    /// Epoch batches shipped.
    pub epochs: usize,
    /// Checkpoints shipped.
    pub checkpoints: usize,
    /// Whether the Finish frame went out.
    pub finished: bool,
}

/// Streams a run's decision journal over a transport, frame by frame.
pub struct Shipper<T: Transport> {
    transport: T,
    checkpoint_every: Option<usize>,
    /// Every encoded frame, in seq order — the retransmission buffer.
    sent: Vec<Vec<u8>>,
    progress: ShipperProgress,
}

impl<T: Transport> Shipper<T> {
    /// Creates the shipper and immediately sends the Hello frame
    /// (stream header + full scenario text), so a follower can plan
    /// before the first decision arrives.
    pub fn new(
        transport: T,
        spec: &ScenarioSpec,
        seed: u64,
        threads: usize,
        checkpoint_every: Option<usize>,
    ) -> Shipper<T> {
        let mut hello = String::new();
        hello.push_str(&format!("version = {WIRE_VERSION}\n"));
        hello.push_str(&format!("seed = {seed}\n"));
        hello.push_str(&format!("threads = {threads}\n"));
        hello.push_str(&format!(
            "checkpoint_every = {}\n",
            match checkpoint_every {
                Some(n) => n.to_string(),
                None => "-".to_owned(),
            }
        ));
        hello.push_str("scenario_begin\n");
        hello.push_str(&spec.to_text());
        hello.push_str("scenario_end\n");
        let mut shipper = Shipper {
            transport,
            checkpoint_every,
            sent: Vec::new(),
            progress: ShipperProgress::default(),
        };
        shipper.ship(FrameKind::Hello, hello);
        shipper
    }

    /// Where the stream stands.
    pub fn progress(&self) -> ShipperProgress {
        self.progress
    }

    /// The encoded frames from sequence number `seq` onwards — what a
    /// follower resuming from a checkpoint replays after reconnecting.
    pub fn frames_from(&self, seq: u64) -> &[Vec<u8>] {
        &self.sent[(seq as usize).min(self.sent.len())..]
    }

    /// Hands the transport back (e.g. to inspect fault counters).
    pub fn into_transport(self) -> T {
        self.transport
    }

    fn ship(&mut self, kind: FrameKind, payload: String) {
        let frame = Frame {
            seq: self.progress.frames,
            kind,
            payload,
        };
        let chunk = frame.encode();
        self.sent.push(chunk.clone());
        self.transport.send(chunk);
        self.progress.frames += 1;
    }

    fn record_lines(events: &[FleetEvent]) -> String {
        let mut out = String::new();
        for e in events {
            out.push_str(&record_line(&DecisionRecord::from(e.clone())));
            out.push('\n');
        }
        out
    }
}

impl<T: Transport> JournalSink for Shipper<T> {
    fn checkpoint_interval(&self) -> Option<usize> {
        self.checkpoint_every
    }

    fn on_plan(&mut self, admission: &AdmissionStats, events: &[FleetEvent]) {
        let mut payload = format!(
            "admission = {} {} {} {} {} {}\n",
            admission.admitted,
            admission.rejected,
            admission.best_effort,
            admission.migrations,
            admission.vms_admitted,
            admission.vms_rejected,
        );
        payload.push_str(&Self::record_lines(events));
        self.progress.records += events.len() as u64;
        self.ship(FrameKind::Plan, payload);
    }

    fn on_checkpoint(&mut self, cursor: usize, at: Time, interim: &AggregateMetrics) {
        let summary = interim.summary_csv();
        let mut payload = format!("cursor = {cursor}\n");
        payload.push_str(&format!("at = {}\n", at.as_ns()));
        payload.push_str(&format!("hash = {:016x}\n", fnv1a64(summary.as_bytes())));
        payload.push_str("summary_begin\n");
        payload.push_str(&summary);
        if !summary.ends_with('\n') {
            payload.push('\n');
        }
        payload.push_str("summary_end\n");
        self.progress.checkpoints += 1;
        self.ship(FrameKind::Checkpoint, payload);
    }

    fn on_epoch(&mut self, epoch: usize, at: Time, events: &[FleetEvent]) {
        let mut payload = format!("epoch = {epoch}\n");
        payload.push_str(&format!("at = {}\n", at.as_ns()));
        payload.push_str(&Self::record_lines(events));
        self.progress.records += events.len() as u64;
        self.progress.epochs += 1;
        self.ship(FrameKind::Records, payload);
    }

    fn on_finish(&mut self, finale: &AggregateMetrics) {
        let summary = finale.summary_csv();
        let mut payload = String::from("summary_begin\n");
        payload.push_str(&summary);
        if !summary.ends_with('\n') {
            payload.push('\n');
        }
        payload.push_str("summary_end\n");
        self.progress.finished = true;
        self.ship(FrameKind::Finish, payload);
    }
}
