//! # selftune-spectrum
//!
//! The period analyser of *"Self-tuning Schedulers for Legacy Real-Time
//! Applications"* (EuroSys 2010), Sections 4.2–4.3: system-call events are
//! modelled as a train of Dirac deltas, the amplitude spectrum is evaluated
//! *directly* on a frequency grid (no FFT — event timestamps are too finely
//! resolved), and a peak-detection heuristic extracts the fundamental
//! frequency, i.e. the task's activation period.
//!
//! * [`dft`] — batch and incremental (sliding-window) spectrum evaluation
//!   with Equation-(3) operation accounting.
//! * [`peaks`] — the Section 4.3.1 heuristic (α threshold, harmonic
//!   accumulation with tolerance ε, `k_max` = 10) with Equation-(5)
//!   accounting.
//! * [`analyser`] — the facade used by the task controller.
//!
//! This crate is pure computation: timestamps in, estimates out. It has no
//! dependency on the simulator.

pub mod analyser;
pub mod dft;
pub mod peaks;

pub use analyser::{AnalyserConfig, Horizon, PeriodAnalyser, PeriodEstimate};
pub use dft::{amplitude_spectrum, synthetic_burst_train, Spectrum, SpectrumConfig, WindowedDft};
pub use peaks::{detect, Detection, PeakAnalysis, PeakConfig};
