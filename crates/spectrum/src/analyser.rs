//! The period analyser facade: sliding event window → spectrum → verdict.
//!
//! This is the first block of the paper's task controller (Figure 3): it
//! consumes the timestamps downloaded from the tracer and produces the
//! estimated activation period of the task, which the feedback controller
//! then uses as the reservation period.

use crate::dft::{Spectrum, SpectrumConfig, WindowedDft};
use crate::peaks::{detect, Detection, PeakConfig};

/// Full analyser configuration.
#[derive(Copy, Clone, Debug, Default)]
pub struct AnalyserConfig {
    /// Frequency grid.
    pub spectrum: SpectrumConfig,
    /// Peak-detection heuristic parameters.
    pub peaks: PeakConfig,
    /// Observation horizon H in seconds (events older than this behind the
    /// newest are forgotten). Defaults to 2 s, the paper's sweet spot
    /// (Figures 10–11 show periodicity "indisputable" from 1 s).
    pub horizon: Horizon,
}

/// Observation-horizon newtype with the paper's default.
#[derive(Copy, Clone, Debug)]
pub struct Horizon(pub f64);

impl Default for Horizon {
    fn default() -> Self {
        Horizon(2.0)
    }
}

/// A period estimate produced by the analyser.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PeriodEstimate {
    /// Fundamental frequency, Hz.
    pub frequency: f64,
    /// Period, seconds.
    pub period: f64,
    /// Harmonic-accumulated score of the winner.
    pub score: f64,
    /// Events in the window when the estimate was made.
    pub events: usize,
}

/// Sliding-window period analyser.
pub struct PeriodAnalyser {
    cfg: AnalyserConfig,
    dft: WindowedDft,
    last: Option<PeriodEstimate>,
    estimates: u64,
    aperiodic_verdicts: u64,
}

impl PeriodAnalyser {
    /// Creates an analyser.
    pub fn new(cfg: AnalyserConfig) -> PeriodAnalyser {
        PeriodAnalyser {
            cfg,
            dft: WindowedDft::new(cfg.spectrum, cfg.horizon.0),
            last: None,
            estimates: 0,
            aperiodic_verdicts: 0,
        }
    }

    /// Creates an analyser with default configuration.
    pub fn with_defaults() -> PeriodAnalyser {
        PeriodAnalyser::new(AnalyserConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnalyserConfig {
        &self.cfg
    }

    /// Feeds a batch of event timestamps (seconds, time-ordered).
    pub fn feed(&mut self, events_secs: &[f64]) {
        for &t in events_secs {
            self.dft.push(t);
        }
    }

    /// Number of events currently in the window.
    pub fn window_len(&self) -> usize {
        self.dft.len()
    }

    /// Runs the heuristic on the current window.
    ///
    /// Returns `None` when the window is empty or the signal is declared
    /// aperiodic; the previous successful estimate stays available through
    /// [`PeriodAnalyser::last_estimate`].
    pub fn estimate(&mut self) -> Option<PeriodEstimate> {
        if self.dft.is_empty() {
            return None;
        }
        let spectrum = self.dft.spectrum();
        let analysis = detect(&spectrum, &self.cfg.peaks);
        self.estimates += 1;
        match analysis.detection {
            Detection::Periodic {
                frequency, score, ..
            } => {
                let est = PeriodEstimate {
                    frequency,
                    period: 1.0 / frequency,
                    score,
                    events: spectrum.events,
                };
                self.last = Some(est);
                Some(est)
            }
            Detection::Aperiodic => {
                self.aperiodic_verdicts += 1;
                None
            }
        }
    }

    /// The most recent successful estimate, if any.
    pub fn last_estimate(&self) -> Option<PeriodEstimate> {
        self.last
    }

    /// Snapshot of the current spectrum (for plotting, Figure 10).
    pub fn spectrum(&self) -> Spectrum {
        self.dft.spectrum()
    }

    /// `(estimate calls, aperiodic verdicts)` so far.
    pub fn verdict_counts(&self) -> (u64, u64) {
        (self.estimates, self.aperiodic_verdicts)
    }

    /// Forgets all window state (but keeps the last estimate).
    pub fn reset_window(&mut self) {
        self.dft.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::synthetic_burst_train;

    #[test]
    fn estimates_fundamental_from_stream() {
        let mut a = PeriodAnalyser::with_defaults();
        a.feed(&synthetic_burst_train(0.04, 50, 6, 0.005));
        let est = a.estimate().expect("periodic");
        assert!((est.frequency - 25.0).abs() < 0.3, "{est:?}");
        assert!((est.period - 0.04).abs() < 0.001);
        assert!(est.events > 0);
    }

    #[test]
    fn empty_window_estimates_none() {
        let mut a = PeriodAnalyser::with_defaults();
        assert_eq!(a.estimate(), None);
        assert_eq!(a.last_estimate(), None);
    }

    #[test]
    fn window_slides_with_horizon() {
        let mut a = PeriodAnalyser::new(AnalyserConfig {
            horizon: Horizon(1.0),
            ..AnalyserConfig::default()
        });
        a.feed(&synthetic_burst_train(0.04, 100, 2, 0.004)); // 4 s of data
                                                             // Only ~1 s worth of events (≈ 25 jobs × 2) remains.
        assert!(a.window_len() <= 2 * 26, "window {}", a.window_len());
        assert!(a.window_len() >= 2 * 24);
    }

    #[test]
    fn last_estimate_survives_aperiodic_phase() {
        let mut a = PeriodAnalyser::with_defaults();
        a.feed(&synthetic_burst_train(0.04, 50, 6, 0.005));
        let first = a.estimate().expect("periodic");
        // Window emptied: estimate() is None but last_estimate remains.
        a.reset_window();
        assert_eq!(a.estimate(), None);
        assert_eq!(a.last_estimate(), Some(first));
    }

    #[test]
    fn verdict_counters() {
        let mut a = PeriodAnalyser::with_defaults();
        a.feed(&synthetic_burst_train(0.04, 50, 6, 0.005));
        let _ = a.estimate();
        assert_eq!(a.verdict_counts(), (1, 0));
    }
}
