//! Direct evaluation of the amplitude spectrum of an event train.
//!
//! The paper models each traced system call as a Dirac delta, so a trace is
//! `s(t) = Σᵢ δ(t − tᵢ)` and its transform evaluated at frequency `f` is
//! simply `S(f) = Σᵢ e^{-j2πf·tᵢ}` (Section 4.3, Equation (4)). The
//! spectrum is sampled on a regular grid `[f_min, f_max]` with step `δf` —
//! the paper argues an FFT is unsuitable because events carry
//! nanosecond-resolution timestamps and the equivalent sample rate would be
//! absurd.
//!
//! The number of complex exponentiations is `bins × events` (Equation (3));
//! both the batch and the incremental evaluator count them so the overhead
//! experiments (Figures 6–7) can report the measured cost alongside the
//! theoretical one.

/// Frequency-grid configuration, in Hz.
#[derive(Copy, Clone, Debug)]
pub struct SpectrumConfig {
    /// Lowest analysed frequency. Must exceed the DC main lobe (≳ 2/H) so
    /// the zero-frequency peak does not leak into the candidate range.
    pub f_min: f64,
    /// Highest analysed frequency.
    pub f_max: f64,
    /// Grid step δf.
    pub df: f64,
}

impl Default for SpectrumConfig {
    fn default() -> Self {
        // The lower bound must stay above f₀/2 of the workloads of
        // interest (see `PeakConfig::min_rel_amplitude`): media players
        // run at 25–100 jobs/s, so 18 Hz excludes their subharmonics
        // (12.5 Hz for 25 fps video, 16.25 Hz for 32.5 Hz audio) while
        // the paper's own plots use a [30, 100] Hz window.
        SpectrumConfig {
            f_min: 18.0,
            f_max: 100.0,
            df: 0.1,
        }
    }
}

impl SpectrumConfig {
    /// Creates a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < f_min < f_max` and `df > 0`.
    pub fn new(f_min: f64, f_max: f64, df: f64) -> SpectrumConfig {
        let cfg = SpectrumConfig { f_min, f_max, df };
        cfg.validate();
        cfg
    }

    fn validate(&self) {
        assert!(
            self.f_min > 0.0 && self.f_min < self.f_max && self.df > 0.0,
            "invalid spectrum config {self:?}"
        );
    }

    /// Number of grid bins, `⌊(f_max − f_min)/δf⌋ + 1`.
    pub fn bins(&self) -> usize {
        ((self.f_max - self.f_min) / self.df).floor() as usize + 1
    }

    /// Frequency of bin `i`.
    pub fn freq_of(&self, i: usize) -> f64 {
        self.f_min + i as f64 * self.df
    }

    /// Nearest bin index for frequency `f`, clamped to the grid.
    pub fn bin_of(&self, f: f64) -> usize {
        let i = ((f - self.f_min) / self.df).round();
        (i.max(0.0) as usize).min(self.bins() - 1)
    }
}

/// A sampled amplitude spectrum.
#[derive(Clone, Debug)]
pub struct Spectrum {
    /// Grid configuration the amplitudes were sampled on.
    pub config: SpectrumConfig,
    /// `|S(f)|` per grid bin.
    pub amplitudes: Vec<f64>,
    /// Number of events that contributed.
    pub events: usize,
    /// Complex exponentiations performed (Equation (3) accounting).
    pub ops: u64,
}

impl Spectrum {
    /// Frequencies of all bins.
    pub fn freqs(&self) -> Vec<f64> {
        (0..self.amplitudes.len())
            .map(|i| self.config.freq_of(i))
            .collect()
    }

    /// Amplitudes normalised to a maximum of 1 (the paper's Figure 10
    /// presentation). An all-zero spectrum stays all-zero.
    pub fn normalized(&self) -> Vec<f64> {
        let max = self.amplitudes.iter().copied().fold(0.0_f64, f64::max);
        if max <= 0.0 {
            return self.amplitudes.clone();
        }
        self.amplitudes.iter().map(|a| a / max).collect()
    }

    /// Mean amplitude over the grid (the reference for the α threshold).
    pub fn mean_amplitude(&self) -> f64 {
        if self.amplitudes.is_empty() {
            return 0.0;
        }
        self.amplitudes.iter().sum::<f64>() / self.amplitudes.len() as f64
    }
}

/// Accumulates `sign · e^{-j2π·freq_of(i)·t}` into `(re, im)` per bin.
///
/// Instead of a `sin`/`cos` pair per (event, bin), the bin phases form an
/// arithmetic progression `θᵢ = 2π(f_min + i·δf)t`, so the complex
/// exponentials follow the angle-addition recurrence
/// `e^{-jθᵢ₊₁} = e^{-jθᵢ} · e^{-j2πδf·t}`: one `sin_cos` pair per event
/// (plus one for the rotator) and four multiply-adds per bin. The rotator
/// stays on the unit circle to machine precision over the grid sizes used
/// here (≤ a few thousand bins), keeping the result within 1e-9 of the
/// naive evaluation — a property test asserts this.
fn accumulate_event(config: &SpectrumConfig, t: f64, sign: f64, re: &mut [f64], im: &mut [f64]) {
    let tau = core::f64::consts::TAU;
    let (s0, c0) = (tau * config.f_min * t).sin_cos();
    let (sd, cd) = (tau * config.df * t).sin_cos();
    let (mut c, mut s) = (c0, s0);
    for (r, m) in re.iter_mut().zip(im.iter_mut()) {
        // e^{-jωt} = cos(ωt) − j·sin(ωt).
        *r += sign * c;
        *m -= sign * s;
        let next_c = c * cd - s * sd;
        let next_s = s * cd + c * sd;
        c = next_c;
        s = next_s;
    }
}

/// Evaluates `|S(f)|` for the event timestamps (in seconds) on the grid.
pub fn amplitude_spectrum(events_secs: &[f64], config: SpectrumConfig) -> Spectrum {
    config.validate();
    let bins = config.bins();
    let mut re = vec![0.0_f64; bins];
    let mut im = vec![0.0_f64; bins];
    for &t in events_secs {
        accumulate_event(&config, t, 1.0, &mut re, &mut im);
    }
    let amplitudes = re
        .iter()
        .zip(&im)
        .map(|(r, m)| (r * r + m * m).sqrt())
        .collect();
    Spectrum {
        config,
        amplitudes,
        events: events_secs.len(),
        ops: (bins * events_secs.len()) as u64,
    }
}

/// Incremental spectrum accumulator with a sliding observation window.
///
/// Events are pushed as they arrive; events older than `horizon` seconds
/// behind the newest are evicted by subtracting their contribution —
/// the iterative evaluation described in Section 4.3.
#[derive(Debug)]
pub struct WindowedDft {
    config: SpectrumConfig,
    horizon: f64,
    re: Vec<f64>,
    im: Vec<f64>,
    window: std::collections::VecDeque<f64>,
    ops: u64,
}

impl WindowedDft {
    /// Creates an accumulator with the given grid and window length (s).
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not positive or the config is invalid.
    pub fn new(config: SpectrumConfig, horizon: f64) -> WindowedDft {
        config.validate();
        assert!(horizon > 0.0, "horizon must be positive");
        let bins = config.bins();
        WindowedDft {
            config,
            horizon,
            re: vec![0.0; bins],
            im: vec![0.0; bins],
            window: std::collections::VecDeque::new(),
            ops: 0,
        }
    }

    /// The observation horizon in seconds.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Number of events currently inside the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Returns `true` if no event is in the window.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Adds an event at `t` seconds (monotonically non-decreasing) and
    /// evicts events that fell out of the window.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the newest event already pushed.
    pub fn push(&mut self, t: f64) {
        if let Some(&last) = self.window.back() {
            assert!(t >= last, "events must be pushed in time order");
        }
        self.accumulate(t, 1.0);
        self.window.push_back(t);
        while let Some(&old) = self.window.front() {
            if t - old > self.horizon {
                self.window.pop_front();
                self.accumulate(old, -1.0);
            } else {
                break;
            }
        }
    }

    fn accumulate(&mut self, t: f64, sign: f64) {
        accumulate_event(&self.config, t, sign, &mut self.re, &mut self.im);
        self.ops += self.re.len() as u64;
    }

    /// Snapshot of the current amplitude spectrum.
    pub fn spectrum(&self) -> Spectrum {
        Spectrum {
            config: self.config,
            amplitudes: self
                .re
                .iter()
                .zip(&self.im)
                .map(|(r, m)| (r * r + m * m).sqrt())
                .collect(),
            events: self.window.len(),
            ops: self.ops,
        }
    }

    /// Total complex exponentiations performed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Drops all state (events and accumulators).
    pub fn clear(&mut self) {
        self.re.iter_mut().for_each(|x| *x = 0.0);
        self.im.iter_mut().for_each(|x| *x = 0.0);
        self.window.clear();
    }
}

/// Generates a perfectly periodic burst train for tests and benchmarks:
/// `jobs` jobs of period `period_s`, each burst containing `per_burst`
/// events spread over `burst_span_s` at the job start.
pub fn synthetic_burst_train(
    period_s: f64,
    jobs: usize,
    per_burst: usize,
    burst_span_s: f64,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(jobs * per_burst);
    for j in 0..jobs {
        let base = j as f64 * period_s;
        for k in 0..per_burst {
            out.push(base + burst_span_s * k as f64 / per_burst.max(1) as f64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SpectrumConfig {
        SpectrumConfig::new(10.0, 100.0, 0.1)
    }

    #[test]
    fn grid_geometry() {
        let c = cfg();
        assert_eq!(c.bins(), 901);
        assert!((c.freq_of(0) - 10.0).abs() < 1e-12);
        assert!((c.freq_of(900) - 100.0).abs() < 1e-9);
        assert_eq!(c.bin_of(10.0), 0);
        assert_eq!(c.bin_of(100.0), 900);
        assert_eq!(c.bin_of(25.04), 150);
        assert_eq!(c.bin_of(0.0), 0); // clamped
        assert_eq!(c.bin_of(500.0), 900); // clamped
    }

    #[test]
    fn empty_spectrum_is_zero() {
        let s = amplitude_spectrum(&[], cfg());
        assert!(s.amplitudes.iter().all(|&a| a == 0.0));
        assert_eq!(s.ops, 0);
    }

    #[test]
    fn single_event_is_flat_unit() {
        let s = amplitude_spectrum(&[0.3], cfg());
        assert!(s.amplitudes.iter().all(|&a| (a - 1.0).abs() < 1e-9));
    }

    #[test]
    fn periodic_train_peaks_at_fundamental() {
        // 25 Hz train observed for 2 s.
        let events = synthetic_burst_train(0.04, 50, 1, 0.0);
        let s = amplitude_spectrum(&events, cfg());
        let peak_bin = s
            .amplitudes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let f = s.config.freq_of(peak_bin);
        // Peaks at 25, 50, 75, 100 all have amplitude N; the max is one of
        // the harmonics of 25 Hz.
        assert!(
            (f / 25.0 - (f / 25.0).round()).abs() < 0.01,
            "peak at {f} is not a harmonic of 25"
        );
        // The 25 Hz bin itself is (near) N = 50.
        let a25 = s.amplitudes[s.config.bin_of(25.0)];
        assert!((a25 - 50.0).abs() < 1e-6, "a25 = {a25}");
    }

    #[test]
    fn off_peak_amplitude_is_small() {
        let events = synthetic_burst_train(0.04, 50, 1, 0.0);
        let s = amplitude_spectrum(&events, cfg());
        // Between harmonics (e.g. 37.5 Hz) the sum nearly cancels.
        let a = s.amplitudes[s.config.bin_of(37.5)];
        assert!(a < 5.0, "off-peak amplitude {a}");
    }

    #[test]
    fn rotator_matches_naive_per_bin_sincos_within_1e9() {
        // Irregular, irrational-ish timestamps over a long observation
        // window: the worst case for rotator drift.
        let events: Vec<f64> = (0..300)
            .map(|i| i as f64 * 0.0415926535 + (i as f64 * 0.618_033_988_75).fract() * 0.003)
            .collect();
        let c = cfg();
        let fast = amplitude_spectrum(&events, c);
        // Naive path: one sin/cos per (event, bin), as the pre-rotator code.
        let bins = c.bins();
        let mut re = vec![0.0_f64; bins];
        let mut im = vec![0.0_f64; bins];
        let tau = core::f64::consts::TAU;
        for &t in &events {
            for (i, (r, m)) in re.iter_mut().zip(im.iter_mut()).enumerate() {
                let phase = tau * c.freq_of(i) * t;
                *r += phase.cos();
                *m -= phase.sin();
            }
        }
        for (i, (r, m)) in re.iter().zip(&im).enumerate() {
            let naive = (r * r + m * m).sqrt();
            let d = (fast.amplitudes[i] - naive).abs();
            assert!(
                d < 1e-9,
                "bin {i}: |{} - {naive}| = {d}",
                fast.amplitudes[i]
            );
        }
    }

    #[test]
    fn ops_counter_matches_equation3() {
        let events = synthetic_burst_train(0.04, 10, 3, 0.004);
        let s = amplitude_spectrum(&events, cfg());
        assert_eq!(s.ops, (cfg().bins() * events.len()) as u64);
    }

    #[test]
    fn windowed_matches_batch_for_fitting_window() {
        let events = synthetic_burst_train(0.04, 20, 2, 0.004);
        let mut w = WindowedDft::new(cfg(), 10.0); // everything fits
        for &t in &events {
            w.push(t);
        }
        let inc = w.spectrum();
        let batch = amplitude_spectrum(&events, cfg());
        for (a, b) in inc.amplitudes.iter().zip(&batch.amplitudes) {
            assert!((a - b).abs() < 1e-6);
        }
        assert_eq!(inc.events, events.len());
    }

    #[test]
    fn windowed_evicts_old_events() {
        let mut w = WindowedDft::new(cfg(), 1.0);
        for &t in &[0.0, 0.5, 1.0, 2.0] {
            w.push(t);
        }
        // Horizon 1.0 behind t=2.0 keeps {1.0, 2.0}.
        assert_eq!(w.len(), 2);
        let tail = amplitude_spectrum(&[1.0, 2.0], cfg());
        let inc = w.spectrum();
        for (a, b) in inc.amplitudes.iter().zip(&tail.amplitudes) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn windowed_rejects_out_of_order() {
        let mut w = WindowedDft::new(cfg(), 1.0);
        w.push(1.0);
        w.push(0.5);
    }

    #[test]
    fn normalization_peaks_at_one() {
        let events = synthetic_burst_train(0.04, 50, 1, 0.0);
        let s = amplitude_spectrum(&events, cfg());
        let n = s.normalized();
        let max = n.iter().copied().fold(0.0_f64, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn burst_train_shape() {
        let e = synthetic_burst_train(0.1, 3, 2, 0.01);
        assert_eq!(e.len(), 6);
        assert!((e[0] - 0.0).abs() < 1e-12);
        assert!((e[1] - 0.005).abs() < 1e-12);
        assert!((e[2] - 0.1).abs() < 1e-12);
    }
}
