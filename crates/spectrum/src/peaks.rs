//! The peak-detection heuristic of Section 4.3.1.
//!
//! Given a sampled amplitude spectrum, the heuristic:
//!
//! 1. finds the local maxima of `|S(f)|` over the grid;
//! 2. discards maxima below `α` times the average amplitude;
//! 3. declares the signal aperiodic if no candidate survives;
//! 4. for each surviving candidate `fᵢ`, accumulates the spectrum at up to
//!    `k_max` integer multiples of `fᵢ` within a tolerance of `ε`
//!    (`Σᵢ = Σ_{h, |f − h·fᵢ| ≤ ε} |S(f)|`);
//! 5. returns the candidate with the largest `Σᵢ` as the fundamental.
//!
//! The scanned-bin counter reproduces the complexity bound of
//! Equation (5), which Figure 8 validates empirically.

use crate::dft::Spectrum;

/// Heuristic parameters.
#[derive(Copy, Clone, Debug)]
pub struct PeakConfig {
    /// Threshold factor: candidates need `|S| ≥ α · mean(|S|)`. The paper's
    /// experiments use `α = 20%`.
    pub alpha: f64,
    /// Harmonic matching tolerance ε, in Hz (0.5 in the paper).
    pub epsilon: f64,
    /// Maximum number of harmonics accumulated (10 in the paper).
    pub k_max: u32,
    /// Extension beyond the paper: candidates whose own amplitude falls
    /// below this fraction of the strongest bin are dropped before the
    /// harmonic accumulation. This guards against *sub*-harmonics: a noise
    /// bump at `f₀/2` would otherwise accumulate every true harmonic of
    /// `f₀` plus its own and win the plain sum. The paper sidesteps the
    /// issue by analysing `[30, 100]` Hz, above `f₀/2` of its workloads;
    /// set this to `0.0` for the strictly paper-faithful behaviour.
    pub min_rel_amplitude: f64,
    /// Extension beyond the paper: refine the winning frequency by
    /// parabolic interpolation through the peak bin and its neighbours,
    /// recovering sub-bin resolution on coarse grids (δf = 0.5 Hz detects
    /// within ≈ 0.05 Hz instead of ±0.25 Hz). Off by default for
    /// paper-faithful grid-aligned estimates.
    pub refine: bool,
}

impl Default for PeakConfig {
    fn default() -> Self {
        PeakConfig {
            alpha: 0.2,
            epsilon: 0.5,
            k_max: 10,
            min_rel_amplitude: 0.05,
            refine: false,
        }
    }
}

/// Outcome of the heuristic.
#[derive(Clone, Debug, PartialEq)]
pub enum Detection {
    /// A dominant periodic pattern was found.
    Periodic {
        /// Estimated fundamental frequency, Hz.
        frequency: f64,
        /// Harmonic-accumulated score of the winner (Σᵢ).
        score: f64,
        /// Number of candidates that survived the α threshold.
        candidates: usize,
        /// Coherence: strongest bin over mean amplitude. A strongly
        /// periodic train scores ≫ 5; broad renewal-process bumps score
        /// 2–4. Extension beyond the paper, used to grade verdict
        /// confidence.
        peak_to_mean: f64,
    },
    /// No candidate peak survived: the application is declared
    /// non-periodic (step 4 of the heuristic).
    Aperiodic,
}

impl Detection {
    /// The detected frequency, if periodic.
    pub fn frequency(&self) -> Option<f64> {
        match self {
            Detection::Periodic { frequency, .. } => Some(*frequency),
            Detection::Aperiodic => None,
        }
    }

    /// The detected period in seconds, if periodic.
    pub fn period_secs(&self) -> Option<f64> {
        self.frequency().map(|f| 1.0 / f)
    }
}

/// Result of [`detect`]: the verdict plus complexity accounting.
#[derive(Clone, Debug)]
pub struct PeakAnalysis {
    /// The verdict.
    pub detection: Detection,
    /// Grid bins examined (the `E` of Equation (5)).
    pub scanned_bins: u64,
    /// All local maxima found before thresholding, as `(freq, amplitude)`.
    pub raw_peaks: Vec<(f64, f64)>,
}

/// Indices of strict local maxima of `amps` (plateaus count once, at their
/// left edge; boundary bins are not maxima).
fn local_maxima(amps: &[f64]) -> Vec<usize> {
    let mut out = Vec::new();
    let n = amps.len();
    if n < 3 {
        return out;
    }
    let mut i = 1;
    while i + 1 < n {
        if amps[i] > amps[i - 1] {
            // Walk any plateau to its right edge.
            let start = i;
            while i + 1 < n && amps[i + 1] == amps[i] {
                i += 1;
            }
            if i + 1 < n && amps[i + 1] < amps[i] {
                out.push(start);
            }
        }
        i += 1;
    }
    out
}

/// Sub-bin refinement: fits a parabola through the peak bin and its
/// neighbours and returns the vertex frequency (clamped to ±half a bin).
fn refine_parabolic(amps: &[f64], i: usize, grid: &crate::dft::SpectrumConfig) -> f64 {
    if i == 0 || i + 1 >= amps.len() {
        return grid.freq_of(i);
    }
    let (a, b, c) = (amps[i - 1], amps[i], amps[i + 1]);
    let denom = a - 2.0 * b + c;
    if denom.abs() < 1e-12 {
        return grid.freq_of(i);
    }
    let delta = (0.5 * (a - c) / denom).clamp(-0.5, 0.5);
    grid.freq_of(i) + delta * grid.df
}

/// Runs the peak-detection heuristic on a sampled spectrum.
pub fn detect(spectrum: &Spectrum, cfg: &PeakConfig) -> PeakAnalysis {
    let amps = &spectrum.amplitudes;
    let grid = spectrum.config;
    let mut scanned = amps.len() as u64; // steps 1–3 scan every bin

    let maxima = local_maxima(amps);
    let raw_peaks: Vec<(f64, f64)> = maxima.iter().map(|&i| (grid.freq_of(i), amps[i])).collect();

    let mean = spectrum.mean_amplitude();
    let threshold = cfg.alpha * mean;
    let global_max = amps.iter().copied().fold(0.0_f64, f64::max);
    let rel_floor = cfg.min_rel_amplitude * global_max;
    let candidates: Vec<usize> = maxima
        .into_iter()
        .filter(|&i| amps[i] >= threshold && amps[i] >= rel_floor && amps[i] > 0.0)
        .collect();

    if candidates.is_empty() {
        return PeakAnalysis {
            detection: Detection::Aperiodic,
            scanned_bins: scanned,
            raw_peaks,
        };
    }

    // Step 5: harmonic accumulation.
    let eps_bins = (cfg.epsilon / grid.df).round().max(0.0) as i64;
    let nbins = amps.len() as i64;
    let mut best: Option<(usize, f64)> = None;
    for &ci in &candidates {
        let f0 = grid.freq_of(ci);
        let mut sum = 0.0;
        let mut h = 1u32;
        while h <= cfg.k_max {
            let target = h as f64 * f0;
            if target > grid.f_max + cfg.epsilon {
                break;
            }
            let centre = ((target - grid.f_min) / grid.df).round() as i64;
            let lo = (centre - eps_bins).max(0);
            let hi = (centre + eps_bins).min(nbins - 1);
            for b in lo..=hi {
                sum += amps[b as usize];
                scanned += 1;
            }
            h += 1;
        }
        match best {
            Some((_, s)) if s >= sum => {}
            _ => best = Some((ci, sum)),
        }
    }

    let (wi, score) = best.expect("candidates is non-empty");
    let frequency = if cfg.refine {
        refine_parabolic(amps, wi, &grid)
    } else {
        grid.freq_of(wi)
    };
    PeakAnalysis {
        detection: Detection::Periodic {
            frequency,
            score,
            candidates: candidates.len(),
            peak_to_mean: if mean > 0.0 { global_max / mean } else { 0.0 },
        },
        scanned_bins: scanned,
        raw_peaks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{amplitude_spectrum, synthetic_burst_train, SpectrumConfig};

    fn cfg() -> SpectrumConfig {
        SpectrumConfig::new(10.0, 100.0, 0.1)
    }

    #[test]
    fn local_maxima_basic() {
        let amps = [0.0, 1.0, 0.5, 2.0, 1.0, 1.0, 3.0, 0.0];
        assert_eq!(local_maxima(&amps), vec![1, 3, 6]);
    }

    #[test]
    fn local_maxima_plateau_counts_once() {
        let amps = [0.0, 2.0, 2.0, 2.0, 1.0, 0.0];
        assert_eq!(local_maxima(&amps), vec![1]);
    }

    #[test]
    fn local_maxima_monotone_has_none() {
        assert!(local_maxima(&[1.0, 2.0, 3.0, 4.0]).is_empty());
        assert!(local_maxima(&[4.0, 3.0, 2.0, 1.0]).is_empty());
        assert!(local_maxima(&[1.0]).is_empty());
    }

    #[test]
    fn detects_25hz_fundamental() {
        // 25 Hz bursty train, 2 s: the fundamental should beat its
        // harmonics thanks to the harmonic accumulation.
        let events = synthetic_burst_train(0.04, 50, 8, 0.006);
        let s = amplitude_spectrum(&events, cfg());
        let r = detect(&s, &PeakConfig::default());
        let f = r.detection.frequency().expect("periodic");
        assert!((f - 25.0).abs() < 0.3, "detected {f}");
    }

    #[test]
    fn detects_32_5hz_like_mp3() {
        // The paper's mp3 trace peaks at 32.5, 65, 97.5 Hz (Figure 10).
        let events = synthetic_burst_train(1.0 / 32.5, 65, 10, 0.004);
        let s = amplitude_spectrum(&events, cfg());
        let r = detect(&s, &PeakConfig::default());
        let f = r.detection.frequency().expect("periodic");
        assert!((f - 32.5).abs() < 0.3, "detected {f}");
    }

    #[test]
    fn empty_spectrum_is_aperiodic() {
        let s = amplitude_spectrum(&[], cfg());
        let r = detect(&s, &PeakConfig::default());
        assert_eq!(r.detection, Detection::Aperiodic);
    }

    #[test]
    fn period_secs_inverts_frequency() {
        let d = Detection::Periodic {
            frequency: 25.0,
            score: 1.0,
            candidates: 1,
            peak_to_mean: 10.0,
        };
        assert!((d.period_secs().unwrap() - 0.04).abs() < 1e-12);
        assert_eq!(Detection::Aperiodic.period_secs(), None);
    }

    #[test]
    fn higher_alpha_prunes_candidates_and_work() {
        let events = synthetic_burst_train(0.04, 50, 8, 0.006);
        let s = amplitude_spectrum(&events, cfg());
        let loose = detect(
            &s,
            &PeakConfig {
                alpha: 0.0,
                ..PeakConfig::default()
            },
        );
        let tight = detect(
            &s,
            &PeakConfig {
                alpha: 2.0,
                ..PeakConfig::default()
            },
        );
        let (lc, tc) = match (&loose.detection, &tight.detection) {
            (
                Detection::Periodic { candidates: lc, .. },
                Detection::Periodic { candidates: tc, .. },
            ) => (*lc, *tc),
            other => panic!("unexpected {other:?}"),
        };
        assert!(tc < lc, "α should prune candidates: {tc} !< {lc}");
        assert!(
            tight.scanned_bins < loose.scanned_bins,
            "α should cut work (Figure 8): {} !< {}",
            tight.scanned_bins,
            loose.scanned_bins
        );
    }

    #[test]
    fn scanned_bins_grows_with_epsilon() {
        // Equation (5): work scales with ε/δf.
        let events = synthetic_burst_train(0.04, 50, 8, 0.006);
        let s = amplitude_spectrum(&events, cfg());
        let narrow = detect(
            &s,
            &PeakConfig {
                epsilon: 0.1,
                ..PeakConfig::default()
            },
        );
        let wide = detect(
            &s,
            &PeakConfig {
                epsilon: 1.0,
                ..PeakConfig::default()
            },
        );
        assert!(wide.scanned_bins > narrow.scanned_bins);
    }

    #[test]
    fn very_high_alpha_declares_aperiodic() {
        let events = synthetic_burst_train(0.04, 10, 2, 0.004);
        let s = amplitude_spectrum(&events, cfg());
        let r = detect(
            &s,
            &PeakConfig {
                alpha: 1e6,
                ..PeakConfig::default()
            },
        );
        assert_eq!(r.detection, Detection::Aperiodic);
    }

    #[test]
    fn parabolic_refinement_beats_the_grid() {
        // True rate 26.3 Hz on a coarse 0.5 Hz grid: the raw estimate is
        // off by up to half a bin (0.25 Hz); the parabolic fit through the
        // sinc main lobe roughly halves that error.
        let events = synthetic_burst_train(1.0 / 26.3, 60, 8, 0.004);
        let coarse = SpectrumConfig::new(18.0, 100.0, 0.5);
        let s = amplitude_spectrum(&events, coarse);
        let raw = detect(&s, &PeakConfig::default())
            .detection
            .frequency()
            .unwrap();
        let refined = detect(
            &s,
            &PeakConfig {
                refine: true,
                ..PeakConfig::default()
            },
        )
        .detection
        .frequency()
        .unwrap();
        assert!((raw - 26.3).abs() <= 0.25 + 1e-9, "raw {raw}");
        assert!(
            (refined - 26.3).abs() < (raw - 26.3).abs(),
            "refined {refined} not better than raw {raw}"
        );
        assert!((refined - 26.3).abs() < 0.15, "refined {refined}");
    }

    #[test]
    fn refinement_stays_within_half_a_bin() {
        let events = synthetic_burst_train(0.04, 50, 8, 0.006);
        let s = amplitude_spectrum(&events, cfg());
        let raw = detect(&s, &PeakConfig::default())
            .detection
            .frequency()
            .unwrap();
        let refined = detect(
            &s,
            &PeakConfig {
                refine: true,
                ..PeakConfig::default()
            },
        )
        .detection
        .frequency()
        .unwrap();
        assert!((raw - refined).abs() <= 0.05 + 1e-9, "{raw} vs {refined}");
    }

    #[test]
    fn k_max_limits_harmonic_walk() {
        let events = synthetic_burst_train(0.04, 50, 8, 0.006);
        let s = amplitude_spectrum(&events, cfg());
        let k1 = detect(
            &s,
            &PeakConfig {
                k_max: 1,
                ..PeakConfig::default()
            },
        );
        let k10 = detect(&s, &PeakConfig::default());
        assert!(k10.scanned_bins > k1.scanned_bins);
    }
}
