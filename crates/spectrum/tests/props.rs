//! Property-based tests for the period analyser.

use proptest::prelude::*;
use selftune_spectrum::{
    amplitude_spectrum, detect, synthetic_burst_train, PeakConfig, SpectrumConfig, WindowedDft,
};

proptest! {
    /// A clean periodic burst train with f₀ well inside the band is always
    /// identified within one grid step.
    #[test]
    fn fundamental_recovered_for_random_periods(
        period_ms in 12.5f64..45.0,
        per_burst in 3usize..12,
        span_us in 0u64..3_000,
    ) {
        let period = period_ms / 1000.0;
        let jobs = (2.0 / period).ceil() as usize; // ≈ 2 s of data
        let events = synthetic_burst_train(period, jobs, per_burst, span_us as f64 / 1e6);
        let cfg = SpectrumConfig::new(18.0, 100.0, 0.1);
        let spec = amplitude_spectrum(&events, cfg);
        let f = detect(&spec, &PeakConfig::default())
            .detection
            .frequency()
            .expect("periodic train must be detected");
        let expect = 1.0 / period;
        prop_assert!((f - expect).abs() < 0.25, "detected {f}, expected {expect}");
    }

    /// The incremental windowed DFT matches the batch evaluation when the
    /// whole stream fits in the window.
    #[test]
    fn windowed_equals_batch(
        mut times in prop::collection::vec(0.0f64..3.0, 1..150),
    ) {
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let cfg = SpectrumConfig::new(18.0, 100.0, 0.5);
        let mut w = WindowedDft::new(cfg, 10.0);
        for &t in &times {
            w.push(t);
        }
        let inc = w.spectrum();
        let batch = amplitude_spectrum(&times, cfg);
        for (a, b) in inc.amplitudes.iter().zip(&batch.amplitudes) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Equation (3): the batch op counter is exactly bins × events.
    #[test]
    fn ops_counter_matches_eq3(
        n in 0usize..300,
        df in 0.1f64..1.0,
    ) {
        let times: Vec<f64> = (0..n).map(|i| i as f64 * 0.001).collect();
        let cfg = SpectrumConfig::new(18.0, 100.0, df);
        let spec = amplitude_spectrum(&times, cfg);
        prop_assert_eq!(spec.ops, (cfg.bins() * n) as u64);
    }

    /// Shifting every event by a constant leaves the amplitude spectrum
    /// unchanged (time-shift invariance of |S|).
    #[test]
    fn amplitude_is_shift_invariant(
        mut times in prop::collection::vec(0.0f64..2.0, 1..100),
        shift in 0.0f64..5.0,
    ) {
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let cfg = SpectrumConfig::new(18.0, 100.0, 0.5);
        let a = amplitude_spectrum(&times, cfg);
        let shifted: Vec<f64> = times.iter().map(|t| t + shift).collect();
        let b = amplitude_spectrum(&shifted, cfg);
        for (x, y) in a.amplitudes.iter().zip(&b.amplitudes) {
            prop_assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    /// Scanned-bin accounting (Equation (5)) grows with ε and never
    /// shrinks below the full-grid scan.
    #[test]
    fn scanned_bins_bounded_below_by_grid(
        period_ms in 15.0f64..40.0,
        eps in 0.1f64..1.0,
    ) {
        let events = synthetic_burst_train(period_ms / 1000.0, 60, 6, 0.004);
        let cfg = SpectrumConfig::new(18.0, 100.0, 0.1);
        let spec = amplitude_spectrum(&events, cfg);
        let analysis = detect(&spec, &PeakConfig { epsilon: eps, ..PeakConfig::default() });
        prop_assert!(analysis.scanned_bins >= cfg.bins() as u64);
    }
}
