//! # selftune-bench
//!
//! Experiment harnesses regenerating every table and figure of the paper's
//! evaluation (Section 5). Each experiment is a library function (so
//! `run_all` can chain them) with a thin binary wrapper in `src/bin/`.
//!
//! Conventions:
//!
//! * every experiment prints a human-readable table/series to stdout and
//!   writes CSV into `results/`;
//! * `--seed N` changes the RNG seed, `--fast` cuts repetition counts for
//!   smoke runs, `--out DIR` overrides the results directory.

pub mod experiments;
pub mod setups;

use std::path::{Path, PathBuf};
use std::time::Instant;

/// Common command-line arguments of the experiment binaries.
#[derive(Clone, Debug)]
pub struct Args {
    /// Base RNG seed.
    pub seed: u64,
    /// Reduce repetitions for a quick smoke run.
    pub fast: bool,
    /// Results directory.
    pub out: PathBuf,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed: 42,
            fast: false,
            out: PathBuf::from("results"),
        }
    }
}

impl Args {
    /// Parses `--seed N`, `--fast` and `--out DIR` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics on malformed arguments (these are experiment binaries; a
    /// loud failure beats a silently wrong configuration).
    pub fn parse() -> Args {
        let mut args = Args::default();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    args.seed = v.parse().expect("--seed must be an integer");
                }
                "--fast" => args.fast = true,
                "--out" => {
                    args.out = PathBuf::from(it.next().expect("--out needs a value"));
                }
                other => panic!("unknown argument {other:?} (try --seed/--fast/--out)"),
            }
        }
        args
    }

    /// Picks a repetition count: `full` normally, `quick` with `--fast`.
    pub fn reps(&self, full: usize, quick: usize) -> usize {
        if self.fast {
            quick
        } else {
            full
        }
    }

    /// Ensures the results directory exists and returns a path inside it.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn out_path(&self, file: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out).expect("create results dir");
        self.out.join(file)
    }
}

/// Prints an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| (*s).to_owned()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Writes a CSV file, panicking on I/O errors (experiment binaries).
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) {
    selftune_simcore::metrics::write_csv(path, header, rows)
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("[wrote {}]", path.display());
}

/// Wall-clock time of `f`, in microseconds, together with its result.
pub fn time_us<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e6)
}

/// Formats a float with the given number of decimals.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reps_honours_fast() {
        let mut a = Args::default();
        assert_eq!(a.reps(100, 10), 100);
        a.fast = true;
        assert_eq!(a.reps(100, 10), 10);
    }

    #[test]
    fn time_us_returns_result() {
        let (v, us) = time_us(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(us >= 0.0);
    }

    #[test]
    fn fmt_decimals() {
        assert_eq!(fmt(1.23456, 2), "1.23");
    }
}
