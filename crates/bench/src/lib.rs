//! # selftune-bench
//!
//! Experiment harnesses regenerating every table and figure of the paper's
//! evaluation (Section 5). Each experiment is a library function (so
//! `run_all` can chain them) with a thin binary wrapper in `src/bin/`.
//!
//! Conventions:
//!
//! * every experiment prints a human-readable table/series to stdout and
//!   writes CSV into `results/`;
//! * `--seed N` changes the RNG seed, `--fast` cuts repetition counts for
//!   smoke runs, `--out DIR` overrides the results directory;
//! * cluster experiments additionally take `--scenario FILE` (declarative
//!   fleet override) and `--journal FILE` (record the primary scenario's
//!   decision journal); parsing lives once in [`cli`].

pub mod cli;
pub mod experiments;
pub mod setups;

use std::path::Path;
use std::time::Instant;

pub use cli::{load_scenario, Args};

/// Prints an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| (*s).to_owned()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Writes a CSV file, panicking on I/O errors (experiment binaries).
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) {
    selftune_simcore::metrics::write_csv(path, header, rows)
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("[wrote {}]", path.display());
}

/// Wall-clock time of `f`, in microseconds, together with its result.
pub fn time_us<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e6)
}

/// Formats a float with the given number of decimals.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reps_honours_fast() {
        let mut a = Args::default();
        assert_eq!(a.reps(100, 10), 100);
        a.fast = true;
        assert_eq!(a.reps(100, 10), 10);
    }

    #[test]
    fn time_us_returns_result() {
        let (v, us) = time_us(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(us >= 0.0);
    }

    #[test]
    fn fmt_decimals() {
        assert_eq!(fmt(1.23456, 2), "1.23");
    }

    #[test]
    fn load_scenario_reports_missing_files() {
        let err = load_scenario(Path::new("/nonexistent/fleet.txt")).unwrap_err();
        assert!(err.contains("/nonexistent/fleet.txt"), "{err}");
        assert!(err.contains("reading scenario"), "{err}");
    }

    #[test]
    fn load_scenario_reports_malformed_content() {
        let dir = std::env::temp_dir().join("selftune-bench-scenario-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.txt");
        std::fs::write(
            &path,
            "name = x\nnodes = two\ntasks = 1\nhorizon_ms = 100\n",
        )
        .unwrap();
        let err = load_scenario(&path).unwrap_err();
        assert!(err.contains("parsing scenario"), "{err}");
        assert!(err.contains("bad integer"), "{err}");
        // And a well-formed file round-trips through the loader.
        let good = dir.join("good.txt");
        std::fs::write(
            &good,
            "name = tiny\nnodes = 2\ntasks = 4\nhorizon_ms = 500\nvm = 3 10 1 video25\n",
        )
        .unwrap();
        let spec = load_scenario(&good).expect("well-formed scenario");
        assert_eq!(spec.nodes, 2);
        assert_eq!(spec.vms.len(), 1);
    }

    #[test]
    fn checked_in_example_scenario_parses() {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/fleet_demo.txt");
        let spec = load_scenario(&path).expect("examples/fleet_demo.txt must stay parseable");
        assert!(spec.nodes >= 2);
        assert!(spec.rebalance.enabled, "the demo exercises the rebalancer");
        assert!(!spec.vms.is_empty(), "the demo places a VM");
    }
}
