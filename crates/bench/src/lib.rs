//! # selftune-bench
//!
//! Experiment harnesses regenerating every table and figure of the paper's
//! evaluation (Section 5). Each experiment is a library function (so
//! `run_all` can chain them) with a thin binary wrapper in `src/bin/`.
//!
//! Conventions:
//!
//! * every experiment prints a human-readable table/series to stdout and
//!   writes CSV into `results/`;
//! * `--seed N` changes the RNG seed, `--fast` cuts repetition counts for
//!   smoke runs, `--out DIR` overrides the results directory.

pub mod experiments;
pub mod setups;

use std::path::{Path, PathBuf};
use std::time::Instant;

/// Common command-line arguments of the experiment binaries.
#[derive(Clone, Debug)]
pub struct Args {
    /// Base RNG seed.
    pub seed: u64,
    /// Reduce repetitions for a quick smoke run.
    pub fast: bool,
    /// Results directory.
    pub out: PathBuf,
    /// Scenario file overriding the experiment's built-in fleet (cluster
    /// experiments only; see `ScenarioSpec::from_text` for the format).
    pub scenario: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed: 42,
            fast: false,
            out: PathBuf::from("results"),
            scenario: None,
        }
    }
}

impl Args {
    /// Parses `--seed N`, `--fast`, `--out DIR` and `--scenario FILE`
    /// from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics on malformed arguments (these are experiment binaries; a
    /// loud failure beats a silently wrong configuration).
    pub fn parse() -> Args {
        let mut args = Args::default();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    args.seed = v.parse().expect("--seed must be an integer");
                }
                "--fast" => args.fast = true,
                "--out" => {
                    args.out = PathBuf::from(it.next().expect("--out needs a value"));
                }
                "--scenario" => {
                    args.scenario =
                        Some(PathBuf::from(it.next().expect("--scenario needs a file")));
                }
                other => panic!("unknown argument {other:?} (try --seed/--fast/--out/--scenario)"),
            }
        }
        args
    }

    /// Loads the `--scenario` file, if given.
    ///
    /// # Panics
    ///
    /// Panics with the parse error when the file is missing or malformed
    /// (a silently ignored scenario file would invalidate the experiment).
    pub fn scenario_spec(&self) -> Option<selftune_cluster::ScenarioSpec> {
        self.scenario
            .as_deref()
            .map(|p| load_scenario(p).unwrap_or_else(|e| panic!("{e}")))
    }

    /// Picks a repetition count: `full` normally, `quick` with `--fast`.
    pub fn reps(&self, full: usize, quick: usize) -> usize {
        if self.fast {
            quick
        } else {
            full
        }
    }

    /// Ensures the results directory exists and returns a path inside it.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn out_path(&self, file: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out).expect("create results dir");
        self.out.join(file)
    }
}

/// Loads a [`selftune_cluster::ScenarioSpec`] from a text file (the
/// `ScenarioSpec::to_text` format).
///
/// # Errors
///
/// A human-readable message naming the file for I/O failures or the first
/// offending line for parse failures.
pub fn load_scenario(path: &Path) -> Result<selftune_cluster::ScenarioSpec, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("reading scenario {}: {e}", path.display()))?;
    selftune_cluster::ScenarioSpec::from_text(&text)
        .map_err(|e| format!("parsing scenario {}: {e}", path.display()))
}

/// Prints an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| (*s).to_owned()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Writes a CSV file, panicking on I/O errors (experiment binaries).
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) {
    selftune_simcore::metrics::write_csv(path, header, rows)
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("[wrote {}]", path.display());
}

/// Wall-clock time of `f`, in microseconds, together with its result.
pub fn time_us<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e6)
}

/// Formats a float with the given number of decimals.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reps_honours_fast() {
        let mut a = Args::default();
        assert_eq!(a.reps(100, 10), 100);
        a.fast = true;
        assert_eq!(a.reps(100, 10), 10);
    }

    #[test]
    fn time_us_returns_result() {
        let (v, us) = time_us(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(us >= 0.0);
    }

    #[test]
    fn fmt_decimals() {
        assert_eq!(fmt(1.23456, 2), "1.23");
    }

    #[test]
    fn load_scenario_reports_missing_files() {
        let err = load_scenario(Path::new("/nonexistent/fleet.txt")).unwrap_err();
        assert!(err.contains("/nonexistent/fleet.txt"), "{err}");
        assert!(err.contains("reading scenario"), "{err}");
    }

    #[test]
    fn load_scenario_reports_malformed_content() {
        let dir = std::env::temp_dir().join("selftune-bench-scenario-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.txt");
        std::fs::write(
            &path,
            "name = x\nnodes = two\ntasks = 1\nhorizon_ms = 100\n",
        )
        .unwrap();
        let err = load_scenario(&path).unwrap_err();
        assert!(err.contains("parsing scenario"), "{err}");
        assert!(err.contains("bad integer"), "{err}");
        // And a well-formed file round-trips through the loader.
        let good = dir.join("good.txt");
        std::fs::write(
            &good,
            "name = tiny\nnodes = 2\ntasks = 4\nhorizon_ms = 500\nvm = 3 10 1 video25\n",
        )
        .unwrap();
        let spec = load_scenario(&good).expect("well-formed scenario");
        assert_eq!(spec.nodes, 2);
        assert_eq!(spec.vms.len(), 1);
    }

    #[test]
    fn checked_in_example_scenario_parses() {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/fleet_demo.txt");
        let spec = load_scenario(&path).expect("examples/fleet_demo.txt must stay parseable");
        assert!(spec.nodes >= 2);
        assert!(spec.rebalance.enabled, "the demo exercises the rebalancer");
        assert!(!spec.vms.is_empty(), "the demo places a VM");
    }
}
