//! Decision journal: record, replay-verify, what-if counterfactuals.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::journal_whatif::run(&args);
}
