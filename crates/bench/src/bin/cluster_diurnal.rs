//! Composed three-level control plane vs single levels (diurnal demand).
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::cluster_diurnal::run(&args);
}
