//! Binary wrapper; see `selftune_bench::experiments::cluster_scaleout`.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::cluster_scaleout::run(&args);
}
