//! Binary wrapper; see `selftune_bench::experiments::fig07`.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::fig07::run(&args);
}
