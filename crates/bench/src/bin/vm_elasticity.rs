//! VM elasticity experiment; see
//! `selftune_bench::experiments::vm_elasticity`.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::vm_elasticity::run(&args);
}
