//! Binary wrapper; see `selftune_bench::experiments::fig06`.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::fig06::run(&args);
}
