//! The repo's perf trajectory: benchmarks the simulation hot paths and
//! writes machine-readable `BENCH_kernel.json` / `BENCH_cluster.json`
//! so every PR can prove (or disprove) a speedup against the numbers
//! checked in by the previous one.
//!
//! `before` numbers run the retained fallbacks (binary-heap event queue,
//! string-keyed metrics, static node partition); `after` numbers run the
//! shipping hot path (timing wheel, interned keys, chunked
//! work-stealing). Regenerate with:
//!
//! ```bash
//! cargo run --release --bin perf_report            # full (~1 min)
//! cargo run --release --bin perf_report -- --smoke # CI smoke (~seconds)
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use selftune_apps::PeriodicRt;
use selftune_cluster::churn_mem_report;
use selftune_cluster::prelude::*;
use selftune_sched::{EdfScheduler, Place, ReservationScheduler, ServerConfig};
use selftune_simcore::event::EventQueue;
use selftune_simcore::rng::Rng;
use selftune_simcore::task::{Action, Script};
use selftune_simcore::time::{Dur, Time};
use selftune_simcore::{Kernel, Metrics};
use selftune_virt::{GuestSched, VirtScheduler};

/// One before/after measurement.
struct Entry {
    name: String,
    metric: &'static str,
    before: Option<f64>,
    after: f64,
    note: Option<&'static str>,
}

impl Entry {
    fn json(&self) -> String {
        let mut s = String::new();
        write!(
            s,
            "    {{\"name\": {:?}, \"metric\": {:?}",
            self.name, self.metric
        )
        .unwrap();
        if let Some(b) = self.before {
            // Higher-is-better metrics invert the ratio so "speedup" is
            // always ≥ 1.0 when `after` wins.
            let speedup = if self.metric.ends_with("per_op")
                || self.metric == "wall_seconds"
                || self.metric == "bytes_per_task"
            {
                b / self.after
            } else {
                self.after / b
            };
            write!(
                s,
                ", \"before\": {b:.4}, \"after\": {:.4}, \"speedup\": {speedup:.2}",
                self.after
            )
            .unwrap();
        } else {
            write!(s, ", \"value\": {:.4}", self.after).unwrap();
        }
        if let Some(n) = self.note {
            write!(s, ", \"note\": {n:?}").unwrap();
        }
        s.push('}');
        s
    }
}

fn write_report(path: &Path, report: &str, smoke: bool, entries: &[Entry], extra: &str) {
    let mut s = String::new();
    writeln!(s, "{{").unwrap();
    writeln!(s, "  \"report\": {report:?},").unwrap();
    writeln!(
        s,
        "  \"generated_by\": \"cargo run --release --bin perf_report\","
    )
    .unwrap();
    writeln!(s, "  \"smoke\": {smoke},").unwrap();
    writeln!(s, "  \"entries\": [").unwrap();
    let body: Vec<String> = entries.iter().map(Entry::json).collect();
    writeln!(s, "{}", body.join(",\n")).unwrap();
    write!(s, "  ]").unwrap();
    if !extra.is_empty() {
        write!(s, ",\n{extra}").unwrap();
    }
    writeln!(s, "\n}}").unwrap();
    std::fs::write(path, &s).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("[wrote {}]", path.display());
}

/// Median of per-op nanoseconds over `samples` runs of `iters` ops each.
fn median_ns_per_op(samples: usize, iters: u64, mut op_batch: impl FnMut(u64)) -> f64 {
    // One warm-up batch, then measured samples.
    op_batch(iters);
    let mut out: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            op_batch(iters);
            start.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    out.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    out[out.len() / 2]
}

/// The dense-timer event loop: `depth` pending timers; each op pops the
/// earliest and re-arms it a pseudo-random stride ahead — the steady
/// state of a timer-saturated discrete-event engine.
fn event_loop_ns_per_op(heap: bool, depth: u64, samples: usize, iters: u64) -> f64 {
    let mut q: EventQueue<u64> = if heap {
        EventQueue::heap_fallback()
    } else {
        EventQueue::new()
    };
    for i in 0..depth {
        q.push(Time::from_ns(1_000 + i * 7_919 % 1_000_000), i);
    }
    let mut stride = 1u64;
    median_ns_per_op(samples, iters, move |n| {
        for _ in 0..n {
            let (t, p) = q.pop().expect("queue never drains");
            stride = stride
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            q.push(t + Dur::ns(1 + (stride >> 33) % 2_000_000), p);
        }
    })
}

/// Marking throughput through the string API vs. an interned key.
fn metrics_mark_ns_per_op(interned: bool, samples: usize, iters: u64) -> f64 {
    let mut m = Metrics::new();
    // A realistically sized key space (a fleet node's worth of labels).
    let names: Vec<String> = (0..64).map(|i| format!("t{i:04}.frame")).collect();
    let keys: Vec<_> = names.iter().map(|n| m.key(n)).collect();
    let mut i = 0usize;
    median_ns_per_op(samples, iters, move |n| {
        for j in 0..n {
            let at = Time::from_ns(j);
            if interned {
                m.record_k(keys[i], at, 0.5);
            } else {
                m.record(&names[i], at, 0.5);
            }
            i = (i + 1) % names.len();
        }
        m.clear();
    })
}

/// Simulated seconds per wall second for a kernel full of periodic RT
/// tasks under the reservation scheduler (the single-node hot loop).
/// `heap` selects the pre-wheel event queue; `scan` selects the pre-cache
/// full-scan dispatcher.
fn kernel_sim_rate(heap: bool, scan: bool, tasks: usize, sim: Dur, samples: usize) -> f64 {
    let run = || {
        let mut kernel = Kernel::new(ReservationScheduler::new());
        if heap {
            kernel.use_heap_event_queue();
        }
        if scan {
            kernel.sched_mut().use_scan_dispatch();
        }
        let mut rng = Rng::new(7);
        for i in 0..tasks {
            let period = Dur::ms(5 + (i as u64 % 7) * 3);
            let wcet = period.mul_f64(0.6 / tasks as f64).max(Dur::us(50));
            let sid = kernel
                .sched_mut()
                .create_server(ServerConfig::new(wcet, period));
            let w = PeriodicRt::new("t", wcet, period, 0.05, rng.fork());
            let tid = kernel.spawn("t", Box::new(w));
            kernel.sched_mut().place(tid, Place::Server(sid));
        }
        let start = Instant::now();
        kernel.run_for(sim);
        sim.as_secs_f64() / start.elapsed().as_secs_f64()
    };
    let mut rates: Vec<f64> = (0..samples).map(|_| run()).collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("NaN rate"));
    rates[rates.len() / 2]
}

/// Simulated seconds per wall second for a *VM-hosting* kernel: `vms`
/// virtual platforms (EDF guests, two periodic tasks each) under the
/// two-level scheduler. With any VM present every pick takes the
/// `pick_with` nested-dispatch path; `scan` disables the host's cached
/// EDF order (and winner/timer caches), reproducing the
/// rescan-every-iteration behaviour this PR's nested dispatch caching
/// replaced.
fn vm_kernel_sim_rate(scan: bool, vms: usize, sim: Dur, samples: usize) -> f64 {
    let run = || {
        let mut kernel = Kernel::new(VirtScheduler::new());
        if scan {
            kernel.sched_mut().host_mut().use_scan_dispatch();
        }
        let mut rng = Rng::new(7);
        let share = 0.85 / vms as f64;
        for v in 0..vms {
            let vm = kernel.sched_mut().create_vm(
                ServerConfig::new(Dur::ms(10).mul_f64(share), Dur::ms(10)),
                GuestSched::Edf(EdfScheduler::new()),
            );
            for g in 0..2usize {
                let period = Dur::ms(5 + ((v * 2 + g) as u64 % 7) * 3);
                let wcet = period.mul_f64(0.3 * share).max(Dur::us(20));
                let w = PeriodicRt::new("t", wcet, period, 0.05, rng.fork());
                let tid = kernel.spawn("t", Box::new(w));
                kernel.sched_mut().assign(tid, vm);
                if let GuestSched::Edf(e) = kernel.sched_mut().guest_mut(vm) {
                    e.set_relative_deadline(tid, period);
                }
            }
        }
        let start = Instant::now();
        kernel.run_for(sim);
        sim.as_secs_f64() / start.elapsed().as_secs_f64()
    };
    let mut rates: Vec<f64> = (0..samples).map(|_| run()).collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("NaN rate"));
    rates[rates.len() / 2]
}

/// Simulated seconds per wall second for a timer-only kernel: `tasks`
/// sleepers re-arming staggered timers — the dense-timer event loop seen
/// end to end through the engine.
fn sleeper_sim_rate(heap: bool, tasks: usize, sim: Dur, samples: usize) -> f64 {
    let run = || {
        let mut kernel = Kernel::new(ReservationScheduler::new());
        if heap {
            kernel.use_heap_event_queue();
        }
        for i in 0..tasks {
            let gap = Dur::us(500 + (i as u64 * 37) % 1_500);
            let script =
                Script::forever(vec![Action::Compute(Dur::ns(200)), Action::SleepFor(gap)]);
            kernel.spawn("sleeper", Box::new(script));
        }
        let start = Instant::now();
        kernel.run_for(sim);
        sim.as_secs_f64() / start.elapsed().as_secs_f64()
    };
    let mut rates: Vec<f64> = (0..samples).map(|_| run()).collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("NaN rate"));
    rates[rates.len() / 2]
}

fn kernel_report(out: &Path, smoke: bool) {
    let mut entries = Vec::new();
    let (samples, iters) = if smoke { (3, 50_000) } else { (9, 1_000_000) };
    let depths: &[u64] = if smoke {
        &[64, 4096]
    } else {
        &[64, 1024, 8192, 65536]
    };
    for &depth in depths {
        let after = event_loop_ns_per_op(false, depth, samples, iters);
        let before = event_loop_ns_per_op(true, depth, samples, iters);
        println!(
            "event_loop/dense_timers/{depth}: wheel {after:.1} ns/op, heap {before:.1} ns/op ({:.2}x)",
            before / after
        );
        entries.push(Entry {
            name: format!("event_loop/dense_timers/{depth}"),
            metric: "ns_per_op",
            before: Some(before),
            after,
            note: None,
        });
    }

    let after = metrics_mark_ns_per_op(true, samples, iters);
    let before = metrics_mark_ns_per_op(false, samples, iters);
    println!(
        "metrics/record: interned {after:.1} ns/op, string {before:.1} ns/op ({:.2}x)",
        before / after
    );
    entries.push(Entry {
        name: "metrics/record".to_owned(),
        metric: "ns_per_op",
        before: Some(before),
        after,
        note: None,
    });

    let (sim, ksamples) = if smoke {
        (Dur::ms(200), 3)
    } else {
        (Dur::secs(1), 5)
    };
    for &tasks in &[16usize, 64] {
        let after = kernel_sim_rate(false, false, tasks, sim, ksamples);
        let before = kernel_sim_rate(true, false, tasks, sim, ksamples);
        println!(
            "kernel/periodic_rt/{tasks}: wheel {after:.0} sim-s/s, heap {before:.0} sim-s/s ({:.2}x)",
            after / before
        );
        entries.push(Entry {
            name: format!("kernel/periodic_rt_tasks/{tasks}"),
            metric: "sim_seconds_per_wall_second",
            before: Some(before),
            after,
            note: None,
        });
    }

    // The scheduler-bound hot path (PR-2's residual bottleneck): cached
    // EDF/timer dispatch vs the full per-iteration rescan, wheel queue in
    // both runs so only the dispatcher differs.
    for &tasks in &[16usize, 64] {
        let after = kernel_sim_rate(false, false, tasks, sim, ksamples);
        let before = kernel_sim_rate(false, true, tasks, sim, ksamples);
        println!(
            "kernel/sched_dispatch/{tasks}: cached {after:.0} sim-s/s, scan {before:.0} sim-s/s ({:.2}x)",
            after / before
        );
        entries.push(Entry {
            name: format!("kernel/sched_dispatch/{tasks}"),
            metric: "sim_seconds_per_wall_second",
            before: Some(before),
            after,
            note: Some(
                "before = full EDF/timer rescan per kernel iteration, after = cached dispatch",
            ),
        });
    }
    // The VM-hosting node (PR 4's residual bottleneck): any VM forces the
    // nested pick_with path, which used to rebuild and sort the host EDF
    // order on every kernel iteration. After: order cached across
    // unchanged states, stacked timer cached by dispatch epoch.
    for &vms in &[4usize, 16] {
        let after = vm_kernel_sim_rate(false, vms, sim, ksamples);
        let before = vm_kernel_sim_rate(true, vms, sim, ksamples);
        println!(
            "kernel/vm_sched_dispatch/{vms}: cached {after:.0} sim-s/s, scan {before:.0} sim-s/s ({:.2}x)",
            after / before
        );
        entries.push(Entry {
            name: format!("kernel/vm_sched_dispatch/{vms}"),
            metric: "sim_seconds_per_wall_second",
            before: Some(before),
            after,
            note: Some(
                "before = nested EDF order rebuilt+sorted per pick, after = epoch-cached order and stacked timer",
            ),
        });
    }
    let sleepers = if smoke { 256 } else { 2048 };
    let after = sleeper_sim_rate(false, sleepers, sim, ksamples);
    let before = sleeper_sim_rate(true, sleepers, sim, ksamples);
    println!(
        "kernel/sleepers/{sleepers}: wheel {after:.1} sim-s/s, heap {before:.1} sim-s/s ({:.2}x)",
        after / before
    );
    entries.push(Entry {
        name: format!("kernel/dense_sleepers/{sleepers}"),
        metric: "sim_seconds_per_wall_second",
        before: Some(before),
        after,
        note: None,
    });

    write_report(
        &out.join("BENCH_kernel.json"),
        "kernel",
        smoke,
        &entries,
        "",
    );
}

fn cluster_report(out: &Path, smoke: bool) {
    let (nodes, tasks, horizon) = if smoke {
        (4, 12, Dur::ms(500))
    } else {
        (8, 32, Dur::ms(1500))
    };
    let spec = ScenarioSpec::new("perf", nodes, tasks, horizon).with_mix(TaskMix::rt_only());
    let sim_total = horizon.as_secs_f64() * nodes as f64;
    let mut entries = Vec::new();

    for threads in [1usize, 2, 8] {
        let runner = ClusterRunner::new(threads);
        runner.run(&spec, 42); // warm-up
        let start = Instant::now();
        runner.run(&spec, 42);
        let wall = start.elapsed().as_secs_f64();
        println!(
            "cluster/run_nodes/threads={threads}: {:.1} sim-s/s ({:.0} ms wall)",
            sim_total / wall,
            wall * 1e3
        );
        entries.push(Entry {
            name: format!("cluster/run_nodes/threads={threads}"),
            metric: "sim_seconds_per_wall_second",
            before: None,
            after: sim_total / wall,
            note: None,
        });
    }

    // Work distribution: static partition (one chunk per worker) vs.
    // chunked stealing, on a placement-skewed fleet (first-fit packs the
    // early nodes, so per-node cost varies).
    let skewed = ScenarioSpec::new("perf-skew", nodes, tasks, horizon)
        .with_mix(TaskMix::rt_only())
        .with_policy(PolicyKind::FirstFit);
    let threads = 2usize;
    let time_with_chunk = |chunk: usize| {
        let runner = ClusterRunner::new(threads).with_chunk(chunk);
        runner.run(&skewed, 42); // warm-up
        let start = Instant::now();
        runner.run(&skewed, 42);
        start.elapsed().as_secs_f64()
    };
    let static_wall = time_with_chunk(nodes.div_ceil(threads));
    let stealing_wall = time_with_chunk(1);
    println!(
        "cluster/distribution: static {:.0} ms, stealing {:.0} ms ({:.2}x)",
        static_wall * 1e3,
        stealing_wall * 1e3,
        static_wall / stealing_wall
    );
    entries.push(Entry {
        name: "cluster/distribution/static_vs_stealing".to_owned(),
        metric: "wall_seconds",
        before: Some(static_wall),
        after: stealing_wall,
        note: Some(
            "before = static partition (chunk = nodes/threads), after = chunked \
             work-stealing; on a single-CPU host both serialise (~1.0x) — the \
             stealing win needs real cores and skewed node costs",
        ),
    });

    // The megafleet axis (PR 7): 10k nodes, worst-fit — every placement
    // query must rank the whole fleet, so the bucketed headroom index
    // (after) vs the linear scan (before) is the dominant cost. Sketch
    // aggregates on in both runs; the sim itself is kept short and
    // healthy so the placer is what's being measured.
    let (mf_tasks, mf_horizon) = if smoke {
        (2_000, Dur::ms(300))
    } else {
        (10_000, Dur::ms(300))
    };
    let mf_nodes = 10_000usize;
    let mf_spec = ScenarioSpec::new("megafleet-place", mf_nodes, mf_tasks, mf_horizon)
        .with_mix(TaskMix::rt_only())
        .with_policy(PolicyKind::WorstFit);
    let mf_sim = mf_horizon.as_secs_f64() * mf_nodes as f64;
    let mf_time = |scan: bool| {
        let mut runner = ClusterRunner::new(2).with_sketch_aggregates(true);
        if scan {
            runner = runner.with_scan_placement(true);
        }
        let start = Instant::now();
        let fleet = runner.run(&mf_spec, 42);
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(fleet.nodes.len(), mf_nodes);
        mf_sim / wall
    };
    let mf_after = mf_time(false);
    let mf_before = mf_time(true);
    println!(
        "cluster/megafleet/nodes={mf_nodes}: index {mf_after:.0} sim-s/s, scan {mf_before:.0} sim-s/s ({:.2}x)",
        mf_after / mf_before
    );
    entries.push(Entry {
        name: format!("cluster/megafleet/nodes={mf_nodes}"),
        metric: "sim_seconds_per_wall_second",
        before: Some(mf_before),
        after: mf_after,
        note: Some(
            "before = linear-scan placement over all 10k nodes per query, after = \
             bucketed headroom index; worst-fit fleet with sketch aggregates on",
        ),
    });

    // The million-task axis (PR 10): the *task* population pushed to 1M
    // live tasks on 2.5k nodes, with a churning liar wave retiring tens
    // of thousands of tasks mid-flight. Throughput is measured with the
    // arena free-list frozen (before) vs recycling (after) on the same
    // fleet; bytes/task comes from the single-node churn harness, where
    // admissions outnumber peak live tasks ~10x.
    let (mt_tasks, mt_horizon) = if smoke {
        (100_000, Dur::ms(400))
    } else {
        (1_000_000, Dur::ms(500))
    };
    let mt_nodes = 2_500usize;
    let mt_spec = ScenarioSpec::milliontask_demo(mt_nodes, mt_tasks, mt_horizon)
        .with_rebalance(ScenarioSpec::milliontask_rebalance(mt_horizon));
    let mt_time = |recycle: bool| {
        let runner = ClusterRunner::new(2)
            .with_sketch_aggregates(true)
            .with_recycling(recycle);
        let start = Instant::now();
        let fleet = runner.run(&mt_spec, 42);
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(fleet.nodes.len(), mt_nodes);
        mt_tasks as f64 / wall
    };
    let mt_before = mt_time(false);
    let mt_after = mt_time(true);
    println!(
        "cluster/milliontask/tasks_per_sec: frozen arena {mt_before:.0}, recycling \
         {mt_after:.0} ({:.2}x) at {mt_tasks} tasks",
        mt_after / mt_before
    );
    entries.push(Entry {
        name: "cluster/milliontask/tasks_per_sec".to_owned(),
        metric: "tasks_per_sec",
        before: Some(mt_before),
        after: mt_after,
        note: Some(
            "before = arena free-list frozen, after = slot recycling; single-CPU \
             container, so the parallel tree reduction shows up as determinism \
             and fewer merge ops rather than wall clock — a multicore rerun of \
             this entry is owed",
        ),
    });
    let (mw, mp) = if smoke { (8, 500) } else { (12, 2_000) };
    let mem_off = churn_mem_report(mw, mp, false, 42);
    let mem_on = churn_mem_report(mw, mp, true, 42);
    println!(
        "cluster/milliontask/bytes_per_task: frozen {:.1}, recycling {:.1} ({:.2}x) \
         over {} admissions",
        mem_off.bytes_per_task(),
        mem_on.bytes_per_task(),
        mem_off.bytes_per_task() / mem_on.bytes_per_task(),
        mem_off.stats.admitted,
    );
    entries.push(Entry {
        name: "cluster/milliontask/bytes_per_task".to_owned(),
        metric: "bytes_per_task",
        before: Some(mem_off.bytes_per_task()),
        after: mem_on.bytes_per_task(),
        note: Some(
            "churn workload (admissions ~10x peak live): before = frozen arena \
             holding a full slot per admission, after = recycling arena at \
             ~peak-live slots plus lean retired records",
        ),
    });

    // Determinism: byte-identical aggregates at 1, 2 and 8 threads with
    // maximal steal interleaving.
    let baseline = ClusterRunner::new(1)
        .with_chunk(1)
        .run(&spec, 7)
        .summary_csv();
    let identical = [2usize, 8].iter().all(|&t| {
        ClusterRunner::new(t)
            .with_chunk(1)
            .run(&spec, 7)
            .summary_csv()
            == baseline
    });
    println!("cluster/determinism (1/2/8 threads, chunk=1): identical={identical}");
    assert!(identical, "work-stealing broke aggregate determinism");
    let extra = format!(
        "  \"determinism\": {{\"threads\": [1, 2, 8], \"chunk\": 1, \"identical\": {identical}}}"
    );

    write_report(
        &out.join("BENCH_cluster.json"),
        "cluster",
        smoke,
        &entries,
        &extra,
    );
}

fn main() {
    let mut smoke = false;
    let mut out = PathBuf::from(".");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = PathBuf::from(it.next().expect("--out needs a value")),
            other => panic!("unknown argument {other:?} (try --smoke/--out)"),
        }
    }
    std::fs::create_dir_all(&out).expect("create output dir");
    kernel_report(&out, smoke);
    cluster_report(&out, smoke);
}
