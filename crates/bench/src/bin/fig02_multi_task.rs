//! Binary wrapper; see `selftune_bench::experiments::fig02`.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::fig02::run(&args);
}
