//! Binary wrapper; see `selftune_bench::experiments::fig05`.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::fig05::run(&args);
}
