//! Bucketed placement index + sketch aggregates at 10k-node scale.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::cluster_megafleet::run(&args);
}
