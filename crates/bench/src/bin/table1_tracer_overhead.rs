//! Binary wrapper; see `selftune_bench::experiments::table1`.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::table1::run(&args);
}
