//! Binary wrapper; see `selftune_bench::experiments::fig08`.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::fig08::run(&args);
}
