//! Binary wrapper; see `selftune_bench::experiments::fig11`.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::fig11::run(&args);
}
