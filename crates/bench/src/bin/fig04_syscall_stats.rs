//! Binary wrapper; see `selftune_bench::experiments::fig04`.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::fig04::run(&args);
}
