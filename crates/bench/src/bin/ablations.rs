//! Binary wrapper; see `selftune_bench::experiments::ablations`.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::ablations::run(&args);
}
