//! Binary wrapper; see `selftune_bench::experiments::fig10`.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::fig10::run(&args);
}
