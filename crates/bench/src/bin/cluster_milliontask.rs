//! One million live tasks on a 2.5k-node fleet: recycled arenas, tree
//! reduction, and the feedback rebalancer with a million bystanders.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::cluster_milliontask::run(&args);
}
