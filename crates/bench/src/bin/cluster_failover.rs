//! Log-shipped replication, checkpoints, lag metrics, failover promotion.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::cluster_failover::run(&args);
}
