//! Binary wrapper; see `selftune_bench::experiments::table2`.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::table2::run(&args);
}
