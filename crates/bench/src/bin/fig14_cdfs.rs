//! Binary wrapper; see `selftune_bench::experiments::fig14`.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::fig14::run(&args);
}
