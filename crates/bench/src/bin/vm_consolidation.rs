//! VM consolidation experiment; see
//! `selftune_bench::experiments::vm_consolidation`.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::vm_consolidation::run(&args);
}
