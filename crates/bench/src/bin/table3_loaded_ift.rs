//! Binary wrapper; see `selftune_bench::experiments::table3`.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::table3::run(&args);
}
