//! Binary wrapper; see `selftune_bench::experiments::fig13`.
fn main() {
    let args = selftune_bench::Args::parse();
    let _ = selftune_bench::experiments::fig13::run(&args);
}
