//! Binary wrapper; see `selftune_bench::experiments::fig01`.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::fig01::run(&args);
}
