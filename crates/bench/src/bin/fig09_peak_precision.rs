//! Binary wrapper; see `selftune_bench::experiments::fig09`.
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::fig09::run(&args);
}
