//! Feedback-driven re-placement vs static placement (skewed overload).
fn main() {
    let args = selftune_bench::Args::parse();
    selftune_bench::experiments::cluster_rebalance::run(&args);
}
