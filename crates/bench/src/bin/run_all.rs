//! Regenerates every table and figure of the paper in one go.
fn main() {
    let args = selftune_bench::Args::parse();
    use selftune_bench::experiments as e;
    e::fig01::run(&args);
    e::fig02::run(&args);
    e::fig04::run(&args);
    e::fig05::run(&args);
    e::table1::run(&args);
    e::fig06::run(&args);
    e::fig07::run(&args);
    e::fig08::run(&args);
    e::fig09::run(&args);
    e::fig10::run(&args);
    e::fig11::run(&args);
    e::table2::run(&args);
    let f13 = e::fig13::run(&args);
    e::fig14::write_from(&args, &f13);
    e::table3::run(&args);
    e::ablations::run(&args);
    e::cluster_scaleout::run(&args);
    e::cluster_rebalance::run(&args);
    e::cluster_megafleet::run(&args);
    e::cluster_milliontask::run(&args);
    e::journal_whatif::run(&args);
    e::cluster_failover::run(&args);
    e::vm_consolidation::run(&args);
    e::vm_elasticity::run(&args);
    println!("\nAll experiments done. CSVs in {}", args.out.display());
}
