//! Figure 6: cost of the frequency transform and precision of the detected
//! frequency, as a function of the observation horizon `H` and the grid
//! step `δf`, at fixed `f_max = 100 Hz`, `ε = 0.5 Hz`.
//!
//! Shapes to reproduce (the absolute µs belong to our machine, not the
//! paper's 800 MHz Core 2): computation time grows linearly with `H`
//! (more events) and with `1/δf` (more bins); the detected frequency is
//! essentially insensitive to `δf` in this range.

use crate::setups::mp3_event_times;
use crate::{fmt, print_table, time_us, write_csv, Args};
use selftune_simcore::stats::{mean, std_dev};
use selftune_spectrum::{amplitude_spectrum, detect, PeakConfig, SpectrumConfig};

/// Slice of `times` within `[start, start + h)`; `times` must be sorted.
pub fn window(times: &[f64], start: f64, h: f64) -> &[f64] {
    let lo = times.partition_point(|&t| t < start);
    let hi = times.partition_point(|&t| t < start + h);
    &times[lo..hi]
}

/// Runs the sweep.
pub fn run(args: &Args) {
    println!("== Figure 6: transform cost & precision vs H and δf (fmax=100Hz) ==");
    let times = mp3_event_times(0, 8.0, args.seed);
    let reps = args.reps(100, 10);
    let horizons = [0.5, 1.0, 1.5, 2.0];
    let steps = [0.1, 0.2, 0.5];
    let mut rows = Vec::new();
    for &h in &horizons {
        for &df in &steps {
            let cfg = SpectrumConfig::new(30.0, 100.0, df);
            let mut costs = Vec::with_capacity(reps);
            let mut freqs = Vec::with_capacity(reps);
            for r in 0..reps {
                let start = 0.5 + 0.04 * r as f64;
                let ev = window(&times, start, h);
                let (spec, us) = time_us(|| amplitude_spectrum(ev, cfg));
                costs.push(us / 1000.0); // ms, as in the paper's plot
                let det = detect(&spec, &PeakConfig::default());
                if let Some(f) = det.detection.frequency() {
                    freqs.push(f);
                }
            }
            rows.push(vec![
                fmt(h, 1),
                fmt(df, 1),
                fmt(mean(&costs), 3),
                fmt(std_dev(&costs), 3),
                fmt(mean(&freqs), 2),
                fmt(std_dev(&freqs), 2),
                freqs.len().to_string(),
            ]);
        }
    }
    print_table(
        &[
            "H (s)",
            "δf (Hz)",
            "avg cost (ms)",
            "sd cost",
            "avg freq (Hz)",
            "sd freq",
            "detections",
        ],
        &rows,
    );
    println!("paper: cost ∝ H and ∝ 1/δf; precision barely affected by δf (0.1→0.5)");
    write_csv(
        &args.out_path("fig06_dft_overhead.csv"),
        &[
            "horizon_s",
            "df_hz",
            "avg_cost_ms",
            "sd_cost_ms",
            "avg_freq_hz",
            "sd_freq_hz",
            "detections",
        ],
        &rows,
    );
}
