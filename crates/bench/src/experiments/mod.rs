//! One module per reproduced table/figure, plus ablations.

pub mod ablations;
pub mod cluster_diurnal;
pub mod cluster_failover;
pub mod cluster_megafleet;
pub mod cluster_milliontask;
pub mod cluster_rebalance;
pub mod cluster_scaleout;
pub mod fig01;
pub mod fig02;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig13;
pub mod fig14;
pub mod journal_whatif;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod vm_consolidation;
pub mod vm_elasticity;
