//! Table 1: overhead of the tracers (NOTRACE / QTRACE / QOSTRACE /
//! STRACE) on an `ffmpeg` transcode, 10 repetitions each.
//!
//! Paper's numbers: baseline 21.09 s; QTRACE +0.63%, QOSTRACE +2.69%,
//! STRACE +5.51%. The shape to reproduce: QTRACE ≪ QOSTRACE < STRACE,
//! with QTRACE well under 1%.

use crate::{fmt, print_table, write_csv, Args};
use selftune_apps::{TranscodeConfig, Transcoder};
use selftune_sched::ReservationScheduler;
use selftune_simcore::rng::Rng;
use selftune_simcore::stats::{mean, std_dev};
use selftune_simcore::time::{Dur, Time};
use selftune_simcore::Kernel;
use selftune_tracer::{Tracer, TracerConfig, TracerKind};

fn one_run(kind: TracerKind, seed: u64) -> f64 {
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, _reader) = Tracer::create(TracerConfig {
        kind,
        capacity: 1 << 20,
        ..TracerConfig::default()
    });
    kernel.install_hook(Box::new(hook));
    let t = Transcoder::new(TranscodeConfig::ffmpeg_table1(), Rng::new(seed));
    kernel.spawn("ffmpeg", Box::new(t));
    kernel.run_until(Time::ZERO + Dur::secs(60));
    let done = kernel.metrics().marks("ffmpeg.done");
    assert_eq!(done.len(), 1, "transcode did not finish");
    done[0].as_secs_f64()
}

/// Runs the four tracers and prints the Table 1 layout.
pub fn run(args: &Args) {
    println!("== Table 1: tracer overhead on the ffmpeg transcode ==");
    let reps = args.reps(10, 3);
    let kinds = [
        TracerKind::NoTrace,
        TracerKind::QTrace,
        TracerKind::QosTrace,
        TracerKind::Strace,
    ];
    let mut results: Vec<(TracerKind, f64, f64)> = Vec::new();
    for (k, kind) in kinds.into_iter().enumerate() {
        // Independent noise streams per tracer, as in real repeated runs.
        let samples: Vec<f64> = (0..reps)
            .map(|r| one_run(kind, args.seed + (1000 * k + r) as u64))
            .collect();
        results.push((kind, mean(&samples), std_dev(&samples)));
    }
    let baseline = results[0].1;
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|&(kind, m, sd)| {
            let rel = if kind == TracerKind::NoTrace {
                "-".to_owned()
            } else {
                format!("{:.2}%", 100.0 * (m - baseline) / baseline)
            };
            vec![kind.name().to_owned(), fmt(m, 4), rel, fmt(sd, 6)]
        })
        .collect();
    print_table(
        &["Tracer", "Average (s)", "Relative avg", "Std dev (s)"],
        &rows,
    );
    println!("paper: NOTRACE 21.09s; QTRACE +0.63%, QOSTRACE +2.69%, STRACE +5.51%");
    write_csv(
        &args.out_path("table1_tracer_overhead.csv"),
        &["tracer", "avg_s", "rel_overhead_percent", "std_s"],
        &results
            .iter()
            .map(|&(kind, m, sd)| {
                vec![
                    kind.name().to_owned(),
                    fmt(m, 6),
                    fmt(100.0 * (m - baseline) / baseline, 4),
                    fmt(sd, 6),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // Shape assertions (who wins, by what factor).
    let q = results[1].1 - baseline;
    let qos = results[2].1 - baseline;
    let s = results[3].1 - baseline;
    assert!(q < qos && qos < s, "ordering must match the paper");
    assert!(q / baseline < 0.01, "QTRACE must stay under 1%");
}
