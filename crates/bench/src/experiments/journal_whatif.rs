//! Decision journal: record, replay-verify, and what-if counterfactuals.
//!
//! The acceptance experiment of `selftune_journal`:
//!
//! 1. **Record** the canonical skewed-overload fleet (or the `--scenario`
//!    file) into a decision journal.
//! 2. **Codec** — the text form must round-trip exactly.
//! 3. **Replay** — a `Replayer` at 1, 2 and 8 threads must reproduce the
//!    live aggregates byte for byte from the journal alone.
//! 4. **What-if** — swap one policy from a cut epoch and diff outcomes.
//!    For the built-in scenario the `disable_rebalance` counterfactual
//!    must byte-match a live run with the rebalancer starved (the journal
//!    answers "what without feedback?" *exactly*, not approximately), and
//!    its miss rate must be strictly worse than the factual run — the
//!    recorded analogue of the static-vs-feedback gap asserted by
//!    `cluster_rebalance`.
//!
//! Prints the what-if table, writes `journal_whatif.csv`, and honours
//! `--journal FILE` by writing the recorded journal itself.

use crate::{fmt, print_table, write_csv, Args};
use selftune_cluster::prelude::*;
use selftune_journal::prelude::*;

/// The canonical skewed-overload fleet with the feedback rebalancer on
/// (shared with `cluster_rebalance` and `tests/cluster_rebalance_e2e.rs`).
fn builtin_scenario() -> ScenarioSpec {
    ScenarioSpec::skewed_overload_demo(4, 12).with_rebalance(ScenarioSpec::demo_rebalance())
}

/// One what-if row: label, query, report.
fn whatif_row(journal: &Journal, whatif: &WhatIf) -> Vec<String> {
    let report = run_whatif(journal, whatif, 2);
    let (b, v) = (&report.baseline, &report.variant);
    vec![
        whatif.swap.label().to_owned(),
        whatif.cut_epoch.to_string(),
        fmt(b.miss_ratio(), 4),
        fmt(v.miss_ratio(), 4),
        fmt(report.miss_delta(), 4),
        b.rebalance.moves.to_string(),
        v.rebalance.moves.to_string(),
    ]
}

/// Runs the record → verify → what-if pipeline and writes
/// `journal_whatif.csv`.
///
/// The hard claims (replay byte-identity at 1/2/8 threads, codec
/// round-trip, counterfactual exactness) are asserted on every run; the
/// miss-rate-worsens claim only on the built-in scenario — an arbitrary
/// `--scenario` file carries no guarantee that feedback wins.
pub fn run(args: &Args) {
    println!("== Journal what-if: record, replay, counterfactual ==");
    let file_spec = args.scenario_spec();
    let builtin = file_spec.is_none();
    let spec = match &file_spec {
        Some(spec) => {
            println!("scenario file: {}", spec.name);
            spec.clone()
        }
        None => builtin_scenario(),
    };

    // 1. Record.
    let (live, journal) = Journal::record(2, &spec, args.seed);
    println!(
        "recorded {} decision records over {} rebalance epochs (miss ratio {:.4})",
        journal.records.len(),
        journal.epochs(),
        live.miss_ratio()
    );
    args.write_journal(&journal);

    // 2. Codec round-trip.
    let text = journal.to_text();
    let reloaded = Journal::from_text(&text).unwrap_or_else(|e| panic!("journal reload: {e}"));
    assert_eq!(reloaded, journal, "journal text must round-trip exactly");
    assert_eq!(
        reloaded.to_text(),
        text,
        "journal text must be a fixed point"
    );

    // 3. Replay divergence check at 1, 2 and 8 threads.
    for threads in [1usize, 2, 8] {
        let replayed = Replayer::new(threads)
            .verify(&reloaded)
            .unwrap_or_else(|e| panic!("replay diverged at {threads} threads: {e}"));
        assert_eq!(replayed.summary_csv(), live.summary_csv());
        println!("replay @ {threads} threads: byte-identical");
    }

    // 4. What-if queries.
    let mid = journal.epochs() / 2;
    let queries: Vec<WhatIf> = if args.fast {
        vec![WhatIf {
            cut_epoch: 0,
            swap: PolicySwap::DisableRebalance,
        }]
    } else {
        vec![
            WhatIf {
                cut_epoch: 0,
                swap: PolicySwap::DisableRebalance,
            },
            WhatIf {
                cut_epoch: mid,
                swap: PolicySwap::DisableRebalance,
            },
            WhatIf {
                cut_epoch: 0,
                swap: PolicySwap::Placement(PolicyKind::WorstFit),
            },
            WhatIf {
                cut_epoch: 0,
                swap: PolicySwap::FixedShares,
            },
            // Node-share plane swaps: how tight could the per-node bounds
            // have been over the same recorded history? (Safe on any
            // journal with an epoch grid — the rebalancer is on here.)
            WhatIf {
                cut_epoch: mid,
                swap: PolicySwap::NodeShareBounds {
                    floor: 0.6,
                    cap: 0.92,
                },
            },
            WhatIf {
                cut_epoch: mid,
                swap: PolicySwap::NodeShareBounds {
                    floor: 0.5,
                    cap: 0.8,
                },
            },
        ]
    };
    let rows: Vec<Vec<String>> = queries.iter().map(|w| whatif_row(&journal, w)).collect();
    let header = [
        "swap",
        "cut_epoch",
        "baseline_miss",
        "variant_miss",
        "miss_delta",
        "baseline_moves",
        "variant_moves",
    ];
    print_table(&header, &rows);
    write_csv(&args.out_path("journal_whatif.csv"), &header, &rows);

    // Counterfactual exactness: with the cut at epoch 0 nothing is
    // pinned, so the disable-rebalance variant must byte-match a live run
    // of the swapped spec.
    let whatif = WhatIf {
        cut_epoch: 0,
        swap: PolicySwap::DisableRebalance,
    };
    let report = run_whatif(&journal, &whatif, 2);
    let live_variant = ClusterRunner::new(2).run(&variant_spec(&journal, &whatif), args.seed);
    assert_eq!(
        report.variant.summary_csv(),
        live_variant.summary_csv(),
        "the counterfactual must equal a live run of the swapped spec"
    );
    assert_eq!(
        report.baseline.summary_csv(),
        live.summary_csv(),
        "the baseline must be the exact replay"
    );

    if builtin {
        // The quantitative claim on the canonical scenario: removing the
        // rebalancer loses its migrations and pays for it in misses.
        assert!(
            report.baseline.rebalance.moves >= 1,
            "the factual run must have migrated"
        );
        assert_eq!(
            report.variant.rebalance.moves, 0,
            "the counterfactual must not migrate"
        );
        assert!(
            report.miss_delta() > 0.0,
            "disabling the rebalancer must raise the miss rate ({:.4} -> {:.4})",
            report.baseline.miss_ratio(),
            report.variant.miss_ratio()
        );
        println!(
            "(assertions passed: replay byte-identical at 1/2/8 threads; \
             counterfactual exact; miss ratio {:.4} -> {:.4} without the rebalancer)",
            report.baseline.miss_ratio(),
            report.variant.miss_ratio()
        );
    } else {
        println!(
            "(assertions passed: replay byte-identical at 1/2/8 threads; counterfactual exact)"
        );
    }
}
