//! Log-shipped replication and failover: leader streams the decision
//! journal, a hot standby mirrors it, the leader dies at the flash-crowd
//! peak, the standby takes over.
//!
//! The composed diurnal fleet (all three control levels closed) runs as
//! the leader with a [`Shipper`] attached; a [`Follower`] consumes the
//! stream chunk by chunk, verifying every checkpoint byte for byte and
//! sampling its lag into interned `distrib.*` metrics (written out as
//! `distrib_lag.csv`). Then the failover drill:
//!
//! * **uninterrupted** — the leader's own run (the reference).
//! * **promoted** — the leader is killed right as the flash crowd hits,
//!   *before* the feedback controller has reacted to it; the follower
//!   promotes and continues from its replica. Because the stream pins
//!   *decisions*, the promoted run must equal the uninterrupted one
//!   **byte for byte** — zero decision loss — which the experiment
//!   asserts.
//! * **cold-restart** — the baseline failover without replication: a
//!   controller restarted from nothing is blind for an outage window
//!   (no migrations while it rebuilds feedback state), and that window
//!   is exactly when the crowd needs rebalancing. Its miss rate must be
//!   strictly worse than the promoted follower's.
//!
//! With `--scenario FILE` the drill runs on the loaded fleet and also
//! writes `leader.journal` / `follower.journal` — asserted byte-equal —
//! for the CI replication-divergence job.

use selftune_cluster::prelude::*;
use selftune_cluster::runner::plan_fleet_pinned;
use selftune_distrib::prelude::*;
use selftune_journal::Journal;
use selftune_simcore::metrics::Metrics;
use selftune_simcore::time::Time;

use crate::{fmt, print_table, time_us, write_csv, Args};

/// Fleet sizes swept: `(nodes, tasks)`.
const SWEEP: [(usize, usize); 2] = [(6, 12), (10, 20)];

/// Epochs the cold-restarted controller stays blind after the crash.
const COLD_OUTAGE_EPOCHS: usize = 3;

/// The composed diurnal fleet: elastic VM shares, node re-bounding and
/// the feedback rebalancer all on (same construction as the composed
/// variant of `cluster_diurnal`).
fn composed(nodes: usize, tasks: usize) -> ScenarioSpec {
    let mut spec = ScenarioSpec::diurnal_demo(nodes, tasks);
    for vm in &mut spec.vms {
        vm.elastic = true;
    }
    spec.with_node_share(ScenarioSpec::diurnal_node_share())
        .with_rebalance(ScenarioSpec::diurnal_rebalance())
}

/// One replication + failover drill over `spec`. Returns the table row
/// and appends per-chunk lag samples to `lag_rows`. The cold-restart
/// miss-cost claim is only asserted with `strict` (the built-in composed
/// fleet guarantees the crowd needs the rebalancer; an arbitrary
/// `--scenario` file does not).
fn drill(
    spec: &ScenarioSpec,
    args: &Args,
    strict: bool,
    lag_rows: &mut Vec<Vec<String>>,
) -> (Vec<String>, Follower) {
    let every = args.checkpoint_every.unwrap_or(2);
    let epochs = ClusterRunner::epoch_ends(spec).len() - 1;

    // Leader: run with the shipper attached; frames buffer on the wire.
    let (tx, mut rx) = ChannelTransport::pair();
    let mut shipper = Shipper::new(tx, spec, args.seed, 2, Some(every));
    let (leader, t_us) =
        time_us(|| ClusterRunner::new(2).run_logged_with(spec, args.seed, &mut shipper));
    let progress = shipper.progress();
    assert!(progress.finished, "leader must finish its stream");
    assert!(
        progress.checkpoints >= 1,
        "the stream must carry at least one checkpoint (cadence {every}, {epochs} epochs)"
    );

    // Follower: consume chunk by chunk on a different thread count,
    // sampling apply-lag against the leader's final position.
    let mut follower = Follower::new(3);
    let mut metrics = Metrics::new();
    while let Some(chunk) = rx.recv() {
        let applied = follower
            .feed(&chunk)
            .unwrap_or_else(|e| panic!("clean wire must apply: {e}"));
        let seq = follower.expected_seq() - 1;
        follower.observe_lag(&mut metrics, &progress, Time::from_ns(seq));
        let lag = follower.lag(&progress);
        lag_rows.push(vec![
            spec.name.clone(),
            seq.to_string(),
            format!("{applied:?}")
                .split([' ', '{'])
                .next()
                .expect("kind")
                .to_owned(),
            follower.epochs_applied().to_string(),
            lag.epochs.to_string(),
            lag.records.to_string(),
            lag.frames.to_string(),
        ]);
    }
    let stats = follower.stats();
    assert_eq!(stats.dropped, 0, "clean wire must not drop");
    assert_eq!(stats.checkpoints, progress.checkpoints);
    let finale = follower.finale().expect("stream finished");
    assert_eq!(
        finale.summary_csv(),
        leader.summary_csv(),
        "replica finale must equal the leader byte for byte"
    );
    // The interned lag series must have been sampled once per chunk.
    assert_eq!(
        metrics.series("distrib.lag.epochs").len() as u64,
        progress.frames
    );

    // Failover drill: replay the stream into a fresh standby, kill the
    // leader right after it ships the epoch batch at the flash-crowd
    // onset — the crowd has arrived but the rebalancer has not yet
    // reacted, so the decisions at stake are the valuable ones.
    let crash_epoch = epochs / 4;
    let mut standby = Follower::new(2);
    for chunk in shipper.frames_from(0) {
        match standby.feed(chunk).expect("prefix applies") {
            Applied::Epoch { epoch, .. } if epoch == crash_epoch => break,
            _ => {}
        }
    }
    assert!(standby.lag(&progress).frames > 0, "leader died mid-stream");
    let promoted = standby.promote().expect("standby is promotable");
    assert_eq!(
        promoted.summary_csv(),
        leader.summary_csv(),
        "promotion must lose zero decisions (byte-identical to the uninterrupted run)"
    );

    // Cold-restart baseline: same crash instant, no replica — the
    // restarted controller replays nothing and is blind (no migrations)
    // for the outage window while it rebuilds feedback state.
    let replica = standby.journal().expect("standby holds a replica");
    let plan = plan_fleet_pinned(spec, args.seed, &replica.pinned_plan());
    let mut moves = replica.pinned_moves(Some(crash_epoch + 1));
    for slot in moves
        .epochs
        .iter_mut()
        .skip(crash_epoch + 1)
        .take(COLD_OUTAGE_EPOCHS)
    {
        *slot = Some(EpochDecision::default());
    }
    let cold = ClusterRunner::new(2).run_pinned(spec, args.seed, &plan, &moves);
    if strict {
        assert!(
            cold.miss_ratio() > promoted.miss_ratio(),
            "a blind cold restart through the flash crowd must cost misses ({:.4} vs {:.4})",
            cold.miss_ratio(),
            promoted.miss_ratio()
        );
    }

    let row = vec![
        spec.nodes.to_string(),
        spec.flat_tasks().to_string(),
        progress.frames.to_string(),
        progress.records.to_string(),
        progress.checkpoints.to_string(),
        crash_epoch.to_string(),
        fmt(leader.miss_ratio(), 4),
        fmt(promoted.miss_ratio(), 4),
        fmt(cold.miss_ratio(), 4),
        fmt(t_us / 1e3, 1),
    ];
    (row, follower)
}

/// Runs the replication + failover drill and writes
/// `cluster_failover.csv` and `distrib_lag.csv`.
pub fn run(args: &Args) {
    println!("== Cluster failover: log-shipped replication, checkpoints, promotion ==");
    let file_spec = args.scenario_spec();
    let mut rows = Vec::new();
    let mut lag_rows = Vec::new();

    if let Some(spec) = &file_spec {
        println!("scenario file: {}", spec.name);
        args.record_journal(spec);
        let (row, follower) = drill(spec, args, false, &mut lag_rows);
        rows.push(row);
        // Divergence material for CI: the leader's journal (recorded
        // independently at the leader's thread count) and the follower's
        // replica must serialise to identical bytes.
        let (_, leader_journal) = Journal::record(2, spec, args.seed);
        let follower_journal = follower.journal().expect("replica complete");
        let (leader_text, follower_text) = (leader_journal.to_text(), follower_journal.to_text());
        std::fs::write(args.out_path("leader.journal"), &leader_text)
            .expect("write leader journal");
        std::fs::write(args.out_path("follower.journal"), &follower_text)
            .expect("write follower journal");
        assert_eq!(
            leader_text, follower_text,
            "leader and follower journals must be byte-identical"
        );
        println!(
            "leader.journal == follower.journal ({} bytes)",
            leader_text.len()
        );
    } else {
        let sweep: &[(usize, usize)] = if args.fast { &SWEEP[..1] } else { &SWEEP };
        for &(nodes, tasks) in sweep {
            let (row, _) = drill(&composed(nodes, tasks), args, true, &mut lag_rows);
            rows.push(row);
        }
    }

    let header = [
        "nodes",
        "tasks",
        "frames",
        "records",
        "checkpoints",
        "crash_epoch",
        "miss_uninterrupted",
        "miss_promoted",
        "miss_cold_restart",
        "leader_wall_ms",
    ];
    print_table(&header, &rows);
    write_csv(&args.out_path("cluster_failover.csv"), &header, &rows);
    write_csv(
        &args.out_path("distrib_lag.csv"),
        &[
            "scenario",
            "seq",
            "applied",
            "epochs_applied",
            "lag_epochs",
            "lag_records",
            "lag_frames",
        ],
        &lag_rows,
    );
    if file_spec.is_none() {
        println!(
            "(assertions passed: replica byte-identical at every checkpoint and at finish; \
             promotion loses zero decisions; a blind cold restart costs misses)"
        );
    } else {
        println!(
            "(assertions passed: replica byte-identical at every checkpoint and at finish; \
             promotion loses zero decisions; journals byte-identical)"
        );
    }
}
