//! The 10k-node scale story: bucketed placement index + sketch aggregates.
//!
//! [`ScenarioSpec::megafleet_demo`] is the skewed-overload experiment
//! blown up to fleet scale: first-fit packs lying legacy tasks onto the
//! low-id slice of a 10k-node fleet (~15 per node), a hog burst melts the
//! first few packed nodes, and the feedback rebalancer drains them into
//! the idle majority. At this size the two PR-7 mechanisms carry the run:
//!
//! * every placement / rebalance destination query goes through the
//!   bucketed [`selftune_cluster::HeadroomIndex`] (O(log n), not a fleet
//!   scan) — the experiment re-runs with `use_scan_placement` and asserts
//!   byte-identical aggregates, then reports the wall-clock gap;
//! * per-task gap vectors are replaced by mergeable histogram sketches
//!   (`with_sketch_aggregates`), keeping per-node report state O(1) per
//!   task — the experiment asserts the sketch summaries are still
//!   byte-identical at 1, 2 and 8 worker threads.
//!
//! `--fast` shrinks tasks/horizon; `--smoke` shrinks further to the CI
//! wall-clock budget. Node count stays at 10k in every mode — the node
//! axis is the point.

use crate::{fmt, print_table, time_us, write_csv, Args};
use selftune_cluster::prelude::*;
use selftune_simcore::time::Dur;

/// Sizes per mode: `(nodes, tasks, horizon)`. The node axis never
/// shrinks — 10k nodes is the point — only the liar population and the
/// virtual horizon do. The task count is kept small enough relative to
/// the rebalancer's move budget that feedback can actually heal the
/// over-packed prefix (see [`ScenarioSpec::megafleet_rebalance`]).
fn sizes(args: &Args) -> (usize, usize, Dur) {
    if args.smoke {
        (10_000, 400, Dur::secs(3))
    } else if args.fast {
        (10_000, 800, Dur::secs(4))
    } else {
        (10_000, 1_600, Dur::secs(6))
    }
}

/// Runs the comparison and writes `cluster_megafleet.csv`.
///
/// With `--scenario FILE` the built-in megafleet is replaced by the
/// loaded fleet (the file's configuration is the feedback run; the same
/// spec with the rebalancer off is the static baseline) and the
/// improvement assertion is skipped — an arbitrary scenario carries no
/// guarantee that feedback wins. The determinism and index-vs-scan
/// identity assertions always apply.
pub fn run(args: &Args) {
    println!("== Cluster megafleet: placement index + sketch aggregates at 10k nodes ==");
    let file_spec = args.scenario_spec();
    let (frozen_spec, feedback_spec, assert_improvement) = match &file_spec {
        Some(spec) => {
            println!("scenario file: {}", spec.name);
            let mut frozen = spec.clone();
            frozen.rebalance.enabled = false;
            (frozen, spec.clone(), false)
        }
        None => {
            let (nodes, tasks, horizon) = sizes(args);
            let frozen = ScenarioSpec::megafleet_demo(nodes, tasks, horizon);
            let feedback = frozen
                .clone()
                .with_rebalance(ScenarioSpec::megafleet_rebalance(horizon));
            (frozen, feedback, true)
        }
    };
    let (nodes, tasks) = (frozen_spec.nodes, frozen_spec.tasks);
    let sim_total = frozen_spec.horizon.as_secs_f64() * nodes as f64;
    args.record_journal(&feedback_spec);

    let runner = |threads: usize| ClusterRunner::new(threads).with_sketch_aggregates(true);
    let (frozen, t_frozen) = time_us(|| runner(2).run(&frozen_spec, args.seed));
    let (feedback, t_feedback) = time_us(|| runner(2).run(&feedback_spec, args.seed));

    // Determinism: sketch-mode aggregates fold per-node histograms in
    // node-id order, so the thread count must not leak into the bytes.
    let serial = runner(1).run(&feedback_spec, args.seed);
    let wide = runner(8).run(&feedback_spec, args.seed);
    assert_eq!(
        serial.summary_csv(),
        feedback.summary_csv(),
        "sketch aggregates must not depend on thread count (1 vs 2)"
    );
    assert_eq!(
        serial.summary_csv(),
        wide.summary_csv(),
        "sketch aggregates must not depend on thread count (1 vs 8)"
    );

    // Exactness: the bucketed index is a faster data structure, not a
    // different policy. The linear-scan escape hatch must reproduce both
    // runs byte for byte (placements *and* rebalance destinations).
    let (scan_frozen, t_scan_frozen) = time_us(|| {
        runner(2)
            .with_scan_placement(true)
            .run(&frozen_spec, args.seed)
    });
    let (scan_feedback, t_scan_feedback) = time_us(|| {
        runner(2)
            .with_scan_placement(true)
            .run(&feedback_spec, args.seed)
    });
    assert_eq!(
        scan_frozen.summary_csv(),
        frozen.summary_csv(),
        "index placement must be byte-identical to the scan placer (static)"
    );
    assert_eq!(
        scan_feedback.summary_csv(),
        feedback.summary_csv(),
        "index placement must be byte-identical to the scan placer (feedback)"
    );

    // The payoff at scale: the rebalancer still wins on misses, with the
    // whole idle majority as destination pool.
    if assert_improvement {
        assert!(
            feedback.miss_ratio() < frozen.miss_ratio(),
            "feedback must cut the fleet miss rate ({:.5} vs {:.5})",
            feedback.miss_ratio(),
            frozen.miss_ratio()
        );
        assert!(
            feedback.rebalance.moves >= 1,
            "the megafleet scenario must trigger migrations"
        );
    }
    if let Some(delay) = feedback.mean_migrated_attach_delay_ms() {
        println!("mean migrated attach delay: {delay:.1} ms");
    }

    let mut rows = Vec::new();
    for (mode, placer, m, t_us) in [
        ("static", "index", &frozen, t_frozen),
        ("static", "scan", &scan_frozen, t_scan_frozen),
        ("feedback", "index", &feedback, t_feedback),
        ("feedback", "scan", &scan_feedback, t_scan_feedback),
    ] {
        rows.push(vec![
            nodes.to_string(),
            tasks.to_string(),
            mode.to_owned(),
            placer.to_owned(),
            m.completions().to_string(),
            m.misses().to_string(),
            fmt(m.miss_ratio(), 5),
            m.rebalance.moves.to_string(),
            fmt(t_us / 1e3, 1),
            fmt(sim_total / (t_us / 1e6), 0),
        ]);
    }
    let header = [
        "nodes",
        "tasks",
        "placement",
        "placer",
        "completions",
        "misses",
        "miss_ratio",
        "migrations",
        "wall_ms",
        "sim_s_per_wall_s",
    ];
    print_table(&header, &rows);
    write_csv(&args.out_path("cluster_megafleet.csv"), &header, &rows);
    println!(
        "(assertions passed: miss-rate reduced at {nodes} nodes; index == scan; \
         byte-identical at 1/2/8 threads)"
    );
}
