//! Figure 10: the normalised amplitude spectrum of the traced player at
//! increasing tracing times (0.2, 0.5, 1, 2, 4 s).
//!
//! Shape to reproduce: peaks near 32.5, 65 and 97.5 Hz, already visible at
//! 0.5 s and "indisputable" from 1 s on; the peaks sharpen with longer
//! observation (the sinc main lobe narrows as 1/H).

use crate::setups::mp3_event_times;
use crate::{fmt, print_table, write_csv, Args};
use selftune_spectrum::{amplitude_spectrum, SpectrumConfig};

/// Computes the spectra and writes them as CSV columns.
pub fn run(args: &Args) {
    println!("== Figure 10: normalised spectrum vs tracing time ==");
    let cfg = SpectrumConfig::new(30.0, 100.0, 0.1);
    let tracing_times = [0.2, 0.5, 1.0, 2.0, 4.0];
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for &tt in &tracing_times {
        let times = mp3_event_times(0, tt, args.seed);
        let spec = amplitude_spectrum(&times, cfg);
        columns.push(spec.normalized());
    }

    // CSV: one row per frequency bin.
    let bins = cfg.bins();
    let mut rows = Vec::with_capacity(bins);
    for i in 0..bins {
        let mut row = vec![fmt(cfg.freq_of(i), 1)];
        for col in &columns {
            row.push(fmt(col[i], 4));
        }
        rows.push(row);
    }
    write_csv(
        &args.out_path("fig10_spectra.csv"),
        &[
            "freq_hz", "obs_0.2s", "obs_0.5s", "obs_1s", "obs_2s", "obs_4s",
        ],
        &rows,
    );

    // Report the three strongest bins per tracing time.
    let mut table = Vec::new();
    for (k, &tt) in tracing_times.iter().enumerate() {
        let mut idx: Vec<usize> = (0..bins).collect();
        idx.sort_by(|&a, &b| columns[k][b].partial_cmp(&columns[k][a]).unwrap());
        // Suppress near-duplicates (same lobe) within 2 Hz.
        let mut peaks: Vec<usize> = Vec::new();
        for i in idx {
            if peaks
                .iter()
                .all(|&p| (cfg.freq_of(p) - cfg.freq_of(i)).abs() > 2.0)
            {
                peaks.push(i);
            }
            if peaks.len() == 3 {
                break;
            }
        }
        peaks.sort_unstable();
        table.push(vec![
            fmt(tt, 1),
            peaks
                .iter()
                .map(|&p| format!("{:.1}Hz({:.2})", cfg.freq_of(p), columns[k][p]))
                .collect::<Vec<_>>()
                .join("  "),
        ]);
    }
    print_table(&["tracing time (s)", "top-3 normalised peaks"], &table);
    println!("paper: peaks at 32.5 / 65 / 97.5 Hz, evident from 0.5s, indisputable at 1s+");
}
