//! Ablations beyond the paper's evaluation, backing the design choices
//! called out in DESIGN.md:
//!
//! * **CBS depletion mode** — hard (throttle) vs soft (postpone): soft
//!   reservations leak bandwidth to a saturated task, disturbing others.
//! * **Predictors** — the paper's quantile estimator vs pure max vs EWMA:
//!   the quantile trades a little under-provisioning for stability.
//! * **Supervisor compression** — proportional vs equal under overload.

use crate::setups::video_run;
use crate::{fmt, print_table, write_csv, Args};
use selftune_core::{ControllerConfig, FeedbackKind, LfsPpConfig, ManagerConfig};
use selftune_sched::{CbsMode, Compression};
use selftune_simcore::stats::{mean, std_dev};

const WARMUP_FRAMES: usize = 200;

fn steady(xs: &[f64]) -> &[f64] {
    &xs[WARMUP_FRAMES.min(xs.len().saturating_sub(1))..]
}

/// CBS hard vs soft under moderate background load.
pub fn cbs_mode(args: &Args) {
    println!("== Ablation: CBS depletion mode (hard vs soft) ==");
    let secs = if args.fast { 15 } else { 40 };
    let mut rows = Vec::new();
    for (name, mode) in [("hard", CbsMode::Hard), ("soft", CbsMode::Soft)] {
        let out = video_run(
            ControllerConfig::default(),
            ManagerConfig {
                cbs_mode: mode,
                ..ManagerConfig::default()
            },
            0.40,
            secs,
            args.seed,
        );
        let s = steady(&out.ift_ms);
        rows.push(vec![
            name.to_owned(),
            fmt(mean(s), 3),
            fmt(std_dev(s), 3),
            out.dropped.to_string(),
        ]);
    }
    print_table(
        &["CBS mode", "avg IFT (ms)", "σ IFT (ms)", "dropped"],
        &rows,
    );
    write_csv(
        &args.out_path("ablation_cbs_mode.csv"),
        &["mode", "avg_ift_ms", "sd_ift_ms", "dropped"],
        &rows,
    );
}

/// Predictor comparison: quantile (paper) vs max vs near-mean quantile.
pub fn predictors(args: &Args) {
    println!("== Ablation: predictor choice in LFS++ ==");
    let secs = if args.fast { 15 } else { 40 };
    let variants: [(&str, LfsPpConfig); 3] = [
        ("quantile 0.9375/16 (paper)", LfsPpConfig::default()),
        (
            "max of 16",
            LfsPpConfig {
                quantile: 1.0,
                ..LfsPpConfig::default()
            },
        ),
        (
            "median of 16",
            LfsPpConfig {
                quantile: 0.5,
                ..LfsPpConfig::default()
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, cfg) in variants {
        let out = video_run(
            ControllerConfig {
                feedback: FeedbackKind::LfsPp(cfg),
                ..ControllerConfig::default()
            },
            ManagerConfig::default(),
            0.0,
            secs,
            args.seed,
        );
        let s = steady(&out.ift_ms);
        let bw: Vec<f64> = out.bw.iter().map(|&(_, b)| b).collect();
        rows.push(vec![
            name.to_owned(),
            fmt(mean(s), 3),
            fmt(std_dev(s), 3),
            fmt(mean(&bw), 4),
            out.dropped.to_string(),
        ]);
    }
    print_table(
        &[
            "predictor",
            "avg IFT (ms)",
            "σ IFT (ms)",
            "avg reserved bw",
            "dropped",
        ],
        &rows,
    );
    write_csv(
        &args.out_path("ablation_predictors.csv"),
        &["predictor", "avg_ift_ms", "sd_ift_ms", "avg_bw", "dropped"],
        &rows,
    );
}

/// Supervisor compression policy under overload (70% background).
pub fn compression(args: &Args) {
    println!("== Ablation: supervisor compression under overload ==");
    let secs = if args.fast { 15 } else { 40 };
    let mut rows = Vec::new();
    for (name, policy) in [
        ("proportional", Compression::Proportional),
        ("equal", Compression::Equal),
    ] {
        let mut mgr_cfg = ManagerConfig::default();
        mgr_cfg.supervisor.policy = policy;
        let out = video_run(ControllerConfig::default(), mgr_cfg, 0.70, secs, args.seed);
        let s = steady(&out.ift_ms);
        rows.push(vec![
            name.to_owned(),
            fmt(mean(s), 3),
            fmt(std_dev(s), 3),
            out.dropped.to_string(),
        ]);
    }
    print_table(
        &["compression", "avg IFT (ms)", "σ IFT (ms)", "dropped"],
        &rows,
    );
    write_csv(
        &args.out_path("ablation_compression.csv"),
        &["policy", "avg_ift_ms", "sd_ift_ms", "dropped"],
        &rows,
    );
}

/// Runs every ablation.
pub fn run(args: &Args) {
    cbs_mode(args);
    predictors(args);
    compression(args);
}
