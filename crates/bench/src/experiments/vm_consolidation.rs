//! VM consolidation: hierarchical virtual platforms vs a flat node.
//!
//! The `crates/virt` acceptance experiment (see `selftune_virt::demo` for
//! the scenario shared with the e2e test and the example): a well-behaved
//! 25 Hz tenant and a noisy neighbour consolidate onto one host at a
//! fixed total bandwidth, solo / hierarchical / flat. The isolation and
//! throughput claims are asserted, the per-tenant table printed and
//! `vm_consolidation.csv` written.

use selftune_simcore::time::Dur;
use selftune_virt::demo::{self, GuestStats};

use crate::{fmt, print_table, time_us, write_csv, Args};

/// Horizons swept: the short one is the e2e's, the long one shows the
/// steady state.
const HORIZONS_SECS: [u64; 2] = [10, 30];

fn row(config: &str, tenant: &str, horizon: u64, s: &GuestStats, wall_ms: f64) -> Vec<String> {
    vec![
        horizon.to_string(),
        config.to_owned(),
        tenant.to_owned(),
        s.completions.to_string(),
        s.gaps.to_string(),
        s.misses.to_string(),
        fmt(s.miss_rate(), 4),
        fmt(wall_ms, 1),
    ]
}

/// Runs the comparison and writes `vm_consolidation.csv`.
pub fn run(args: &Args) {
    println!("== VM consolidation: two-level CBS vs flat self-tuning ==");
    let horizons: &[u64] = if args.fast {
        &HORIZONS_SECS[..1]
    } else {
        &HORIZONS_SECS
    };
    let mut rows = Vec::new();
    for &secs in horizons {
        let horizon = Dur::secs(secs);
        let (solo, t_solo) = time_us(|| demo::run_solo(horizon, args.seed));
        let (hier, t_hier) = time_us(|| demo::run_hierarchical(horizon, args.seed));
        let (flat, t_flat) = time_us(|| demo::run_flat(horizon, args.seed));

        // The subsystem's claims, asserted on every run.
        let envelope = (2.0 * solo.miss_rate()).max(0.05);
        assert!(
            hier.victim.miss_rate() <= envelope,
            "isolation violated: hierarchical victim at {:.4} vs envelope {envelope:.4}",
            hier.victim.miss_rate()
        );
        assert!(
            flat.victim.miss_rate() > envelope,
            "flat victim unexpectedly isolated: {:.4}",
            flat.victim.miss_rate()
        );
        assert!(
            hier.completions() >= flat.completions(),
            "hierarchical must match flat throughput: {} < {}",
            hier.completions(),
            flat.completions()
        );

        rows.push(row("solo", "victim", secs, &solo, t_solo / 1e3));
        rows.push(row(
            "hierarchical",
            "victim",
            secs,
            &hier.victim,
            t_hier / 1e3,
        ));
        rows.push(row("hierarchical", "noisy", secs, &hier.noisy, 0.0));
        rows.push(row("flat", "victim", secs, &flat.victim, t_flat / 1e3));
        rows.push(row("flat", "noisy", secs, &flat.noisy, 0.0));
    }

    let header = [
        "horizon_s",
        "config",
        "tenant",
        "completions",
        "gaps",
        "misses",
        "miss_rate",
        "wall_ms",
    ];
    print_table(&header, &rows);
    write_csv(&args.out_path("vm_consolidation.csv"), &header, &rows);
    println!(
        "(assertions passed: victim isolated within 2x of solo under hierarchy, \
         flat exceeds it; hierarchical completions >= flat at equal bandwidth)"
    );
}
