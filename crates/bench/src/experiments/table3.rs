//! Table 3: inter-frame times of the 25 fps video under LFS++ (full stack,
//! rate detection enabled) with periodic real-time background load from
//! 20% to 70%.
//!
//! Shape to reproduce: the average stays pinned at ≈ 40 ms while the
//! standard deviation grows with the load, until the system saturates
//! (70%: video needs ≈ 30% on top → compression → degraded average).

use crate::setups::video_run;
use crate::{fmt, print_table, write_csv, Args};
use selftune_core::{ControllerConfig, ManagerConfig};
use selftune_simcore::stats::{mean, std_dev};

/// Frames skipped before computing statistics (adaptation transient).
const WARMUP_FRAMES: usize = 200;

/// Runs the load sweep.
pub fn run(args: &Args) {
    println!("== Table 3: LFS++ inter-frame times under periodic RT load ==");
    let secs = if args.fast { 20 } else { 40 };
    let loads = [0.20, 0.30, 0.40, 0.50, 0.60, 0.70];
    let mut rows = Vec::new();
    for &load in &loads {
        let out = video_run(
            ControllerConfig::default(),
            ManagerConfig::default(),
            load,
            secs,
            args.seed,
        );
        let steady = &out.ift_ms[WARMUP_FRAMES.min(out.ift_ms.len().saturating_sub(1))..];
        rows.push(vec![
            format!("{:.0}%", load * 100.0),
            fmt(mean(steady), 3),
            fmt(std_dev(steady), 3),
            out.dropped.to_string(),
            out.period.map_or("-".into(), |p| fmt(p.as_ms_f64(), 2)),
        ]);
    }
    print_table(
        &[
            "load",
            "avg IFT (ms)",
            "σ IFT (ms)",
            "dropped",
            "detected P (ms)",
        ],
        &rows,
    );
    println!("paper: 40.97/6.99 → 40.93/7.83 → 40.92/10.94 → 40.95/11.74 → 40.96/16.57 → 44.43/17.87 (ms)");
    write_csv(
        &args.out_path("table3_loaded_ift.csv"),
        &[
            "load_percent",
            "avg_ift_ms",
            "sd_ift_ms",
            "dropped",
            "detected_period_ms",
        ],
        &rows,
    );
}
