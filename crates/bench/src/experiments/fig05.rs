//! Figure 5: an excerpt of the traced event sequence, showing the bursts
//! of system calls concentrated at the job boundaries.

use crate::setups::mp3_trace;
use crate::{write_csv, Args};
use selftune_tracer::Edge;

/// Prints a ~160 ms window of the player's event train as an ASCII strip
/// and writes the raw timestamps.
pub fn run(args: &Args) {
    println!("== Figure 5: event-train excerpt (bursts at job boundaries) ==");
    let (events, tid) = mp3_trace(0, 3.0, args.seed);
    let window_start = 2.0_f64; // skip startup
    let window_len = 0.160_f64;
    let times: Vec<f64> = events
        .iter()
        .filter(|e| e.task == tid && e.edge == Edge::Enter)
        .map(|e| e.at.as_secs_f64())
        .filter(|t| (window_start..window_start + window_len).contains(t))
        .collect();

    // ASCII strip: 160 columns of 1 ms.
    let cols = (window_len * 1000.0) as usize;
    let mut strip = vec![b' '; cols];
    for &t in &times {
        let c = ((t - window_start) * 1000.0) as usize;
        if c < cols {
            strip[c] = b'|';
        }
    }
    println!(
        "t = {:.3}..{:.3}s, {} events, one column per ms:",
        window_start,
        window_start + window_len,
        times.len()
    );
    println!("{}", String::from_utf8_lossy(&strip));
    println!("(expected: clusters every ~30.8 ms — the 32.5 Hz job rate)");

    write_csv(
        &args.out_path("fig05_trace_excerpt.csv"),
        &["event_time_s"],
        &times
            .iter()
            .map(|t| vec![format!("{t:.6}")])
            .collect::<Vec<_>>(),
    );
}
