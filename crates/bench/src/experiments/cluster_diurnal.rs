//! The composed three-level control plane under diurnal + flash-crowd
//! demand, against each level alone.
//!
//! The diurnal demo ([`ScenarioSpec::diurnal_demo`]) layers a fleet-wide
//! wave of lying `HungryRt` tasks and a flash crowd pinned to the
//! VM-hosting prefix over a quiet base population. Four variants run on
//! the same seed at equal total bandwidth:
//!
//! * **static** — placement frozen at arrival, fixed VM shares, fixed
//!   per-node `U_lub`.
//! * **rebalance-only** — the fleet-level loop alone: pressured nodes
//!   drain via migration, but tenant VMs keep hoarding their booked
//!   share where the flash crowd lands.
//! * **elastic-only** — the in-place loops alone: elastic VM shares free
//!   hoarded bandwidth and node re-bounding claws back / sheds headroom,
//!   but nothing ever migrates off the melting prefix.
//! * **composed** — all three levels closed: re-bound in place first,
//!   migrate what still does not fit.
//!
//! The experiment asserts the composed plane beats both single-level
//! variants on fleet miss rate and that the composed aggregates stay
//! byte-identical at 1, 2 and 8 worker threads.

use crate::{fmt, print_table, time_us, write_csv, Args};
use selftune_cluster::prelude::*;

/// One diurnal-demo variant: which control levels are closed.
fn scenario(nodes: usize, tasks: usize, in_place: bool, rebalance: bool) -> ScenarioSpec {
    let mut spec = ScenarioSpec::diurnal_demo(nodes, tasks);
    if in_place {
        // The two in-place levels travel together: elastic VM shares
        // (node→VM) and node re-bounding (fleet→node).
        for vm in &mut spec.vms {
            vm.elastic = true;
        }
        spec = spec.with_node_share(ScenarioSpec::diurnal_node_share());
    }
    if rebalance {
        spec = spec.with_rebalance(ScenarioSpec::diurnal_rebalance());
    } else {
        // Node-share decisions ride the rebalance epoch grid; keep the
        // same grid with the rebalancer off so the variants differ only
        // in the decisions, never in the sampling schedule.
        spec.rebalance.period = ScenarioSpec::diurnal_rebalance().period;
    }
    spec
}

/// Fleet sizes swept: `(nodes, tasks)`.
const SWEEP: [(usize, usize); 2] = [(6, 12), (10, 20)];

/// Runs the four-variant comparison and writes `cluster_diurnal.csv`.
///
/// With `--scenario FILE` the built-in sweep is replaced by the loaded
/// fleet, run as-is against a copy with every control lever off; the
/// composed-beats-both assertions only apply to the built-in sweep.
pub fn run(args: &Args) {
    println!("== Cluster diurnal: composed control plane vs single levels ==");
    let file_spec = args.scenario_spec();
    let sweep: &[(usize, usize)] = match (&file_spec, args.fast) {
        (Some(_), _) => &[],
        (None, true) => &SWEEP[..1],
        (None, false) => &SWEEP,
    };
    if let Some(spec) = &file_spec {
        println!("scenario file: {}", spec.name);
        args.record_journal(spec);
        let mut frozen = spec.clone();
        frozen.rebalance.enabled = false;
        frozen.node_share.enabled = false;
        for vm in &mut frozen.vms {
            vm.elastic = false;
        }
        let mut rows = Vec::new();
        for (mode, s) in [("static", &frozen), ("as-configured", spec)] {
            let (m, t_us) = time_us(|| ClusterRunner::new(2).run(s, args.seed));
            rows.push(row(s.nodes, s.flat_tasks(), mode, &m, t_us));
        }
        finish(args, rows);
        return;
    }
    let mut rows = Vec::new();
    for &(nodes, tasks) in sweep {
        let variants = [
            ("static", scenario(nodes, tasks, false, false)),
            ("rebalance-only", scenario(nodes, tasks, false, true)),
            ("elastic-only", scenario(nodes, tasks, true, false)),
            ("composed", scenario(nodes, tasks, true, true)),
        ];
        // `--journal FILE`: record the composed run for replay / what-if.
        args.record_journal(&variants[3].1);
        let mut results = Vec::new();
        for (mode, spec) in &variants {
            let (m, t_us) = time_us(|| ClusterRunner::new(2).run(spec, args.seed));
            rows.push(row(nodes, spec.flat_tasks(), mode, &m, t_us));
            results.push(m);
        }
        let (stat, reb, ela, comp) = (&results[0], &results[1], &results[2], &results[3]);

        // Determinism: the epoch barriers, node re-bounds and migrations
        // must not observe the worker-thread count.
        let composed_spec = &variants[3].1;
        let serial = ClusterRunner::new(1).run(composed_spec, args.seed);
        let wide = ClusterRunner::new(8).run(composed_spec, args.seed);
        assert_eq!(
            serial.summary_csv(),
            comp.summary_csv(),
            "composed aggregates must not depend on thread count (1 vs 2)"
        );
        assert_eq!(
            serial.summary_csv(),
            wide.summary_csv(),
            "composed aggregates must not depend on thread count (1 vs 8)"
        );

        // The point of the composed plane: each level alone leaves misses
        // the other would have absorbed.
        assert!(
            comp.miss_ratio() < reb.miss_ratio(),
            "composed must beat rebalance-only ({:.4} vs {:.4})",
            comp.miss_ratio(),
            reb.miss_ratio()
        );
        assert!(
            comp.miss_ratio() < ela.miss_ratio(),
            "composed must beat elastic-only ({:.4} vs {:.4})",
            comp.miss_ratio(),
            ela.miss_ratio()
        );
        assert!(
            comp.miss_ratio() < stat.miss_ratio(),
            "composed must beat the static baseline ({:.4} vs {:.4})",
            comp.miss_ratio(),
            stat.miss_ratio()
        );
    }
    finish(args, rows);
}

fn row(nodes: usize, tasks: usize, mode: &str, m: &AggregateMetrics, t_us: f64) -> Vec<String> {
    vec![
        nodes.to_string(),
        tasks.to_string(),
        mode.to_owned(),
        m.completions().to_string(),
        m.misses().to_string(),
        fmt(m.miss_ratio(), 4),
        m.rebalance.moves.to_string(),
        fmt(100.0 * m.mean_utilisation(), 1),
        fmt(t_us / 1e3, 1),
    ]
}

fn finish(args: &Args, rows: Vec<Vec<String>>) {
    let header = [
        "nodes",
        "tasks",
        "plane",
        "completions",
        "misses",
        "miss_ratio",
        "migrations",
        "mean_util_pct",
        "wall_ms",
    ];
    print_table(&header, &rows);
    write_csv(&args.out_path("cluster_diurnal.csv"), &header, &rows);
    println!(
        "(assertions passed: composed beats each single level; byte-identical at 1/2/8 threads)"
    );
}
