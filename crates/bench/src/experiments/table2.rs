//! Table 2 + Figure 12: precision of the period detector under background
//! real-time load (0–60%, in 15% reservations).
//!
//! Shape to reproduce: with rising load the detector increasingly locks on
//! an integer multiple of the true 32.5 Hz rate (at most ×3), so the
//! average detected frequency drifts upwards and its standard deviation
//! grows; the maximum approaches ≈ 3f₀.

use crate::setups::mp3_event_times;
use crate::{fmt, print_table, write_csv, Args};
use selftune_simcore::stats::{max, mean, std_dev};
use selftune_spectrum::{amplitude_spectrum, detect, PeakConfig, SpectrumConfig};

/// Runs the load sweep.
pub fn run(args: &Args) {
    println!("== Table 2 / Figure 12: detection precision vs background RT load ==");
    let reps = args.reps(100, 10);
    let cfg = SpectrumConfig::new(30.0, 100.0, 0.1);
    let loads = [0u32, 15, 30, 45, 60];
    // Companion: detection *without* the harmonic accumulation (k_max = 1,
    // strongest surviving peak wins). The full heuristic is considerably
    // more robust than the paper's measured detector — this column shows
    // the failure severity their Table 2 reports.
    let single_peak = PeakConfig {
        k_max: 1,
        ..PeakConfig::default()
    };
    let mut rows = Vec::new();
    for &load in &loads {
        let mut freqs = Vec::with_capacity(reps);
        let mut naive = Vec::with_capacity(reps);
        for r in 0..reps {
            let times = mp3_event_times(load, 2.0, args.seed + 7919 * r as u64);
            let spec = amplitude_spectrum(&times, cfg);
            if let Some(f) = detect(&spec, &PeakConfig::default()).detection.frequency() {
                freqs.push(f);
            }
            if let Some(f) = detect(&spec, &single_peak).detection.frequency() {
                naive.push(f);
            }
        }
        rows.push(vec![
            format!("{load}%"),
            fmt(mean(&freqs), 2),
            fmt(std_dev(&freqs), 2),
            fmt(max(&freqs), 0),
            fmt(mean(&naive), 2),
            fmt(std_dev(&naive), 2),
            fmt(max(&naive), 0),
        ]);
    }
    print_table(
        &[
            "load", "avg (Hz)", "σ (Hz)", "max (Hz)", "avg k=1", "σ k=1", "max k=1",
        ],
        &rows,
    );
    println!("paper: avg 32.69 → 41.67 → 57.98 → 75.03 → 68.47 Hz; max ≈ 3f₀ ≈ 95–98 Hz");
    write_csv(
        &args.out_path("table2_load_tolerance.csv"),
        &[
            "load_percent",
            "avg_freq_hz",
            "sd_freq_hz",
            "max_freq_hz",
            "avg_freq_kmax1_hz",
            "sd_freq_kmax1_hz",
            "max_freq_kmax1_hz",
        ],
        &rows,
    );
}
