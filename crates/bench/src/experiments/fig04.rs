//! Figure 4: statistics of the system calls performed by `mplayer`.
//!
//! The paper traces three minutes of `mplayer` and histograms the calls;
//! `ioctl` (towards the ALSA device) dominates. We trace the simulated
//! player for a configurable span and print the same histogram.

use crate::setups::mp3_trace;
use crate::{print_table, write_csv, Args};
use selftune_tracer::counts_by_call;

/// Traces the player and prints the per-call histogram.
pub fn run(args: &Args) {
    println!("== Figure 4: syscall statistics of the traced player ==");
    let secs = if args.fast { 10.0 } else { 180.0 };
    let (events, _tid) = mp3_trace(0, secs, args.seed);
    let counts = counts_by_call(&events);
    let total: u64 = counts.iter().map(|&(_, c)| c).sum();
    let rows: Vec<Vec<String>> = counts
        .iter()
        .map(|&(nr, c)| {
            vec![
                nr.name().to_owned(),
                c.to_string(),
                format!("{:.1}%", 100.0 * c as f64 / total as f64),
            ]
        })
        .collect();
    print_table(&["syscall", "count", "share"], &rows);
    println!("total: {total} calls over {secs} s");
    assert_eq!(
        counts.first().map(|&(nr, _)| nr.name()),
        Some("ioctl"),
        "ioctl should dominate as in the paper"
    );
    write_csv(
        &args.out_path("fig04_syscall_stats.csv"),
        &["syscall", "count", "share_percent"],
        &counts
            .iter()
            .map(|&(nr, c)| {
                vec![
                    nr.name().to_owned(),
                    c.to_string(),
                    format!("{:.3}", 100.0 * c as f64 / total as f64),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
