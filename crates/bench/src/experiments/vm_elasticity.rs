//! VM elasticity: host-level share adaptation vs static shares.
//!
//! The acceptance experiment of the elastic-share controller plane (see
//! `selftune_virt::elastic` and `selftune_virt::demo::run_two_phase` /
//! `run_runaway` for the scenarios shared with the e2e test):
//!
//! * **reclaim** — a tenant whose guest goes idle mid-run has its share
//!   reclaimed and re-granted to a hungry sibling, which completes more
//!   jobs than under static shares at equal total admitted bandwidth;
//! * **containment** — a runaway elastic tenant is pinned at the host
//!   cap and its statically-shared sibling keeps its solo miss rate.
//!
//! Both claims are asserted on every run; the per-tenant table is printed
//! and `vm_elasticity.csv` written.

use selftune_simcore::time::Dur;
use selftune_virt::demo::{self, GuestStats};

use crate::{fmt, print_table, time_us, write_csv, Args};

/// Horizons swept: the short one is the e2e's, the long one shows the
/// steady state after the idle-phase hand-over.
const HORIZONS_SECS: [u64; 2] = [10, 30];

/// Host bound of the demo platform.
const HOST_ULUB: f64 = 0.95;

#[allow(clippy::too_many_arguments)] // a flat CSV row
fn row(
    horizon: u64,
    config: &str,
    tenant: &str,
    s: &GuestStats,
    share: f64,
    wall_ms: f64,
) -> Vec<String> {
    vec![
        horizon.to_string(),
        config.to_owned(),
        tenant.to_owned(),
        s.completions.to_string(),
        s.gaps.to_string(),
        s.misses.to_string(),
        fmt(s.miss_rate(), 4),
        fmt(share, 3),
        fmt(wall_ms, 1),
    ]
}

/// Runs the comparison and writes `vm_elasticity.csv`.
pub fn run(args: &Args) {
    println!("== VM elasticity: closed-loop host shares vs static admission ==");
    let horizons: &[u64] = if args.fast {
        &HORIZONS_SECS[..1]
    } else {
        &HORIZONS_SECS
    };
    let mut rows = Vec::new();
    for &secs in horizons {
        let horizon = Dur::secs(secs);
        let (stat, t_stat) = time_us(|| demo::run_two_phase(horizon, args.seed, false));
        let (elas, t_elas) = time_us(|| demo::run_two_phase(horizon, args.seed, true));
        let (runaway, t_run) = time_us(|| demo::run_runaway(horizon, args.seed));
        let solo = demo::run_solo(horizon, args.seed);

        // The subsystem's claims, asserted on every run.
        assert!(
            elas.hungry.completions > stat.hungry.completions,
            "reclaim failed: {} (elastic) <= {} (static)",
            elas.hungry.completions,
            stat.hungry.completions
        );
        assert!(
            elas.hungry_share > stat.hungry_share && elas.phased_share < stat.phased_share,
            "shares did not move: {:.3}/{:.3} vs {:.3}/{:.3}",
            elas.phased_share,
            elas.hungry_share,
            stat.phased_share,
            stat.hungry_share
        );
        let cap = HOST_ULUB - runaway.victim_share;
        assert!(
            runaway.runaway_peak_share <= cap + 1e-9,
            "runaway escaped the cap: {:.4} > {cap:.4}",
            runaway.runaway_peak_share
        );
        let envelope = (2.0 * solo.miss_rate()).max(0.05);
        assert!(
            runaway.victim.miss_rate() <= envelope,
            "victim leaked: {:.4} > {envelope:.4}",
            runaway.victim.miss_rate()
        );

        rows.push(row(
            secs,
            "static",
            "phased",
            &stat.phased,
            stat.phased_share,
            t_stat / 1e3,
        ));
        rows.push(row(
            secs,
            "static",
            "hungry",
            &stat.hungry,
            stat.hungry_share,
            0.0,
        ));
        rows.push(row(
            secs,
            "elastic",
            "phased",
            &elas.phased,
            elas.phased_share,
            t_elas / 1e3,
        ));
        rows.push(row(
            secs,
            "elastic",
            "hungry",
            &elas.hungry,
            elas.hungry_share,
            0.0,
        ));
        rows.push(row(
            secs,
            "runaway",
            "victim",
            &runaway.victim,
            runaway.victim_share,
            t_run / 1e3,
        ));
        rows.push(row(
            secs,
            "runaway",
            "runaway",
            &runaway.runaway,
            runaway.runaway_peak_share,
            0.0,
        ));
    }

    let header = [
        "horizon_s",
        "config",
        "tenant",
        "completions",
        "gaps",
        "misses",
        "miss_rate",
        "share",
        "wall_ms",
    ];
    print_table(&header, &rows);
    write_csv(&args.out_path("vm_elasticity.csv"), &header, &rows);
    println!(
        "(assertions passed: hungry sibling gains completions from the reclaimed idle \
         share; runaway elastic VM pinned at the host cap with its sibling at the solo \
         baseline)"
    );
}
