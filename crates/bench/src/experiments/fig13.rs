//! Figure 13: inter-frame times and reserved fraction of CPU for the
//! 25 fps video under the original LFS vs LFS++.
//!
//! As in the paper's Section 5.4 the rate detection is disabled (the
//! period is fixed at 40 ms) to isolate the feedback laws. Shapes to
//! reproduce: LFS ramps its reservation slowly from a low initial value
//! and the inter-frame times stay disturbed for >100 frames; LFS++ adapts
//! almost immediately and yields a visibly lower IFT standard deviation,
//! with both converging to a ≈ 40 ms average.

use crate::setups::{video_run, VideoRunOutcome};
use crate::{fmt, print_table, write_csv, Args};
use selftune_core::{ControllerConfig, FeedbackKind, LfsConfig, LfsPpConfig, ManagerConfig};
use selftune_simcore::stats::{mean, std_dev};
use selftune_simcore::time::Dur;

/// Number of initial frames treated as the adaptation transient when
/// reporting steady-state statistics.
pub const WARMUP_FRAMES: usize = 250;

/// Results of the two runs, exposed for Figure 14.
pub struct Fig13Outcome {
    /// LFS run.
    pub lfs: VideoRunOutcome,
    /// LFS++ run.
    pub lfspp: VideoRunOutcome,
}

fn ctl(feedback: FeedbackKind) -> ControllerConfig {
    ControllerConfig {
        fixed_period: Some(Dur::ms(40)),
        feedback,
        ..ControllerConfig::default()
    }
}

fn mgr() -> ManagerConfig {
    ManagerConfig {
        sampling: Dur::ms(200),
        ..ManagerConfig::default()
    }
}

/// Runs both controllers and prints the comparison.
pub fn run(args: &Args) -> Fig13Outcome {
    println!("== Figure 13: LFS vs LFS++ on the 25fps video (detection disabled) ==");
    let secs = if args.fast { 20 } else { 60 };
    let lfs = video_run(
        ctl(FeedbackKind::Lfs(LfsConfig::default())),
        mgr(),
        0.0,
        secs,
        args.seed,
    );
    let lfspp = video_run(
        ctl(FeedbackKind::LfsPp(LfsPpConfig::default())),
        mgr(),
        0.0,
        secs,
        args.seed,
    );

    let summary = |name: &str, o: &VideoRunOutcome| -> Vec<String> {
        let steady = &o.ift_ms[WARMUP_FRAMES.min(o.ift_ms.len() - 1)..];
        vec![
            name.to_owned(),
            fmt(mean(&o.ift_ms), 3),
            fmt(std_dev(&o.ift_ms), 3),
            fmt(mean(steady), 3),
            fmt(std_dev(steady), 3),
            o.dropped.to_string(),
        ]
    };
    print_table(
        &[
            "controller",
            "IFT avg (ms)",
            "IFT σ (ms)",
            "steady avg",
            "steady σ",
            "dropped",
        ],
        &[summary("LFS", &lfs), summary("LFS++", &lfspp)],
    );
    println!("paper: averages ≈ 40ms both; σ 11.287ms (LFS) vs 4.6312ms (LFS++)");

    // Per-frame IFT series.
    let n = lfs.ift_ms.len().min(lfspp.ift_ms.len());
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            vec![
                i.to_string(),
                fmt(lfs.ift_ms[i] * 1000.0, 0),
                fmt(lfspp.ift_ms[i] * 1000.0, 0),
            ]
        })
        .collect();
    write_csv(
        &args.out_path("fig13_ift.csv"),
        &["frame", "lfs_ift_us", "lfspp_ift_us"],
        &rows,
    );

    // Reserved-fraction series (per controller sample).
    let m = lfs.bw.len().min(lfspp.bw.len());
    let rows: Vec<Vec<String>> = (0..m)
        .map(|i| {
            vec![
                fmt(lfs.bw[i].0.as_secs_f64(), 3),
                fmt(lfs.bw[i].1, 4),
                fmt(lfspp.bw[i].1, 4),
            ]
        })
        .collect();
    write_csv(
        &args.out_path("fig13_reserved_fraction.csv"),
        &["time_s", "lfs_bw", "lfspp_bw"],
        &rows,
    );

    Fig13Outcome { lfs, lfspp }
}
