//! Fleet scale-out: nodes × tasks sweep of the parallel scenario runner.
//!
//! For each fleet size the scenario runs once on 1 worker thread and once
//! on 4 (and once on all hardware threads when that differs), verifying
//! that the aggregates are byte-identical and reporting the wall-clock
//! speedup. On a multicore host the 4-thread run is expected to be well
//! above 1.5× the serial one for ≥ 8 nodes; on fewer cores the speedup
//! column degrades gracefully toward 1× and the identity check still
//! holds.

use crate::{fmt, print_table, time_us, write_csv, Args};
use selftune_cluster::prelude::*;
use selftune_simcore::time::Dur;

/// Fleet sizes swept: `(nodes, tasks_per_node)`.
const SWEEP: [(usize, usize); 3] = [(4, 4), (8, 6), (16, 8)];

fn scenario(nodes: usize, tasks: usize) -> ScenarioSpec {
    ScenarioSpec::new("scaleout", nodes, tasks, Dur::secs(3))
        .with_mix(TaskMix::mixed_server())
        .with_arrivals(ArrivalSchedule::Staggered { gap: Dur::ms(25) })
        .with_policy(PolicyKind::WorstFit)
}

/// Runs the sweep (or the `--scenario` file's fleet alone) and writes
/// `cluster_scaleout.csv`.
pub fn run(args: &Args) {
    println!("== Cluster scale-out: parallel fleet runner ==");
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("hardware threads: {hw}");
    if hw < 4 {
        println!("(fewer than 4 hardware threads: speedup is bounded by the host,");
        println!(" the identical-aggregate check below still validates the runner)");
    }

    let file_spec = args.scenario_spec();
    let mut rows = Vec::new();
    let sweep: &[(usize, usize)] = match (&file_spec, args.fast) {
        (Some(_), _) => &[],
        (None, true) => &SWEEP[..2],
        (None, false) => &SWEEP,
    };
    let specs: Vec<ScenarioSpec> = match &file_spec {
        Some(spec) => {
            println!("scenario file: {}", spec.name);
            vec![spec.clone()]
        }
        None => sweep
            .iter()
            .map(|&(nodes, per_node)| scenario(nodes, nodes * per_node))
            .collect(),
    };
    // `--journal FILE`: record the first scenario's decision journal.
    if let Some(spec) = specs.first() {
        args.record_journal(spec);
    }
    for spec in &specs {
        let (nodes, tasks) = (spec.nodes, spec.tasks);
        let spec = spec.clone();

        let (serial, t1_us) = time_us(|| ClusterRunner::new(1).run(&spec, args.seed));
        let (quad, t4_us) = time_us(|| ClusterRunner::new(4).run(&spec, args.seed));
        assert_eq!(
            serial.summary_csv(),
            quad.summary_csv(),
            "aggregates must not depend on thread count"
        );
        let mut t_max_us = t4_us;
        if hw > 4 {
            let (all, t) = time_us(|| ClusterRunner::new(hw).run(&spec, args.seed));
            assert_eq!(serial.summary_csv(), all.summary_csv());
            t_max_us = t;
        }

        let speedup4 = t1_us / t4_us;
        rows.push(vec![
            nodes.to_string(),
            tasks.to_string(),
            serial.admission.admitted.to_string(),
            serial.admission.rejected.to_string(),
            fmt(serial.miss_ratio(), 4),
            fmt(100.0 * serial.mean_utilisation(), 1),
            fmt(t1_us / 1e3, 1),
            fmt(t4_us / 1e3, 1),
            fmt(t_max_us / 1e3, 1),
            fmt(speedup4, 2),
        ]);
    }

    let header = [
        "nodes",
        "tasks",
        "admitted",
        "rejected",
        "miss_ratio",
        "mean_util_pct",
        "t_1thread_ms",
        "t_4threads_ms",
        "t_maxthreads_ms",
        "speedup_4v1",
    ];
    print_table(&header, &rows);
    write_csv(&args.out_path("cluster_scaleout.csv"), &header, &rows);

    if sweep.is_empty() {
        // File mode: the loaded scenario fixes the policy; no face-off.
        return;
    }
    // Policy face-off on the largest fleet: same load, three placements.
    let (nodes, per_node) = sweep[sweep.len() - 1];
    println!("\n-- placement policies at {nodes} nodes --");
    let mut prows = Vec::new();
    for policy in [
        PolicyKind::FirstFit,
        PolicyKind::WorstFit,
        PolicyKind::BandwidthAware,
    ] {
        let spec = scenario(nodes, nodes * per_node).with_policy(policy);
        let fleet = ClusterRunner::new(hw.min(4)).run(&spec, args.seed);
        prows.push(vec![
            policy.name().to_owned(),
            fleet.admission.admitted.to_string(),
            fleet.admission.rejected.to_string(),
            fleet.admission.migrations.to_string(),
            fmt(fleet.miss_ratio(), 4),
            fmt(100.0 * fleet.mean_utilisation(), 1),
        ]);
    }
    let pheader = [
        "policy",
        "admitted",
        "rejected",
        "migrations",
        "miss_ratio",
        "mean_util_pct",
    ];
    print_table(&pheader, &prows);
    write_csv(&args.out_path("cluster_policies.csv"), &pheader, &prows);
}
