//! Feedback-driven re-placement vs static placement under skewed overload.
//!
//! The fleet-scale analogue of the paper's core experiment: a first-fit
//! plan packs legacy tasks (whose nominal demand understates their real
//! appetite) onto one node, which a hog burst then hits. Placement frozen
//! at arrival leaves that node melting for the whole run; the feedback
//! rebalancer observes measured miss rates, migrates tasks off the
//! pressured node and books destinations by *measured* bandwidth instead
//! of the nominal claim. The experiment asserts the miss-rate reduction
//! and that rebalanced aggregates stay byte-identical at 1, 2 and 8
//! worker threads.

use crate::{fmt, print_table, time_us, write_csv, Args};
use selftune_cluster::prelude::*;

/// The canonical skewed-overload scenario
/// ([`ScenarioSpec::skewed_overload_demo`], shared with
/// `tests/cluster_rebalance_e2e.rs` and the `cluster_fleet` example).
fn scenario(nodes: usize, tasks: usize, rebalance_on: bool) -> ScenarioSpec {
    let spec = ScenarioSpec::skewed_overload_demo(nodes, tasks);
    if rebalance_on {
        spec.with_rebalance(ScenarioSpec::demo_rebalance())
    } else {
        spec
    }
}

/// Fleet sizes swept: `(nodes, tasks)`.
const SWEEP: [(usize, usize); 2] = [(4, 12), (6, 14)];

/// Runs the comparison and writes `cluster_rebalance.csv`.
///
/// With `--scenario FILE` the built-in sweep is replaced by the loaded
/// fleet: the file's configuration is the feedback run and the same spec
/// with the rebalancer switched off is the static baseline. The
/// improvement assertions only apply to the built-in sweep — an arbitrary
/// scenario file carries no guarantee that feedback wins.
pub fn run(args: &Args) {
    println!("== Cluster rebalance: feedback vs static placement ==");
    let file_spec = args.scenario_spec();
    let sweep: &[(usize, usize)] = match (&file_spec, args.fast) {
        (Some(_), _) => &[],
        (None, true) => &SWEEP[..1],
        (None, false) => &SWEEP,
    };
    let configs: Vec<(ScenarioSpec, ScenarioSpec, bool)> = match &file_spec {
        Some(spec) => {
            println!("scenario file: {}", spec.name);
            let mut frozen = spec.clone();
            frozen.rebalance.enabled = false;
            vec![(frozen, spec.clone(), false)]
        }
        None => sweep
            .iter()
            .map(|&(nodes, tasks)| {
                (
                    scenario(nodes, tasks, false),
                    scenario(nodes, tasks, true),
                    true,
                )
            })
            .collect(),
    };
    // `--journal FILE`: record the primary (feedback) scenario's decision
    // journal for later replay / what-if analysis.
    if let Some((_, feedback_spec, _)) = configs.first() {
        args.record_journal(feedback_spec);
    }
    let mut rows = Vec::new();
    for (frozen_spec, feedback_spec, assert_improvement) in configs {
        let (nodes, tasks) = (frozen_spec.nodes, frozen_spec.tasks);
        let (frozen, t_frozen) = time_us(|| ClusterRunner::new(2).run(&frozen_spec, args.seed));
        let (feedback, t_feedback) =
            time_us(|| ClusterRunner::new(2).run(&feedback_spec, args.seed));

        // Determinism: the epoch barriers and migrations must not observe
        // the worker-thread count.
        let serial = ClusterRunner::new(1).run(&feedback_spec, args.seed);
        let wide = ClusterRunner::new(8).run(&feedback_spec, args.seed);
        assert_eq!(
            serial.summary_csv(),
            feedback.summary_csv(),
            "rebalanced aggregates must not depend on thread count (1 vs 2)"
        );
        assert_eq!(
            serial.summary_csv(),
            wide.summary_csv(),
            "rebalanced aggregates must not depend on thread count (1 vs 8)"
        );

        // The point of the subsystem: measured feedback beats the frozen
        // nominal plan under skewed overload.
        if assert_improvement {
            assert!(
                feedback.miss_ratio() < frozen.miss_ratio(),
                "feedback must cut the fleet miss rate ({:.4} vs {:.4})",
                feedback.miss_ratio(),
                frozen.miss_ratio()
            );
            assert!(
                feedback.rebalance.moves >= 1,
                "the skewed scenario must trigger migrations"
            );
        }
        if let Some(gap) = feedback.mean_migrated_attach_delay_ms() {
            println!("mean migrated attach delay: {gap:.1} ms");
        }

        for (mode, m, t_us) in [
            ("static", &frozen, t_frozen),
            ("feedback", &feedback, t_feedback),
        ] {
            rows.push(vec![
                nodes.to_string(),
                tasks.to_string(),
                mode.to_owned(),
                m.completions().to_string(),
                m.misses().to_string(),
                fmt(m.miss_ratio(), 4),
                m.rebalance.moves.to_string(),
                m.rebalance.failed.to_string(),
                fmt(100.0 * m.mean_utilisation(), 1),
                fmt(t_us / 1e3, 1),
            ]);
        }
    }

    let header = [
        "nodes",
        "tasks",
        "placement",
        "completions",
        "misses",
        "miss_ratio",
        "migrations",
        "failed",
        "mean_util_pct",
        "wall_ms",
    ];
    print_table(&header, &rows);
    write_csv(&args.out_path("cluster_rebalance.csv"), &header, &rows);
    println!("(assertions passed: miss-rate reduced; byte-identical at 1/2/8 threads)");
}
