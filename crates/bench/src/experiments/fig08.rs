//! Figure 8: cost of the period-detection heuristic as a function of the
//! harmonic tolerance `ε` and the horizon `H`, with and without the
//! α-threshold (α = 20%).
//!
//! Shapes: cost roughly linear in `ε` (Equation (5): ε/δf bins summed per
//! harmonic) and in `H`; the α cut reduces the candidate set and with it
//! the work (the paper's top-vs-bottom plot pair).

use crate::experiments::fig06::window;
use crate::setups::mp3_event_times;
use crate::{fmt, print_table, time_us, write_csv, Args};
use selftune_simcore::stats::mean;
use selftune_spectrum::{amplitude_spectrum, detect, PeakConfig, SpectrumConfig};

/// Runs the sweep.
pub fn run(args: &Args) {
    println!("== Figure 8: peak-detection cost vs ε and H, with/without α ==");
    let times = mp3_event_times(0, 8.0, args.seed);
    let reps = args.reps(100, 10);
    let cfg = SpectrumConfig::new(30.0, 100.0, 0.1);
    let horizons = [0.5, 1.0, 1.5, 2.0];

    // Precompute spectra per (H, rep): the heuristic is what we time.
    let mut rows = Vec::new();
    for &alpha in &[0.0, 0.2] {
        for &h in &horizons {
            let specs: Vec<_> = (0..reps)
                .map(|r| {
                    let start = 0.5 + 0.04 * r as f64;
                    amplitude_spectrum(window(&times, start, h), cfg)
                })
                .collect();
            let mut eps = 0.1;
            while eps <= 1.0 + 1e-9 {
                let pk = PeakConfig {
                    alpha,
                    epsilon: eps,
                    ..PeakConfig::default()
                };
                let mut costs = Vec::with_capacity(reps);
                let mut scanned = Vec::with_capacity(reps);
                for spec in &specs {
                    let (analysis, us) = time_us(|| detect(spec, &pk));
                    costs.push(us);
                    scanned.push(analysis.scanned_bins as f64);
                }
                rows.push(vec![
                    fmt(alpha, 1),
                    fmt(h, 1),
                    fmt(eps, 1),
                    fmt(mean(&costs), 2),
                    fmt(mean(&scanned), 0),
                ]);
                eps += 0.1;
            }
        }
    }
    let printable: Vec<Vec<String>> = rows.iter().step_by(3).cloned().collect();
    print_table(
        &[
            "α",
            "H (s)",
            "ε (Hz)",
            "avg cost (µs)",
            "avg scanned bins (E)",
        ],
        &printable,
    );
    println!("paper: cost linear in H and ε; the α threshold cuts the work");
    write_csv(
        &args.out_path("fig08_peak_overhead.csv"),
        &[
            "alpha",
            "horizon_s",
            "epsilon_hz",
            "avg_cost_us",
            "avg_scanned_bins",
        ],
        &rows,
    );
}
