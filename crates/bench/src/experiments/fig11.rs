//! Figure 11: probability mass function of the frequency detected by the
//! full stack, over 100 repetitions, at 0.2 s and 2 s of tracing.
//!
//! Shape: at 0.2 s the PMF spreads over ≈ 32.5–35 Hz with occasional
//! third-harmonic (97.5 Hz) outliers; at 2 s it concentrates tightly on
//! 32.5 Hz (with the rare harmonic still possible).

use crate::setups::mp3_event_times;
use crate::{fmt, print_table, write_csv, Args};
use selftune_simcore::stats::pmf;
use selftune_spectrum::{amplitude_spectrum, detect, PeakConfig, SpectrumConfig};

/// Runs the repetitions and prints both PMFs.
pub fn run(args: &Args) {
    println!("== Figure 11: PMF of the detected frequency vs tracing time ==");
    let reps = args.reps(100, 15);
    let cfg = SpectrumConfig::new(30.0, 100.0, 0.1);
    let mut all_rows = Vec::new();
    for &tt in &[0.2, 2.0] {
        let mut freqs = Vec::with_capacity(reps);
        for r in 0..reps {
            let times = mp3_event_times(0, tt, args.seed + 1000 * r as u64);
            let spec = amplitude_spectrum(&times, cfg);
            if let Some(f) = detect(&spec, &PeakConfig::default()).detection.frequency() {
                freqs.push(f);
            }
        }
        let p = pmf(&freqs, 0.5);
        println!("\n-- tracing time {tt} s ({} detections) --", freqs.len());
        let rows: Vec<Vec<String>> = p
            .iter()
            .map(|&(f, pr)| vec![fmt(f, 1), fmt(pr, 3)])
            .collect();
        print_table(&["freq (Hz)", "P"], &rows);
        for &(f, pr) in &p {
            all_rows.push(vec![fmt(tt, 1), fmt(f, 2), fmt(pr, 4)]);
        }
    }
    println!("\npaper: 0.2s → mass between 32.5 and 35 Hz (+ rare 97.5 Hz); 2s → tight at 32.5 Hz");
    write_csv(
        &args.out_path("fig11_pmf.csv"),
        &["tracing_time_s", "freq_hz", "probability"],
        &all_rows,
    );
}
