//! Figure 2: minimum bandwidth to schedule three tasks
//! (3/15, 5/20, 5/30 ms) in a single reservation (rate-monotonic inside)
//! vs. one dedicated reservation per task.
//!
//! The paper's observations to reproduce: no obvious "best" server period,
//! and even the best single-reservation choice wastes 6–41% of bandwidth
//! over the ≈ 62% cumulative utilisation, while per-task servers achieve
//! the utilisation exactly.

use crate::{fmt, print_table, write_csv, Args};
use selftune_analysis::{
    dedicated_servers_bandwidth, min_bandwidth_rm_group, min_budget_edf_group, PeriodicTask,
};

/// The paper's task set.
pub fn paper_tasks() -> Vec<PeriodicTask> {
    vec![
        PeriodicTask::new(3.0, 15.0),
        PeriodicTask::new(5.0, 20.0),
        PeriodicTask::new(5.0, 30.0),
    ]
}

/// Sweeps the server period over `[1, 60]` ms.
pub fn run(args: &Args) {
    println!("== Figure 2: single-reservation vs dedicated reservations ==");
    let tasks = paper_tasks();
    let u = dedicated_servers_bandwidth(&tasks);
    println!("cumulative utilisation = {:.4}", u);

    let mut rows = Vec::new();
    let mut best: Option<(f64, f64)> = None;
    let mut worst: Option<(f64, f64)> = None;
    let mut t = 1.0;
    while t <= 60.0 + 1e-9 {
        let rm = min_bandwidth_rm_group(&tasks, t);
        let edf = min_budget_edf_group(&tasks, t).map(|q| q / t);
        if let Some(bw) = rm {
            match best {
                Some((_, b)) if b <= bw => {}
                _ => best = Some((t, bw)),
            }
            match worst {
                Some((_, w)) if w >= bw => {}
                _ => worst = Some((t, bw)),
            }
        }
        rows.push(vec![
            fmt(t, 1),
            rm.map_or("inf".into(), |b| fmt(b, 4)),
            edf.map_or("inf".into(), |b| fmt(b, 4)),
            fmt(u, 4),
        ]);
        t += 0.5;
    }
    write_csv(
        &args.out_path("fig02_multi_task.csv"),
        &[
            "server_period_ms",
            "single_reservation_rm",
            "single_reservation_edf",
            "dedicated_servers",
        ],
        &rows,
    );

    // Print a decimated view.
    let sampled: Vec<Vec<String>> = rows.iter().step_by(8).cloned().collect();
    print_table(
        &["T^s (ms)", "RM group bw", "EDF group bw", "dedicated bw"],
        &sampled,
    );

    if let (Some((bt, bb)), Some((wt, wb))) = (best, worst) {
        println!(
            "\nbest single-reservation: bw {:.4} at T^s = {:.1} ms (waste {:.1}%)",
            bb,
            bt,
            (bb - u) * 100.0
        );
        println!(
            "worst single-reservation: bw {:.4} at T^s = {:.1} ms (waste {:.1}%)",
            wb,
            wt,
            (wb - u) * 100.0
        );
        println!("paper: waste between 6% and 41% over the cumulative utilisation");
    }
}
