//! Figure 14: CDFs of the inter-frame times and of the reserved fraction
//! of CPU, LFS vs LFS++.
//!
//! Shapes: the LFS inter-frame-time CDF has a longer tail; the LFS++
//! reserved-fraction CDF is steeper (smaller variance of the allocation).

use crate::experiments::fig13::{self, Fig13Outcome};
use crate::{fmt, write_csv, Args};
use selftune_simcore::stats::cdf;

fn cdf_rows(xs: &[f64]) -> Vec<(f64, f64)> {
    cdf(xs)
}

/// Runs Figure 13's setup (or reuses a provided outcome) and writes CDFs.
pub fn run(args: &Args) {
    let outcome = fig13::run(args);
    write_from(args, &outcome);
}

/// Writes the CDF files from an existing Figure 13 outcome.
pub fn write_from(args: &Args, outcome: &Fig13Outcome) {
    println!("\n== Figure 14: CDFs of IFT and reserved fraction ==");
    let lfs_ift = cdf_rows(&outcome.lfs.ift_ms);
    let pp_ift = cdf_rows(&outcome.lfspp.ift_ms);
    let rows: Vec<Vec<String>> = lfs_ift
        .iter()
        .map(|&(x, p)| vec!["LFS".into(), fmt(x, 3), fmt(p, 5)])
        .chain(
            pp_ift
                .iter()
                .map(|&(x, p)| vec!["LFS++".into(), fmt(x, 3), fmt(p, 5)]),
        )
        .collect();
    write_csv(
        &args.out_path("fig14_cdf_ift.csv"),
        &["controller", "ift_ms", "cdf"],
        &rows,
    );

    let lfs_bw: Vec<f64> = outcome.lfs.bw.iter().map(|&(_, b)| b).collect();
    let pp_bw: Vec<f64> = outcome.lfspp.bw.iter().map(|&(_, b)| b).collect();
    let rows: Vec<Vec<String>> = cdf_rows(&lfs_bw)
        .iter()
        .map(|&(x, p)| vec!["LFS".into(), fmt(x, 4), fmt(p, 5)])
        .chain(
            cdf_rows(&pp_bw)
                .iter()
                .map(|&(x, p)| vec!["LFS++".into(), fmt(x, 4), fmt(p, 5)]),
        )
        .collect();
    write_csv(
        &args.out_path("fig14_cdf_reserved.csv"),
        &["controller", "reserved_fraction", "cdf"],
        &rows,
    );

    // Tail comparison: P(IFT > 80ms), the paper's frame-drop indicator.
    let tail = |xs: &[f64]| xs.iter().filter(|&&x| x > 80.0).count() as f64 / xs.len() as f64;
    println!(
        "P(IFT > 80ms): LFS {:.4}, LFS++ {:.4} (paper: LFS CDF has the longer tail)",
        tail(&outcome.lfs.ift_ms),
        tail(&outcome.lfspp.ift_ms)
    );
}
