//! The million-task operating point: churn-proof arenas + parallel
//! sketch reduction with 1M live tasks on a 2.5k-node fleet.
//!
//! [`ScenarioSpec::milliontask_demo`] keeps one million honest periodic
//! tasks live for the whole horizon (staggered arrivals, 16 distinct
//! periods, no churn) while a lying `HungryRt` wave lands on the node
//! prefix *before* the honest stream and saturates it; throttled liars
//! record deadline gaps until the feedback rebalancer drains them into
//! the idle majority. Three PR mechanisms carry the scale:
//!
//! * the epoch-barrier aggregate reduction is a balanced tree (worker
//!   partials over fixed node ranges + one top-level combine), asserted
//!   byte-identical across worker counts;
//! * node task arenas recycle departed slots behind generation tags
//!   (`with_recycling` re-freezes them for the before/after rows);
//! * sketch aggregates keep per-node report state O(bins), so fleet CDFs
//!   never materialise a million gap vectors.
//!
//! The task axis never shrinks — one million tasks is the point.
//! `--fast`/`--smoke` only shorten the virtual horizon and trim the run
//! matrix (smoke: feedback + 1-thread determinism twin, ~2 × 2 min on
//! one CPU, inside the CI budget; the static/feedback miss comparison
//! runs in fast/full and in the e2e).
//!
//! With `--journal FILE` a *fixture-scale* twin (2k nodes / 2k tasks) is
//! recorded instead of the full fleet — a million-task journal would be
//! gigabytes — which is how `examples/milliontask.journal` is generated.

use crate::{fmt, print_table, time_us, write_csv, Args};
use selftune_cluster::{churn_mem_report, prelude::*, ChurnMemReport};
use selftune_simcore::time::Dur;

/// Fleet size per mode: `(nodes, tasks, horizon)`. Tasks are pinned at
/// one million in every mode; only the virtual horizon shrinks (the wall
/// floor is ~admitted × per-job cost, so horizon is the main dial).
fn sizes(args: &Args) -> (usize, usize, Dur) {
    if args.smoke {
        (2_500, 1_000_000, Dur::ms(400))
    } else if args.fast {
        (2_500, 1_000_000, Dur::ms(700))
    } else {
        (2_500, 1_000_000, Dur::ms(1000))
    }
}

/// Churn sizing for the memory table: `(waves, per_wave)`.
fn mem_sizes(args: &Args) -> (usize, usize) {
    if args.smoke {
        (8, 500)
    } else {
        (12, 1_000)
    }
}

/// Runs the million-task experiment and writes `cluster_milliontask.csv`
/// (run matrix) and `cluster_milliontask_mem.csv` (arena accounting).
///
/// With `--scenario FILE` the built-in fleet is replaced by the loaded
/// spec and the improvement/live-population assertions are skipped.
pub fn run(args: &Args) {
    println!("== Cluster milliontask: 1M live tasks, recycled arenas, tree reduction ==");
    let file_spec = args.scenario_spec();
    let (frozen_spec, feedback_spec, builtin) = match &file_spec {
        Some(spec) => {
            println!("scenario file: {}", spec.name);
            let mut frozen = spec.clone();
            frozen.rebalance.enabled = false;
            (frozen, spec.clone(), false)
        }
        None => {
            let (nodes, tasks, horizon) = sizes(args);
            let frozen = ScenarioSpec::milliontask_demo(nodes, tasks, horizon);
            let feedback = frozen
                .clone()
                .with_rebalance(ScenarioSpec::milliontask_rebalance(horizon));
            (frozen, feedback, true)
        }
    };
    let (nodes, tasks) = (frozen_spec.nodes, frozen_spec.tasks);
    let sim_total = frozen_spec.horizon.as_secs_f64() * nodes as f64;

    // The journal fixture is recorded at fixture scale — the full fleet's
    // journal would be gigabytes (~2.7 GB at 1M tasks).
    if args.journal.is_some() {
        let fixture = ScenarioSpec::milliontask_demo(2_000, 2_000, Dur::ms(800))
            .with_rebalance(ScenarioSpec::milliontask_rebalance(Dur::ms(800)));
        println!("journal: recording fixture-scale twin (2000 nodes, 2000 tasks)");
        args.record_journal(&fixture);
    }

    // Live-population proof: the plan admits every honest task (plus the
    // liar wave) with zero rejections, and honest tasks have no churn or
    // departure — the whole million is live at the horizon.
    if builtin {
        let plan = plan_fleet(&frozen_spec, args.seed);
        let liars: usize = frozen_spec.phases.iter().map(|p| p.tasks).sum();
        // Honest tasks always fit (the fleet is ~15% utilised outside the
        // liar prefix); at worst a few liars lose their prefix slot to
        // honest stragglers that landed in the arrival race.
        assert!(
            plan.admission.admitted as usize >= tasks,
            "milliontask plan must keep the honest million live \
             ({} admitted)",
            plan.admission.admitted
        );
        assert!(
            (plan.admission.rejected as usize) <= liars / 20,
            "only a sliver of the liar wave may be squeezed out \
             ({} rejected)",
            plan.admission.rejected
        );
        println!(
            "plan: {} admitted ({} honest live at horizon, {} liars), {} rejected",
            plan.admission.admitted, tasks, liars, plan.admission.rejected
        );
    }

    let runner = |threads: usize| ClusterRunner::new(threads).with_sketch_aggregates(true);
    let (feedback, t_feedback) = time_us(|| runner(2).run(&feedback_spec, args.seed));

    // Determinism: the balanced tree reduction merges worker partials over
    // fixed node ranges, so worker count must not leak into the bytes.
    let serial = runner(1).run(&feedback_spec, args.seed);
    assert_eq!(
        serial.summary_csv(),
        feedback.summary_csv(),
        "tree-reduced aggregates must not depend on thread count (1 vs 2)"
    );
    if !args.smoke {
        let wide = runner(8).run(&feedback_spec, args.seed);
        assert_eq!(
            serial.summary_csv(),
            wide.summary_csv(),
            "tree-reduced aggregates must not depend on thread count (1 vs 8)"
        );
    }

    let mut rows = Vec::new();
    let mut push_row = |mode: &str, recycle: &str, m: &AggregateMetrics, t_us: f64| {
        rows.push(vec![
            nodes.to_string(),
            tasks.to_string(),
            mode.to_owned(),
            recycle.to_owned(),
            m.completions().to_string(),
            m.misses().to_string(),
            fmt(m.miss_ratio(), 5),
            m.rebalance.moves.to_string(),
            fmt(t_us / 1e3, 1),
            fmt(tasks as f64 / (t_us / 1e6), 0),
            fmt(sim_total / (t_us / 1e6), 0),
        ]);
    };

    if !args.smoke {
        // Static baseline + the payoff: feedback still cuts the fleet miss
        // rate with a million bystander tasks in the arena.
        let (frozen, t_frozen) = time_us(|| runner(2).run(&frozen_spec, args.seed));
        push_row("static", "on", &frozen, t_frozen);
        if builtin {
            assert!(
                feedback.miss_ratio() < frozen.miss_ratio(),
                "feedback must cut the fleet miss rate ({:.5} vs {:.5})",
                feedback.miss_ratio(),
                frozen.miss_ratio()
            );
            assert!(
                feedback.rebalance.moves >= 1,
                "the milliontask scenario must trigger migrations"
            );
        }
        // Before/after for the arena free-list: identical bytes, the same
        // workload, recycling frozen off.
        let (norec, t_norec) = time_us(|| {
            runner(2)
                .with_recycling(false)
                .run(&feedback_spec, args.seed)
        });
        assert_eq!(
            norec.summary_csv(),
            feedback.summary_csv(),
            "slot recycling must be invisible in the aggregate bytes"
        );
        push_row("feedback", "off", &norec, t_norec);
    }
    push_row("feedback", "on", &feedback, t_feedback);

    let header = [
        "nodes",
        "tasks",
        "placement",
        "recycling",
        "completions",
        "misses",
        "miss_ratio",
        "migrations",
        "wall_ms",
        "tasks_per_sec",
        "sim_s_per_wall_s",
    ];
    print_table(&header, &rows);
    write_csv(&args.out_path("cluster_milliontask.csv"), &header, &rows);

    // Arena accounting on the churn workload: admissions ≫ peak live, so
    // the free-list holds bytes/task near the steady-state floor while the
    // frozen arena pays a full slot per admission.
    let (waves, per_wave) = mem_sizes(args);
    let mem_on = churn_mem_report(waves, per_wave, true, args.seed);
    let mem_off = churn_mem_report(waves, per_wave, false, args.seed);
    let mem_row = |r: &ChurnMemReport| {
        vec![
            if r.recycle { "on" } else { "off" }.to_owned(),
            r.stats.admitted.to_string(),
            r.peak_live.to_string(),
            r.stats.slots.to_string(),
            r.stats.retired.to_string(),
            r.stats.bytes.to_string(),
            fmt(r.bytes_per_task(), 1),
        ]
    };
    let mem_rows = vec![mem_row(&mem_off), mem_row(&mem_on)];
    let mem_header = [
        "recycling",
        "admitted",
        "peak_live",
        "slots",
        "retired",
        "bytes",
        "bytes_per_task",
    ];
    println!("mem_report: churn workload, {waves} waves x {per_wave} tasks");
    print_table(&mem_header, &mem_rows);
    write_csv(
        &args.out_path("cluster_milliontask_mem.csv"),
        &mem_header,
        &mem_rows,
    );
    assert!(
        mem_off.bytes_per_task() >= 2.0 * mem_on.bytes_per_task(),
        "recycling must at least halve bytes/task on the churn workload \
         ({:.1} vs {:.1})",
        mem_off.bytes_per_task(),
        mem_on.bytes_per_task()
    );

    println!(
        "(assertions passed: {} live tasks at horizon; byte-identical across \
         thread counts{}; recycling halves churn bytes/task)",
        tasks,
        if args.smoke { " (1/2)" } else { " (1/2/8)" },
    );
}
