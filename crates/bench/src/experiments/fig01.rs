//! Figure 1: minimum bandwidth vs. server period for a single task
//! (C = 20 ms, P = 100 ms).
//!
//! Reproduces the paper's shape: exactly 20% at `T = P` and at its
//! submultiples, a sawtooth in between, and a steep climb beyond `P`
//! (> 60% at `T = 200 ms`). Two companion curves extend the analysis:
//!
//! * **overhead-aware** — charging two context switches per server period
//!   makes very small periods expensive too (the "too small" end of the
//!   paper's description);
//! * **period-error** — the server period is set to `P_est/3` with a ±3 ms
//!   error on `P_est`, showing the paper's point that submultiples are
//!   fragile (bandwidth near 30% instead of 20%).

use crate::{fmt, print_table, write_csv, Args};
use selftune_analysis::{min_bandwidth_single, min_budget_single, PeriodicTask};

/// Context-switch cost used by the overhead-aware curve, ms.
const CTX_SWITCH_MS: f64 = 0.05;

/// Computes the three curves over `T ∈ [2, 200]` ms.
pub fn run(args: &Args) {
    println!("== Figure 1: minimum bandwidth vs server period (C=20ms, P=100ms) ==");
    let task = PeriodicTask::new(20.0, 100.0);
    let mut rows = Vec::new();
    let mut t = 2.0;
    while t <= 200.0 + 1e-9 {
        let bw = min_bandwidth_single(task, t);
        // Overhead-aware: every server period costs two context switches
        // of the simulated machine, inflating the needed budget.
        let q = min_budget_single(task, t);
        let bw_ov = ((q + 2.0 * CTX_SWITCH_MS) / t).min(1.0);
        rows.push(vec![fmt(t, 1), fmt(bw, 4), fmt(bw_ov, 4)]);
        t += 1.0;
    }
    write_csv(
        &args.out_path("fig01_min_bandwidth.csv"),
        &[
            "server_period_ms",
            "min_bandwidth",
            "min_bandwidth_with_overhead",
        ],
        &rows,
    );

    // Key anchor points, as a table.
    let anchors = [
        100.0,
        50.0,
        100.0 / 3.0,
        25.0,
        20.0,
        36.0,
        60.0,
        150.0,
        200.0,
    ];
    let table: Vec<Vec<String>> = anchors
        .iter()
        .map(|&t| vec![fmt(t, 1), fmt(min_bandwidth_single(task, t), 4)])
        .collect();
    print_table(&["T^s (ms)", "min bandwidth"], &table);

    // Submultiple-fragility companion: the paper picks `T^s = P/3 = 33 ms`
    // and notes that "an error of a few milliseconds ... easily raises the
    // required bandwidth to a value close to 30%". We sweep the server
    // period a few ms around the exact submultiple.
    println!("\n-- submultiple fragility: server period a few ms off P/3 --");
    let exact = 100.0 / 3.0;
    let mut rows = Vec::new();
    let mut err = -4.0;
    while err <= 6.0 + 1e-9 {
        let t = exact + err;
        let bw = min_bandwidth_single(task, t);
        rows.push(vec![fmt(err, 1), fmt(t, 2), fmt(bw, 4)]);
        err += 0.5;
    }
    print_table(&["T^s error (ms)", "T^s (ms)", "min bandwidth"], &rows);
    write_csv(
        &args.out_path("fig01_period_error.csv"),
        &["ts_error_ms", "server_period_ms", "min_bandwidth"],
        &rows,
    );
}
