//! Figure 7: transform cost & detected-frequency variability as a function
//! of `f_max`, at fixed `δf = 0.5 Hz`, `ε = 0.5 Hz`.
//!
//! Shapes: cost grows linearly with `f_max` (more bins); the variability
//! of the detected frequency grows with `f_max` because more harmonics
//! enter the candidate range.

use crate::experiments::fig06::window;
use crate::setups::mp3_event_times;
use crate::{fmt, print_table, time_us, write_csv, Args};
use selftune_simcore::stats::{mean, std_dev};
use selftune_spectrum::{amplitude_spectrum, detect, PeakConfig, SpectrumConfig};

/// Runs the sweep.
pub fn run(args: &Args) {
    println!("== Figure 7: transform cost & precision vs fmax (δf=0.5Hz) ==");
    let times = mp3_event_times(0, 8.0, args.seed);
    let reps = args.reps(100, 10);
    let horizons = [0.5, 1.0, 1.5, 2.0];
    let fmaxes = [100.0, 200.0, 300.0, 400.0];
    let mut rows = Vec::new();
    for &h in &horizons {
        for &fmax in &fmaxes {
            let cfg = SpectrumConfig::new(30.0, fmax, 0.5);
            let mut costs = Vec::with_capacity(reps);
            let mut freqs = Vec::with_capacity(reps);
            for r in 0..reps {
                let start = 0.5 + 0.04 * r as f64;
                let ev = window(&times, start, h);
                let (spec, us) = time_us(|| amplitude_spectrum(ev, cfg));
                costs.push(us / 1000.0);
                if let Some(f) = detect(&spec, &PeakConfig::default()).detection.frequency() {
                    freqs.push(f);
                }
            }
            rows.push(vec![
                fmt(h, 1),
                fmt(fmax, 0),
                fmt(mean(&costs), 3),
                fmt(mean(&freqs), 2),
                fmt(std_dev(&freqs), 2),
            ]);
        }
    }
    print_table(
        &[
            "H (s)",
            "fmax (Hz)",
            "avg cost (ms)",
            "avg freq (Hz)",
            "sd freq",
        ],
        &rows,
    );
    println!("paper: cost ∝ fmax; frequency variability grows with fmax");
    write_csv(
        &args.out_path("fig07_fmax_sweep.csv"),
        &[
            "horizon_s",
            "fmax_hz",
            "avg_cost_ms",
            "avg_freq_hz",
            "sd_freq_hz",
        ],
        &rows,
    );
}
