//! Figure 9: average and standard deviation of the detected frequency as a
//! function of `ε` and the horizon `H` (α = 20%).
//!
//! Shapes: the average is stable (≈ the true 32.5 Hz); the variance first
//! shrinks as `ε` grows (harmonics get credited to the right fundamental)
//! and grows again when `ε` is so large that adjacent frequencies blur.

use crate::experiments::fig06::window;
use crate::setups::mp3_event_times;
use crate::{fmt, print_table, write_csv, Args};
use selftune_simcore::stats::{mean, std_dev};
use selftune_spectrum::{amplitude_spectrum, detect, PeakConfig, SpectrumConfig};

/// Runs the sweep.
pub fn run(args: &Args) {
    println!("== Figure 9: detected frequency avg/σ vs ε and H (α=20%) ==");
    let times = mp3_event_times(0, 8.0, args.seed);
    let reps = args.reps(100, 10);
    let cfg = SpectrumConfig::new(30.0, 100.0, 0.1);
    let horizons = [0.5, 1.0, 1.5, 2.0];
    let mut rows = Vec::new();
    for &h in &horizons {
        let specs: Vec<_> = (0..reps)
            .map(|r| {
                let start = 0.5 + 0.04 * r as f64;
                amplitude_spectrum(window(&times, start, h), cfg)
            })
            .collect();
        let mut eps = 0.1;
        while eps <= 1.0 + 1e-9 {
            let pk = PeakConfig {
                epsilon: eps,
                ..PeakConfig::default()
            };
            let freqs: Vec<f64> = specs
                .iter()
                .filter_map(|s| detect(s, &pk).detection.frequency())
                .collect();
            rows.push(vec![
                fmt(h, 1),
                fmt(eps, 1),
                fmt(mean(&freqs), 2),
                fmt(std_dev(&freqs), 2),
                freqs.len().to_string(),
            ]);
            eps += 0.1;
        }
    }
    print_table(
        &["H (s)", "ε (Hz)", "avg freq (Hz)", "sd freq", "detections"],
        &rows,
    );
    println!("paper: average barely affected; variance dips around ε ≈ 0.5–0.6");
    write_csv(
        &args.out_path("fig09_peak_precision.csv"),
        &[
            "horizon_s",
            "epsilon_hz",
            "avg_freq_hz",
            "sd_freq_hz",
            "detections",
        ],
        &rows,
    );
}
