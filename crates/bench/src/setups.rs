//! Shared simulation setups used by several experiments.

use selftune_apps::{Aperiodic, MediaConfig, MediaPlayer, PeriodicRt};
use selftune_core::{ControllerConfig, ManagerConfig, SelfTuningManager};
use selftune_sched::{Place, ReservationScheduler, ServerConfig};
use selftune_simcore::rng::Rng;
use selftune_simcore::task::TaskId;
use selftune_simcore::time::{Dur, Time};
use selftune_simcore::Kernel;
use selftune_tracer::{entry_times_secs, TraceEvent, TraceFilter, Tracer, TracerConfig};

/// A kernel + tracer with the mp3-playing `mplayer` in the fair class and
/// optional background RT reservations, traced for `trace_secs`.
///
/// Returns the raw trace events of the player and its task id — the input
/// of the period-detection experiments (Figures 10–12, Table 2).
pub fn mp3_trace(load_percent: u32, trace_secs: f64, seed: u64) -> (Vec<TraceEvent>, TaskId) {
    let mut rng = Rng::new(seed);
    // A 1 ms fair-class timeslice, as on an interactive desktop: slice
    // expiry splits the player's syscall bursts when best-effort noise is
    // runnable, attenuating the higher harmonics the way a real machine
    // does.
    let mut kernel = Kernel::new(ReservationScheduler::with_fair_slice(Dur::ms(1)));
    let (hook, reader) = Tracer::create(TracerConfig {
        capacity: 1 << 20,
        ..TracerConfig::default()
    });
    kernel.install_hook(Box::new(hook));

    // Background RT load inside dedicated reservations (Table 2 rows).
    for (i, (wcet, period)) in selftune_apps::table2_background_tasks(load_percent)
        .into_iter()
        .enumerate()
    {
        let sid = kernel
            .sched_mut()
            .create_server(ServerConfig::new(wcet, period));
        let w = PeriodicRt::new(&format!("bg{i}"), wcet, period, 0.25, rng.fork());
        let tid = kernel.spawn(&format!("bg{i}"), Box::new(w));
        kernel.sched_mut().place(tid, Place::Server(sid));
    }

    // Best-effort desktop noise sharing the fair class with the player:
    // this is what smears the short-window detection in the paper's
    // Figure 11 (a real machine is never perfectly quiet).
    for i in 0..2 {
        let w = Aperiodic::new(Dur::ms(15), Dur::from_ms_f64(1.5), 2, rng.fork());
        kernel.spawn(&format!("noise{i}"), Box::new(w));
    }

    // The traced player runs unreserved (detection phase).
    let player = MediaPlayer::new(MediaConfig::mplayer_mp3(), rng.fork());
    let tid = kernel.spawn("mplayer", Box::new(player));
    reader.set_filter(TraceFilter::tasks_only([tid]));

    kernel.run_until(Time::ZERO + Dur::from_secs_f64(trace_secs));
    (reader.drain(), tid)
}

/// Like [`mp3_trace`] but returning only the entry-edge timestamps in
/// seconds — the analyser's input signal.
pub fn mp3_event_times(load_percent: u32, trace_secs: f64, seed: u64) -> Vec<f64> {
    let (events, tid) = mp3_trace(load_percent, trace_secs, seed);
    entry_times_secs(&events, tid)
}

/// Outcome of one adaptive video run (Figures 13–14, Table 3).
pub struct VideoRunOutcome {
    /// Inter-frame times, milliseconds, in frame order.
    pub ift_ms: Vec<f64>,
    /// `(time, granted bandwidth)` series.
    pub bw: Vec<(Time, f64)>,
    /// Frames dropped by the player.
    pub dropped: u64,
    /// The period believed by the controller at the end, if any.
    pub period: Option<Dur>,
}

/// Runs the 25 fps video player under the self-tuning manager for
/// `secs` seconds, with `bg_util` of background RT load (in dedicated
/// reservations) and the given controller configuration.
pub fn video_run(
    ctl_cfg: ControllerConfig,
    mgr_cfg: ManagerConfig,
    bg_util: f64,
    secs: u64,
    seed: u64,
) -> VideoRunOutcome {
    let mut rng = Rng::new(seed);
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig {
        capacity: 1 << 20,
        ..TracerConfig::default()
    });
    kernel.install_hook(Box::new(hook));

    // Background load: one reservation per 10% of utilisation, with a
    // 20 ms period (well away from the player's 40 ms to keep the
    // detection experiments orthogonal).
    let mut remaining = bg_util;
    let mut i = 0;
    while remaining > 1e-9 {
        let u = remaining.min(0.10);
        let period = Dur::ms(20);
        let wcet = period.mul_f64(u);
        let sid = kernel
            .sched_mut()
            .create_server(ServerConfig::new(wcet, period));
        let w = PeriodicRt::new(&format!("bg{i}"), wcet, period, 0.03, rng.fork());
        let tid = kernel.spawn(&format!("bg{i}"), Box::new(w));
        kernel.sched_mut().place(tid, Place::Server(sid));
        remaining -= u;
        i += 1;
    }

    let player = MediaPlayer::new(MediaConfig::mplayer_video_25fps(), rng.fork());
    let tid = kernel.spawn("mplayer", Box::new(player));
    reader.set_filter(TraceFilter::tasks_only([tid]));

    let mut mgr = SelfTuningManager::new(mgr_cfg, reader);
    mgr.manage(tid, "mplayer", ctl_cfg);
    mgr.run(&mut kernel, Time::ZERO + Dur::secs(secs));

    let ift_ms = kernel.metrics().inter_mark_times_ms("mplayer.frame");
    let bw = kernel.metrics().series("mplayer.bw").to_vec();
    let dropped = kernel.metrics().counter("mplayer.dropped");
    let period = mgr.controller_of(tid).and_then(|c| c.period());
    VideoRunOutcome {
        ift_ms,
        bw,
        dropped,
        period,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mp3_trace_produces_bursty_events() {
        let times = mp3_event_times(0, 1.0, 7);
        // ≈ 32.5 jobs × 17 calls.
        assert!(times.len() > 300, "{} events", times.len());
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn background_load_reduces_player_progress() {
        let quiet = mp3_event_times(0, 1.0, 7).len();
        let loaded = mp3_event_times(60, 1.0, 7).len();
        // The player still runs (it only needs ~7%), but events shift;
        // counts stay in the same ballpark.
        assert!(loaded > quiet / 2, "quiet {quiet}, loaded {loaded}");
    }

    #[test]
    fn video_run_smoke() {
        let out = video_run(
            ControllerConfig::default(),
            ManagerConfig::default(),
            0.0,
            6,
            3,
        );
        assert!(out.ift_ms.len() > 100);
        assert!(!out.bw.is_empty());
        assert!(out.period.is_some());
    }
}
