//! Shared command-line handling for the experiment binaries.
//!
//! Every binary in `src/bin/` accepts the same flags; parsing lives here
//! once so a new flag (such as `--journal`) reaches all of them in one
//! place instead of being hand-rolled per binary.

use std::path::{Path, PathBuf};

use selftune_cluster::ScenarioSpec;
use selftune_journal::Journal;

/// Common command-line arguments of the experiment binaries.
#[derive(Clone, Debug)]
pub struct Args {
    /// Base RNG seed.
    pub seed: u64,
    /// Reduce repetitions for a quick smoke run.
    pub fast: bool,
    /// Shrink to CI-budget sizes (smaller still than `--fast`); used by
    /// the scale experiments to fit a wall-clock budget.
    pub smoke: bool,
    /// Results directory.
    pub out: PathBuf,
    /// Scenario file overriding the experiment's built-in fleet (cluster
    /// experiments only; see `ScenarioSpec::from_text` for the format).
    pub scenario: Option<PathBuf>,
    /// Decision-journal output file (cluster experiments only): the
    /// experiment's primary scenario is recorded through
    /// [`selftune_journal::Journal`] and written here.
    pub journal: Option<PathBuf>,
    /// Replication checkpoint cadence in epochs (`--checkpoint-every N`,
    /// distributed experiments only): how often the leader emits a
    /// verification checkpoint on the shipped stream.
    pub checkpoint_every: Option<usize>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed: 42,
            fast: false,
            smoke: false,
            out: PathBuf::from("results"),
            scenario: None,
            journal: None,
            checkpoint_every: None,
        }
    }
}

impl Args {
    /// Parses `--seed N`, `--fast`, `--smoke`, `--out DIR`,
    /// `--scenario FILE`, `--journal FILE` and `--checkpoint-every N`
    /// from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics on malformed arguments (these are experiment binaries; a
    /// loud failure beats a silently wrong configuration).
    pub fn parse() -> Args {
        Args::parse_from(std::env::args().skip(1))
    }

    /// [`Args::parse`] over an explicit argument iterator (testable core).
    ///
    /// # Panics
    ///
    /// Panics on malformed or unknown arguments.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Args {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    out.seed = v.parse().expect("--seed must be an integer");
                }
                "--fast" => out.fast = true,
                "--smoke" => out.smoke = true,
                "--out" => {
                    out.out = PathBuf::from(it.next().expect("--out needs a value"));
                }
                "--scenario" => {
                    out.scenario = Some(PathBuf::from(it.next().expect("--scenario needs a file")));
                }
                "--journal" => {
                    out.journal = Some(PathBuf::from(it.next().expect("--journal needs a file")));
                }
                "--checkpoint-every" => {
                    let v = it.next().expect("--checkpoint-every needs a value");
                    let n: usize = v.parse().expect("--checkpoint-every must be an integer");
                    assert!(n > 0, "--checkpoint-every must be at least 1");
                    out.checkpoint_every = Some(n);
                }
                other => panic!(
                    "unknown argument {other:?} (try --seed/--fast/--smoke/--out/--scenario/--journal/--checkpoint-every)"
                ),
            }
        }
        out
    }

    /// Loads the `--scenario` file, if given.
    ///
    /// # Panics
    ///
    /// Panics with the parse error when the file is missing or malformed
    /// (a silently ignored scenario file would invalidate the experiment).
    pub fn scenario_spec(&self) -> Option<ScenarioSpec> {
        self.scenario
            .as_deref()
            .map(|p| load_scenario(p).unwrap_or_else(|e| panic!("{e}")))
    }

    /// Picks a repetition count: `full` normally, `quick` with `--fast`.
    pub fn reps(&self, full: usize, quick: usize) -> usize {
        if self.fast {
            quick
        } else {
            full
        }
    }

    /// Ensures the results directory exists and returns a path inside it.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn out_path(&self, file: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out).expect("create results dir");
        self.out.join(file)
    }

    /// Writes an already-recorded decision journal to the `--journal`
    /// path. A no-op without the flag.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors (experiment binaries).
    pub fn write_journal(&self, journal: &Journal) {
        let Some(path) = &self.journal else {
            return;
        };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
            }
        }
        std::fs::write(path, journal.to_text())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("[wrote {}]", path.display());
    }

    /// Records a fresh decision journal of `spec` under the experiment
    /// seed and writes it to the `--journal` path. A no-op without the
    /// flag; cluster experiments call this once on their primary
    /// scenario.
    pub fn record_journal(&self, spec: &ScenarioSpec) {
        if self.journal.is_some() {
            let (_, journal) = Journal::record(2, spec, self.seed);
            self.write_journal(&journal);
        }
    }
}

/// Loads a [`ScenarioSpec`] from a text file (the `ScenarioSpec::to_text`
/// format).
///
/// # Errors
///
/// A human-readable message naming the file for I/O failures or the first
/// offending line for parse failures.
pub fn load_scenario(path: &Path) -> Result<ScenarioSpec, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("reading scenario {}: {e}", path.display()))?;
    ScenarioSpec::from_text(&text).map_err(|e| format!("parsing scenario {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parse_from_covers_every_flag() {
        let a = Args::parse_from(strings(&[
            "--seed",
            "7",
            "--fast",
            "--smoke",
            "--out",
            "elsewhere",
            "--scenario",
            "fleet.txt",
            "--journal",
            "run.journal",
            "--checkpoint-every",
            "3",
        ]));
        assert_eq!(a.seed, 7);
        assert!(a.fast);
        assert!(a.smoke);
        assert_eq!(a.out, PathBuf::from("elsewhere"));
        assert_eq!(a.scenario.as_deref(), Some(Path::new("fleet.txt")));
        assert_eq!(a.journal.as_deref(), Some(Path::new("run.journal")));
        assert_eq!(a.checkpoint_every, Some(3));
    }

    #[test]
    fn parse_from_defaults_without_flags() {
        let a = Args::parse_from(Vec::new());
        assert_eq!(a.seed, 42);
        assert!(!a.fast);
        assert!(!a.smoke);
        assert!(a.scenario.is_none());
        assert!(a.journal.is_none());
        assert!(a.checkpoint_every.is_none());
    }

    #[test]
    #[should_panic(expected = "--checkpoint-every must be at least 1")]
    fn parse_from_rejects_zero_checkpoint_cadence() {
        Args::parse_from(strings(&["--checkpoint-every", "0"]));
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn parse_from_rejects_unknown_flags() {
        Args::parse_from(strings(&["--bogus"]));
    }

    #[test]
    fn record_journal_round_trips_through_the_flag_path() {
        let dir = std::env::temp_dir().join("selftune-bench-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.journal");
        let args = Args {
            journal: Some(path.clone()),
            ..Args::default()
        };
        let spec = selftune_cluster::ScenarioSpec::new(
            "cli-demo",
            2,
            4,
            selftune_simcore::time::Dur::ms(500),
        );
        args.record_journal(&spec);
        let text = std::fs::read_to_string(&path).expect("journal written");
        let journal = Journal::from_text(&text).expect("journal parses");
        assert_eq!(journal.seed, args.seed);
        assert_eq!(journal.scenario, spec);
    }

    #[test]
    fn write_journal_without_flag_is_a_no_op() {
        let args = Args::default();
        // No path set: nothing to write, nothing to panic about.
        let spec =
            selftune_cluster::ScenarioSpec::new("noop", 2, 2, selftune_simcore::time::Dur::ms(200));
        args.record_journal(&spec);
    }
}
