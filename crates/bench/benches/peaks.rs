//! Criterion benches for the peak-detection heuristic (Figure 8 backing
//! data): cost vs ε and the α-threshold cut, per Equation (5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selftune_spectrum::{
    amplitude_spectrum, detect, synthetic_burst_train, PeakConfig, SpectrumConfig,
};
use std::hint::black_box;

fn spectrum() -> selftune_spectrum::Spectrum {
    let events = synthetic_burst_train(1.0 / 32.5, 65, 16, 0.004);
    amplitude_spectrum(&events, SpectrumConfig::new(30.0, 100.0, 0.1))
}

fn bench_epsilon(c: &mut Criterion) {
    let spec = spectrum();
    let mut g = c.benchmark_group("peaks/by_epsilon");
    for &eps in &[0.1f64, 0.5, 1.0] {
        let cfg = PeakConfig {
            epsilon: eps,
            ..PeakConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(eps), &cfg, |b, cfg| {
            b.iter(|| detect(black_box(&spec), cfg));
        });
    }
    g.finish();
}

fn bench_alpha(c: &mut Criterion) {
    let spec = spectrum();
    let mut g = c.benchmark_group("peaks/by_alpha");
    for &alpha in &[0.0f64, 0.2, 1.0] {
        let cfg = PeakConfig {
            alpha,
            ..PeakConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(alpha), &cfg, |b, cfg| {
            b.iter(|| detect(black_box(&spec), cfg));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_epsilon, bench_alpha);
criterion_main!(benches);
