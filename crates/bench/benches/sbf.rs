//! Criterion benches for the schedulability analysis (Figures 1–2 sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use selftune_analysis::{cbs_sbf, min_bandwidth_rm_group, min_budget_single, PeriodicTask};
use std::hint::black_box;

fn bench_sbf(c: &mut Criterion) {
    c.bench_function("sbf/cbs_sbf", |b| {
        let mut d = 0.0;
        b.iter(|| {
            d += 0.37;
            if d > 500.0 {
                d = 0.0;
            }
            black_box(cbs_sbf(20.0, 100.0, d))
        });
    });
}

fn bench_min_budget(c: &mut Criterion) {
    let task = PeriodicTask::new(20.0, 100.0);
    c.bench_function("sbf/min_budget_single", |b| {
        b.iter(|| black_box(min_budget_single(task, 37.0)));
    });
}

fn bench_rm_group(c: &mut Criterion) {
    let tasks = vec![
        PeriodicTask::new(3.0, 15.0),
        PeriodicTask::new(5.0, 20.0),
        PeriodicTask::new(5.0, 30.0),
    ];
    c.bench_function("sbf/min_bandwidth_rm_group", |b| {
        b.iter(|| black_box(min_bandwidth_rm_group(&tasks, 12.0)));
    });
}

criterion_group!(benches, bench_sbf, bench_min_budget, bench_rm_group);
criterion_main!(benches);
