//! Criterion benches for the direct DFT (Figures 6–7 backing data).
//!
//! Equation (3): cost ∝ bins × events. The groups sweep each factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use selftune_spectrum::{amplitude_spectrum, synthetic_burst_train, SpectrumConfig, WindowedDft};
use std::hint::black_box;

fn bench_batch_events(c: &mut Criterion) {
    let cfg = SpectrumConfig::new(30.0, 100.0, 0.1);
    let mut g = c.benchmark_group("dft/batch_by_events");
    for &jobs in &[16usize, 32, 65, 130] {
        let events = synthetic_burst_train(1.0 / 32.5, jobs, 16, 0.004);
        g.throughput(Throughput::Elements(events.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(jobs), &events, |b, ev| {
            b.iter(|| amplitude_spectrum(black_box(ev), cfg));
        });
    }
    g.finish();
}

fn bench_batch_bins(c: &mut Criterion) {
    let events = synthetic_burst_train(1.0 / 32.5, 65, 16, 0.004);
    let mut g = c.benchmark_group("dft/batch_by_df");
    for &df in &[0.5f64, 0.2, 0.1, 0.05] {
        let cfg = SpectrumConfig::new(30.0, 100.0, df);
        g.throughput(Throughput::Elements(cfg.bins() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(df), &cfg, |b, &cfg| {
            b.iter(|| amplitude_spectrum(black_box(&events), cfg));
        });
    }
    g.finish();
}

fn bench_incremental_push(c: &mut Criterion) {
    let cfg = SpectrumConfig::new(30.0, 100.0, 0.1);
    c.bench_function("dft/incremental_push", |b| {
        let mut w = WindowedDft::new(cfg, 2.0);
        let mut t = 0.0;
        b.iter(|| {
            t += 0.002;
            w.push(black_box(t));
        });
    });
}

criterion_group!(
    benches,
    bench_batch_events,
    bench_batch_bins,
    bench_incremental_push
);
criterion_main!(benches);
