//! Criterion benches for the fleet runner: node throughput at 1, 4 and
//! all-hardware threads. On multicore hosts the higher thread counts show
//! near-linear node/sec scaling; on a single core they bound the
//! coordination overhead instead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use selftune_cluster::prelude::*;
use selftune_simcore::time::Dur;

const NODES: usize = 8;

fn fleet_spec() -> ScenarioSpec {
    ScenarioSpec::new("bench", NODES, 4 * NODES, Dur::ms(1500)).with_mix(TaskMix::rt_only())
}

fn bench_runner_threads(c: &mut Criterion) {
    let spec = fleet_spec();
    let max_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut g = c.benchmark_group("cluster/run_nodes");
    g.sample_size(10);
    g.throughput(Throughput::Elements(NODES as u64));
    let mut counts = vec![1usize, 4, max_threads];
    counts.sort_unstable();
    counts.dedup();
    for threads in counts {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let runner = ClusterRunner::new(threads);
                b.iter(|| runner.run(&spec, 42));
            },
        );
    }
    g.finish();
}

fn bench_planning(c: &mut Criterion) {
    let spec = ScenarioSpec::new("bench-plan", 64, 1024, Dur::secs(10));
    c.bench_function("cluster/plan_1024_tasks", |b| {
        b.iter(|| plan_fleet(&spec, 42));
    });
}

criterion_group!(benches, bench_runner_threads, bench_planning);
criterion_main!(benches);
