//! Criterion benches for CBS server operations and the EDF pick path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selftune_sched::{Place, ReservationScheduler, ServerConfig};
use selftune_simcore::scheduler::Scheduler;
use selftune_simcore::task::TaskId;
use selftune_simcore::time::{Dur, Time};
use std::hint::black_box;

fn bench_pick(c: &mut Criterion) {
    let mut g = c.benchmark_group("cbs/edf_pick");
    for &servers in &[4usize, 16, 64, 256] {
        let mut s = ReservationScheduler::new();
        for i in 0..servers {
            let sid = s.create_server(ServerConfig::new(Dur::us(500), Dur::ms(10 + i as u64 % 50)));
            let t = TaskId(i as u32);
            s.place(t, Place::Server(sid));
            s.on_ready(t, Time::ZERO);
        }
        g.bench_with_input(BenchmarkId::from_parameter(servers), &servers, |b, _| {
            b.iter(|| black_box(&mut s).pick(Time::ZERO + Dur::ms(1)));
        });
    }
    g.finish();
}

fn bench_charge(c: &mut Criterion) {
    c.bench_function("cbs/charge", |b| {
        let mut s = ReservationScheduler::new();
        let sid = s.create_server(ServerConfig::new(Dur::ms(100), Dur::ms(100)));
        s.place(TaskId(0), Place::Server(sid));
        s.on_ready(TaskId(0), Time::ZERO);
        let mut now = Time::ZERO;
        b.iter(|| {
            now += Dur::us(1);
            s.charge(TaskId(0), Dur::ns(100), now);
        });
    });
}

criterion_group!(benches, bench_pick, bench_charge);
criterion_main!(benches);
