//! Criterion benches for the discrete-event kernel: event throughput with
//! periodic tasks under the reservation scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use selftune_apps::PeriodicRt;
use selftune_sched::{Place, ReservationScheduler, ServerConfig};
use selftune_simcore::rng::Rng;
use selftune_simcore::time::Dur;
use selftune_simcore::Kernel;

fn sim_second(tasks: usize) {
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let mut rng = Rng::new(7);
    for i in 0..tasks {
        let period = Dur::ms(5 + (i as u64 % 7) * 3);
        let wcet = period.mul_f64(0.6 / tasks as f64);
        let sid = kernel
            .sched_mut()
            .create_server(ServerConfig::new(wcet.max(Dur::us(50)), period));
        let w = PeriodicRt::new("t", wcet.max(Dur::us(50)), period, 0.05, rng.fork());
        let tid = kernel.spawn("t", Box::new(w));
        kernel.sched_mut().place(tid, Place::Server(sid));
    }
    kernel.run_for(Dur::secs(1));
}

fn bench_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/sim_one_second");
    g.sample_size(20);
    for &tasks in &[1usize, 4, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, &t| {
            b.iter(|| sim_second(t));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
