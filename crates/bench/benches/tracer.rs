//! Criterion benches for the tracer hot paths: per-edge recording and
//! batch draining (the paper's "negligible overhead" claim, Section 4.1).

use criterion::{criterion_group, criterion_main, Criterion};
use selftune_simcore::kernel::SyscallHook;
use selftune_simcore::syscall::SyscallNr;
use selftune_simcore::task::TaskId;
use selftune_simcore::time::{Dur, Time};
use selftune_tracer::{Tracer, TracerConfig};

fn bench_record(c: &mut Criterion) {
    c.bench_function("tracer/record_edge", |b| {
        let (mut hook, reader) = Tracer::create(TracerConfig::default());
        let mut now = Time::ZERO;
        let mut n = 0u64;
        b.iter(|| {
            now += Dur::us(1);
            hook.on_enter(TaskId(1), SyscallNr::Ioctl, now);
            n += 1;
            if n.is_multiple_of(60_000) {
                let _ = reader.drain(); // keep the ring from overwriting
            }
        });
    });
}

fn bench_drain(c: &mut Criterion) {
    c.bench_function("tracer/drain_4096", |b| {
        let (mut hook, reader) = Tracer::create(TracerConfig::default());
        b.iter(|| {
            for i in 0..4096u64 {
                hook.on_enter(TaskId(1), SyscallNr::Read, Time::from_ns(i));
            }
            reader.drain()
        });
    });
}

criterion_group!(benches, bench_record, bench_drain);
criterion_main!(benches);
