//! Criterion benches for the tracer hot paths: per-edge recording and
//! batch draining (the paper's "negligible overhead" claim, Section 4.1).

use criterion::{criterion_group, criterion_main, Criterion};
use selftune_simcore::kernel::SyscallHook;
use selftune_simcore::syscall::SyscallNr;
use selftune_simcore::task::TaskId;
use selftune_simcore::time::{Dur, Time};
use selftune_tracer::{Tracer, TracerConfig};

fn bench_record(c: &mut Criterion) {
    c.bench_function("tracer/record_edge", |b| {
        let (mut hook, reader) = Tracer::create(TracerConfig::default());
        let mut now = Time::ZERO;
        let mut n = 0u64;
        b.iter(|| {
            now += Dur::us(1);
            hook.on_enter(TaskId(1), SyscallNr::Ioctl, now);
            n += 1;
            if n.is_multiple_of(60_000) {
                let _ = reader.drain(); // keep the ring from overwriting
            }
        });
    });
}

fn bench_drain(c: &mut Criterion) {
    c.bench_function("tracer/drain_4096", |b| {
        let (mut hook, reader) = Tracer::create(TracerConfig::default());
        b.iter(|| {
            for i in 0..4096u64 {
                hook.on_enter(TaskId(1), SyscallNr::Read, Time::from_ns(i));
            }
            reader.drain()
        });
    });
}

fn bench_drain_into(c: &mut Criterion) {
    // Same batch workload as `drain_4096`, but reusing one buffer across
    // batches (the manager's steady-state read path) instead of
    // allocating a fresh Vec per drain.
    c.bench_function("tracer/drain_into_4096", |b| {
        let (mut hook, reader) = Tracer::create(TracerConfig::default());
        let mut batch = Vec::new();
        b.iter(|| {
            for i in 0..4096u64 {
                hook.on_enter(TaskId(1), SyscallNr::Read, Time::from_ns(i));
            }
            reader.drain_into(&mut batch);
            batch.len()
        });
    });
}

fn bench_ring_drain(c: &mut Criterion) {
    // Ring-level isolation of the drain cost (refill is a plain integer
    // push, so the per-batch Vec allocation is visible). The large batch
    // crosses the allocator's mmap threshold, where a fresh allocation
    // per drain costs a syscall pair.
    use selftune_tracer::RingBuffer;
    for size in [4096usize, 65536] {
        c.bench_function(&format!("tracer/ring_drain_{size}"), |b| {
            let mut ring: RingBuffer<u64> = RingBuffer::new(size);
            b.iter(|| {
                for i in 0..size as u64 {
                    ring.push(i);
                }
                ring.drain()
            });
        });
        c.bench_function(&format!("tracer/ring_drain_into_{size}"), |b| {
            let mut ring: RingBuffer<u64> = RingBuffer::new(size);
            let mut batch = Vec::new();
            b.iter(|| {
                for i in 0..size as u64 {
                    ring.push(i);
                }
                ring.drain_into(&mut batch);
                batch.len()
            });
        });
    }
}

criterion_group!(
    benches,
    bench_record,
    bench_drain,
    bench_drain_into,
    bench_ring_drain
);
criterion_main!(benches);
