//! Criterion benches for the feedback-path hot code: quantile predictor
//! and one full LFS++ step.

use criterion::{criterion_group, criterion_main, Criterion};
use selftune_core::{LfsPlusPlus, LfsPpConfig, Predictor, QuantileEstimator};
use selftune_simcore::time::Dur;
use std::hint::black_box;

fn bench_quantile(c: &mut Criterion) {
    c.bench_function("predictor/quantile_observe_predict", |b| {
        let mut q = QuantileEstimator::paper_default();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            q.observe(Dur::us(900 + (i * 37) % 300));
            black_box(q.predict())
        });
    });
}

fn bench_lfspp_step(c: &mut Criterion) {
    c.bench_function("predictor/lfspp_step", |b| {
        let mut ctl = LfsPlusPlus::new(LfsPpConfig::default());
        let mut total = Dur::ZERO;
        b.iter(|| {
            total += Dur::ms(9);
            black_box(ctl.step(total, Dur::ms(500), Dur::ms(40)))
        });
    });
}

criterion_group!(benches, bench_quantile, bench_lfspp_step);
criterion_main!(benches);
