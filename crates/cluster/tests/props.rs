//! Property-based tests for the fleet subsystem.
//!
//! Two families:
//!
//! * **Determinism** — the same `(spec, seed)` must produce byte-identical
//!   aggregate CSV whether the fleet runs on 1 thread or several. These
//!   run whole (small) fleet simulations, so the case count is reduced.
//! * **Placer invariants** — the placer must never book a node beyond the
//!   utilisation bound, must only admit tasks the minbudget analysis can
//!   schedule, and must reject only when no node had room.

use proptest::prelude::*;
use selftune_analysis::{min_bandwidth_single, PeriodicTask};
use selftune_cluster::prelude::*;
use selftune_simcore::time::Dur;

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::FirstFit),
        Just(PolicyKind::WorstFit),
        Just(PolicyKind::BandwidthAware),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn fleet_aggregates_identical_across_thread_counts(
        seed in 0u64..1_000_000,
        nodes in 2usize..5,
        tasks in 6usize..16,
        threads in 2usize..5,
    ) {
        let spec = ScenarioSpec::new("prop-determinism", nodes, tasks, Dur::ms(1200))
            .with_mix(TaskMix::rt_only())
            .with_arrivals(ArrivalSchedule::Staggered { gap: Dur::ms(50) });
        let serial = ClusterRunner::new(1).run(&spec, seed);
        let parallel = ClusterRunner::new(threads).run(&spec, seed);
        prop_assert_eq!(serial.summary_csv(), parallel.summary_csv());
    }

    #[test]
    fn churn_and_overload_stay_deterministic(
        seed in 0u64..1_000_000,
        threads in 2usize..4,
    ) {
        let spec = ScenarioSpec::new("prop-churn", 3, 10, Dur::ms(1500))
            .with_mix(TaskMix::rt_only())
            .with_arrivals(ArrivalSchedule::Poisson { mean_gap: Dur::ms(40) })
            .with_churn(Churn {
                mean_lifetime: Dur::ms(600),
                min_lifetime: Dur::ms(150),
            })
            .with_overload(OverloadWindow {
                start: Dur::ms(400),
                end: Dur::ms(900),
                hogs_per_node: 1,
                chunk: Dur::ms(5),
            });
        let serial = ClusterRunner::new(1).run(&spec, seed);
        let parallel = ClusterRunner::new(threads).run(&spec, seed);
        prop_assert_eq!(serial.summary_csv(), parallel.summary_csv());
    }
}

proptest! {
    #[test]
    fn placer_never_admits_unschedulable_or_overbooks(
        tasks in prop::collection::vec((1u64..40, 40u64..200), 1..40),
        nodes in 1usize..8,
        ulub_pct in 50u64..101,
        headroom_pct in 100u64..151,
        policy in policy_strategy(),
    ) {
        let ulub = ulub_pct as f64 / 100.0;
        let headroom = headroom_pct as f64 / 100.0;
        let mut placer = Placer::new(nodes, ulub, headroom, policy);
        for (i, &(c, p)) in tasks.iter().enumerate() {
            let wcet = (c as f64).min(p as f64);
            let task = PeriodicTask::new(wcet, p as f64);
            let outcome = placer.place(task, i as u64, None);
            let demand = (min_bandwidth_single(task, task.period) * headroom).min(1.0);
            match outcome {
                PlacementOutcome::Admitted { node, demand: booked, .. } => {
                    // Booked exactly the analysis-backed demand.
                    prop_assert!((booked - demand).abs() < 1e-12);
                    prop_assert!(node < nodes);
                    // A task whose minimum schedulable bandwidth exceeds
                    // the bound must never be admitted.
                    prop_assert!(demand <= ulub + 1e-9, "admitted demand {demand} over ulub {ulub}");
                }
                PlacementOutcome::Rejected { best_spare, .. } => {
                    // Rejection witness: nothing had room.
                    prop_assert!(demand > best_spare + 1e-12);
                }
            }
            // The bound holds on every node after every decision.
            for &r in placer.reserved() {
                prop_assert!(r <= ulub + 1e-9, "node over bound: {r} > {ulub}");
            }
        }
    }

    #[test]
    fn candidate_order_is_a_permutation(
        reserved in prop::collection::vec(0.0f64..1.0, 1..12),
        policy in policy_strategy(),
    ) {
        let order = policy.candidate_order(&reserved);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..reserved.len()).collect::<Vec<_>>());
        if policy == PolicyKind::WorstFit {
            for w in order.windows(2) {
                prop_assert!(reserved[w[0]] <= reserved[w[1]] + 1e-12);
            }
        }
        if policy == PolicyKind::BandwidthAware {
            for w in order.windows(2) {
                prop_assert!(reserved[w[0]] >= reserved[w[1]] - 1e-12);
            }
        }
    }

    #[test]
    fn released_bandwidth_is_reusable(
        demands in prop::collection::vec(5u64..40, 1..20),
        nodes in 1usize..4,
    ) {
        // Every task departs before the next arrives: nothing accumulates,
        // so every task with feasible demand must be admitted.
        let ulub = 0.9;
        let mut placer = Placer::new(nodes, ulub, 1.0, PolicyKind::FirstFit);
        for (i, &c) in demands.iter().enumerate() {
            let now = (i as u64) * 1_000;
            let task = PeriodicTask::new(c as f64, 100.0);
            let outcome = placer.place(task, now, Some(now + 500));
            match outcome {
                PlacementOutcome::Admitted { .. } => {}
                PlacementOutcome::Rejected { demand, .. } => {
                    prop_assert!(demand > ulub + 1e-9, "spuriously rejected {demand}");
                }
            }
        }
    }
}
