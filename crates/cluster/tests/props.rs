//! Property-based tests for the fleet subsystem.
//!
//! Three families:
//!
//! * **Determinism** — the same `(spec, seed)` must produce byte-identical
//!   aggregate CSV whether the fleet runs on 1 thread or several, with
//!   and without the feedback rebalancer (whose epoch barriers and
//!   migrations must not observe the thread count). These run whole
//!   (small) fleet simulations, so the case count is reduced.
//! * **Placer invariants** — the placer must never book a node beyond the
//!   utilisation bound, must only admit tasks the minbudget analysis can
//!   schedule, must reject only when no node had room, and live
//!   migrations must respect the destination's admission bound.
//! * **Scenario text I/O** — `to_text`/`from_text` round-trip exactly.

use proptest::prelude::*;
use selftune_analysis::{min_bandwidth_single, PeriodicTask};
use selftune_cluster::prelude::*;
use selftune_cluster::{Node, NodeSketches, NodeTask, NodeTotals, StreamSketch};
use selftune_simcore::stats::quantile_sorted;
use selftune_simcore::time::{Dur, Time};

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::FirstFit),
        Just(PolicyKind::WorstFit),
        Just(PolicyKind::BandwidthAware),
    ]
}

fn kind_strategy() -> impl Strategy<Value = TaskKind> {
    prop_oneof![
        Just(TaskKind::Video25),
        Just(TaskKind::Mp3),
        Just(TaskKind::Stream30),
        (1u64..8, 20u64..200).prop_map(|(c, p)| TaskKind::PeriodicRt {
            wcet: Dur::ms(c),
            period: Dur::ms(p),
        }),
        (1u64..4, 4u64..12, 20u64..200).prop_map(|(n, c, p)| TaskKind::HungryRt {
            nominal_wcet: Dur::ms(n),
            wcet: Dur::ms(c),
            period: Dur::ms(p),
        }),
        (5u64..50, 1u64..5, 1u32..4).prop_map(|(g, w, b)| TaskKind::Aperiodic {
            mean_gap: Dur::ms(g),
            mean_work: Dur::ms(w),
            burst: b,
        }),
    ]
}

/// A fleet whose nominal demand lies (tasks claim 2 ms, burn 6 ms) and is
/// densely packed by first-fit — the configuration that makes the
/// feedback rebalancer actually migrate.
fn rebalance_spec(nodes: usize, tasks: usize, pressure: f64, max_moves: u32) -> ScenarioSpec {
    ScenarioSpec::new("prop-rebalance", nodes, tasks, Dur::ms(3_000))
        .with_mix(TaskMix::new(vec![(
            TaskKind::HungryRt {
                nominal_wcet: Dur::ms(2),
                wcet: Dur::ms(6),
                period: Dur::ms(40),
            },
            1.0,
        )]))
        .with_arrivals(ArrivalSchedule::Staggered { gap: Dur::ms(80) })
        .with_policy(PolicyKind::FirstFit)
        .with_ulub(0.9)
        .with_rebalance(RebalanceSpec {
            enabled: true,
            period: Dur::ms(600),
            pressure,
            max_moves,
            ..RebalanceSpec::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn fleet_aggregates_identical_across_thread_counts(
        seed in 0u64..1_000_000,
        nodes in 2usize..5,
        tasks in 6usize..16,
        threads in 2usize..5,
    ) {
        let spec = ScenarioSpec::new("prop-determinism", nodes, tasks, Dur::ms(1200))
            .with_mix(TaskMix::rt_only())
            .with_arrivals(ArrivalSchedule::Staggered { gap: Dur::ms(50) });
        let serial = ClusterRunner::new(1).run(&spec, seed);
        let parallel = ClusterRunner::new(threads).run(&spec, seed);
        prop_assert_eq!(serial.summary_csv(), parallel.summary_csv());
    }

    #[test]
    fn churn_and_overload_stay_deterministic(
        seed in 0u64..1_000_000,
        threads in 2usize..4,
    ) {
        let spec = ScenarioSpec::new("prop-churn", 3, 10, Dur::ms(1500))
            .with_mix(TaskMix::rt_only())
            .with_arrivals(ArrivalSchedule::Poisson { mean_gap: Dur::ms(40) })
            .with_churn(Churn {
                mean_lifetime: Dur::ms(600),
                min_lifetime: Dur::ms(150),
            })
            .with_overload(OverloadWindow {
                start: Dur::ms(400),
                end: Dur::ms(900),
                hogs_per_node: 1,
                chunk: Dur::ms(5),
                nodes: NodeFilter::All,
            });
        let serial = ClusterRunner::new(1).run(&spec, seed);
        let parallel = ClusterRunner::new(threads).run(&spec, seed);
        prop_assert_eq!(serial.summary_csv(), parallel.summary_csv());
    }

    #[test]
    fn rebalanced_runs_are_byte_identical_at_1_2_and_8_threads(
        seed in 0u64..1_000_000,
        nodes in 3usize..5,
        tasks in 8usize..13,
        pressure in 0.1f64..0.4,
        max_moves in 2u32..5,
    ) {
        let spec = rebalance_spec(nodes, tasks, pressure, max_moves);
        // Chunk 1 maximises claim interleaving; the epoch barriers and the
        // migration decisions must not observe it.
        let baseline = ClusterRunner::new(1).with_chunk(1).run(&spec, seed);
        for threads in [2usize, 8] {
            let m = ClusterRunner::new(threads).with_chunk(1).run(&spec, seed);
            prop_assert_eq!(baseline.summary_csv(), m.summary_csv(), "{} threads", threads);
        }
    }

    #[test]
    fn vm_fleets_with_ewma_and_warm_start_are_thread_count_invariant(
        seed in 0u64..1_000_000,
        alpha_pct in 30u64..101,
        guests in 1usize..3,
        warm in any::<bool>(),
    ) {
        // A fleet mixing flat tasks and whole virtual platforms, with the
        // EWMA hysteresis and warm hand-over active: the epoch barriers,
        // the smoothed pressure fold and VM migrations must all be
        // invariant in the worker-thread count.
        let spec = rebalance_spec(4, 6, 0.2, 4)
            .with_vm(VmSpec::uniform(
                Dur::ms(3),
                Dur::ms(10),
                guests,
                TaskKind::PeriodicRt {
                    wcet: Dur::ms(4),
                    period: Dur::ms(40),
                },
            ))
            .with_vm(VmSpec::uniform(
                Dur::ms(2),
                Dur::ms(10),
                1,
                TaskKind::HungryRt {
                    nominal_wcet: Dur::ms(1),
                    wcet: Dur::ms(4),
                    period: Dur::ms(40),
                },
            ))
            .with_rebalance(RebalanceSpec {
                enabled: true,
                period: Dur::ms(600),
                pressure: 0.2,
                max_moves: 4,
                ewma_alpha: alpha_pct as f64 / 100.0,
                warm_start: warm,
            });
        let baseline = ClusterRunner::new(1).with_chunk(1).run(&spec, seed);
        prop_assert!(baseline.admission.vms_admitted >= 1);
        for threads in [2usize, 8] {
            let m = ClusterRunner::new(threads).with_chunk(1).run(&spec, seed);
            prop_assert_eq!(baseline.summary_csv(), m.summary_csv(), "{} threads", threads);
        }
    }

    #[test]
    fn elastic_vm_fleets_are_thread_count_invariant(
        seed in 0u64..1_000_000,
        guests in 1usize..3,
        hungry_wcet in 3u64..8,
        warm in any::<bool>(),
    ) {
        // Elastic VMs close the host-level loop *inside* each node while
        // the rebalancer runs the fleet-level loop around them: the
        // controller's re-grants, the granted-share feedback and the
        // elastic-VM eviction exemption must all stay invariant in the
        // worker-thread count.
        let spec = rebalance_spec(4, 6, 0.2, 4)
            .with_vm(
                VmSpec::uniform(
                    Dur::ms(3),
                    Dur::ms(10),
                    guests,
                    TaskKind::PeriodicRt {
                        wcet: Dur::ms(4),
                        period: Dur::ms(40),
                    },
                )
                .with_elastic(),
            )
            .with_vm(
                VmSpec::uniform(
                    Dur::ms(2),
                    Dur::ms(10),
                    1,
                    TaskKind::HungryRt {
                        nominal_wcet: Dur::ms(1),
                        wcet: Dur::ms(hungry_wcet),
                        period: Dur::ms(40),
                    },
                )
                .with_elastic(),
            )
            .with_rebalance(RebalanceSpec {
                enabled: true,
                period: Dur::ms(600),
                pressure: 0.2,
                max_moves: 4,
                ewma_alpha: 0.6,
                warm_start: warm,
            });
        let baseline = ClusterRunner::new(1).with_chunk(1).run(&spec, seed);
        prop_assert!(baseline.admission.vms_admitted >= 1);
        // Elastic VMs are never rebalance victims.
        prop_assert!(baseline.rebalance.records.iter().all(|r| !r.vm));
        for threads in [2usize, 8] {
            let m = ClusterRunner::new(threads).with_chunk(1).run(&spec, seed);
            prop_assert_eq!(baseline.summary_csv(), m.summary_csv(), "{} threads", threads);
        }
    }

    #[test]
    fn bucketed_index_matches_the_scan_placer_on_random_fleets(
        seed in 0u64..1_000_000,
        nodes in 2usize..7,
        tasks in 6usize..16,
        policy in policy_strategy(),
        with_vm in any::<bool>(),
        warm in any::<bool>(),
    ) {
        // The bucketed headroom index answers every placement and
        // rebalance-destination query; the linear scan is the retained
        // reference. Same spec, same seed: the two must agree byte for
        // byte on the aggregate summary — across policies, VM fleets and
        // worker-thread counts — or the index returned a different node
        // than the scan somewhere.
        let mut spec = rebalance_spec(nodes, tasks, 0.2, 4).with_policy(policy);
        if warm {
            spec.rebalance.warm_start = true;
        }
        if with_vm {
            spec = spec.with_vm(VmSpec::uniform(
                Dur::ms(3),
                Dur::ms(10),
                2,
                TaskKind::PeriodicRt {
                    wcet: Dur::ms(4),
                    period: Dur::ms(40),
                },
            ));
        }
        for threads in [1usize, 2, 8] {
            let indexed = ClusterRunner::new(threads).with_chunk(1).run(&spec, seed);
            let scanned = ClusterRunner::new(threads)
                .with_chunk(1)
                .with_scan_placement(true)
                .run(&spec, seed);
            prop_assert_eq!(
                indexed.summary_csv(),
                scanned.summary_csv(),
                "index vs scan diverged at {} threads", threads
            );
        }
    }

    #[test]
    fn sketch_mode_keeps_exact_counters_on_random_fleets(
        seed in 0u64..1_000_000,
        nodes in 2usize..6,
        tasks in 6usize..14,
        threads in 1usize..4,
    ) {
        // Sketch aggregates trade CDF resolution, never counts: the
        // fleet-level counters of a sketch run must equal the detailed
        // run's exactly, the per-node rows must be byte-identical, and
        // the per-task vectors must actually be gone.
        let spec = rebalance_spec(nodes, tasks, 0.2, 4);
        let detailed = ClusterRunner::new(threads).run(&spec, seed);
        let sketched = ClusterRunner::new(threads)
            .with_sketch_aggregates(true)
            .run(&spec, seed);
        prop_assert_eq!(detailed.completions(), sketched.completions());
        prop_assert_eq!(detailed.misses(), sketched.misses());
        prop_assert_eq!(detailed.rebalance.moves, sketched.rebalance.moves);
        prop_assert!((detailed.miss_ratio() - sketched.miss_ratio()).abs() < 1e-12);
        prop_assert_eq!(detailed.node_rows(), sketched.node_rows());
        prop_assert!(sketched.nodes.iter().all(|n| n.tasks.is_empty()));
    }

    #[test]
    fn node_share_fleets_are_thread_invariant_and_bound_respecting(
        seed in 0u64..1_000_000,
        floor_pct in 40u64..70,
        tasks in 8usize..13,
    ) {
        // The full composed plane — elastic VMs inside each node, node
        // re-bounding from fleet feedback, the rebalancer around both —
        // must stay byte-identical in the worker-thread count (events and
        // summary), and every re-bound decision must stay inside the
        // configured [floor, cap] with the node's granted bandwidth never
        // exceeding the bound that was in force when the snapshot was
        // taken (the supervisor recompresses the moment a bound drops).
        let floor = floor_pct as f64 / 100.0;
        let spec = rebalance_spec(4, tasks, 0.2, 4)
            .with_vm(
                VmSpec::uniform(
                    Dur::ms(3),
                    Dur::ms(10),
                    2,
                    TaskKind::PeriodicRt {
                        wcet: Dur::ms(4),
                        period: Dur::ms(40),
                    },
                )
                .with_elastic(),
            )
            .with_node_share(NodeShareSpec { enabled: true, floor, cap: 0.95 });
        let (baseline, events) = ClusterRunner::new(1).with_chunk(1).run_logged(&spec, seed);
        for e in &events {
            if let FleetEvent::NodeRebound { prev, bound, reserved, .. } = e {
                prop_assert!(
                    *bound >= floor - 1e-9 && *bound <= 0.95 + 1e-9,
                    "bound {} outside [{}, 0.95]", bound, floor
                );
                // 1e-6 slack: proportional recompression sums rounded
                // per-VM grants, so the total can sit a few ulps high.
                prop_assert!(
                    *reserved <= *prev + 1e-6,
                    "granted {} over the bound {} in force", reserved, prev
                );
            }
        }
        for threads in [2usize, 8] {
            let (m, ev) = ClusterRunner::new(threads).with_chunk(1).run_logged(&spec, seed);
            prop_assert_eq!(baseline.summary_csv(), m.summary_csv(), "{} threads", threads);
            prop_assert_eq!(&events, &ev, "{} threads", threads);
        }
    }

    #[test]
    fn migrations_respect_destination_admission_invariant(
        seed in 0u64..1_000_000,
        tasks in 10usize..14,
    ) {
        // A pressure threshold low enough that the packed node drains.
        let spec = rebalance_spec(4, tasks, 0.15, 4);
        let m = ClusterRunner::new(2).run(&spec, seed);
        prop_assert!(m.rebalance.epochs > 0);
        for r in &m.rebalance.records {
            // The booked demand is at least the nominal minbudget demand
            // (the admission floor the initial placement would have used)…
            let nominal = PeriodicTask::new(2.0, 40.0);
            let floor = min_bandwidth_single(nominal, nominal.period) * spec.headroom;
            prop_assert!(r.demand >= floor - 1e-9, "booked {} under floor {}", r.demand, floor);
            // …and the destination's booked bandwidth never exceeds the
            // per-node utilisation bound.
            prop_assert!(
                r.dest_reserved_after <= spec.ulub + 1e-9,
                "node {} overbooked: {}",
                r.to,
                r.dest_reserved_after
            );
            prop_assert!(r.from != r.to);
            prop_assert!(r.to < spec.nodes);
        }
    }

    #[test]
    fn slot_recycling_never_resurrects_a_departed_task(
        seed in 0u64..1_000_000,
        waves in prop::collection::vec(
            prop::collection::vec((1u64..4, 50u64..90, any::<bool>()), 1..4),
            2..5,
        ),
    ) {
        // Churned arenas recycle retired slots; a recycled slot must
        // never bring its previous occupant back. Departed fleet ids
        // stay out of every later feedback snapshot, extraction finds
        // nothing to move, and the final report holds each admitted id
        // exactly once. Recycling itself must be unobservable: a twin
        // node with the free-list disabled emits the identical bytes.
        let spec = ScenarioSpec::new("prop-recycle", 1, 0, Dur::secs(10));
        let mut node = Node::new(0, &spec);
        let mut frozen = Node::new(0, &spec);
        frozen.set_recycle(false);
        let wave_ms = 400u64;
        let (mut admitted, mut departed) = (Vec::new(), Vec::new());
        let (mut free, mut recycled) = (0usize, 0usize);
        let mut now = Time::ZERO;
        for (w, tasks) in waves.iter().enumerate() {
            let start = Time::ZERO + Dur::ms(w as u64 * wave_ms);
            for &(wcet, period, departs) in tasks {
                let fleet_id = admitted.len();
                let plan = NodeTask {
                    fleet_id,
                    label: format!("t{fleet_id:03}"),
                    kind: TaskKind::PeriodicRt {
                        wcet: Dur::ms(wcet),
                        period: Dur::ms(period),
                    },
                    // A lease expires at the task's next activation, so a
                    // departure needs at least a period of slack before
                    // the wave boundary to have actually retired by then.
                    arrival: start,
                    departure: departs.then(|| start + Dur::ms(100)),
                    seed: seed ^ fleet_id as u64,
                    migrated: false,
                    warm: None,
                };
                node.add_task(plan.clone());
                frozen.add_task(plan);
                if free > 0 {
                    free -= 1;
                    recycled += 1;
                }
                admitted.push(fleet_id);
                if departs {
                    departed.push(fleet_id);
                }
            }
            now = start + Dur::ms(wave_ms);
            node.run_to_horizon(now);
            frozen.run_to_horizon(now);
            let fb = node.feedback(now);
            frozen.feedback(now);
            for lr in &fb.live_rt {
                prop_assert!(
                    !departed.contains(&lr.fleet_id),
                    "departed task {} resurfaced in live_rt", lr.fleet_id
                );
            }
            // Slots freed by this wave's departures become reusable only
            // after the retirement scan, i.e. for the *next* wave.
            free += tasks.iter().filter(|t| t.2).count();
        }
        // Slot audit: every recycled admission consumed a freed slot,
        // while the frozen twin's arena grew monotonically.
        prop_assert_eq!(node.mem_stats().slots, admitted.len() - recycled);
        prop_assert_eq!(frozen.mem_stats().slots, admitted.len());
        // Each admitted id reports exactly once, recycled slot or not,
        // and the free-list is invisible in the aggregate bytes.
        let a = AggregateMetrics::new("prop-recycle", seed, AdmissionStats::default(),
            vec![node.report_mode(now, true)]);
        let b = AggregateMetrics::new("prop-recycle", seed, AdmissionStats::default(),
            vec![frozen.report_mode(now, true)]);
        let mut ids: Vec<u32> = a.nodes[0].tasks.iter().map(|t| t.fleet_id).collect();
        prop_assert_eq!(ids.len(), admitted.len());
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), admitted.len());
        prop_assert_eq!(a.summary_csv(), b.summary_csv());
        // A departed id is gone for good: extraction cannot revive it.
        for &d in &departed {
            prop_assert!(node.extract_task(d).is_none(), "extracted departed task {}", d);
        }
    }
}

proptest! {
    #[test]
    fn placer_never_admits_unschedulable_or_overbooks(
        tasks in prop::collection::vec((1u64..40, 40u64..200), 1..40),
        nodes in 1usize..8,
        ulub_pct in 50u64..101,
        headroom_pct in 100u64..151,
        policy in policy_strategy(),
    ) {
        let ulub = ulub_pct as f64 / 100.0;
        let headroom = headroom_pct as f64 / 100.0;
        let mut placer = Placer::new(nodes, ulub, headroom, policy);
        for (i, &(c, p)) in tasks.iter().enumerate() {
            let wcet = (c as f64).min(p as f64);
            let task = PeriodicTask::new(wcet, p as f64);
            let outcome = placer.place(task, i as u64, None);
            let demand = (min_bandwidth_single(task, task.period) * headroom).min(1.0);
            match outcome {
                PlacementOutcome::Admitted { node, demand: booked, .. } => {
                    // Booked exactly the analysis-backed demand.
                    prop_assert!((booked - demand).abs() < 1e-12);
                    prop_assert!(node < nodes);
                    // A task whose minimum schedulable bandwidth exceeds
                    // the bound must never be admitted.
                    prop_assert!(demand <= ulub + 1e-9, "admitted demand {demand} over ulub {ulub}");
                }
                PlacementOutcome::Rejected { best_spare, .. } => {
                    // Rejection witness: nothing had room.
                    prop_assert!(demand > best_spare + 1e-12);
                }
            }
            // The bound holds on every node after every decision.
            for &r in placer.reserved() {
                prop_assert!(r <= ulub + 1e-9, "node over bound: {r} > {ulub}");
            }
        }
    }

    #[test]
    fn candidate_order_is_a_permutation(
        reserved in prop::collection::vec(0.0f64..1.0, 1..12),
        policy in policy_strategy(),
    ) {
        let order = policy.candidate_order(&reserved);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..reserved.len()).collect::<Vec<_>>());
        if policy == PolicyKind::WorstFit {
            for w in order.windows(2) {
                prop_assert!(reserved[w[0]] <= reserved[w[1]] + 1e-12);
            }
        }
        if policy == PolicyKind::BandwidthAware {
            for w in order.windows(2) {
                prop_assert!(reserved[w[0]] >= reserved[w[1]] - 1e-12);
            }
        }
    }

    #[test]
    fn scenario_text_io_round_trips(
        (nodes, tasks, horizon_ms, policy) in (1usize..9, 0usize..40, 200u64..8_000, policy_strategy()),
        mix in prop::collection::vec((kind_strategy(), 1u64..9), 1..4),
        (arrival_kind, gap_us) in (0u32..3, 1_000u64..100_000),
        churn in prop_oneof![
            Just(None),
            (300u64..2_000, 50u64..200).prop_map(|(mean, min)| Some(Churn {
                mean_lifetime: Dur::ms(mean),
                min_lifetime: Dur::ms(min),
            })),
        ],
        overload in prop::collection::vec(
            (1u64..2_000, 1u32..5, 1u64..20, 0u32..3),
            0..3,
        ),
        (rb_on, rb_period, rb_pressure_pct, rb_moves) in
            (any::<bool>(), 100u64..2_000, 0u64..60, 1u32..8),
        vms in prop::collection::vec(
            (1u64..9, 1usize..4, kind_strategy(), any::<bool>()),
            0..3,
        ),
        (ns_on, ns_floor_pct, ns_cap_pct) in (any::<bool>(), 30u64..70, 70u64..101),
        phases in prop::collection::vec(
            (1u64..3_000, 100u64..2_000, 0u32..101, 1usize..9, kind_strategy(), 0u32..3),
            0..3,
        ),
    ) {
        let mut spec = ScenarioSpec::new("prop-textio", nodes, tasks, Dur::ms(horizon_ms))
            .with_mix(TaskMix::new(
                mix.into_iter().map(|(k, w)| (k, w as f64)).collect(),
            ))
            .with_policy(policy)
            .with_arrivals(match arrival_kind {
                0 => ArrivalSchedule::AllAtStart,
                1 => ArrivalSchedule::Staggered { gap: Dur::us(gap_us) },
                _ => ArrivalSchedule::Poisson { mean_gap: Dur::us(gap_us) },
            })
            .with_rebalance(RebalanceSpec {
                enabled: rb_on,
                period: Dur::ms(rb_period),
                pressure: rb_pressure_pct as f64 / 100.0,
                max_moves: rb_moves,
                ewma_alpha: (rb_pressure_pct.max(10) as f64 / 100.0).min(1.0),
                warm_start: rb_on,
            });
        if let Some(c) = churn {
            spec = spec.with_churn(c);
        }
        for (budget_ms, guests, kind, elastic) in vms {
            let mut vm = VmSpec::uniform(Dur::ms(budget_ms), Dur::ms(10), guests, kind);
            if elastic {
                vm = vm.with_elastic();
            }
            spec = spec.with_vm(vm);
        }
        spec = spec.with_node_share(NodeShareSpec {
            enabled: ns_on,
            floor: ns_floor_pct as f64 / 100.0,
            cap: ns_cap_pct as f64 / 100.0,
        });
        for (start, window, ramp_pct, count, kind, filter) in phases {
            spec = spec.with_phase(TrafficPhase {
                start: Dur::ms(start),
                end: Dur::ms(start + window),
                ramp: Dur::ms(window * u64::from(ramp_pct) / 100),
                tasks: count,
                mix: TaskMix::new(vec![(kind, 1.0)]),
                nodes: match filter {
                    0 => NodeFilter::All,
                    1 => NodeFilter::First(count),
                    _ => NodeFilter::Stride(2),
                },
            });
        }
        for (start, hogs, chunk, filter) in overload {
            spec = spec.with_overload(OverloadWindow {
                start: Dur::ms(start),
                end: Dur::ms(start + 500),
                hogs_per_node: hogs,
                chunk: Dur::ms(chunk),
                nodes: match filter {
                    0 => NodeFilter::All,
                    1 => NodeFilter::First(hogs as usize),
                    _ => NodeFilter::Stride(2),
                },
            });
        }

        let text = spec.to_text();
        let parsed = ScenarioSpec::from_text(&text)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        // The canonical form is a fixed point of the round trip.
        prop_assert_eq!(parsed.to_text(), text);
        prop_assert_eq!(parsed.nodes, spec.nodes);
        prop_assert_eq!(parsed.tasks, spec.tasks);
        prop_assert_eq!(parsed.horizon, spec.horizon);
        prop_assert_eq!(parsed.policy, spec.policy);
        prop_assert_eq!(parsed.overload.len(), spec.overload.len());
        prop_assert_eq!(parsed.rebalance.enabled, spec.rebalance.enabled);
        prop_assert_eq!(parsed.rebalance.period, spec.rebalance.period);
        prop_assert_eq!(parsed.mix.entries(), spec.mix.entries());
        prop_assert_eq!(&parsed.vms, &spec.vms);
        prop_assert_eq!(parsed.node_share, spec.node_share);
        prop_assert_eq!(&parsed.phases, &spec.phases);
        prop_assert_eq!(parsed.flat_tasks(), spec.flat_tasks());
    }

    #[test]
    fn sketch_quantiles_track_the_exact_path_to_bin_resolution(
        values in prop::collection::vec(0.0f64..19.9, 1..200),
        q_pct in 0u32..101,
    ) {
        // The sketch quantile must stay inside the recorded range and land
        // within half a bin of the exact nearest-rank value; against the
        // interpolating `quantile_sorted` the extra slack is the gap
        // between the two straddling order statistics.
        let q = f64::from(q_pct) / 100.0;
        let mut sketch = StreamSketch::for_gap_norm(); // 0.01-wide bins
        for &v in &values {
            sketch.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let approx = sketch.quantile(q).expect("non-empty sketch");
        prop_assert!(
            approx >= sorted[0] - 1e-12 && approx <= sorted[sorted.len() - 1] + 1e-12,
            "quantile {} left the data range [{}, {}]",
            approx, sorted[0], sorted[sorted.len() - 1]
        );
        let rank = (q * (sorted.len() - 1) as f64).round() as usize;
        prop_assert!(
            (approx - sorted[rank]).abs() <= 0.005 + 1e-9,
            "q={}: sketch {} vs nearest-rank {}", q, approx, sorted[rank]
        );
        let exact = quantile_sorted(&sorted, q);
        let idx = q * (sorted.len() - 1) as f64;
        let gap = sorted[idx.ceil() as usize] - sorted[idx.floor() as usize];
        prop_assert!(
            (approx - exact).abs() <= 0.005 + gap + 1e-9,
            "q={}: sketch {} vs exact {} (gap {})", q, approx, exact, gap
        );
    }

    #[test]
    fn released_bandwidth_is_reusable(
        demands in prop::collection::vec(5u64..40, 1..20),
        nodes in 1usize..4,
    ) {
        // Every task departs before the next arrives: nothing accumulates,
        // so every task with feasible demand must be admitted.
        let ulub = 0.9;
        let mut placer = Placer::new(nodes, ulub, 1.0, PolicyKind::FirstFit);
        for (i, &c) in demands.iter().enumerate() {
            let now = (i as u64) * 1_000;
            let task = PeriodicTask::new(c as f64, 100.0);
            let outcome = placer.place(task, now, Some(now + 500));
            match outcome {
                PlacementOutcome::Admitted { .. } => {}
                PlacementOutcome::Rejected { demand, .. } => {
                    prop_assert!(demand > ulub + 1e-9, "spuriously rejected {demand}");
                }
            }
        }
    }

    #[test]
    fn tree_reduction_matches_the_serial_fold_byte_for_byte(
        seed in 0u64..1_000_000,
        contents in prop::collection::vec(
            prop_oneof![
                Just(None),
                prop::collection::vec((0.0f64..3.0, 0u8..4), 0..24).prop_map(Some),
            ],
            1..13,
        ),
        (ga, gk) in (1usize..5, 1usize..4),
    ) {
        // The epoch-barrier reduction splits the node slice at n/2
        // recursively, and the runner's workers pre-merge arbitrary
        // subsets of it; both must equal the historical serial
        // node-id-order fold on every sketch family — bins, counts,
        // min/max AND the order-sensitive float sum — for any node count
        // (power of two or not) and any interleaving of sketch-less
        // (detailed) and sketch-bearing nodes.
        let nodes: Vec<NodeReport> = contents.iter().enumerate().map(|(i, c)| match c {
            None => NodeReport::from_tasks(i, Vec::new(), 0.1, 0.1, 0),
            Some(vals) => {
                let mut sk = NodeSketches::new();
                for &(v, fam) in vals {
                    match fam {
                        0 => sk.gaps.record(v),
                        1 => sk.post_migration.record(v),
                        2 => sk.attach.record(v * 50.0),
                        _ => sk.vm_attach.record(v * 50.0),
                    }
                }
                NodeReport::from_sketches(i, NodeTotals::default(), sk, 0.1, 0.1, 0)
            }
        }).collect();
        // Reference: the serial left fold in node-id order, accumulator
        // seeded from the first sketch-bearing node.
        let mut serial: Option<NodeSketches> = None;
        for n in &nodes {
            if let Some(k) = &n.sketches {
                match serial.as_mut() {
                    None => serial = Some(k.clone()),
                    Some(acc) => acc.merge(k),
                }
            }
        }
        let tree = NodeSketches::tree_reduce(&nodes);
        prop_assert_eq!(tree.is_some(), serial.is_some());
        if let (Some(t), Some(s)) = (&tree, &serial) {
            prop_assert_eq!(&t.gaps, &s.gaps);
            prop_assert_eq!(&t.post_migration, &s.post_migration);
            prop_assert_eq!(&t.attach, &s.attach);
            prop_assert_eq!(&t.vm_attach, &s.vm_attach);
        }
        // A premerged aggregate — random worker grouping, partials
        // combined in worker order — is byte-identical to the serial one.
        let mut partials: Vec<(bool, NodeSketches)> =
            (0..gk).map(|_| (false, NodeSketches::new())).collect();
        for (i, n) in nodes.iter().enumerate() {
            if let Some(k) = &n.sketches {
                let p = &mut partials[(i * ga) % gk];
                p.0 = true;
                p.1.merge(k);
            }
        }
        let mut combined = NodeSketches::new();
        let mut any = false;
        for (saw, buf) in &partials {
            if *saw {
                any = true;
                combined.merge(buf);
            }
        }
        let a = AggregateMetrics::new("prop-tree", seed, AdmissionStats::default(), nodes.clone());
        let b = AggregateMetrics::new_premerged(
            "prop-tree", seed, AdmissionStats::default(), nodes, any.then_some(combined));
        prop_assert_eq!(a.summary_csv(), b.summary_csv());
    }
}
