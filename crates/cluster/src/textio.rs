//! Plain-text scenario I/O: describe a fleet without recompiling.
//!
//! [`ScenarioSpec::to_text`] serialises a scenario to a `key = value`
//! format; [`ScenarioSpec::from_text`] parses it back. The format is
//! line-oriented, order-insensitive (except repeated `mix`/`overload`
//! lines, which accumulate in order), ignores blank lines and `#`
//! comments, and round-trips exactly: `to_text(from_text(t)) == t` for any
//! `t` produced by `to_text` — a property test enforces it.
//!
//! ```text
//! # selftune fleet scenario
//! name = fleet-demo
//! nodes = 16
//! tasks = 128
//! horizon_ms = 5000
//! policy = worst-fit
//! ulub = 0.9
//! headroom = 1.2
//! sampling_ms = 500
//! arrivals = poisson 15
//! churn = 4000 800
//! mix = video25 3
//! mix = periodic_rt 2 2 50
//! vm = 3 10 2 periodic_rt 4 40
//! vm = 4 10 elastic 1 video25 + 2 periodic_rt 2 50
//! overload = 2000 3500 1 10 first:2
//! phase = 1000 5000 2000 12 all hungry_rt 1 2 5 40
//! rebalance = on 1000 0.05 4 0.6 warm
//! node_share = on 0.5 0.95
//! ```
//!
//! `vm` lines declare whole virtual platforms (`budget_ms period_ms
//! [elastic] count kind... [+ count kind...]`), placed and migrated as
//! single units: the optional `elastic` token puts the share under a
//! host-level controller, and `+`-separated guest groups give one tenant
//! a heterogeneous task mix. The `rebalance` line accepts the legacy
//! 4-field form or the 6-field form adding the EWMA smoothing factor and
//! warm/cold migration hand-over. `phase` lines declare time-varying
//! traffic (`start_ms end_ms ramp_ms tasks filter kind... [+ kind...]`,
//! weighted kinds as in `mix` lines); `node_share` turns the fleet→node
//! share controller on with its floor and cap bounds.

use selftune_simcore::time::Dur;

use crate::placer::PolicyKind;
use crate::spec::{
    ArrivalSchedule, Churn, NodeFilter, NodeShareSpec, OverloadWindow, RebalanceSpec, ScenarioSpec,
    TaskKind, TaskMix, TrafficPhase, VmSpec,
};

/// Formats a duration as fractional milliseconds with a shortest
/// round-tripping representation.
fn ms(d: Dur) -> String {
    format!("{}", d.as_ms_f64())
}

fn parse_ms(s: &str) -> Result<Dur, String> {
    let v: f64 = s.parse().map_err(|_| format!("bad duration (ms): {s:?}"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("bad duration (ms): {s:?}"));
    }
    Ok(Dur::from_ms_f64(v))
}

fn parse_f64(s: &str) -> Result<f64, String> {
    s.parse().map_err(|_| format!("bad number: {s:?}"))
}

fn parse_usize(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("bad integer: {s:?}"))
}

/// Serialises a kind without a leading weight (shared by `mix` lines,
/// which prepend one, and `vm` lines, which do not).
fn kind_body(kind: &TaskKind) -> String {
    match kind {
        TaskKind::Video25 => "video25".to_owned(),
        TaskKind::Mp3 => "mp3".to_owned(),
        TaskKind::Stream30 => "stream30".to_owned(),
        TaskKind::PeriodicRt { wcet, period } => {
            format!("periodic_rt {} {}", ms(*wcet), ms(*period))
        }
        TaskKind::HungryRt {
            nominal_wcet,
            wcet,
            period,
        } => format!(
            "hungry_rt {} {} {}",
            ms(*nominal_wcet),
            ms(*wcet),
            ms(*period)
        ),
        TaskKind::Aperiodic {
            mean_gap,
            mean_work,
            burst,
        } => format!("aperiodic {} {} {burst}", ms(*mean_gap), ms(*mean_work)),
    }
}

fn kind_to_text(kind: &TaskKind, weight: f64) -> String {
    match kind {
        TaskKind::Video25 => format!("video25 {weight}"),
        TaskKind::Mp3 => format!("mp3 {weight}"),
        TaskKind::Stream30 => format!("stream30 {weight}"),
        TaskKind::PeriodicRt { wcet, period } => {
            format!("periodic_rt {weight} {} {}", ms(*wcet), ms(*period))
        }
        TaskKind::HungryRt {
            nominal_wcet,
            wcet,
            period,
        } => format!(
            "hungry_rt {weight} {} {} {}",
            ms(*nominal_wcet),
            ms(*wcet),
            ms(*period)
        ),
        TaskKind::Aperiodic {
            mean_gap,
            mean_work,
            burst,
        } => format!(
            "aperiodic {weight} {} {} {burst}",
            ms(*mean_gap),
            ms(*mean_work)
        ),
    }
}

/// Parses a kind without a leading weight (the `vm` line form).
fn kind_body_from_text(line: &str) -> Result<TaskKind, String> {
    let parts: Vec<&str> = line.split_whitespace().collect();
    let need = |n: usize| -> Result<(), String> {
        if parts.len() == n {
            Ok(())
        } else {
            Err(format!("task kind needs {n} fields: {line:?}"))
        }
    };
    match parts.first().copied() {
        Some("video25") => {
            need(1)?;
            Ok(TaskKind::Video25)
        }
        Some("mp3") => {
            need(1)?;
            Ok(TaskKind::Mp3)
        }
        Some("stream30") => {
            need(1)?;
            Ok(TaskKind::Stream30)
        }
        Some("periodic_rt") => {
            need(3)?;
            Ok(TaskKind::PeriodicRt {
                wcet: parse_pos_ms(parts[1])?,
                period: parse_pos_ms(parts[2])?,
            })
        }
        Some("hungry_rt") => {
            need(4)?;
            Ok(TaskKind::HungryRt {
                nominal_wcet: parse_pos_ms(parts[1])?,
                wcet: parse_pos_ms(parts[2])?,
                period: parse_pos_ms(parts[3])?,
            })
        }
        Some("aperiodic") => {
            need(4)?;
            Ok(TaskKind::Aperiodic {
                mean_gap: parse_pos_ms(parts[1])?,
                mean_work: parse_pos_ms(parts[2])?,
                burst: parts[3]
                    .parse()
                    .map_err(|_| format!("bad burst: {:?}", parts[3]))?,
            })
        }
        _ => Err(format!("unknown task kind: {line:?}")),
    }
}

/// Parses a duration that the simulation requires to be strictly positive
/// (task periods, job costs).
fn parse_pos_ms(s: &str) -> Result<Dur, String> {
    let d = parse_ms(s)?;
    if d.is_zero() {
        return Err(format!("duration must be positive: {s:?} ms"));
    }
    Ok(d)
}

fn parse_weight(s: &str) -> Result<f64, String> {
    let w = parse_f64(s)?;
    if !w.is_finite() || w <= 0.0 {
        return Err(format!("mix weight must be positive: {s:?}"));
    }
    Ok(w)
}

fn kind_from_text(line: &str) -> Result<(TaskKind, f64), String> {
    let parts: Vec<&str> = line.split_whitespace().collect();
    let need = |n: usize| -> Result<(), String> {
        if parts.len() == n {
            Ok(())
        } else {
            Err(format!("mix line needs {n} fields: {line:?}"))
        }
    };
    match parts.first().copied() {
        Some("video25") => {
            need(2)?;
            Ok((TaskKind::Video25, parse_weight(parts[1])?))
        }
        Some("mp3") => {
            need(2)?;
            Ok((TaskKind::Mp3, parse_weight(parts[1])?))
        }
        Some("stream30") => {
            need(2)?;
            Ok((TaskKind::Stream30, parse_weight(parts[1])?))
        }
        Some("periodic_rt") => {
            need(4)?;
            Ok((
                TaskKind::PeriodicRt {
                    wcet: parse_pos_ms(parts[2])?,
                    period: parse_pos_ms(parts[3])?,
                },
                parse_weight(parts[1])?,
            ))
        }
        Some("hungry_rt") => {
            need(5)?;
            Ok((
                TaskKind::HungryRt {
                    nominal_wcet: parse_pos_ms(parts[2])?,
                    wcet: parse_pos_ms(parts[3])?,
                    period: parse_pos_ms(parts[4])?,
                },
                parse_weight(parts[1])?,
            ))
        }
        Some("aperiodic") => {
            need(5)?;
            Ok((
                TaskKind::Aperiodic {
                    mean_gap: parse_pos_ms(parts[2])?,
                    mean_work: parse_pos_ms(parts[3])?,
                    burst: parts[4]
                        .parse()
                        .map_err(|_| format!("bad burst: {:?}", parts[4]))?,
                },
                parse_weight(parts[1])?,
            ))
        }
        _ => Err(format!("unknown task kind in mix line: {line:?}")),
    }
}

fn filter_to_text(f: NodeFilter) -> String {
    match f {
        NodeFilter::All => "all".to_owned(),
        NodeFilter::First(n) => format!("first:{n}"),
        NodeFilter::Stride(n) => format!("stride:{n}"),
    }
}

fn filter_from_text(s: &str) -> Result<NodeFilter, String> {
    if s == "all" {
        return Ok(NodeFilter::All);
    }
    if let Some(n) = s.strip_prefix("first:") {
        return Ok(NodeFilter::First(parse_usize(n)?));
    }
    if let Some(n) = s.strip_prefix("stride:") {
        return Ok(NodeFilter::Stride(parse_usize(n)?));
    }
    Err(format!("unknown node filter: {s:?}"))
}

fn policy_from_text(s: &str) -> Result<PolicyKind, String> {
    match s {
        "first-fit" => Ok(PolicyKind::FirstFit),
        "worst-fit" => Ok(PolicyKind::WorstFit),
        "bandwidth-aware" => Ok(PolicyKind::BandwidthAware),
        other => Err(format!("unknown policy: {other:?}")),
    }
}

impl ScenarioSpec {
    /// Serialises the scenario to the `key = value` text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# selftune fleet scenario\n");
        out.push_str(&format!("name = {}\n", self.name));
        out.push_str(&format!("nodes = {}\n", self.nodes));
        out.push_str(&format!("tasks = {}\n", self.tasks));
        out.push_str(&format!("horizon_ms = {}\n", ms(self.horizon)));
        out.push_str(&format!("policy = {}\n", self.policy.name()));
        out.push_str(&format!("ulub = {}\n", self.ulub));
        out.push_str(&format!("headroom = {}\n", self.headroom));
        out.push_str(&format!("sampling_ms = {}\n", ms(self.sampling)));
        match self.arrivals {
            ArrivalSchedule::AllAtStart => out.push_str("arrivals = all_at_start\n"),
            ArrivalSchedule::Staggered { gap } => {
                out.push_str(&format!("arrivals = staggered {}\n", ms(gap)));
            }
            ArrivalSchedule::Poisson { mean_gap } => {
                out.push_str(&format!("arrivals = poisson {}\n", ms(mean_gap)));
            }
        }
        if let Some(c) = self.churn {
            out.push_str(&format!(
                "churn = {} {}\n",
                ms(c.mean_lifetime),
                ms(c.min_lifetime)
            ));
        }
        for (kind, weight) in self.mix.entries() {
            out.push_str(&format!("mix = {}\n", kind_to_text(kind, *weight)));
        }
        for vm in &self.vms {
            let groups: Vec<String> = vm
                .guests
                .iter()
                .map(|(n, kind)| format!("{n} {}", kind_body(kind)))
                .collect();
            out.push_str(&format!(
                "vm = {} {}{} {}\n",
                ms(vm.budget),
                ms(vm.period),
                if vm.elastic { " elastic" } else { "" },
                groups.join(" + ")
            ));
        }
        for w in &self.overload {
            out.push_str(&format!(
                "overload = {} {} {} {} {}\n",
                ms(w.start),
                ms(w.end),
                w.hogs_per_node,
                ms(w.chunk),
                filter_to_text(w.nodes)
            ));
        }
        for p in &self.phases {
            let mix: Vec<String> = p
                .mix
                .entries()
                .iter()
                .map(|(kind, weight)| kind_to_text(kind, *weight))
                .collect();
            out.push_str(&format!(
                "phase = {} {} {} {} {} {}\n",
                ms(p.start),
                ms(p.end),
                ms(p.ramp),
                p.tasks,
                filter_to_text(p.nodes),
                mix.join(" + ")
            ));
        }
        out.push_str(&format!(
            "rebalance = {} {} {} {} {} {}\n",
            if self.rebalance.enabled { "on" } else { "off" },
            ms(self.rebalance.period),
            self.rebalance.pressure,
            self.rebalance.max_moves,
            self.rebalance.ewma_alpha,
            if self.rebalance.warm_start {
                "warm"
            } else {
                "cold"
            }
        ));
        out.push_str(&format!(
            "node_share = {} {} {}\n",
            if self.node_share.enabled { "on" } else { "off" },
            self.node_share.floor,
            self.node_share.cap
        ));
        out
    }

    /// Parses a scenario from the text format written by
    /// [`ScenarioSpec::to_text`].
    ///
    /// Unknown keys, malformed values and missing required fields (`name`,
    /// `nodes`, `tasks`, `horizon_ms`) are reported as `Err`; everything
    /// else falls back to the [`ScenarioSpec::new`] defaults.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first offending line.
    pub fn from_text(text: &str) -> Result<ScenarioSpec, String> {
        let mut name: Option<String> = None;
        let mut nodes: Option<usize> = None;
        let mut tasks: Option<usize> = None;
        let mut horizon: Option<Dur> = None;
        let mut mix_entries: Vec<(TaskKind, f64)> = Vec::new();
        let mut vms: Vec<VmSpec> = Vec::new();
        let mut overload: Vec<OverloadWindow> = Vec::new();
        let mut policy = None;
        let mut ulub = None;
        let mut headroom = None;
        let mut sampling = None;
        let mut arrivals = None;
        let mut churn = None;
        let mut rebalance = None;
        let mut node_share: Option<NodeShareSpec> = None;
        let mut phases: Vec<TrafficPhase> = Vec::new();

        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("expected `key = value`, got {line:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "name" => name = Some(value.to_owned()),
                "nodes" => nodes = Some(parse_usize(value)?),
                "tasks" => tasks = Some(parse_usize(value)?),
                "horizon_ms" => horizon = Some(parse_ms(value)?),
                "policy" => policy = Some(policy_from_text(value)?),
                "ulub" => ulub = Some(parse_f64(value)?),
                "headroom" => headroom = Some(parse_f64(value)?),
                "sampling_ms" => sampling = Some(parse_ms(value)?),
                "arrivals" => {
                    let parts: Vec<&str> = value.split_whitespace().collect();
                    arrivals = Some(match parts.as_slice() {
                        ["all_at_start"] => ArrivalSchedule::AllAtStart,
                        ["staggered", gap] => ArrivalSchedule::Staggered {
                            gap: parse_ms(gap)?,
                        },
                        ["poisson", gap] => ArrivalSchedule::Poisson {
                            mean_gap: parse_ms(gap)?,
                        },
                        _ => return Err(format!("bad arrivals line: {value:?}")),
                    });
                }
                "churn" => {
                    let parts: Vec<&str> = value.split_whitespace().collect();
                    let [mean, min] = parts.as_slice() else {
                        return Err(format!("churn needs 2 fields: {value:?}"));
                    };
                    churn = Some(Churn {
                        mean_lifetime: parse_ms(mean)?,
                        min_lifetime: parse_ms(min)?,
                    });
                }
                "mix" => mix_entries.push(kind_from_text(value)?),
                "overload" => {
                    let parts: Vec<&str> = value.split_whitespace().collect();
                    let [start, end, hogs, chunk, filter] = parts.as_slice() else {
                        return Err(format!("overload needs 5 fields: {value:?}"));
                    };
                    overload.push(OverloadWindow {
                        start: parse_ms(start)?,
                        end: parse_ms(end)?,
                        hogs_per_node: hogs
                            .parse()
                            .map_err(|_| format!("bad hog count: {hogs:?}"))?,
                        chunk: parse_ms(chunk)?,
                        nodes: filter_from_text(filter)?,
                    });
                }
                "vm" => {
                    // `budget_ms period_ms [elastic] count kind...
                    //  [+ count kind...]` — whitespace-tolerant, guest
                    // groups separated by standalone `+` tokens.
                    let usage = || {
                        format!(
                            "vm needs `budget_ms period_ms [elastic] count kind... \
                             [+ count kind...]`: {value:?}"
                        )
                    };
                    let mut parts = value.split_whitespace().peekable();
                    let (Some(budget), Some(period)) = (parts.next(), parts.next()) else {
                        return Err(usage());
                    };
                    let budget = parse_pos_ms(budget)?;
                    let period = parse_pos_ms(period)?;
                    if budget > period {
                        return Err(format!("vm share budget exceeds its period: {value:?}"));
                    }
                    let elastic = parts.peek() == Some(&"elastic");
                    if elastic {
                        parts.next();
                    }
                    let rest: Vec<&str> = parts.collect();
                    if rest.is_empty() {
                        return Err(usage());
                    }
                    let mut guests: Vec<(usize, TaskKind)> = Vec::new();
                    for group in rest.split(|&t| t == "+") {
                        let [count, kind @ ..] = group else {
                            return Err(format!("empty guest group in vm line: {value:?}"));
                        };
                        let count = parse_usize(count)?;
                        if count == 0 {
                            return Err(format!("vm guest group needs count >= 1: {value:?}"));
                        }
                        if kind.is_empty() {
                            return Err(usage());
                        }
                        guests.push((count, kind_body_from_text(&kind.join(" "))?));
                    }
                    vms.push(VmSpec {
                        budget,
                        period,
                        guests,
                        elastic,
                    });
                }
                "rebalance" => {
                    let parts: Vec<&str> = value.split_whitespace().collect();
                    // 4-field form (pre-hysteresis) or 6-field form with
                    // the EWMA factor and warm/cold hand-over.
                    let (state, period, pressure, max_moves, alpha, warm) = match parts.as_slice() {
                        [s, p, pr, mm] => (*s, *p, *pr, *mm, None, None),
                        [s, p, pr, mm, a, w] => (*s, *p, *pr, *mm, Some(*a), Some(*w)),
                        _ => {
                            return Err(format!("rebalance needs 4 or 6 fields: {value:?}"));
                        }
                    };
                    let enabled = match state {
                        "on" => true,
                        "off" => false,
                        other => return Err(format!("rebalance must be on/off, got {other:?}")),
                    };
                    let warm_start = match warm {
                        None => RebalanceSpec::default().warm_start,
                        Some("warm") => true,
                        Some("cold") => false,
                        Some(other) => {
                            return Err(format!("rebalance hand-over must be warm/cold: {other:?}"))
                        }
                    };
                    rebalance = Some(RebalanceSpec {
                        enabled,
                        period: parse_ms(period)?,
                        pressure: parse_f64(pressure)?,
                        max_moves: max_moves
                            .parse()
                            .map_err(|_| format!("bad max_moves: {max_moves:?}"))?,
                        ewma_alpha: match alpha {
                            Some(a) => parse_f64(a)?,
                            None => RebalanceSpec::default().ewma_alpha,
                        },
                        warm_start,
                    });
                }
                "phase" => {
                    // `start_ms end_ms ramp_ms tasks filter kind...
                    //  [+ kind...]` — weighted kinds as in `mix` lines,
                    // groups separated by standalone `+` tokens.
                    let mut parts = value.split_whitespace();
                    let (Some(start), Some(end), Some(ramp), Some(count), Some(filter)) = (
                        parts.next(),
                        parts.next(),
                        parts.next(),
                        parts.next(),
                        parts.next(),
                    ) else {
                        return Err(format!(
                            "phase needs `start_ms end_ms ramp_ms tasks filter kind...`: {value:?}"
                        ));
                    };
                    let rest: Vec<&str> = parts.collect();
                    if rest.is_empty() {
                        return Err(format!("phase needs at least one mix kind: {value:?}"));
                    }
                    let mut entries: Vec<(TaskKind, f64)> = Vec::new();
                    for group in rest.split(|&t| t == "+") {
                        if group.is_empty() {
                            return Err(format!("empty mix group in phase line: {value:?}"));
                        }
                        entries.push(kind_from_text(&group.join(" "))?);
                    }
                    phases.push(TrafficPhase {
                        start: parse_ms(start)?,
                        end: parse_ms(end)?,
                        ramp: parse_ms(ramp)?,
                        tasks: parse_usize(count)?,
                        mix: TaskMix::new(entries),
                        nodes: filter_from_text(filter)?,
                    });
                }
                "node_share" => {
                    let parts: Vec<&str> = value.split_whitespace().collect();
                    let [state, floor, cap] = parts.as_slice() else {
                        return Err(format!("node_share needs 3 fields: {value:?}"));
                    };
                    let enabled = match *state {
                        "on" => true,
                        "off" => false,
                        other => return Err(format!("node_share must be on/off, got {other:?}")),
                    };
                    node_share = Some(NodeShareSpec {
                        enabled,
                        floor: parse_f64(floor)?,
                        cap: parse_f64(cap)?,
                    });
                }
                other => return Err(format!("unknown key: {other:?}")),
            }
        }

        let name = name.ok_or("missing required key `name`")?;
        let nodes = nodes.ok_or("missing required key `nodes`")?;
        let tasks = tasks.ok_or("missing required key `tasks`")?;
        let horizon = horizon.ok_or("missing required key `horizon_ms`")?;
        // Domain checks up front: the builder methods below enforce the
        // same bounds with panics, which an untrusted scenario file must
        // never reach.
        if nodes == 0 {
            return Err("nodes must be at least 1".to_owned());
        }
        if let Some(u) = ulub {
            if !u.is_finite() || u <= 0.0 || u > 1.0 {
                return Err(format!("ulub {u} out of (0, 1]"));
            }
        }
        if let Some(h) = headroom {
            if !h.is_finite() || h < 1.0 {
                return Err(format!("headroom {h} below 1"));
            }
        }
        if let Some(s) = sampling {
            if s.is_zero() {
                return Err("sampling_ms must be positive".to_owned());
            }
        }
        if let Some(r) = &rebalance {
            if r.period.is_zero() {
                return Err("rebalance period must be positive".to_owned());
            }
            if !r.pressure.is_finite() || r.pressure < 0.0 {
                return Err(format!(
                    "rebalance pressure {} must be non-negative",
                    r.pressure
                ));
            }
            if !r.ewma_alpha.is_finite() || r.ewma_alpha <= 0.0 || r.ewma_alpha > 1.0 {
                return Err(format!(
                    "rebalance ewma_alpha {} out of (0, 1]",
                    r.ewma_alpha
                ));
            }
        }
        if let Some(ns) = &node_share {
            if !ns.floor.is_finite()
                || !ns.cap.is_finite()
                || ns.floor <= 0.0
                || ns.floor > ns.cap
                || ns.cap > 1.0
            {
                return Err(format!(
                    "node share bounds must satisfy 0 < floor <= cap <= 1, got {} {}",
                    ns.floor, ns.cap
                ));
            }
        }
        for p in &phases {
            if p.start >= p.end {
                return Err("phase must start before it ends".to_owned());
            }
            if p.ramp > p.end - p.start {
                return Err("phase ramp exceeds the window".to_owned());
            }
            if p.tasks == 0 {
                return Err("a phase needs at least one task".to_owned());
            }
        }
        let mut spec = ScenarioSpec::new(&name, nodes, tasks, horizon);
        if !mix_entries.is_empty() {
            spec = spec.with_mix(TaskMix::new(mix_entries));
        }
        if let Some(p) = policy {
            spec = spec.with_policy(p);
        }
        if let Some(u) = ulub {
            spec = spec.with_ulub(u);
        }
        if let Some(h) = headroom {
            spec = spec.with_headroom(h);
        }
        if let Some(s) = sampling {
            spec = spec.with_sampling(s);
        }
        if let Some(a) = arrivals {
            spec = spec.with_arrivals(a);
        }
        if let Some(c) = churn {
            spec = spec.with_churn(c);
        }
        if let Some(r) = rebalance {
            spec = spec.with_rebalance(r);
        }
        if let Some(ns) = node_share {
            spec = spec.with_node_share(ns);
        }
        for p in phases {
            spec = spec.with_phase(p);
        }
        for vm in vms {
            spec = spec.with_vm(vm);
        }
        spec.overload = overload;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> ScenarioSpec {
        ScenarioSpec::new("demo", 4, 24, Dur::secs(5))
            .with_mix(TaskMix::new(vec![
                (TaskKind::Video25, 2.0),
                (
                    TaskKind::PeriodicRt {
                        wcet: Dur::ms(2),
                        period: Dur::ms(50),
                    },
                    1.5,
                ),
                (
                    TaskKind::HungryRt {
                        nominal_wcet: Dur::ms(2),
                        wcet: Dur::ms(6),
                        period: Dur::ms(40),
                    },
                    1.0,
                ),
                (
                    TaskKind::Aperiodic {
                        mean_gap: Dur::ms(25),
                        mean_work: Dur::from_ms_f64(1.5),
                        burst: 2,
                    },
                    0.5,
                ),
            ]))
            .with_arrivals(ArrivalSchedule::Poisson {
                mean_gap: Dur::ms(15),
            })
            .with_churn(Churn {
                mean_lifetime: Dur::secs(4),
                min_lifetime: Dur::ms(800),
            })
            .with_overload(OverloadWindow {
                start: Dur::ms(2_000),
                end: Dur::ms(3_500),
                hogs_per_node: 2,
                chunk: Dur::ms(10),
                nodes: NodeFilter::First(2),
            })
            .with_policy(PolicyKind::FirstFit)
            .with_ulub(0.85)
            .with_rebalance(RebalanceSpec {
                enabled: true,
                period: Dur::ms(750),
                pressure: 0.08,
                max_moves: 3,
                ewma_alpha: 0.5,
                warm_start: true,
            })
            .with_vm(VmSpec::uniform(
                Dur::ms(3),
                Dur::ms(10),
                2,
                TaskKind::PeriodicRt {
                    wcet: Dur::ms(4),
                    period: Dur::ms(40),
                },
            ))
            .with_vm(
                VmSpec {
                    budget: Dur::ms(5),
                    period: Dur::ms(10),
                    guests: vec![
                        (1, TaskKind::Video25),
                        (
                            2,
                            TaskKind::PeriodicRt {
                                wcet: Dur::ms(2),
                                period: Dur::ms(50),
                            },
                        ),
                    ],
                    elastic: false,
                }
                .with_elastic(),
            )
            .with_node_share(crate::spec::NodeShareSpec {
                enabled: true,
                floor: 0.6,
                cap: 0.92,
            })
            .with_phase(TrafficPhase {
                start: Dur::ms(1_000),
                end: Dur::ms(4_000),
                ramp: Dur::ms(1_500),
                tasks: 6,
                mix: TaskMix::new(vec![
                    (
                        TaskKind::HungryRt {
                            nominal_wcet: Dur::ms(2),
                            wcet: Dur::ms(5),
                            period: Dur::ms(40),
                        },
                        2.0,
                    ),
                    (TaskKind::Video25, 1.0),
                ]),
                nodes: NodeFilter::All,
            })
            .with_phase(TrafficPhase {
                start: Dur::ms(2_500),
                end: Dur::ms(3_500),
                ramp: Dur::ZERO,
                tasks: 3,
                mix: TaskMix::new(vec![(
                    TaskKind::PeriodicRt {
                        wcet: Dur::ms(6),
                        period: Dur::ms(40),
                    },
                    1.0,
                )]),
                nodes: NodeFilter::First(1),
            })
    }

    #[test]
    fn text_round_trip_is_exact() {
        let spec = demo_spec();
        let text = spec.to_text();
        let parsed = ScenarioSpec::from_text(&text).expect("parse");
        assert_eq!(parsed.to_text(), text);
        assert_eq!(parsed.name, spec.name);
        assert_eq!(parsed.nodes, spec.nodes);
        assert_eq!(parsed.tasks, spec.tasks);
        assert_eq!(parsed.horizon, spec.horizon);
        assert_eq!(parsed.policy, spec.policy);
        assert!(parsed.rebalance.enabled);
        assert_eq!(parsed.rebalance.max_moves, 3);
        assert!((parsed.rebalance.ewma_alpha - 0.5).abs() < 1e-12);
        assert!(parsed.rebalance.warm_start);
        assert_eq!(parsed.overload.len(), 1);
        assert_eq!(parsed.overload[0].nodes, NodeFilter::First(2));
        assert_eq!(parsed.vms, spec.vms);
        assert_eq!(parsed.node_share, spec.node_share);
        assert_eq!(parsed.phases, spec.phases);
        assert_eq!(parsed.flat_tasks(), spec.tasks + 9);
    }

    #[test]
    fn vm_lines_tolerate_extra_whitespace() {
        let text =
            "name=x\nnodes=2\ntasks=1\nhorizon_ms=100\nvm =  3   10  2   periodic_rt  4  40\n";
        let spec = ScenarioSpec::from_text(text).expect("aligned columns parse");
        assert_eq!(spec.vms.len(), 1);
        assert_eq!(spec.vms[0].guest_count(), 2);
        assert!(!spec.vms[0].elastic);
        assert_eq!(
            spec.vms[0].guests,
            vec![(
                2,
                TaskKind::PeriodicRt {
                    wcet: Dur::ms(4),
                    period: Dur::ms(40),
                }
            )]
        );
    }

    #[test]
    fn vm_lines_parse_elastic_flag_and_guest_mixes() {
        let text = "name=x\nnodes=2\ntasks=1\nhorizon_ms=100\n\
                    vm = 4 10 elastic 1 video25 + 2 periodic_rt 2 50 + 1 mp3\n";
        let spec = ScenarioSpec::from_text(text).expect("mixed vm parses");
        let vm = &spec.vms[0];
        assert!(vm.elastic);
        assert_eq!(vm.guest_count(), 4);
        assert_eq!(vm.guests.len(), 3);
        assert_eq!(vm.guests[0], (1, TaskKind::Video25));
        assert_eq!(vm.guests[2], (1, TaskKind::Mp3));
        let kinds: Vec<_> = vm.guest_kinds().collect();
        assert_eq!(kinds.len(), 4);
        assert_eq!(kinds[0], &TaskKind::Video25);
        assert_eq!(kinds[3], &TaskKind::Mp3);
    }

    #[test]
    fn four_field_rebalance_form_still_parses() {
        let text = "name=x\nnodes=2\ntasks=1\nhorizon_ms=100\nrebalance = on 500 0.1 2\n";
        let spec = ScenarioSpec::from_text(text).expect("legacy form");
        assert!(spec.rebalance.enabled);
        assert!((spec.rebalance.ewma_alpha - 1.0).abs() < 1e-12);
        assert!(!spec.rebalance.warm_start);
    }

    #[test]
    fn parses_comments_blanks_and_defaults() {
        let text = "# hello\n\nname = tiny\nnodes = 2\ntasks = 4\nhorizon_ms = 1000\n";
        let spec = ScenarioSpec::from_text(text).expect("parse");
        assert_eq!(spec.name, "tiny");
        assert_eq!(spec.nodes, 2);
        // Unspecified fields keep the ScenarioSpec::new defaults.
        assert_eq!(spec.policy, PolicyKind::WorstFit);
        assert!(!spec.rebalance.enabled);
        assert!(spec.churn.is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(
            ScenarioSpec::from_text("nodes = 2").is_err(),
            "missing keys"
        );
        assert!(
            ScenarioSpec::from_text("name=x\nnodes=2\ntasks=1\nhorizon_ms=1\nwat = 1").is_err()
        );
        assert!(ScenarioSpec::from_text("name=x\nnodes=two\ntasks=1\nhorizon_ms=1").is_err());
        assert!(
            ScenarioSpec::from_text("name=x\nnodes=2\ntasks=1\nhorizon_ms=1\nmix = warp 1")
                .is_err()
        );
        assert!(ScenarioSpec::from_text("just some words").is_err());
    }

    #[test]
    fn domain_invalid_values_error_instead_of_panicking() {
        let base = "name=x\ntasks=1\nhorizon_ms=100\n";
        for bad in [
            "nodes = 0",
            "nodes = 2\nulub = 1.5",
            "nodes = 2\nulub = -0.1",
            "nodes = 2\nheadroom = 0.5",
            "nodes = 2\nsampling_ms = 0",
            "nodes = 2\nrebalance = on 0 0.05 4",
            "nodes = 2\nrebalance = on 500 -1 4",
            "nodes = 2\nmix = periodic_rt 1 2 0",
            "nodes = 2\nmix = hungry_rt 1 2 6 0",
            "nodes = 2\nmix = video25 0",
            "nodes = 2\nmix = video25 -3",
            "nodes = 2\nrebalance = on 500 0.1 2 1.5 warm",
            "nodes = 2\nrebalance = on 500 0.1 2 0.5 tepid",
            "nodes = 2\nrebalance = on 500 0.1 2 0.5",
            "nodes = 2\nvm = 3 10 2",
            "nodes = 2\nvm = 3 10 0 video25",
            "nodes = 2\nvm = 20 10 1 video25",
            "nodes = 2\nvm = 3 10 1 warp",
            "nodes = 2\nvm = 3 10 1 periodic_rt 0 40",
            "nodes = 2\nvm = 3 10 elastic",
            "nodes = 2\nvm = 3 10 elastique 2 video25",
            "nodes = 2\nvm = 3 10 2 video25 +",
            "nodes = 2\nvm = 3 10 2 video25 + 0 mp3",
            "nodes = 2\nvm = 3 10 2 video25 + 1",
            "nodes = 2\nvm = 3 10 elastic 1 video25 + 1 warp",
            "nodes = 2\nnode_share = on 0.5",
            "nodes = 2\nnode_share = maybe 0.5 0.95",
            "nodes = 2\nnode_share = on 0 0.95",
            "nodes = 2\nnode_share = on 0.9 0.5",
            "nodes = 2\nnode_share = on 0.5 1.5",
            "nodes = 2\nphase = 1000 500 0 4 all video25 1",
            "nodes = 2\nphase = 1000 2000 1500 4 all video25 1",
            "nodes = 2\nphase = 1000 2000 0 0 all video25 1",
            "nodes = 2\nphase = 1000 2000 0 4 all",
            "nodes = 2\nphase = 1000 2000 0 4 all video25 0",
            "nodes = 2\nphase = 1000 2000 0 4 all video25 1 +",
            "nodes = 2\nphase = 1000 2000 0 4 somewhere video25 1",
        ] {
            let text = format!("{base}{bad}");
            assert!(
                ScenarioSpec::from_text(&text).is_err(),
                "accepted invalid input: {bad:?}"
            );
        }
    }

    #[test]
    fn fractional_durations_round_trip() {
        let spec = ScenarioSpec::new("f", 1, 1, Dur::from_ms_f64(1234.5678)).with_arrivals(
            ArrivalSchedule::Staggered {
                gap: Dur::from_us_f64(333.25),
            },
        );
        let parsed = ScenarioSpec::from_text(&spec.to_text()).expect("parse");
        assert_eq!(parsed.horizon, spec.horizon);
        match parsed.arrivals {
            ArrivalSchedule::Staggered { gap } => {
                assert_eq!(gap, Dur::from_us_f64(333.25));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
