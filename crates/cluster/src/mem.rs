//! Churn memory harness: drives one node through admit/depart waves and
//! reports the arena footprint afterwards.
//!
//! This is the accounting behind the `mem_report` table printed by the
//! million-task experiment and the `cluster/milliontask/bytes_per_task`
//! entry in `BENCH_cluster.json`: admissions far exceed peak live tasks
//! (tasks churn through and depart), so a recycling arena holds ~peak-live
//! full slots plus lean retired records, while the pre-free-list arena
//! keeps one full slot per task ever admitted.

use crate::node::{ArenaMemStats, Node, NodeTask};
use crate::spec::{ScenarioSpec, TaskKind};
use selftune_simcore::time::{Dur, Time};

/// Outcome of one churn run (see [`churn_mem_report`]).
#[derive(Clone, Copy, Debug)]
pub struct ChurnMemReport {
    /// Whether the arena's slot free-list was enabled for this run.
    pub recycle: bool,
    /// Admit/depart waves driven through the node.
    pub waves: usize,
    /// Tasks admitted per wave.
    pub per_wave: usize,
    /// Largest live-task count observed at any wave boundary.
    pub peak_live: usize,
    /// Final arena accounting (slots, live, retired, bytes).
    pub stats: ArenaMemStats,
}

impl ChurnMemReport {
    /// Resident bytes per ever-admitted task — the bench metric.
    pub fn bytes_per_task(&self) -> f64 {
        self.stats.bytes_per_task()
    }
}

/// Runs `waves` admit/depart waves of `per_wave` periodic tasks through a
/// single node and returns the arena accounting.
///
/// Every wave's tasks depart 100 ms in (leaving ≥ one period of slack
/// before the 400 ms wave boundary, so their leases have actually retired
/// by the next wave) except the final wave, which stays live — the
/// steady-state population. Total admissions are therefore `waves ×
/// per_wave` against a peak live population of roughly `per_wave`; the
/// gap between the two is what slot recycling reclaims.
pub fn churn_mem_report(waves: usize, per_wave: usize, recycle: bool, seed: u64) -> ChurnMemReport {
    assert!(waves >= 1 && per_wave >= 1);
    let wave_ms = 400u64;
    let spec = ScenarioSpec::new("mem-churn", 1, 0, Dur::ms(waves as u64 * wave_ms));
    let mut node = Node::new(0, &spec);
    node.set_recycle(recycle);
    let mut peak_live = 0usize;
    let mut fleet_id = 0usize;
    for w in 0..waves {
        let start = Time::ZERO + Dur::ms(w as u64 * wave_ms);
        let last = w + 1 == waves;
        for _ in 0..per_wave {
            node.add_task(NodeTask {
                fleet_id,
                label: format!("m{fleet_id:06}"),
                kind: TaskKind::PeriodicRt {
                    wcet: Dur::us(10),
                    period: Dur::ms(50),
                },
                arrival: start,
                departure: (!last).then(|| start + Dur::ms(100)),
                seed: seed ^ fleet_id as u64,
                migrated: false,
                warm: None,
            });
            fleet_id += 1;
        }
        node.run_to_horizon(Time::ZERO + Dur::ms((w as u64 + 1) * wave_ms));
        peak_live = peak_live.max(node.mem_stats().live);
    }
    ChurnMemReport {
        recycle,
        waves,
        per_wave,
        peak_live,
        stats: node.mem_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_report_counts_every_admission() {
        let r = churn_mem_report(4, 40, true, 7);
        assert_eq!(r.stats.admitted, 160);
        // Only the last wave stays live.
        assert_eq!(r.stats.live, 40);
        assert!(r.peak_live >= 40);
        assert!(r.bytes_per_task() > 0.0);
    }

    #[test]
    fn recycling_reclaims_churned_slots() {
        let on = churn_mem_report(10, 40, true, 7);
        let off = churn_mem_report(10, 40, false, 7);
        // Same workload either way.
        assert_eq!(on.stats.admitted, off.stats.admitted);
        assert_eq!(on.stats.live, off.stats.live);
        // The frozen arena keeps a full slot per admission; the recycling
        // arena holds ~peak-live slots plus lean retired records.
        assert_eq!(off.stats.slots as u64, off.stats.admitted);
        assert!(
            on.stats.slots < off.stats.slots / 2,
            "recycling kept {} slots vs {} frozen",
            on.stats.slots,
            off.stats.slots
        );
        assert!(
            off.bytes_per_task() >= 2.0 * on.bytes_per_task(),
            "expected ≥2x bytes/task win: on={:.1} off={:.1}",
            on.bytes_per_task(),
            off.bytes_per_task()
        );
    }
}
