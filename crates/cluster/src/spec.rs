//! Declarative fleet scenarios: what runs where, when, and under which
//! admission regime.
//!
//! A [`ScenarioSpec`] is plain data — node count, a weighted task mix,
//! arrival/churn schedules and optional overload windows — from which the
//! runner derives every per-node simulation deterministically. Two runs of
//! the same spec with the same seed produce identical fleets regardless of
//! how many OS threads execute them.

use selftune_analysis::PeriodicTask;
use selftune_apps::{Aperiodic, MediaConfig, MediaPlayer, PeriodicRt, Streamer, StreamerConfig};
use selftune_simcore::rng::Rng;
use selftune_simcore::task::Workload;
use selftune_simcore::time::Dur;

use crate::placer::PolicyKind;

/// One kind of application a scenario can spawn.
///
/// Real-time kinds carry a nominal `(C, P)` the placer uses for admission;
/// best-effort kinds run unreserved in the fair class.
#[derive(Clone, Debug, PartialEq)]
pub enum TaskKind {
    /// `mplayer` playing a 25 fps movie (the paper's main subject).
    Video25,
    /// `mplayer` playing an mp3 stream at 32.5 jobs/s.
    Mp3,
    /// An RTP-style 30 fps network streamer (period smeared by jitter).
    Stream30,
    /// A synthetic periodic real-time task.
    PeriodicRt {
        /// Mean job cost.
        wcet: Dur,
        /// Release period.
        period: Dur,
    },
    /// Bursty best-effort work (never reserved, never managed).
    Aperiodic {
        /// Mean gap between bursts.
        mean_gap: Dur,
        /// Mean CPU work per burst item.
        mean_work: Dur,
        /// Items per burst.
        burst: u32,
    },
}

impl TaskKind {
    /// Whether the kind is placed under a reservation and managed by the
    /// node's self-tuning manager.
    pub fn is_realtime(&self) -> bool {
        !matches!(self, TaskKind::Aperiodic { .. })
    }

    /// Nominal `(C, P)` in milliseconds for admission control; `None` for
    /// best-effort kinds.
    pub fn nominal(&self) -> Option<PeriodicTask> {
        match self {
            TaskKind::Video25 => {
                let cfg = MediaConfig::mplayer_video_25fps();
                Some(PeriodicTask::new(
                    cfg.cost.mean().as_ms_f64(),
                    cfg.period().as_ms_f64(),
                ))
            }
            TaskKind::Mp3 => {
                let cfg = MediaConfig::mplayer_mp3();
                Some(PeriodicTask::new(
                    cfg.cost.mean().as_ms_f64(),
                    cfg.period().as_ms_f64(),
                ))
            }
            TaskKind::Stream30 => {
                let cfg = StreamerConfig::rtp_video_30fps();
                Some(PeriodicTask::new(
                    cfg.decode.as_ms_f64(),
                    cfg.period().as_ms_f64(),
                ))
            }
            TaskKind::PeriodicRt { wcet, period } => {
                Some(PeriodicTask::new(wcet.as_ms_f64(), period.as_ms_f64()))
            }
            TaskKind::Aperiodic { .. } => None,
        }
    }

    /// The metric mark each completed job leaves (`None` for kinds that do
    /// not mark completions).
    pub fn mark_name(&self, label: &str) -> Option<String> {
        match self {
            TaskKind::Video25 | TaskKind::Mp3 | TaskKind::Stream30 => {
                Some(format!("{label}.frame"))
            }
            TaskKind::PeriodicRt { .. } => Some(format!("{label}.job")),
            TaskKind::Aperiodic { .. } => None,
        }
    }

    /// Builds the workload, relabelled so its metric keys are unique
    /// within the node.
    pub fn instantiate(&self, label: &str, rng: Rng) -> Box<dyn Workload> {
        match self {
            TaskKind::Video25 => {
                let mut cfg = MediaConfig::mplayer_video_25fps();
                cfg.label = label.to_owned();
                Box::new(MediaPlayer::new(cfg, rng))
            }
            TaskKind::Mp3 => {
                let mut cfg = MediaConfig::mplayer_mp3();
                cfg.label = label.to_owned();
                Box::new(MediaPlayer::new(cfg, rng))
            }
            TaskKind::Stream30 => {
                let mut cfg = StreamerConfig::rtp_video_30fps();
                cfg.label = label.to_owned();
                Box::new(Streamer::new(cfg, rng))
            }
            TaskKind::PeriodicRt { wcet, period } => {
                Box::new(PeriodicRt::new(label, *wcet, *period, 0.15, rng))
            }
            TaskKind::Aperiodic {
                mean_gap,
                mean_work,
                burst,
            } => Box::new(Aperiodic::new(*mean_gap, *mean_work, *burst, rng)),
        }
    }
}

/// A weighted mix of task kinds, sampled per spawned task.
#[derive(Clone, Debug)]
pub struct TaskMix {
    entries: Vec<(TaskKind, f64)>,
    total: f64,
}

impl TaskMix {
    /// Builds a mix from `(kind, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or any weight is not positive.
    pub fn new(entries: Vec<(TaskKind, f64)>) -> TaskMix {
        assert!(!entries.is_empty(), "empty task mix");
        assert!(
            entries.iter().all(|&(_, w)| w > 0.0),
            "non-positive mix weight"
        );
        let total = entries.iter().map(|&(_, w)| w).sum();
        TaskMix { entries, total }
    }

    /// The paper's desktop: mostly media players, some synthetic RT.
    pub fn media_heavy() -> TaskMix {
        TaskMix::new(vec![
            (TaskKind::Video25, 3.0),
            (TaskKind::Stream30, 1.0),
            (
                TaskKind::PeriodicRt {
                    wcet: Dur::ms(2),
                    period: Dur::ms(50),
                },
                2.0,
            ),
        ])
    }

    /// A server-consolidation mix: many light periodic services, a few
    /// streams, background best-effort noise.
    pub fn mixed_server() -> TaskMix {
        TaskMix::new(vec![
            (
                TaskKind::PeriodicRt {
                    wcet: Dur::ms(1),
                    period: Dur::ms(20),
                },
                3.0,
            ),
            (
                TaskKind::PeriodicRt {
                    wcet: Dur::ms(4),
                    period: Dur::ms(100),
                },
                3.0,
            ),
            (TaskKind::Stream30, 2.0),
            (TaskKind::Video25, 1.0),
            (
                TaskKind::Aperiodic {
                    mean_gap: Dur::ms(25),
                    mean_work: Dur::from_ms_f64(1.0),
                    burst: 2,
                },
                1.0,
            ),
        ])
    }

    /// Only synthetic periodic tasks (fast; used by tests and benches).
    pub fn rt_only() -> TaskMix {
        TaskMix::new(vec![
            (
                TaskKind::PeriodicRt {
                    wcet: Dur::ms(2),
                    period: Dur::ms(40),
                },
                1.0,
            ),
            (
                TaskKind::PeriodicRt {
                    wcet: Dur::ms(5),
                    period: Dur::ms(125),
                },
                1.0,
            ),
        ])
    }

    /// Draws one kind according to the weights.
    pub fn sample(&self, rng: &mut Rng) -> TaskKind {
        let mut x = rng.f64() * self.total;
        for (kind, w) in &self.entries {
            if x < *w {
                return kind.clone();
            }
            x -= w;
        }
        self.entries.last().expect("non-empty mix").0.clone()
    }
}

/// When fleet tasks arrive.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalSchedule {
    /// Everything is running from `t = 0`.
    AllAtStart,
    /// One task every `gap` (task `i` arrives at `i · gap`).
    Staggered {
        /// Inter-arrival gap.
        gap: Dur,
    },
    /// Poisson arrivals with the given mean inter-arrival gap.
    Poisson {
        /// Mean inter-arrival gap.
        mean_gap: Dur,
    },
}

/// Task churn: tasks leave after an exponentially distributed lifetime.
#[derive(Clone, Copy, Debug)]
pub struct Churn {
    /// Mean task lifetime.
    pub mean_lifetime: Dur,
    /// Minimum lifetime (keeps the manager long enough to attach).
    pub min_lifetime: Dur,
}

/// A fault-injection window: every node gets fair-class CPU hogs between
/// `start` and `end`, stressing reservation isolation fleet-wide.
#[derive(Clone, Copy, Debug)]
pub struct OverloadWindow {
    /// Window start.
    pub start: Dur,
    /// Window end.
    pub end: Dur,
    /// Hogs injected per node.
    pub hogs_per_node: u32,
    /// Compute chunk of each hog.
    pub chunk: Dur,
}

/// A complete fleet scenario.
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// Scenario name (used in reports and CSV).
    pub name: String,
    /// Number of simulated nodes.
    pub nodes: usize,
    /// Fleet-wide number of tasks to place.
    pub tasks: usize,
    /// Virtual-time horizon each node runs to.
    pub horizon: Dur,
    /// Task mix sampled per arrival.
    pub mix: TaskMix,
    /// Arrival schedule of the fleet's tasks.
    pub arrivals: ArrivalSchedule,
    /// Optional churn (tasks leaving).
    pub churn: Option<Churn>,
    /// Optional overload windows.
    pub overload: Vec<OverloadWindow>,
    /// Cross-node placement policy.
    pub policy: PolicyKind,
    /// Per-node reservable bandwidth bound (supervisor `U_lub`).
    pub ulub: f64,
    /// Admission headroom: the placer books `headroom ×` the nominal
    /// minimum bandwidth, anticipating the LFS++ budget margin.
    pub headroom: f64,
    /// Manager sampling period `S` on every node.
    pub sampling: Dur,
}

impl ScenarioSpec {
    /// A scenario with sane defaults: media-heavy mix, staggered arrivals,
    /// worst-fit placement, `U_lub = 0.9`.
    pub fn new(name: &str, nodes: usize, tasks: usize, horizon: Dur) -> ScenarioSpec {
        assert!(nodes > 0, "a fleet needs at least one node");
        ScenarioSpec {
            name: name.to_owned(),
            nodes,
            tasks,
            horizon,
            mix: TaskMix::media_heavy(),
            arrivals: ArrivalSchedule::Staggered { gap: Dur::ms(20) },
            churn: None,
            overload: Vec::new(),
            policy: PolicyKind::WorstFit,
            ulub: 0.9,
            headroom: 1.2,
            sampling: Dur::ms(500),
        }
    }

    /// Replaces the task mix.
    pub fn with_mix(mut self, mix: TaskMix) -> ScenarioSpec {
        self.mix = mix;
        self
    }

    /// Replaces the arrival schedule.
    pub fn with_arrivals(mut self, arrivals: ArrivalSchedule) -> ScenarioSpec {
        self.arrivals = arrivals;
        self
    }

    /// Enables churn.
    pub fn with_churn(mut self, churn: Churn) -> ScenarioSpec {
        self.churn = Some(churn);
        self
    }

    /// Adds an overload window.
    pub fn with_overload(mut self, w: OverloadWindow) -> ScenarioSpec {
        self.overload.push(w);
        self
    }

    /// Replaces the placement policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> ScenarioSpec {
        self.policy = policy;
        self
    }

    /// Replaces the per-node utilisation bound.
    pub fn with_ulub(mut self, ulub: f64) -> ScenarioSpec {
        assert!(ulub > 0.0 && ulub <= 1.0, "ulub {ulub} out of (0, 1]");
        self.ulub = ulub;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_sampling_is_deterministic_and_weighted() {
        let mix = TaskMix::media_heavy();
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        for _ in 0..100 {
            assert_eq!(mix.sample(&mut a), mix.sample(&mut b));
        }
        let mut rng = Rng::new(9);
        let n = 10_000;
        let videos = (0..n)
            .filter(|_| matches!(mix.sample(&mut rng), TaskKind::Video25))
            .count();
        // Weight 3 of 6 total.
        let frac = videos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "video fraction {frac}");
    }

    #[test]
    fn realtime_kinds_have_nominal_params() {
        assert!(TaskKind::Video25.nominal().is_some());
        assert!(TaskKind::Mp3.nominal().is_some());
        assert!(TaskKind::Stream30.nominal().is_some());
        let ap = TaskKind::Aperiodic {
            mean_gap: Dur::ms(10),
            mean_work: Dur::ms(1),
            burst: 1,
        };
        assert!(ap.nominal().is_none());
        assert!(!ap.is_realtime());
        let v = TaskKind::Video25.nominal().unwrap();
        assert!((v.period - 40.0).abs() < 1e-9);
        assert!(v.wcet > 0.0 && v.wcet < v.period);
    }

    #[test]
    fn instantiate_relabels_metrics() {
        let kind = TaskKind::Video25;
        assert_eq!(kind.mark_name("n0.t3").unwrap(), "n0.t3.frame");
        // Smoke: the workload is constructible under the new label.
        let _ = kind.instantiate("n0.t3", Rng::new(1));
    }

    #[test]
    #[should_panic(expected = "empty task mix")]
    fn empty_mix_panics() {
        let _ = TaskMix::new(vec![]);
    }
}
