//! Declarative fleet scenarios: what runs where, when, and under which
//! admission regime.
//!
//! A [`ScenarioSpec`] is plain data — node count, a weighted task mix,
//! arrival/churn schedules and optional overload windows — from which the
//! runner derives every per-node simulation deterministically. Two runs of
//! the same spec with the same seed produce identical fleets regardless of
//! how many OS threads execute them.

use selftune_analysis::PeriodicTask;
use selftune_apps::{Aperiodic, MediaConfig, MediaPlayer, PeriodicRt, Streamer, StreamerConfig};
use selftune_simcore::rng::Rng;
use selftune_simcore::task::Workload;
use selftune_simcore::time::Dur;

use crate::placer::PolicyKind;

/// One kind of application a scenario can spawn.
///
/// Real-time kinds carry a nominal `(C, P)` the placer uses for admission;
/// best-effort kinds run unreserved in the fair class.
#[derive(Clone, Debug, PartialEq)]
pub enum TaskKind {
    /// `mplayer` playing a 25 fps movie (the paper's main subject).
    Video25,
    /// `mplayer` playing an mp3 stream at 32.5 jobs/s.
    Mp3,
    /// An RTP-style 30 fps network streamer (period smeared by jitter).
    Stream30,
    /// A synthetic periodic real-time task.
    PeriodicRt {
        /// Mean job cost.
        wcet: Dur,
        /// Release period.
        period: Dur,
    },
    /// A legacy task whose *declared* demand understates its real
    /// appetite: admission control sees `nominal_wcet`, the workload
    /// actually burns `wcet` per job. Densely packing these is how a fleet
    /// ends up nominally schedulable and measurably melting — the gap the
    /// feedback rebalancer exists to close.
    HungryRt {
        /// The job cost the task *claims* (used for admission).
        nominal_wcet: Dur,
        /// The job cost the task actually burns.
        wcet: Dur,
        /// Release period.
        period: Dur,
    },
    /// Bursty best-effort work (never reserved, never managed).
    Aperiodic {
        /// Mean gap between bursts.
        mean_gap: Dur,
        /// Mean CPU work per burst item.
        mean_work: Dur,
        /// Items per burst.
        burst: u32,
    },
}

impl TaskKind {
    /// Whether the kind is placed under a reservation and managed by the
    /// node's self-tuning manager.
    pub fn is_realtime(&self) -> bool {
        !matches!(self, TaskKind::Aperiodic { .. })
    }

    /// Nominal `(C, P)` in milliseconds for admission control; `None` for
    /// best-effort kinds.
    pub fn nominal(&self) -> Option<PeriodicTask> {
        match self {
            TaskKind::Video25 => {
                let cfg = MediaConfig::mplayer_video_25fps();
                Some(PeriodicTask::new(
                    cfg.cost.mean().as_ms_f64(),
                    cfg.period().as_ms_f64(),
                ))
            }
            TaskKind::Mp3 => {
                let cfg = MediaConfig::mplayer_mp3();
                Some(PeriodicTask::new(
                    cfg.cost.mean().as_ms_f64(),
                    cfg.period().as_ms_f64(),
                ))
            }
            TaskKind::Stream30 => {
                let cfg = StreamerConfig::rtp_video_30fps();
                Some(PeriodicTask::new(
                    cfg.decode.as_ms_f64(),
                    cfg.period().as_ms_f64(),
                ))
            }
            TaskKind::PeriodicRt { wcet, period } => {
                Some(PeriodicTask::new(wcet.as_ms_f64(), period.as_ms_f64()))
            }
            TaskKind::HungryRt {
                nominal_wcet,
                period,
                ..
            } => Some(PeriodicTask::new(
                nominal_wcet.as_ms_f64(),
                period.as_ms_f64(),
            )),
            TaskKind::Aperiodic { .. } => None,
        }
    }

    /// The metric mark each completed job leaves (`None` for kinds that do
    /// not mark completions).
    pub fn mark_name(&self, label: &str) -> Option<String> {
        match self {
            TaskKind::Video25 | TaskKind::Mp3 | TaskKind::Stream30 => {
                Some(format!("{label}.frame"))
            }
            TaskKind::PeriodicRt { .. } | TaskKind::HungryRt { .. } => Some(format!("{label}.job")),
            TaskKind::Aperiodic { .. } => None,
        }
    }

    /// Builds the workload, relabelled so its metric keys are unique
    /// within the node.
    pub fn instantiate(&self, label: &str, rng: Rng) -> Box<dyn Workload> {
        match self {
            TaskKind::Video25 => {
                let mut cfg = MediaConfig::mplayer_video_25fps();
                cfg.label = label.to_owned();
                Box::new(MediaPlayer::new(cfg, rng))
            }
            TaskKind::Mp3 => {
                let mut cfg = MediaConfig::mplayer_mp3();
                cfg.label = label.to_owned();
                Box::new(MediaPlayer::new(cfg, rng))
            }
            TaskKind::Stream30 => {
                let mut cfg = StreamerConfig::rtp_video_30fps();
                cfg.label = label.to_owned();
                Box::new(Streamer::new(cfg, rng))
            }
            TaskKind::PeriodicRt { wcet, period } => {
                Box::new(PeriodicRt::new(label, *wcet, *period, 0.15, rng))
            }
            TaskKind::HungryRt { wcet, period, .. } => {
                // Runs at its *actual* appetite; only admission saw the
                // nominal figure.
                Box::new(PeriodicRt::new(label, *wcet, *period, 0.15, rng))
            }
            TaskKind::Aperiodic {
                mean_gap,
                mean_work,
                burst,
            } => Box::new(Aperiodic::new(*mean_gap, *mean_work, *burst, rng)),
        }
    }
}

/// A weighted mix of task kinds, sampled per spawned task.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskMix {
    entries: Vec<(TaskKind, f64)>,
    total: f64,
}

impl TaskMix {
    /// Builds a mix from `(kind, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or any weight is not positive.
    pub fn new(entries: Vec<(TaskKind, f64)>) -> TaskMix {
        assert!(!entries.is_empty(), "empty task mix");
        assert!(
            entries.iter().all(|&(_, w)| w > 0.0),
            "non-positive mix weight"
        );
        let total = entries.iter().map(|&(_, w)| w).sum();
        TaskMix { entries, total }
    }

    /// The paper's desktop: mostly media players, some synthetic RT.
    pub fn media_heavy() -> TaskMix {
        TaskMix::new(vec![
            (TaskKind::Video25, 3.0),
            (TaskKind::Stream30, 1.0),
            (
                TaskKind::PeriodicRt {
                    wcet: Dur::ms(2),
                    period: Dur::ms(50),
                },
                2.0,
            ),
        ])
    }

    /// A server-consolidation mix: many light periodic services, a few
    /// streams, background best-effort noise.
    pub fn mixed_server() -> TaskMix {
        TaskMix::new(vec![
            (
                TaskKind::PeriodicRt {
                    wcet: Dur::ms(1),
                    period: Dur::ms(20),
                },
                3.0,
            ),
            (
                TaskKind::PeriodicRt {
                    wcet: Dur::ms(4),
                    period: Dur::ms(100),
                },
                3.0,
            ),
            (TaskKind::Stream30, 2.0),
            (TaskKind::Video25, 1.0),
            (
                TaskKind::Aperiodic {
                    mean_gap: Dur::ms(25),
                    mean_work: Dur::from_ms_f64(1.0),
                    burst: 2,
                },
                1.0,
            ),
        ])
    }

    /// Only synthetic periodic tasks (fast; used by tests and benches).
    pub fn rt_only() -> TaskMix {
        TaskMix::new(vec![
            (
                TaskKind::PeriodicRt {
                    wcet: Dur::ms(2),
                    period: Dur::ms(40),
                },
                1.0,
            ),
            (
                TaskKind::PeriodicRt {
                    wcet: Dur::ms(5),
                    period: Dur::ms(125),
                },
                1.0,
            ),
        ])
    }

    /// The `(kind, weight)` entries of the mix, in declaration order.
    pub fn entries(&self) -> &[(TaskKind, f64)] {
        &self.entries
    }

    /// Draws one kind according to the weights.
    pub fn sample(&self, rng: &mut Rng) -> TaskKind {
        let mut x = rng.f64() * self.total;
        for (kind, w) in &self.entries {
            if x < *w {
                return kind.clone();
            }
            x -= w;
        }
        self.entries.last().expect("non-empty mix").0.clone()
    }
}

/// When fleet tasks arrive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalSchedule {
    /// Everything is running from `t = 0`.
    AllAtStart,
    /// One task every `gap` (task `i` arrives at `i · gap`).
    Staggered {
        /// Inter-arrival gap.
        gap: Dur,
    },
    /// Poisson arrivals with the given mean inter-arrival gap.
    Poisson {
        /// Mean inter-arrival gap.
        mean_gap: Dur,
    },
}

/// Task churn: tasks leave after an exponentially distributed lifetime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Churn {
    /// Mean task lifetime.
    pub mean_lifetime: Dur,
    /// Minimum lifetime (keeps the manager long enough to attach).
    pub min_lifetime: Dur,
}

/// Which nodes a fault-injection window targets.
///
/// `All` reproduces the original fleet-wide windows; `First` and `Stride`
/// build *skewed* overloads — the scenario the feedback rebalancer exists
/// for, where some nodes melt while others idle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeFilter {
    /// Every node.
    All,
    /// Only nodes `0..n`.
    First(usize),
    /// Only nodes whose id is a multiple of `n` (`n ≥ 1`).
    Stride(usize),
}

impl NodeFilter {
    /// Whether `node` is targeted by this filter.
    pub fn matches(self, node: usize) -> bool {
        match self {
            NodeFilter::All => true,
            NodeFilter::First(n) => node < n,
            NodeFilter::Stride(n) => node.is_multiple_of(n.max(1)),
        }
    }
}

/// A fault-injection window: the targeted nodes get fair-class CPU hogs
/// between `start` and `end`, stressing reservation isolation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverloadWindow {
    /// Window start.
    pub start: Dur,
    /// Window end.
    pub end: Dur,
    /// Hogs injected per targeted node.
    pub hogs_per_node: u32,
    /// Compute chunk of each hog.
    pub chunk: Dur,
    /// Which nodes are hit ([`NodeFilter::All`] for fleet-wide windows).
    pub nodes: NodeFilter,
}

/// Feedback-driven re-placement configuration.
///
/// When enabled, the runner executes the fleet in barrier-synchronised
/// epochs of `period`: at each boundary every node publishes a
/// `NodeFeedback` snapshot (measured utilisation, deadline-miss rate,
/// compression events since the last epoch) and a deterministic rebalance
/// pass migrates running tasks off nodes whose *measured* pressure exceeds
/// the threshold — the cluster-scale analogue of the paper's self-tuning
/// loop, which trusts observed scheduling behaviour over nominal demand.
///
/// The eviction signal is an exponentially weighted moving average of the
/// per-epoch pressure (miss rate plus compression-event rate): a node
/// oscillating around the threshold no longer alternates drain/idle every
/// epoch, because one good epoch only decays — not erases — the pressure
/// history. `ewma_alpha = 1` reproduces the memoryless behaviour.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RebalanceSpec {
    /// Master switch; when `false` the runner behaves exactly as before
    /// (placement at arrival only).
    pub enabled: bool,
    /// Epoch length (rebalance decisions happen at multiples of this).
    pub period: Dur,
    /// Pressure threshold: a node whose smoothed pressure exceeds this is
    /// drained.
    pub pressure: f64,
    /// Fleet-wide cap on migrations per epoch.
    pub max_moves: u32,
    /// EWMA smoothing factor in `(0, 1]`: weight of the current epoch's
    /// raw pressure (1 = no smoothing, the pre-hysteresis behaviour).
    pub ewma_alpha: f64,
    /// Carry controller state across migrations: the destination seeds its
    /// manager and reservation from the source's granted budget and
    /// period estimate instead of re-detecting from scratch.
    pub warm_start: bool,
}

impl Default for RebalanceSpec {
    fn default() -> Self {
        RebalanceSpec {
            enabled: false,
            period: Dur::secs(1),
            pressure: 0.05,
            max_moves: 4,
            ewma_alpha: 1.0,
            warm_start: false,
        }
    }
}

/// Node-level share re-bounding: the fleet→node instance of the paper's
/// feedback loop.
///
/// When enabled, the epoch leader runs one
/// [`selftune_core::share::ShareController`] per node over the same
/// `NodeFeedback` snapshots the rebalancer reads, and re-bounds each
/// node's supervisor `U_lub` in place: a node whose measured demand
/// saturates its bound (misses, compressions) claws headroom back up to
/// `cap` *before* the rebalancer reaches for migrations, and an idle node
/// sheds bookable headroom down to `floor` — headroom the placer then
/// stops counting when it books migration destinations. Decisions ride
/// the rebalance epoch grid ([`RebalanceSpec::period`]), are pure
/// functions of the node-id-ordered feedback, and are journalled as
/// `NodeRebound` events.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeShareSpec {
    /// Master switch; off reproduces the static per-node `U_lub` exactly.
    pub enabled: bool,
    /// Lowest bound an idle node may shed to.
    pub floor: f64,
    /// Highest bound a saturated node may claw back to (the fleet-wide
    /// cap; must stay within `(0, 1]` like any `U_lub`).
    pub cap: f64,
}

impl Default for NodeShareSpec {
    fn default() -> Self {
        NodeShareSpec {
            enabled: false,
            floor: 0.5,
            cap: 0.95,
        }
    }
}

/// A traffic phase: a diurnal wave or flash crowd of extra tasks that
/// arrives inside `[start, end)` and leaves at `end`.
///
/// Phase task `i` arrives at `start + ramp · i / tasks` — a zero ramp is
/// a flash crowd (everything lands at `start`), a ramp near `end − start`
/// is a diurnal swell. Placement is restricted to the nodes `nodes`
/// matches, so a phase can model regional traffic hitting one slice of
/// the fleet while the rest idles.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficPhase {
    /// First arrival instant (offset from the run start).
    pub start: Dur,
    /// Departure instant of every phase task (the lease end).
    pub end: Dur,
    /// Arrival spread: the ramp from the first to the last arrival.
    pub ramp: Dur,
    /// How many tasks the phase contributes.
    pub tasks: usize,
    /// Mix the phase's tasks are drawn from.
    pub mix: TaskMix,
    /// Nodes admission may place the phase's tasks on.
    pub nodes: NodeFilter,
}

/// One virtual platform in the fleet: a whole tenant placed — and, under
/// feedback re-placement, migrated — as a single unit.
///
/// The VM's host share `(budget, period)` is what the placer books; the
/// guest tasks run under the VM's own self-tuning manager (for real-time
/// kinds), invisible to fleet-level admission. The guest population is a
/// *mix*: `(count, kind)` groups, so one tenant can consolidate
/// heterogeneous applications (a video player next to synthetic RT
/// services) behind a single share.
#[derive(Clone, Debug, PartialEq)]
pub struct VmSpec {
    /// Share budget granted per share period.
    pub budget: Dur,
    /// Share period (granularity of the VM's CPU supply).
    pub period: Dur,
    /// Guest task groups, `(count, kind)` in declaration order.
    pub guests: Vec<(usize, TaskKind)>,
    /// Whether the VM's host share is *elastic*: the node runs a
    /// `selftune_virt::VmShareController` for it, re-requesting the share
    /// from measured guest demand every control period. Elastic VMs are
    /// never rebalance victims — the host-level loop absorbs their
    /// pressure locally (and their *granted* share, not this nominal one,
    /// is what fleet decisions book).
    pub elastic: bool,
}

impl VmSpec {
    /// A VM whose guests are all of one kind (the pre-mix form).
    pub fn uniform(budget: Dur, period: Dur, guests: usize, kind: TaskKind) -> VmSpec {
        VmSpec {
            budget,
            period,
            guests: vec![(guests, kind)],
            elastic: false,
        }
    }

    /// Marks the VM's share elastic (builder-style).
    pub fn with_elastic(mut self) -> VmSpec {
        self.elastic = true;
        self
    }

    /// The share of one node this VM books, `Q/T`.
    pub fn share(&self) -> f64 {
        self.budget.ratio(self.period)
    }

    /// Total guest tasks across all groups.
    pub fn guest_count(&self) -> usize {
        self.guests.iter().map(|&(n, _)| n).sum()
    }

    /// The guest kinds flattened in declaration order, one per task.
    pub fn guest_kinds(&self) -> impl Iterator<Item = &TaskKind> {
        self.guests
            .iter()
            .flat_map(|(n, kind)| std::iter::repeat_n(kind, *n))
    }
}

/// A complete fleet scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (used in reports and CSV).
    pub name: String,
    /// Number of simulated nodes.
    pub nodes: usize,
    /// Fleet-wide number of tasks to place.
    pub tasks: usize,
    /// Virtual platforms to place as whole units (may be empty).
    pub vms: Vec<VmSpec>,
    /// Virtual-time horizon each node runs to.
    pub horizon: Dur,
    /// Task mix sampled per arrival.
    pub mix: TaskMix,
    /// Arrival schedule of the fleet's tasks.
    pub arrivals: ArrivalSchedule,
    /// Optional churn (tasks leaving).
    pub churn: Option<Churn>,
    /// Optional overload windows.
    pub overload: Vec<OverloadWindow>,
    /// Cross-node placement policy.
    pub policy: PolicyKind,
    /// Per-node reservable bandwidth bound (supervisor `U_lub`).
    pub ulub: f64,
    /// Admission headroom: the placer books `headroom ×` the nominal
    /// minimum bandwidth, anticipating the LFS++ budget margin.
    pub headroom: f64,
    /// Manager sampling period `S` on every node.
    pub sampling: Dur,
    /// Feedback-driven re-placement (off by default).
    pub rebalance: RebalanceSpec,
    /// Node-level share re-bounding (off by default).
    pub node_share: NodeShareSpec,
    /// Time-varying traffic phases layered over the base population.
    pub phases: Vec<TrafficPhase>,
}

impl ScenarioSpec {
    /// A scenario with sane defaults: media-heavy mix, staggered arrivals,
    /// worst-fit placement, `U_lub = 0.9`.
    pub fn new(name: &str, nodes: usize, tasks: usize, horizon: Dur) -> ScenarioSpec {
        assert!(nodes > 0, "a fleet needs at least one node");
        ScenarioSpec {
            name: name.to_owned(),
            nodes,
            tasks,
            vms: Vec::new(),
            horizon,
            mix: TaskMix::media_heavy(),
            arrivals: ArrivalSchedule::Staggered { gap: Dur::ms(20) },
            churn: None,
            overload: Vec::new(),
            policy: PolicyKind::WorstFit,
            ulub: 0.9,
            headroom: 1.2,
            sampling: Dur::ms(500),
            rebalance: RebalanceSpec::default(),
            node_share: NodeShareSpec::default(),
            phases: Vec::new(),
        }
    }

    /// Fleet-wide flat task count: the base population plus every traffic
    /// phase's tasks. Phase tasks take fleet ids `tasks..flat_tasks()`
    /// (in phase declaration order); VM guest ids follow after.
    pub fn flat_tasks(&self) -> usize {
        self.tasks + self.phases.iter().map(|p| p.tasks).sum::<usize>()
    }

    /// Replaces the task mix.
    pub fn with_mix(mut self, mix: TaskMix) -> ScenarioSpec {
        self.mix = mix;
        self
    }

    /// Adds a virtual platform to place as a unit.
    ///
    /// # Panics
    ///
    /// Panics if the share is degenerate (zero budget/period or
    /// `budget > period`) or the VM has no guests.
    pub fn with_vm(mut self, vm: VmSpec) -> ScenarioSpec {
        assert!(
            !vm.budget.is_zero() && !vm.period.is_zero() && vm.budget <= vm.period,
            "degenerate VM share"
        );
        assert!(vm.guest_count() > 0, "a VM needs at least one guest task");
        assert!(
            vm.guests.iter().all(|&(n, _)| n > 0),
            "empty guest group in VM mix"
        );
        self.vms.push(vm);
        self
    }

    /// Replaces the arrival schedule.
    pub fn with_arrivals(mut self, arrivals: ArrivalSchedule) -> ScenarioSpec {
        self.arrivals = arrivals;
        self
    }

    /// Enables churn.
    pub fn with_churn(mut self, churn: Churn) -> ScenarioSpec {
        self.churn = Some(churn);
        self
    }

    /// Adds an overload window.
    pub fn with_overload(mut self, w: OverloadWindow) -> ScenarioSpec {
        self.overload.push(w);
        self
    }

    /// Replaces the placement policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> ScenarioSpec {
        self.policy = policy;
        self
    }

    /// Replaces the per-node utilisation bound.
    pub fn with_ulub(mut self, ulub: f64) -> ScenarioSpec {
        assert!(ulub > 0.0 && ulub <= 1.0, "ulub {ulub} out of (0, 1]");
        self.ulub = ulub;
        self
    }

    /// Replaces the admission headroom factor.
    pub fn with_headroom(mut self, headroom: f64) -> ScenarioSpec {
        assert!(headroom >= 1.0, "headroom {headroom} below 1");
        self.headroom = headroom;
        self
    }

    /// Replaces the manager sampling period.
    pub fn with_sampling(mut self, sampling: Dur) -> ScenarioSpec {
        assert!(!sampling.is_zero(), "sampling period must be positive");
        self.sampling = sampling;
        self
    }

    /// The canonical skewed-overload demo: first-fit packs lying legacy
    /// tasks ([`TaskKind::HungryRt`], claimed 2 ms jobs that really burn
    /// 6 ms) onto node 0, which a fair-class hog burst then hits.
    /// Nominally the plan is schedulable; measurably node 0 melts while
    /// the other nodes idle.
    ///
    /// This single definition backs the `cluster_rebalance` experiment,
    /// the `cluster_rebalance_e2e` test and the `cluster_fleet` example,
    /// so tuning it cannot desynchronise them. Rebalance is off; chain
    /// [`ScenarioSpec::with_rebalance`] (the demo parameters are
    /// `RebalanceSpec { enabled: true, period: 750 ms, pressure: 0.25,
    /// max_moves: 4 }`) for the feedback run.
    pub fn skewed_overload_demo(nodes: usize, tasks: usize) -> ScenarioSpec {
        ScenarioSpec::new("rebalance-demo", nodes, tasks, Dur::secs(6))
            .with_mix(TaskMix::new(vec![(
                TaskKind::HungryRt {
                    nominal_wcet: Dur::ms(2),
                    wcet: Dur::ms(6),
                    period: Dur::ms(40),
                },
                1.0,
            )]))
            .with_arrivals(ArrivalSchedule::Staggered { gap: Dur::ms(100) })
            .with_policy(PolicyKind::FirstFit)
            .with_ulub(0.9)
            .with_overload(OverloadWindow {
                start: Dur::ms(1_500),
                end: Dur::ms(4_500),
                hogs_per_node: 4,
                chunk: Dur::ms(5),
                nodes: NodeFilter::First(1),
            })
    }

    /// The feedback-loop parameters of the skewed-overload demo: EWMA
    /// smoothing on and controller state carried across migrations.
    pub fn demo_rebalance() -> RebalanceSpec {
        RebalanceSpec {
            enabled: true,
            period: Dur::ms(750),
            pressure: 0.25,
            max_moves: 4,
            ewma_alpha: 0.6,
            warm_start: true,
        }
    }

    /// The skewed-overload story at fleet scale: first-fit packs lying
    /// [`TaskKind::HungryRt`] tasks (~15 per node under `U_lub = 0.9`,
    /// each claiming 2 ms jobs that really burn 6 ms) onto the low-id
    /// slice of an otherwise idle sea of nodes, and a hog burst then
    /// skews the first few packed nodes further. Statically placed, the
    /// packed prefix melts for the whole run; the feedback rebalancer
    /// drains it into the idle majority, and every destination query has
    /// the whole fleet to pick from — which is exactly where the
    /// bucketed headroom index earns its keep at 10k nodes.
    ///
    /// All tasks arrive at `t = 0` (staggered gaps would not fit a short
    /// fleet horizon at 10k+ tasks) and the managers sample at 100 ms so
    /// self-tuning converges within a few hundred milliseconds of
    /// virtual time. This single definition backs the
    /// `cluster_megafleet` experiment, the `cluster_megafleet_e2e` test
    /// and the `megafleet.journal` fixture. Rebalance is off; chain
    /// [`ScenarioSpec::with_rebalance`]`(`[`ScenarioSpec::megafleet_rebalance`]`(horizon))`
    /// for the feedback run.
    pub fn megafleet_demo(nodes: usize, tasks: usize, horizon: Dur) -> ScenarioSpec {
        ScenarioSpec::new("megafleet", nodes, tasks, horizon)
            .with_mix(TaskMix::new(vec![(
                TaskKind::HungryRt {
                    nominal_wcet: Dur::ms(2),
                    wcet: Dur::ms(6),
                    period: Dur::ms(40),
                },
                1.0,
            )]))
            .with_arrivals(ArrivalSchedule::AllAtStart)
            .with_policy(PolicyKind::FirstFit)
            .with_ulub(0.9)
            .with_sampling(Dur::ms(100))
            .with_overload(OverloadWindow {
                start: horizon.mul_f64(0.2),
                end: horizon.mul_f64(0.75),
                hogs_per_node: 4,
                chunk: Dur::ms(5),
                nodes: NodeFilter::First(4),
            })
    }

    /// The feedback-loop parameters of the megafleet demo: epochs at an
    /// eighth of the horizon so the rebalancer gets several bites within
    /// a short fleet run, and a move cap wide enough to actually heal an
    /// over-packed prefix of tens of nodes (each needs roughly two
    /// thirds of its liars drained before its real demand fits).
    pub fn megafleet_rebalance(horizon: Dur) -> RebalanceSpec {
        RebalanceSpec {
            enabled: true,
            period: horizon.mul_f64(0.125),
            pressure: 0.25,
            max_moves: 64,
            ewma_alpha: 0.6,
            warm_start: true,
        }
    }

    /// The million-task operating point behind the `cluster_milliontask`
    /// experiment, e2e test and `milliontask.journal` fixture: the *task*
    /// axis pushed three orders of magnitude past the per-node norm while
    /// the node count stays in the low thousands (hundreds of tasks per
    /// node).
    ///
    /// The population is deliberately de-synchronised — arrivals staggered
    /// over the first 100 ms and sixteen co-prime-ish periods — because at
    /// a million tasks a single shared period turns every period boundary
    /// into a fleet-wide event storm that measures the event queue, not
    /// the fleet. A liar wave ([`TaskKind::HungryRt`] under-declaring its
    /// demand) rides in early on a node prefix: first-fit packs the liars
    /// there, their lying reservations throttle them into steady deadline
    /// misses, and the prefix lights up the rebalancer's pressure signal
    /// while the honest sea stays healthy. The wave leases end inside the
    /// horizon, so the run also retires tens of thousands of tasks
    /// mid-flight — the churn path the slot-recycling arena exists for.
    ///
    /// Chain [`ScenarioSpec::with_rebalance`]`(`
    /// [`ScenarioSpec::milliontask_rebalance`]`(horizon))` for the
    /// feedback run; rebalance is off here.
    pub fn milliontask_demo(nodes: usize, tasks: usize, horizon: Dur) -> ScenarioSpec {
        assert!(nodes >= 128, "the million-task demo needs a real fleet");
        // Sixteen staggered periods around half a second: ~2 jobs per
        // task over a 1 s horizon, no fleet-wide phase alignment.
        let mix = TaskMix::new(
            (0..16u64)
                .map(|i| {
                    (
                        TaskKind::PeriodicRt {
                            wcet: Dur::us(200),
                            period: Dur::ms(450 + i * 13),
                        },
                        1.0,
                    )
                })
                .collect(),
        );
        // 64 liars per prefix node book 64 × (700µs/60ms × 1.2
        // admission headroom) ≈ 0.896 — the wave alone fills the prefix
        // to the 0.9 admission cap, so the honest stream (arriving just
        // behind it) first-fits straight past. The prefix's live set is
        // then liars end to end, which is what lets eviction (live-order
        // victim walk) drain exactly the misbehaving population instead
        // of honest bystanders. The lie is sized to both ends of the
        // migration: 64 × 1.5 ms real demand is a 1.78× overload (inter-
        // mark gaps ~107 ms, past the 1.5× period miss threshold), while
        // a booking derived from the nominal figure still lands near the
        // real appetite — so destinations absorb roughly what they
        // accept instead of melting into a second eviction cascade.
        let prefix = (nodes / 64).max(4);
        let liars = prefix * 64;
        ScenarioSpec::new("milliontask", nodes, tasks, horizon)
            .with_mix(mix)
            .with_arrivals(ArrivalSchedule::Staggered {
                gap: Dur::ns(100_000_000 / tasks.max(1) as u64),
            })
            .with_policy(PolicyKind::FirstFit)
            .with_ulub(0.9)
            .with_sampling(Dur::ms(250))
            .with_phase(TrafficPhase {
                start: Dur::us(1),
                end: horizon.mul_f64(0.9),
                ramp: Dur::us(10),
                tasks: liars,
                mix: TaskMix::new(vec![(
                    TaskKind::HungryRt {
                        nominal_wcet: Dur::us(700),
                        wcet: Dur::us(1500),
                        period: Dur::ms(60),
                    },
                    1.0,
                )]),
                nodes: NodeFilter::First(prefix),
            })
    }

    /// The feedback-loop parameters of the million-task demo. The
    /// pressure threshold sits well below the liar prefix's miss rate but
    /// above the honest sea's (whose long-period tasks rarely even record
    /// a gap per epoch), and the move budget is sized to drain a
    /// meaningful share of the packed liars within the few epochs a short
    /// horizon allows.
    pub fn milliontask_rebalance(horizon: Dur) -> RebalanceSpec {
        RebalanceSpec {
            enabled: true,
            period: horizon.mul_f64(0.125),
            pressure: 0.5,
            max_moves: 4_096,
            ewma_alpha: 0.6,
            warm_start: true,
        }
    }

    /// The diurnal/flash-crowd demo behind the `cluster_diurnal`
    /// experiment and e2e test: a lightly loaded base fleet with
    /// overprovisioned tenant VMs packed onto the low-id nodes, a fleet-
    /// wide diurnal wave of lying [`TaskKind::HungryRt`] tasks, and a
    /// flash crowd that slams the VM-hosting prefix mid-wave.
    ///
    /// The three control levers compose against it: elastic VM shares
    /// free the hoarded tenant bandwidth *in place* exactly where the
    /// crowd lands, the rebalancer drains melting prefix nodes into the
    /// idle tail, and node-level re-bounding
    /// ([`ScenarioSpec::diurnal_node_share`]) lets saturated nodes claw
    /// supervisor headroom back while idle ones shed bookable capacity.
    /// Rebalance, VM elasticity and node share are all *off* here; the
    /// experiment turns them on in combinations at equal total bandwidth.
    pub fn diurnal_demo(nodes: usize, tasks: usize) -> ScenarioSpec {
        assert!(nodes >= 2, "the diurnal demo needs a prefix and a tail");
        let mut spec = ScenarioSpec::new("diurnal", nodes, tasks, Dur::secs(6))
            .with_mix(TaskMix::new(vec![(
                TaskKind::PeriodicRt {
                    wcet: Dur::ms(2),
                    period: Dur::ms(40),
                },
                1.0,
            )]))
            .with_arrivals(ArrivalSchedule::Staggered { gap: Dur::ms(20) })
            .with_policy(PolicyKind::FirstFit)
            .with_ulub(0.9)
            .with_sampling(Dur::ms(100))
            .with_phase(TrafficPhase {
                start: Dur::ms(1_000),
                end: Dur::ms(5_000),
                ramp: Dur::ms(2_000),
                tasks: nodes * 3,
                mix: TaskMix::new(vec![(
                    TaskKind::HungryRt {
                        nominal_wcet: Dur::ms(2),
                        wcet: Dur::ms(5),
                        period: Dur::ms(40),
                    },
                    1.0,
                )]),
                nodes: NodeFilter::All,
            })
            .with_phase(TrafficPhase {
                start: Dur::ms(2_500),
                end: Dur::ms(4_500),
                ramp: Dur::ZERO,
                tasks: nodes,
                mix: TaskMix::new(vec![(
                    TaskKind::PeriodicRt {
                        wcet: Dur::ms(6),
                        period: Dur::ms(40),
                    },
                    1.0,
                )]),
                nodes: NodeFilter::First((nodes / 4).max(1)),
            });
        // One overprovisioned tenant per two nodes: a 0.5 share whose
        // guests measurably need ~0.15 — the slack elasticity recovers.
        for _ in 0..nodes / 2 {
            spec = spec.with_vm(VmSpec::uniform(
                Dur::ms(5),
                Dur::ms(10),
                2,
                TaskKind::PeriodicRt {
                    wcet: Dur::ms(2),
                    period: Dur::ms(40),
                },
            ));
        }
        spec
    }

    /// The feedback-loop parameters of the diurnal demo (epochs short
    /// enough for several decisions per phase).
    pub fn diurnal_rebalance() -> RebalanceSpec {
        RebalanceSpec {
            enabled: true,
            period: Dur::ms(500),
            pressure: 0.25,
            max_moves: 8,
            ewma_alpha: 0.6,
            warm_start: true,
        }
    }

    /// The node-level re-bounding parameters of the diurnal demo.
    pub fn diurnal_node_share() -> NodeShareSpec {
        NodeShareSpec {
            enabled: true,
            floor: 0.5,
            cap: 0.95,
        }
    }

    /// Enables node-level share re-bounding with the given parameters.
    pub fn with_node_share(mut self, node_share: NodeShareSpec) -> ScenarioSpec {
        assert!(
            node_share.floor > 0.0 && node_share.floor <= node_share.cap && node_share.cap <= 1.0,
            "node share bounds must satisfy 0 < floor <= cap <= 1"
        );
        self.node_share = node_share;
        self
    }

    /// Adds a traffic phase.
    ///
    /// # Panics
    ///
    /// Panics if the window is degenerate (`start >= end`), the ramp does
    /// not fit the window, or the phase has no tasks.
    pub fn with_phase(mut self, phase: TrafficPhase) -> ScenarioSpec {
        assert!(phase.start < phase.end, "phase must start before it ends");
        assert!(
            phase.ramp <= phase.end - phase.start,
            "phase ramp exceeds the window"
        );
        assert!(phase.tasks > 0, "a phase needs at least one task");
        self.phases.push(phase);
        self
    }

    /// Enables feedback-driven re-placement with the given parameters.
    pub fn with_rebalance(mut self, rebalance: RebalanceSpec) -> ScenarioSpec {
        assert!(
            !rebalance.period.is_zero(),
            "rebalance period must be positive"
        );
        assert!(
            rebalance.pressure >= 0.0,
            "rebalance pressure must be non-negative"
        );
        assert!(
            rebalance.ewma_alpha > 0.0 && rebalance.ewma_alpha <= 1.0,
            "rebalance ewma_alpha must be in (0, 1]"
        );
        self.rebalance = rebalance;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_sampling_is_deterministic_and_weighted() {
        let mix = TaskMix::media_heavy();
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        for _ in 0..100 {
            assert_eq!(mix.sample(&mut a), mix.sample(&mut b));
        }
        let mut rng = Rng::new(9);
        let n = 10_000;
        let videos = (0..n)
            .filter(|_| matches!(mix.sample(&mut rng), TaskKind::Video25))
            .count();
        // Weight 3 of 6 total.
        let frac = videos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "video fraction {frac}");
    }

    #[test]
    fn realtime_kinds_have_nominal_params() {
        assert!(TaskKind::Video25.nominal().is_some());
        assert!(TaskKind::Mp3.nominal().is_some());
        assert!(TaskKind::Stream30.nominal().is_some());
        let ap = TaskKind::Aperiodic {
            mean_gap: Dur::ms(10),
            mean_work: Dur::ms(1),
            burst: 1,
        };
        assert!(ap.nominal().is_none());
        assert!(!ap.is_realtime());
        let v = TaskKind::Video25.nominal().unwrap();
        assert!((v.period - 40.0).abs() < 1e-9);
        assert!(v.wcet > 0.0 && v.wcet < v.period);
    }

    #[test]
    fn instantiate_relabels_metrics() {
        let kind = TaskKind::Video25;
        assert_eq!(kind.mark_name("n0.t3").unwrap(), "n0.t3.frame");
        // Smoke: the workload is constructible under the new label.
        let _ = kind.instantiate("n0.t3", Rng::new(1));
    }

    #[test]
    #[should_panic(expected = "empty task mix")]
    fn empty_mix_panics() {
        let _ = TaskMix::new(vec![]);
    }

    #[test]
    fn hungry_rt_understates_nominal_demand() {
        let kind = TaskKind::HungryRt {
            nominal_wcet: Dur::ms(2),
            wcet: Dur::ms(6),
            period: Dur::ms(40),
        };
        assert!(kind.is_realtime());
        let nominal = kind.nominal().unwrap();
        // Admission sees the claimed 2 ms, not the real 6 ms.
        assert!((nominal.wcet - 2.0).abs() < 1e-9);
        assert_eq!(kind.mark_name("t1").unwrap(), "t1.job");
        let _ = kind.instantiate("t1", Rng::new(1));
    }

    #[test]
    fn node_filters_target_the_right_nodes() {
        assert!(NodeFilter::All.matches(0) && NodeFilter::All.matches(17));
        assert!(NodeFilter::First(2).matches(1) && !NodeFilter::First(2).matches(2));
        assert!(NodeFilter::Stride(3).matches(0) && NodeFilter::Stride(3).matches(6));
        assert!(!NodeFilter::Stride(3).matches(4));
    }

    #[test]
    fn rebalance_defaults_off() {
        let spec = ScenarioSpec::new("s", 2, 4, Dur::secs(1));
        assert!(!spec.rebalance.enabled);
        let spec = spec.with_rebalance(RebalanceSpec {
            enabled: true,
            period: Dur::ms(500),
            pressure: 0.1,
            max_moves: 2,
            ..RebalanceSpec::default()
        });
        assert!(spec.rebalance.enabled);
        assert_eq!(spec.rebalance.max_moves, 2);
    }

    #[test]
    fn phases_extend_the_flat_task_count() {
        let spec = ScenarioSpec::new("s", 2, 4, Dur::secs(1));
        assert_eq!(spec.flat_tasks(), 4);
        let spec = spec.with_phase(TrafficPhase {
            start: Dur::ms(100),
            end: Dur::ms(600),
            ramp: Dur::ms(200),
            tasks: 3,
            mix: TaskMix::rt_only(),
            nodes: NodeFilter::All,
        });
        assert_eq!(spec.flat_tasks(), 7);
        assert!(!spec.node_share.enabled, "node share defaults off");
    }

    #[test]
    #[should_panic(expected = "phase ramp exceeds the window")]
    fn oversized_phase_ramp_panics() {
        let _ = ScenarioSpec::new("s", 2, 4, Dur::secs(1)).with_phase(TrafficPhase {
            start: Dur::ms(100),
            end: Dur::ms(200),
            ramp: Dur::ms(500),
            tasks: 1,
            mix: TaskMix::rt_only(),
            nodes: NodeFilter::All,
        });
    }

    #[test]
    #[should_panic(expected = "node share bounds")]
    fn inverted_node_share_bounds_panic() {
        let _ = ScenarioSpec::new("s", 2, 4, Dur::secs(1)).with_node_share(NodeShareSpec {
            enabled: true,
            floor: 0.9,
            cap: 0.5,
        });
    }

    #[test]
    #[should_panic(expected = "rebalance period")]
    fn zero_rebalance_period_panics() {
        let _ = ScenarioSpec::new("s", 2, 4, Dur::secs(1)).with_rebalance(RebalanceSpec {
            period: Dur::ZERO,
            ..RebalanceSpec::default()
        });
    }
}
