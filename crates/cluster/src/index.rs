//! Bucketed node-headroom index: O(log n) placement queries over the fleet.
//!
//! The linear-scan [`crate::placer::Placer`] walks every node per decision
//! (`candidate_order` even sorts them), which is fine at 8 nodes and ruinous
//! at 10 000. This index keeps three views of the per-node reserved
//! bandwidth, every one updated in O(log n) per booking:
//!
//! * a [`BTreeSet`] of `(reserved.to_bits(), node)` pairs — the load order
//!   every policy's tie-breaking is defined on;
//! * a min-segment tree over node ids — "leftmost node with reserved ≤ t"
//!   for first-fit in one root-to-leaf descent;
//! * a Fenwick tree over quantised reserved *buckets* — "how many nodes are
//!   strictly fuller than the winner" (the bandwidth-aware `migrations`
//!   counter) as a suffix count plus one short in-bucket walk.
//!
//! # Exactness
//!
//! The index must reproduce the scan *byte for byte*: same winner, same
//! `migrations` count, same rejection witness, at every decision, or the
//! determinism contract (and the journal replay) breaks. Three facts make
//! that possible without re-deriving the scan's arithmetic:
//!
//! 1. For non-negative finite `f64`, `to_bits()` is strictly monotone, so
//!    the BTreeSet order *is* the reserved order with node-id ties —
//!    exactly the order `candidate_order` sorts into. Reserved bandwidth
//!    is never negative (every subtraction is clamped) and never NaN.
//! 2. IEEE-754 addition is weakly monotone, so the scan's admission test
//!    `reserved + demand <= ulub + 1e-9` is equivalent to
//!    `reserved <= t` for the exact threshold
//!    `t = max { x : x + demand <= ulub + 1e-9 }`, which
//!    [`fit_threshold`] computes by a couple of ULP nudges.
//! 3. IEEE-754 subtraction from a fixed minuend is anti-monotone, so the
//!    scan's rejection witness `max_i (ulub - reserved_i)` equals
//!    `ulub - min_i reserved_i` — one BTreeSet lookup.
//!
//! A differential proptest in `placer.rs` (and a fleet-level one in
//! `tests/props.rs`) holds the index to that contract against the scan
//! path, which stays available behind `Placer::use_scan_placement` — the
//! same escape-hatch pattern as the kernel's `use_heap_event_queue` and the
//! scheduler's `use_scan_dispatch`.

use std::collections::BTreeSet;
use std::ops::Bound;

/// Number of quantised reserved-bandwidth buckets behind the Fenwick tree.
/// Reserved values live in `[0, ~1]` (they can exceed 1 only transiently
/// when the rebalancer rebuilds bookings from measurements), so each bucket
/// spans ~0.001 of bandwidth; anything past the range clamps into the last
/// bucket and is resolved by the in-bucket walk.
const BUCKETS: usize = 1024;

/// Quantised bucket of a reserved-bandwidth value.
fn bucket_of(value: f64) -> usize {
    debug_assert!(value.is_finite() && value >= 0.0, "bad reserved {value}");
    ((value * BUCKETS as f64) as usize).min(BUCKETS - 1)
}

/// The largest reserved bandwidth that still admits `demand` under the
/// scan path's test `reserved + demand <= ulub + 1e-9`, or `None` when not
/// even an empty node fits. Computed to the exact ULP so a bit-level
/// `reserved <= t` comparison reproduces the scan's float test.
pub fn fit_threshold(ulub: f64, demand: f64) -> Option<f64> {
    let limit = ulub + 1e-9;
    if demand > limit {
        // Even reserved = 0 fails; the loop below would walk past zero.
        return None;
    }
    let mut t = limit - demand;
    // `t` approximates the boundary; nudge by ULPs until it is exact.
    // Both loops terminate in a step or two: subtraction of ordered values
    // is already within one rounding error of the true boundary.
    while t + demand > limit {
        t = prev_f64(t);
    }
    while next_f64(t) + demand <= limit {
        t = next_f64(t);
    }
    debug_assert!(t >= 0.0, "threshold {t} negative for demand {demand}");
    Some(t)
}

/// The next representable `f64` above a non-negative finite value.
fn next_f64(x: f64) -> f64 {
    debug_assert!(x.is_finite() && x >= 0.0);
    f64::from_bits(x.to_bits() + 1)
}

/// The previous representable `f64` below a positive finite value.
fn prev_f64(x: f64) -> f64 {
    debug_assert!(x.is_finite() && x > 0.0);
    f64::from_bits(x.to_bits() - 1)
}

/// Ordered index over per-node reserved bandwidth.
///
/// Nodes can be *suspended* (taken out of every query view while keeping
/// their reserved value) — the rebalancer suspends banned nodes once per
/// pass instead of re-filtering the whole fleet per eviction.
#[derive(Clone, Debug)]
pub struct HeadroomIndex {
    reserved: Vec<f64>,
    suspended: Vec<bool>,
    /// Active nodes ordered by `(reserved bits, node id)`.
    by_load: BTreeSet<(u64, usize)>,
    /// Min-segment tree over `reserved.to_bits()` by node id; suspended
    /// and padding leaves hold `u64::MAX`.
    seg: Vec<u64>,
    /// Leaf count of the segment tree (power of two).
    base: usize,
    /// Fenwick tree of active-node counts per quantised bucket (1-based).
    fenwick: Vec<u32>,
    /// Number of active (non-suspended) nodes.
    active: usize,
}

impl HeadroomIndex {
    /// Builds the index over the given per-node reserved bandwidth.
    pub fn new(reserved: &[f64]) -> HeadroomIndex {
        assert!(!reserved.is_empty(), "index needs at least one node");
        let base = reserved.len().next_power_of_two();
        let mut idx = HeadroomIndex {
            reserved: vec![0.0; reserved.len()],
            suspended: vec![false; reserved.len()],
            by_load: BTreeSet::new(),
            seg: vec![u64::MAX; 2 * base],
            base,
            fenwick: vec![0; BUCKETS + 1],
            active: 0,
        };
        idx.rebuild(reserved);
        idx
    }

    /// Replaces every node's reserved value and clears suspensions (the
    /// epoch rebuild after `sync_reserved`).
    pub fn rebuild(&mut self, reserved: &[f64]) {
        assert_eq!(reserved.len(), self.reserved.len(), "node count mismatch");
        self.by_load.clear();
        self.fenwick.iter_mut().for_each(|c| *c = 0);
        self.seg.iter_mut().for_each(|v| *v = u64::MAX);
        self.reserved.copy_from_slice(reserved);
        self.suspended.iter_mut().for_each(|s| *s = false);
        self.active = self.reserved.len();
        for (node, &r) in reserved.iter().enumerate() {
            self.by_load.insert((r.to_bits(), node));
            self.fenwick_add(bucket_of(r), 1);
            self.seg[self.base + node] = r.to_bits();
        }
        // Build internal segment-tree levels bottom-up.
        for i in (1..self.base).rev() {
            self.seg[i] = self.seg[2 * i].min(self.seg[2 * i + 1]);
        }
    }

    /// Updates one node's reserved value. On a suspended node only the
    /// stored value changes; the query views pick it up on `restore`.
    pub fn set(&mut self, node: usize, value: f64) {
        debug_assert!(value.is_finite() && value >= 0.0, "bad reserved {value}");
        let old = self.reserved[node];
        self.reserved[node] = value;
        if self.suspended[node] || old.to_bits() == value.to_bits() {
            return;
        }
        self.by_load.remove(&(old.to_bits(), node));
        self.by_load.insert((value.to_bits(), node));
        let (ob, nb) = (bucket_of(old), bucket_of(value));
        if ob != nb {
            self.fenwick_add(ob, -1);
            self.fenwick_add(nb, 1);
        }
        self.seg_set(node, value.to_bits());
    }

    /// Takes a node out of every query view, keeping its reserved value.
    pub fn suspend(&mut self, node: usize) {
        debug_assert!(!self.suspended[node], "double suspend of node {node}");
        self.suspended[node] = true;
        self.active -= 1;
        self.by_load.remove(&(self.reserved[node].to_bits(), node));
        self.fenwick_add(bucket_of(self.reserved[node]), -1);
        self.seg_set(node, u64::MAX);
    }

    /// Puts a suspended node back, at its current reserved value.
    pub fn restore(&mut self, node: usize) {
        debug_assert!(self.suspended[node], "restore of active node {node}");
        self.suspended[node] = false;
        self.active += 1;
        let bits = self.reserved[node].to_bits();
        self.by_load.insert((bits, node));
        self.fenwick_add(bucket_of(self.reserved[node]), 1);
        self.seg_set(node, bits);
    }

    /// The least-loaded active node: `(reserved, node)`, ties to the lower
    /// id. `None` when every node is suspended.
    pub fn min_reserved(&self) -> Option<(f64, usize)> {
        let &(bits, node) = self.by_load.first()?;
        Some((f64::from_bits(bits), node))
    }

    /// The lowest-id active node with `reserved <= threshold` — the
    /// first-fit winner — in one segment-tree descent.
    pub fn first_fit(&self, threshold: f64) -> Option<usize> {
        let limit = threshold.to_bits();
        if self.seg[1] > limit {
            return None;
        }
        let mut i = 1;
        while i < self.base {
            i = if self.seg[2 * i] <= limit {
                2 * i
            } else {
                2 * i + 1
            };
        }
        Some(i - self.base)
    }

    /// The fullest active node that still fits — the bandwidth-aware
    /// winner: max reserved `<= threshold`, ties to the lower id.
    pub fn tightest_fit(&self, threshold: f64) -> Option<(f64, usize)> {
        let limit = threshold.to_bits();
        let &(bits, _) = self.by_load.range(..=(limit, usize::MAX)).next_back()?;
        let &(_, node) = self
            .by_load
            .range((bits, 0)..)
            .next()
            .expect("winner load class is non-empty");
        Some((f64::from_bits(bits), node))
    }

    /// How many active nodes are strictly fuller than `value` — the
    /// candidates a descending-order scan would have tried and bounced off
    /// before the winner. Fenwick suffix over whole buckets, plus a walk of
    /// the value's own bucket.
    pub fn count_heavier(&self, value: f64) -> usize {
        let bits = value.to_bits();
        let b = bucket_of(value);
        let mut in_bucket = 0;
        let after = (Bound::Excluded((bits, usize::MAX)), Bound::Unbounded);
        for &(rb, _) in self.by_load.range(after) {
            if bucket_of(f64::from_bits(rb)) != b {
                break;
            }
            in_bucket += 1;
        }
        in_bucket + self.active - self.fenwick_prefix(b)
    }

    fn seg_set(&mut self, node: usize, bits: u64) {
        let mut i = self.base + node;
        self.seg[i] = bits;
        while i > 1 {
            i /= 2;
            self.seg[i] = self.seg[2 * i].min(self.seg[2 * i + 1]);
        }
    }

    /// Adds `delta` to a bucket's active-node count.
    fn fenwick_add(&mut self, bucket: usize, delta: i32) {
        let mut i = bucket + 1;
        while i <= BUCKETS {
            self.fenwick[i] = (self.fenwick[i] as i32 + delta) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Active nodes in buckets `0..=bucket`.
    fn fenwick_prefix(&self, bucket: usize) -> usize {
        let mut i = bucket + 1;
        let mut sum = 0usize;
        while i > 0 {
            sum += self.fenwick[i] as usize;
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scan-path admission test the threshold must reproduce.
    fn fits(reserved: f64, demand: f64, ulub: f64) -> bool {
        reserved + demand <= ulub + 1e-9
    }

    #[test]
    fn fit_threshold_is_the_exact_boundary() {
        // Sweep awkward demand/ulub pairs; the threshold must classify
        // every reserved value exactly as the scan's float test does.
        let ulubs = [0.5, 0.9, 1.0, 0.3333333333333333];
        let demands = [0.0, 1e-12, 0.1, 0.2 + 0.1, 0.8999999999, 0.9, 1.0];
        for &u in &ulubs {
            for &d in &demands {
                match fit_threshold(u, d) {
                    None => assert!(!fits(0.0, d, u), "u={u} d={d}"),
                    Some(t) => {
                        assert!(fits(t, d, u), "t itself must fit: u={u} d={d}");
                        assert!(!fits(next_f64(t), d, u), "t+ulp must not fit: u={u} d={d}");
                        // Spot-check monotone equivalence around t.
                        for r in [0.0, t / 2.0, prev_f64(t.max(1e-300)), t] {
                            assert_eq!(r <= t, fits(r, d, u), "r={r} u={u} d={d}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn first_fit_finds_leftmost_under_threshold() {
        let idx = HeadroomIndex::new(&[0.8, 0.3, 0.5, 0.3, 0.0]);
        assert_eq!(idx.first_fit(0.4), Some(1));
        assert_eq!(idx.first_fit(0.9), Some(0));
        assert_eq!(idx.first_fit(0.0), Some(4));
        let full = HeadroomIndex::new(&[0.8, 0.9]);
        assert_eq!(full.first_fit(0.5), None);
    }

    #[test]
    fn min_and_tightest_follow_load_order_with_id_ties() {
        let idx = HeadroomIndex::new(&[0.5, 0.2, 0.2, 0.7, 0.5]);
        assert_eq!(idx.min_reserved(), Some((0.2, 1)));
        // Tightest under 0.6: load class 0.5, lowest id 0.
        assert_eq!(idx.tightest_fit(0.6), Some((0.5, 0)));
        // Under 0.3: class 0.2, lowest id 1.
        assert_eq!(idx.tightest_fit(0.3), Some((0.2, 1)));
        assert_eq!(idx.tightest_fit(0.1), None);
    }

    #[test]
    fn count_heavier_matches_a_linear_count() {
        let loads = [0.91, 0.13, 0.5, 0.5001, 0.5, 0.0, 0.86, 0.13];
        let idx = HeadroomIndex::new(&loads);
        for &v in &loads {
            let expect = loads.iter().filter(|&&r| r > v).count();
            assert_eq!(idx.count_heavier(v), expect, "value {v}");
        }
    }

    #[test]
    fn set_suspend_restore_keep_views_consistent() {
        let mut idx = HeadroomIndex::new(&[0.4, 0.1, 0.9]);
        idx.set(1, 0.95);
        assert_eq!(idx.min_reserved(), Some((0.4, 0)));
        idx.suspend(0);
        assert_eq!(idx.min_reserved(), Some((0.9, 2)));
        assert_eq!(idx.first_fit(0.5), None);
        // Updates while suspended are invisible until restore.
        idx.set(0, 0.0);
        assert_eq!(idx.first_fit(0.5), None);
        idx.restore(0);
        assert_eq!(idx.min_reserved(), Some((0.0, 0)));
        assert_eq!(idx.first_fit(0.5), Some(0));
        assert_eq!(idx.count_heavier(0.9), 1);
    }

    #[test]
    fn values_past_the_bucket_range_still_count_exactly() {
        // Rebalance rebuilds can push reserved past 1.0; everything over
        // the grid clamps into the last bucket and the in-bucket walk
        // resolves the strict order.
        let loads = [1.4, 1.2, 0.9999, 1.2, 2.5];
        let idx = HeadroomIndex::new(&loads);
        for &v in &loads {
            let expect = loads.iter().filter(|&&r| r > v).count();
            assert_eq!(idx.count_heavier(v), expect, "value {v}");
        }
        assert_eq!(idx.tightest_fit(1.3), Some((1.2, 1)));
    }
}
