//! The parallel scenario runner: plan → place → execute → reduce.
//!
//! Determinism contract: the fleet plan (task kinds, arrivals, lifetimes,
//! workload seeds) and the placement are computed up front from
//! `(spec, seed)` alone, and every node's simulation depends only on its
//! own slice of the plan and a seed derived from `(seed, node_id)`. Worker
//! threads therefore never race on anything observable: running the same
//! spec and seed on 1 or N threads yields byte-identical aggregates.
//!
//! Scheduling: workers pull node ids in chunks from a shared atomic
//! counter (chunked work-stealing) instead of a static round-robin deal,
//! so a fleet with skewed per-node costs no longer serialises on the
//! slowest thread — a worker that drew cheap nodes just steals the next
//! chunk. Which thread simulates a node affects wall-clock only; reports
//! are reassembled in node-id order.
//!
//! Feedback re-placement: when [`ScenarioSpec::rebalance`] is enabled the
//! run is cut into barrier-synchronised *epochs*. Nodes are claimed once
//! (work-stealing) in the first epoch and stay thread-bound afterwards
//! (their tracer state is `Rc`-shared). At every epoch boundary all
//! workers park on a barrier, each node having published a plain-data
//! [`NodeFeedback`] snapshot; exactly one thread then runs the
//! deterministic rebalance pass over the snapshots (sorted in node-id
//! order) and publishes the migration commands; after a second barrier
//! every worker applies the commands to the nodes it owns — extraction on
//! the source, re-admission on the destination — and simulation resumes.
//! Both the decisions and their application depend only on `(spec, seed)`
//! and virtual time, so aggregates stay byte-identical at any thread
//! count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::thread;

use selftune_analysis::PeriodicTask;
use selftune_simcore::rng::{splitmix64, Rng};
use selftune_simcore::time::{Dur, Time};

use crate::aggregate::{
    AdmissionStats, AggregateMetrics, MigrationRecord, NodeReport, RebalanceStats,
};
use crate::node::{Node, NodeFeedback, NodeTask, NodeVm};
use crate::placer::{FeedbackView, LiveTask, LiveVmUnit, Migration, PlacementOutcome, Placer};
use crate::spec::{ArrivalSchedule, ScenarioSpec};

/// Derives the workload seed of fleet task `task_id` from the base seed.
///
/// Stateless in everything but `(base_seed, task_id)`, so the derivation
/// does not depend on planning order or thread schedule.
pub fn derive_task_seed(base_seed: u64, task_id: u64) -> u64 {
    let mut s = base_seed ^ task_id.wrapping_mul(0xA076_1D64_78BD_642F);
    let a = splitmix64(&mut s);
    splitmix64(&mut s) ^ a.rotate_left(17)
}

/// One planned fleet task with its placement.
#[derive(Clone, Debug)]
pub struct PlannedTask {
    /// The node-local plan (label, kind, arrival, departure, seed).
    pub task: NodeTask,
    /// Node the task was placed on; `None` if admission rejected it.
    pub node: Option<usize>,
    /// Whether it went through reservation admission (vs. best-effort).
    pub realtime: bool,
}

/// One planned virtual platform with its placement.
#[derive(Clone, Debug)]
pub struct PlannedVm {
    /// The node-local plan (share, guest task plans).
    pub vm: NodeVm,
    /// Node the VM was placed on; `None` if admission rejected it.
    pub node: Option<usize>,
}

/// The fleet plan: every task and VM, their placement, and admission
/// statistics.
#[derive(Clone, Debug)]
pub struct FleetPlan {
    /// All planned tasks, in fleet-id order.
    pub tasks: Vec<PlannedTask>,
    /// All planned virtual platforms, in fleet-VM-id order.
    pub vms: Vec<PlannedVm>,
    /// Admission statistics.
    pub admission: AdmissionStats,
}

/// Builds the deterministic fleet plan for `(spec, seed)`.
///
/// Arrival times, task kinds and lifetimes are drawn from a planning RNG
/// seeded by `seed`; placement walks tasks in arrival order through the
/// spec's policy.
pub fn plan_fleet(spec: &ScenarioSpec, seed: u64) -> FleetPlan {
    let mut rng = Rng::new(seed ^ SEED_PLAN_SALT);
    let mut arrivals: Vec<Time> = Vec::with_capacity(spec.tasks);
    let mut at = Time::ZERO;
    for i in 0..spec.tasks {
        let t = match spec.arrivals {
            ArrivalSchedule::AllAtStart => Time::ZERO,
            ArrivalSchedule::Staggered { gap } => Time::ZERO + gap.mul_f64(i as f64),
            ArrivalSchedule::Poisson { mean_gap } => {
                let gap = Dur::from_secs_f64(rng.exp(1.0 / mean_gap.as_secs_f64().max(1e-12)));
                at += gap;
                at
            }
        };
        arrivals.push(t);
    }

    let horizon = Time::ZERO + spec.horizon;
    let mut placer = Placer::new(spec.nodes, spec.ulub, spec.headroom, spec.policy);
    let mut admission = AdmissionStats::default();

    // Virtual platforms are placed first, as whole units booked at their
    // share: tenants hold their bandwidth from t = 0, and flat tasks fill
    // in around them.
    let mut vms = Vec::with_capacity(spec.vms.len());
    let mut guest_fleet_id = spec.tasks;
    for (i, vm_spec) in spec.vms.iter().enumerate() {
        let node = match placer.place_demand(vm_spec.share(), 0, None) {
            PlacementOutcome::Admitted { node, .. } => {
                admission.vms_admitted += 1;
                Some(node)
            }
            PlacementOutcome::Rejected { .. } => {
                admission.vms_rejected += 1;
                None
            }
        };
        let label = format!("v{i:02}");
        let guests = vm_spec
            .guest_kinds()
            .enumerate()
            .map(|(g, kind)| {
                let fleet_id = guest_fleet_id;
                guest_fleet_id += 1;
                NodeTask {
                    fleet_id,
                    label: format!("{label}g{g}"),
                    kind: kind.clone(),
                    arrival: Time::ZERO,
                    departure: None,
                    seed: derive_task_seed(seed ^ SEED_VM_SALT, fleet_id as u64),
                    migrated: false,
                    warm: None,
                }
            })
            .collect();
        vms.push(PlannedVm {
            vm: NodeVm {
                fleet_vm_id: i,
                label,
                budget: vm_spec.budget,
                period: vm_spec.period,
                guests,
                arrival: Time::ZERO,
                migrated: false,
                elastic: vm_spec.elastic,
            },
            node,
        });
    }

    let mut tasks = Vec::with_capacity(spec.tasks);
    for (i, &arrival) in arrivals.iter().enumerate() {
        let kind = spec.mix.sample(&mut rng);
        let departure = spec.churn.map(|c| {
            let life = Dur::from_secs_f64(rng.exp(1.0 / c.mean_lifetime.as_secs_f64().max(1e-12)))
                .max(c.min_lifetime);
            arrival + life
        });
        // Lifetimes beyond the horizon are open-ended for planning.
        let departure = departure.filter(|&d| d < horizon);
        let label = format!("t{i:04}");
        let task_seed = derive_task_seed(seed, i as u64);
        let (node, realtime) = match kind.nominal() {
            Some(nominal) => {
                match placer.place(nominal, arrival.as_ns(), departure.map(|d| d.as_ns())) {
                    PlacementOutcome::Admitted {
                        node, migrations, ..
                    } => {
                        admission.admitted += 1;
                        admission.migrations += u64::from(migrations);
                        (Some(node), true)
                    }
                    PlacementOutcome::Rejected { .. } => {
                        admission.rejected += 1;
                        (None, true)
                    }
                }
            }
            None => {
                admission.best_effort += 1;
                (Some(placer.place_best_effort()), false)
            }
        };
        tasks.push(PlannedTask {
            task: NodeTask {
                fleet_id: i,
                label,
                kind,
                arrival,
                departure,
                seed: task_seed,
                migrated: false,
                warm: None,
            },
            node,
            realtime,
        });
    }
    FleetPlan {
        tasks,
        vms,
        admission,
    }
}

/// Executes fleet scenarios across OS threads.
#[derive(Clone, Debug)]
pub struct ClusterRunner {
    threads: usize,
    chunk: Option<usize>,
}

impl ClusterRunner {
    /// A runner using `threads` worker threads (clamped to ≥ 1).
    pub fn new(threads: usize) -> ClusterRunner {
        ClusterRunner {
            threads: threads.max(1),
            chunk: None,
        }
    }

    /// Overrides the work-stealing chunk size (nodes claimed per steal).
    ///
    /// The default balances steal overhead against skew tolerance. Setting
    /// the chunk to ≥ the per-thread node share reproduces the old static
    /// partition (useful for before/after benchmarking); `0` restores the
    /// default.
    pub fn with_chunk(mut self, chunk: usize) -> ClusterRunner {
        self.chunk = if chunk == 0 { None } else { Some(chunk) };
        self
    }

    /// A runner using all available hardware parallelism.
    pub fn available_parallelism() -> ClusterRunner {
        ClusterRunner::new(
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Plans and runs the scenario, reducing to fleet aggregates.
    ///
    /// Workers claim node ids in chunks from a shared atomic counter and
    /// build each claimed node locally (kernels are thread-bound), so a
    /// thread finishing its cheap nodes steals the remaining expensive
    /// ones. Reports are reassembled in node-id order, so thread count and
    /// chunk size affect wall-clock time only.
    pub fn run(&self, spec: &ScenarioSpec, seed: u64) -> AggregateMetrics {
        let plan = plan_fleet(spec, seed);
        self.run_planned(spec, seed, &plan)
    }

    /// The effective steal-chunk size for an `nodes`-node fleet.
    fn chunk_for(&self, nodes: usize, workers: usize) -> usize {
        match self.chunk {
            Some(c) => c,
            // Quarter-share chunks: coarse enough that steal traffic is
            // negligible, fine enough to absorb ~4x per-node cost skew.
            None => (nodes / (workers * 4)).max(1),
        }
    }

    /// The epoch boundaries of a run: rebalance instants, then the horizon.
    ///
    /// With rebalance disabled (or a period at/after the horizon) there is
    /// a single epoch and the runner behaves exactly as before.
    fn epoch_ends(spec: &ScenarioSpec) -> Vec<Time> {
        let horizon = Time::ZERO + spec.horizon;
        let mut ends = Vec::new();
        if spec.rebalance.enabled && !spec.rebalance.period.is_zero() {
            let mut t = Time::ZERO + spec.rebalance.period;
            while t < horizon {
                ends.push(t);
                t += spec.rebalance.period;
            }
        }
        ends.push(horizon);
        ends
    }

    /// Runs a pre-built plan (lets callers inspect or reuse the plan).
    pub fn run_planned(
        &self,
        spec: &ScenarioSpec,
        seed: u64,
        plan: &FleetPlan,
    ) -> AggregateMetrics {
        let mut per_node: Vec<Vec<NodeTask>> = vec![Vec::new(); spec.nodes];
        for p in &plan.tasks {
            if let Some(node) = p.node {
                per_node[node].push(p.task.clone());
            }
        }
        let mut per_node_vms: Vec<Vec<NodeVm>> = vec![Vec::new(); spec.nodes];
        for p in &plan.vms {
            if let Some(node) = p.node {
                per_node_vms[node].push(p.vm.clone());
            }
        }

        let workers = self.threads.min(spec.nodes).max(1);
        let chunk = self.chunk_for(spec.nodes, workers);
        let horizon = Time::ZERO + spec.horizon;
        let ends = ClusterRunner::epoch_ends(spec);
        let mut reports: Vec<Option<NodeReport>> = Vec::new();
        for _ in 0..spec.nodes {
            reports.push(None);
        }

        let next = AtomicUsize::new(0);
        let barrier = Barrier::new(workers);
        // Feedback snapshots, one slot per node, refilled every epoch.
        let feedback: Mutex<Vec<Option<NodeFeedback>>> = Mutex::new(vec![None; spec.nodes]);
        // Rebalance decisions of the current epoch, cumulative stats and
        // the cross-epoch EWMA pressure state; written by the barrier
        // leader, read by every worker.
        let shared: Mutex<(Vec<Migration>, RebalanceStats, Vec<f64>)> =
            Mutex::new((Vec::new(), RebalanceStats::default(), vec![0.0; spec.nodes]));

        thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let spec_ref = &*spec;
                let plan_ref = &*plan;
                let per_node = &per_node;
                let per_node_vms = &per_node_vms;
                let next = &next;
                let barrier = &barrier;
                let feedback = &feedback;
                let shared = &shared;
                let ends = &ends;
                handles.push(scope.spawn(move || {
                    // Epoch 0: claim node chunks (work-stealing), build
                    // each node locally and run it to the first boundary.
                    // Ownership is fixed afterwards — a node's tracer state
                    // is thread-bound.
                    let mut owned: Vec<Node> = Vec::new();
                    loop {
                        let base = next.fetch_add(chunk, Ordering::Relaxed);
                        if base >= spec_ref.nodes {
                            break;
                        }
                        let end = (base + chunk).min(spec_ref.nodes);
                        for (node_id, tasks) in per_node.iter().enumerate().take(end).skip(base) {
                            let mut node = Node::new(node_id, spec_ref);
                            for vm in &per_node_vms[node_id] {
                                node.add_vm(vm.clone());
                            }
                            for t in tasks {
                                node.add_task(t.clone());
                            }
                            for w in &spec_ref.overload {
                                node.inject_overload(w);
                            }
                            node.run_to_horizon(ends[0]);
                            owned.push(node);
                        }
                    }

                    for (ei, &t_end) in ends.iter().enumerate() {
                        if ei > 0 {
                            for node in &mut owned {
                                node.run_to_horizon(t_end);
                            }
                        }
                        if ei == ends.len() - 1 {
                            break; // horizon reached; no rebalance there
                        }

                        // Publish this worker's snapshots, then let exactly
                        // one thread decide for the whole fleet.
                        {
                            let mut slots = feedback.lock().expect("feedback lock");
                            for node in &mut owned {
                                let id = node.id();
                                slots[id] = Some(node.feedback(t_end));
                            }
                        }
                        if barrier.wait().is_leader() {
                            let slots = feedback.lock().expect("feedback lock");
                            let mut view = FeedbackView {
                                nodes: slots
                                    .iter()
                                    .map(|s| s.clone().expect("missing node feedback"))
                                    .collect(),
                                smoothed: None,
                            };
                            drop(slots);
                            let mut sh = shared.lock().expect("rebalance lock");
                            // Cross-epoch hysteresis: fold this epoch's raw
                            // signal (miss rate + compression rate) into the
                            // EWMA, and let eviction act on the smoothed
                            // value. Pure f64 folds over node-id order — the
                            // thread count cannot leak in.
                            let alpha = spec_ref.rebalance.ewma_alpha;
                            for n in 0..spec_ref.nodes {
                                let raw = view.raw_signal(n);
                                sh.2[n] = alpha * raw + (1.0 - alpha) * sh.2[n];
                            }
                            view.smoothed = Some(sh.2.clone());
                            let outcome = rebalance_epoch(spec_ref, plan_ref, &view, t_end);
                            sh.1.epochs += 1;
                            sh.1.moves += outcome.moves.len() as u64;
                            sh.1.failed += outcome.failed;
                            sh.1.records
                                .extend(outcome.moves.iter().map(|m| MigrationRecord {
                                    epoch: ei as u64,
                                    fleet_id: m.fleet_id,
                                    vm: m.vm,
                                    from: m.from,
                                    to: m.to,
                                    demand: m.demand,
                                    dest_reserved_after: m.dest_reserved_after,
                                }));
                            // A drained node sheds its pressure history with
                            // its load; keeping the old EWMA would drain it
                            // again next epoch on stale evidence. Halved
                            // once per drained *node*, however many units
                            // left it this epoch.
                            let mut drained = vec![false; spec_ref.nodes];
                            for m in &outcome.moves {
                                if !drained[m.from] {
                                    drained[m.from] = true;
                                    sh.2[m.from] *= 0.5;
                                }
                            }
                            sh.0 = outcome.moves;
                        }
                        barrier.wait();

                        // Apply the epoch's migrations to the owned nodes.
                        let sh = shared.lock().expect("rebalance lock");
                        for m in &sh.0 {
                            for node in &mut owned {
                                if m.vm {
                                    if node.id() == m.from {
                                        node.extract_vm(m.fleet_id);
                                    } else if node.id() == m.to {
                                        let base = &plan_ref.vms[m.fleet_id].vm;
                                        // `guest_warm` is already gated at the
                                        // producer: nodes only build grants
                                        // when rebalance runs with warm_start.
                                        node.add_vm(migrated_vm_incarnation(
                                            base,
                                            t_end,
                                            seed,
                                            ei,
                                            &m.guest_warm,
                                        ));
                                    }
                                } else if node.id() == m.from {
                                    node.extract_task(m.fleet_id);
                                } else if node.id() == m.to {
                                    let base = &plan_ref.tasks[m.fleet_id].task;
                                    node.add_task(NodeTask {
                                        fleet_id: base.fleet_id,
                                        label: format!("{}e{ei}", base.label),
                                        kind: base.kind.clone(),
                                        arrival: t_end,
                                        departure: base.departure,
                                        seed: derive_task_seed(
                                            seed ^ SEED_MIGRATION_SALT,
                                            ((base.fleet_id as u64) << 16) | ei as u64,
                                        ),
                                        migrated: true,
                                        warm: if spec_ref.rebalance.warm_start {
                                            m.warm
                                        } else {
                                            None
                                        },
                                    });
                                }
                            }
                        }
                    }

                    owned
                        .iter()
                        .map(|n| (n.id(), n.report(horizon)))
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                for (node_id, report) in h.join().expect("fleet worker panicked") {
                    reports[node_id] = Some(report);
                }
            }
        });

        let nodes: Vec<NodeReport> = reports
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("node {i} produced no report")))
            .collect();
        let (_, stats, _) = shared.into_inner().expect("rebalance lock");
        AggregateMetrics::new(&spec.name, seed, plan.admission, nodes).with_rebalance(stats)
    }
}

/// The re-admitted incarnation of a migrated VM: same share and guest
/// kinds, fresh labels and workload seeds, arriving at the epoch boundary.
/// `guest_warm` carries the source's granted inner reservations (by fleet
/// task id): each matching guest seeds its detected period and a
/// demand-sized budget inside the re-admitted VM instead of cold-starting.
fn migrated_vm_incarnation(
    base: &NodeVm,
    at: Time,
    seed: u64,
    epoch: usize,
    guest_warm: &[(usize, crate::node::WarmStart)],
) -> NodeVm {
    NodeVm {
        fleet_vm_id: base.fleet_vm_id,
        label: format!("{}e{epoch}", base.label),
        budget: base.budget,
        period: base.period,
        guests: base
            .guests
            .iter()
            .map(|g| NodeTask {
                fleet_id: g.fleet_id,
                label: format!("{}e{epoch}", g.label),
                kind: g.kind.clone(),
                arrival: at,
                departure: g.departure,
                seed: derive_task_seed(
                    seed ^ SEED_MIGRATION_SALT,
                    ((g.fleet_id as u64) << 16) | epoch as u64,
                ),
                migrated: true,
                warm: guest_warm
                    .iter()
                    .find(|&&(id, _)| id == g.fleet_id)
                    .map(|&(_, w)| w),
            })
            .collect(),
        arrival: at,
        migrated: true,
        elastic: base.elastic,
    }
}

/// One deterministic rebalance decision pass: rebuilds the fleet's booked
/// bandwidth from the tasks and VMs the nodes report alive, then drains
/// pressured nodes through the placer's admission path.
fn rebalance_epoch(
    spec: &ScenarioSpec,
    plan: &FleetPlan,
    view: &FeedbackView,
    now: Time,
) -> crate::placer::RebalanceOutcome {
    let mut placer = Placer::new(spec.nodes, spec.ulub, spec.headroom, spec.policy);
    let mut live: Vec<LiveTask> = Vec::new();
    let mut live_vms: Vec<LiveVmUnit> = Vec::new();
    let mut reserved = vec![0.0f64; spec.nodes];
    // Planned arrivals that have not started yet still hold their nominal
    // booking on their target node — a destination about to receive them
    // is not as empty as its live set suggests.
    for p in &plan.tasks {
        if p.task.arrival <= now {
            continue;
        }
        if let (Some(node), Some(nominal)) = (p.node, p.task.kind.nominal()) {
            reserved[node] += placer.demand_of(nominal);
        }
    }
    for fb in &view.nodes {
        for rt in &fb.live_rt {
            let nominal: PeriodicTask = plan.tasks[rt.fleet_id]
                .task
                .kind
                .nominal()
                .expect("live_rt lists real-time tasks only");
            let t = LiveTask {
                fleet_id: rt.fleet_id,
                node: fb.node,
                nominal,
                measured_bw: rt.measured_bw,
                movable: rt.movable,
                granted: rt
                    .granted
                    .map(|(budget, period)| crate::node::WarmStart { budget, period }),
            };
            reserved[fb.node] += placer.effective_demand(&t);
            live.push(t);
        }
        for vm in &fb.live_vms {
            // Booked at the *granted* share: an elastically-shrunk VM
            // frees real headroom on its node, a grown one eats it.
            reserved[fb.node] += vm.share;
            live_vms.push(LiveVmUnit {
                fleet_vm_id: vm.fleet_vm_id,
                node: fb.node,
                share: vm.share,
                movable: vm.movable,
                elastic: vm.elastic,
                guest_grants: vm.guest_grants.clone(),
            });
        }
    }
    placer.sync_reserved(&reserved);
    placer.rebalance(view, &live, &live_vms, &spec.rebalance)
}

/// Domain separator between the planning RNG stream and workload streams.
const SEED_PLAN_SALT: u64 = 0x5EED_1234_ABCD_0001;

/// Domain separator for migrated-incarnation workload seeds (a re-admitted
/// task draws a fresh stream so it does not replay its start-of-run phase).
const SEED_MIGRATION_SALT: u64 = 0x5EED_1234_ABCD_0002;

/// Domain separator for VM guest workload seeds.
const SEED_VM_SALT: u64 = 0x5EED_1234_ABCD_0003;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Churn, TaskMix};

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec::new("runner-test", 3, 9, Dur::ms(1500)).with_mix(TaskMix::rt_only())
    }

    #[test]
    fn plan_is_deterministic() {
        let spec = small_spec();
        let a = plan_fleet(&spec, 11);
        let b = plan_fleet(&spec, 11);
        assert_eq!(a.tasks.len(), b.tasks.len());
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.task.seed, y.task.seed);
            assert_eq!(x.task.arrival, y.task.arrival);
            assert_eq!(x.task.kind, y.task.kind);
        }
        let c = plan_fleet(&spec, 12);
        let same = a
            .tasks
            .iter()
            .zip(&c.tasks)
            .filter(|(x, y)| x.task.seed == y.task.seed)
            .count();
        assert_eq!(same, 0, "different seeds must derive different streams");
    }

    #[test]
    fn task_seed_derivation_is_stateless() {
        assert_eq!(derive_task_seed(42, 7), derive_task_seed(42, 7));
        assert_ne!(derive_task_seed(42, 7), derive_task_seed(42, 8));
        assert_ne!(derive_task_seed(42, 7), derive_task_seed(43, 7));
    }

    #[test]
    fn one_and_many_threads_agree() {
        let spec = small_spec();
        let serial = ClusterRunner::new(1).run(&spec, 5);
        let parallel = ClusterRunner::new(3).run(&spec, 5);
        assert_eq!(serial.summary_csv(), parallel.summary_csv());
        assert!(serial.completions() > 0, "fleet did some work");
    }

    #[test]
    fn work_stealing_is_deterministic_at_1_2_and_8_threads() {
        let spec =
            ScenarioSpec::new("steal-test", 6, 18, Dur::ms(1200)).with_mix(TaskMix::rt_only());
        // Chunk 1 maximises steal interleaving; the aggregate must not care.
        let baseline = ClusterRunner::new(1).with_chunk(1).run(&spec, 9);
        for threads in [2usize, 8] {
            let m = ClusterRunner::new(threads).with_chunk(1).run(&spec, 9);
            assert_eq!(baseline.summary_csv(), m.summary_csv(), "{threads} threads");
        }
        // A chunk as large as the fleet (the old static partition) agrees too.
        let coarse = ClusterRunner::new(2).with_chunk(6).run(&spec, 9);
        assert_eq!(baseline.summary_csv(), coarse.summary_csv());
    }

    #[test]
    fn churned_tasks_depart_before_horizon() {
        let spec = small_spec().with_churn(Churn {
            mean_lifetime: Dur::ms(400),
            min_lifetime: Dur::ms(100),
        });
        let plan = plan_fleet(&spec, 3);
        let horizon = Time::ZERO + spec.horizon;
        assert!(plan
            .tasks
            .iter()
            .filter_map(|t| t.task.departure)
            .all(|d| d < horizon));
        assert!(
            plan.tasks.iter().any(|t| t.task.departure.is_some()),
            "some tasks should churn"
        );
    }

    #[test]
    fn more_threads_than_nodes_is_fine() {
        let spec = ScenarioSpec::new("tiny", 2, 4, Dur::ms(800)).with_mix(TaskMix::rt_only());
        let m = ClusterRunner::new(16).run(&spec, 1);
        assert_eq!(m.nodes.len(), 2);
    }
}
