//! The parallel scenario runner: plan → place → execute → reduce.
//!
//! Determinism contract: the fleet plan (task kinds, arrivals, lifetimes,
//! workload seeds) and the placement are computed up front from
//! `(spec, seed)` alone, and every node's simulation depends only on its
//! own slice of the plan and a seed derived from `(seed, node_id)`. Worker
//! threads therefore never race on anything observable: running the same
//! spec and seed on 1 or N threads yields byte-identical aggregates.
//!
//! Scheduling: workers pull node ids in chunks from a shared atomic
//! counter (chunked work-stealing) instead of a static round-robin deal,
//! so a fleet with skewed per-node costs no longer serialises on the
//! slowest thread — a worker that drew cheap nodes just steals the next
//! chunk. Which thread simulates a node affects wall-clock only; reports
//! are reassembled in node-id order.
//!
//! Feedback re-placement: when [`ScenarioSpec::rebalance`] is enabled the
//! run is cut into barrier-synchronised *epochs*. Nodes are claimed once
//! (work-stealing) in the first epoch and stay thread-bound afterwards
//! (their tracer state is `Rc`-shared). At every epoch boundary all
//! workers park on a barrier, each node having published a plain-data
//! [`NodeFeedback`] snapshot; exactly one thread then runs the
//! deterministic rebalance pass over the snapshots (sorted in node-id
//! order) and publishes the migration commands; after a second barrier
//! every worker applies the commands to the nodes it owns — extraction on
//! the source, re-admission on the destination — and simulation resumes.
//! Both the decisions and their application depend only on `(spec, seed)`
//! and virtual time, so aggregates stay byte-identical at any thread
//! count.
//!
//! Decision journalling and replay: [`ClusterRunner::run_logged`] runs a
//! scenario while emitting the merged, canonically ordered
//! [`FleetEvent`] stream (admissions, kills, share grants, compressions,
//! rebalance passes, migrations) that `selftune-journal` serialises.
//! [`plan_fleet_pinned`] and [`ClusterRunner::run_pinned`] close the
//! loop: they re-execute a scenario with the journal's placements and
//! per-epoch migration decisions substituted for the live ones, so a
//! replay reproduces the recorded aggregates byte-identically — and a
//! what-if replay can pin history up to a cut epoch and let a *swapped*
//! policy decide from there.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::thread;

use selftune_analysis::PeriodicTask;
use selftune_core::share::{DemandSignal, ShareController, ShareControllerConfig, ShareDecision};
use selftune_simcore::rng::{splitmix64, Rng};
use selftune_simcore::time::{Dur, Time};

use crate::aggregate::{
    AdmissionStats, AggregateMetrics, MigrationRecord, NodeReport, NodeSketches, RebalanceStats,
};
use crate::events::{sort_events, FleetEvent, JournalSink, NodeSnap};
use crate::node::{Node, NodeFeedback, NodeTask, NodeVm};
use crate::placer::{FeedbackView, LiveTask, LiveVmUnit, Migration, PlacementOutcome, Placer};
use crate::spec::{ArrivalSchedule, ScenarioSpec, TaskKind};

/// Derives the workload seed of fleet task `task_id` from the base seed.
///
/// Stateless in everything but `(base_seed, task_id)`, so the derivation
/// does not depend on planning order or thread schedule.
pub fn derive_task_seed(base_seed: u64, task_id: u64) -> u64 {
    let mut s = base_seed ^ task_id.wrapping_mul(0xA076_1D64_78BD_642F);
    let a = splitmix64(&mut s);
    splitmix64(&mut s) ^ a.rotate_left(17)
}

/// One planned fleet task with its placement.
#[derive(Clone, Debug)]
pub struct PlannedTask {
    /// The node-local plan (label, kind, arrival, departure, seed).
    pub task: NodeTask,
    /// Node the task was placed on; `None` if admission rejected it.
    pub node: Option<usize>,
    /// Whether it went through reservation admission (vs. best-effort).
    pub realtime: bool,
    /// The admission decision with its inputs (journal material). `None`
    /// for best-effort tasks and for pinned plans, where no live decision
    /// was taken.
    pub outcome: Option<PlacementOutcome>,
}

/// One planned virtual platform with its placement.
#[derive(Clone, Debug)]
pub struct PlannedVm {
    /// The node-local plan (share, guest task plans).
    pub vm: NodeVm,
    /// Node the VM was placed on; `None` if admission rejected it.
    pub node: Option<usize>,
    /// The admission decision with its inputs (journal material); `None`
    /// for pinned plans.
    pub outcome: Option<PlacementOutcome>,
}

/// The fleet plan: every task and VM, their placement, and admission
/// statistics.
#[derive(Clone, Debug)]
pub struct FleetPlan {
    /// All planned tasks, in fleet-id order.
    pub tasks: Vec<PlannedTask>,
    /// All planned virtual platforms, in fleet-VM-id order.
    pub vms: Vec<PlannedVm>,
    /// Admission statistics.
    pub admission: AdmissionStats,
}

/// Recorded placement decisions substituted for the live admission path
/// when re-planning a journalled run (see [`plan_fleet_pinned`]).
#[derive(Clone, Debug, Default)]
pub struct PinnedPlan {
    /// The recorded run's admission statistics, adopted wholesale — the
    /// release-retry counter inside cannot be re-derived from placements
    /// alone.
    pub admission: AdmissionStats,
    /// Destination per fleet task id (`None` = rejected). Only consulted
    /// for real-time tasks; best-effort placement is re-derived (it is a
    /// pure function of the plan walk).
    pub task_nodes: Vec<Option<usize>>,
    /// Destination per fleet VM id (`None` = rejected).
    pub vm_nodes: Vec<Option<usize>>,
}

/// One journalled rebalance epoch: the decisions the leader published.
#[derive(Clone, Debug, Default)]
pub struct EpochDecision {
    /// The migrations, in decision order.
    pub moves: Vec<Migration>,
    /// Victims that found no admissible destination.
    pub failed: u64,
}

/// Per-epoch migration decisions for a pinned re-execution: index `i`
/// pins rebalance epoch `i`. A `None` entry (or an epoch past the end of
/// the vector) is decided *live* — that is the what-if cut point.
#[derive(Clone, Debug, Default)]
pub struct PinnedMoves {
    /// The pinned epochs.
    pub epochs: Vec<Option<EpochDecision>>,
}

/// What was drawn for one fleet task before placement. Splitting the
/// draws from the placement walk keeps the planning RNG stream identical
/// between live and pinned planning.
struct TaskDraw {
    arrival: Time,
    kind: TaskKind,
    departure: Option<Time>,
    /// Index of the traffic phase the task belongs to (`None` for the
    /// base population). Phase membership restricts placement to the
    /// phase's node filter.
    phase: Option<usize>,
}

/// Builds the deterministic fleet plan for `(spec, seed)`.
///
/// Arrival times, task kinds and lifetimes are drawn from a planning RNG
/// seeded by `seed`; placement walks tasks in arrival order through the
/// spec's policy.
pub fn plan_fleet(spec: &ScenarioSpec, seed: u64) -> FleetPlan {
    plan_fleet_impl(spec, seed, None, false)
}

/// Builds the fleet plan with every admission decision pinned to a
/// recorded run: the same draws (kinds, arrivals, lifetimes, seeds), the
/// journal's placements instead of the live placer walk. Replaying a
/// journal through this function reproduces the recorded run's node
/// assignment exactly, even under a scenario whose *policy* was swapped
/// for a what-if.
pub fn plan_fleet_pinned(spec: &ScenarioSpec, seed: u64, pinned: &PinnedPlan) -> FleetPlan {
    plan_fleet_impl(spec, seed, Some(pinned), false)
}

fn plan_fleet_impl(
    spec: &ScenarioSpec,
    seed: u64,
    pinned: Option<&PinnedPlan>,
    scan_placement: bool,
) -> FleetPlan {
    let mut rng = Rng::new(seed ^ SEED_PLAN_SALT);
    let mut arrivals: Vec<Time> = Vec::with_capacity(spec.tasks);
    let mut at = Time::ZERO;
    for i in 0..spec.tasks {
        let t = match spec.arrivals {
            ArrivalSchedule::AllAtStart => Time::ZERO,
            ArrivalSchedule::Staggered { gap } => Time::ZERO + gap.mul_f64(i as f64),
            ArrivalSchedule::Poisson { mean_gap } => {
                let gap = Dur::from_secs_f64(rng.exp(1.0 / mean_gap.as_secs_f64().max(1e-12)));
                at += gap;
                at
            }
        };
        arrivals.push(t);
    }

    let horizon = Time::ZERO + spec.horizon;
    // Draw every task's shape before any placement: the stream order
    // (kind, then lifetime, per task) matches the historical interleaved
    // walk because placement itself never consumed planning randomness.
    let mut draws: Vec<TaskDraw> = arrivals
        .iter()
        .map(|&arrival| {
            let kind = spec.mix.sample(&mut rng);
            let departure = spec.churn.map(|c| {
                let life =
                    Dur::from_secs_f64(rng.exp(1.0 / c.mean_lifetime.as_secs_f64().max(1e-12)))
                        .max(c.min_lifetime);
                arrival + life
            });
            // Lifetimes beyond the horizon are open-ended for planning.
            let departure = departure.filter(|&d| d < horizon);
            TaskDraw {
                arrival,
                kind,
                departure,
                phase: None,
            }
        })
        .collect();
    // Traffic-phase tasks extend the flat population (fleet ids
    // `spec.tasks..`), drawn after the base stream so existing plans keep
    // their bytes: arrival `start + ramp · i / tasks`, lease to the phase
    // end.
    for (pi, phase) in spec.phases.iter().enumerate() {
        let start = Time::ZERO + phase.start;
        for j in 0..phase.tasks {
            let arrival = start + phase.ramp.mul_f64(j as f64 / phase.tasks as f64);
            let kind = phase.mix.sample(&mut rng);
            let departure = Some(Time::ZERO + phase.end).filter(|&d| d < horizon);
            draws.push(TaskDraw {
                arrival,
                kind,
                departure,
                phase: Some(pi),
            });
        }
    }

    let mut placer = Placer::new(spec.nodes, spec.ulub, spec.headroom, spec.policy);
    if scan_placement {
        placer.use_scan_placement();
    }
    let mut admission = AdmissionStats::default();

    // Virtual platforms are placed first, as whole units booked at their
    // share: tenants hold their bandwidth from t = 0, and flat tasks fill
    // in around them.
    let mut vms = Vec::with_capacity(spec.vms.len());
    let mut guest_fleet_id = spec.flat_tasks();
    for (i, vm_spec) in spec.vms.iter().enumerate() {
        let (node, outcome) = match pinned {
            Some(p) => (p.vm_nodes.get(i).copied().flatten(), None),
            None => match placer.place_demand(vm_spec.share(), 0, None) {
                o @ PlacementOutcome::Admitted { node, .. } => {
                    admission.vms_admitted += 1;
                    (Some(node), Some(o))
                }
                o @ PlacementOutcome::Rejected { .. } => {
                    admission.vms_rejected += 1;
                    (None, Some(o))
                }
            },
        };
        let label = format!("v{i:02}");
        let guests = vm_spec
            .guest_kinds()
            .enumerate()
            .map(|(g, kind)| {
                let fleet_id = guest_fleet_id;
                guest_fleet_id += 1;
                NodeTask {
                    fleet_id,
                    label: format!("{label}g{g}"),
                    kind: kind.clone(),
                    arrival: Time::ZERO,
                    departure: None,
                    seed: derive_task_seed(seed ^ SEED_VM_SALT, fleet_id as u64),
                    migrated: false,
                    warm: None,
                }
            })
            .collect();
        vms.push(PlannedVm {
            vm: NodeVm {
                fleet_vm_id: i,
                label,
                budget: vm_spec.budget,
                period: vm_spec.period,
                guests,
                arrival: Time::ZERO,
                migrated: false,
                elastic: vm_spec.elastic,
            },
            node,
            outcome,
        });
    }

    // Placement walks the flat population in arrival order (identity for
    // phase-free specs, whose draws are arrival-monotone already), so the
    // placer's release ledger never travels backwards in time when a
    // phase starts before the base stagger finishes.
    let mut order: Vec<usize> = (0..draws.len()).collect();
    if !spec.phases.is_empty() {
        order.sort_by_key(|&i| (draws[i].arrival, i));
    }
    let banned: Vec<Vec<bool>> = spec
        .phases
        .iter()
        .map(|p| (0..spec.nodes).map(|n| !p.nodes.matches(n)).collect())
        .collect();
    let mut slots: Vec<Option<PlannedTask>> = (0..draws.len()).map(|_| None).collect();
    for i in order {
        let draw = &draws[i];
        let label = format!("t{i:04}");
        let task_seed = derive_task_seed(seed, i as u64);
        let (node, realtime, outcome) = match draw.kind.nominal() {
            Some(nominal) => match pinned {
                Some(p) => (p.task_nodes.get(i).copied().flatten(), true, None),
                None => {
                    let outcome = match draw.phase {
                        // Phase traffic targets a node slice: same
                        // admission test, candidates restricted to the
                        // phase's filter.
                        Some(pi) => {
                            let demand = placer.demand_of(nominal);
                            placer.place_demand_excluding(
                                demand,
                                draw.arrival.as_ns(),
                                draw.departure.map(|d| d.as_ns()),
                                &banned[pi],
                            )
                        }
                        None => placer.place(
                            nominal,
                            draw.arrival.as_ns(),
                            draw.departure.map(|d| d.as_ns()),
                        ),
                    };
                    match outcome {
                        o @ PlacementOutcome::Admitted {
                            node, migrations, ..
                        } => {
                            admission.admitted += 1;
                            admission.migrations += u64::from(migrations);
                            (Some(node), true, Some(o))
                        }
                        o @ PlacementOutcome::Rejected { .. } => {
                            admission.rejected += 1;
                            (None, true, Some(o))
                        }
                    }
                }
            },
            None => {
                if pinned.is_none() {
                    admission.best_effort += 1;
                }
                (Some(placer.place_best_effort()), false, None)
            }
        };
        slots[i] = Some(PlannedTask {
            task: NodeTask {
                fleet_id: i,
                label,
                kind: draw.kind.clone(),
                arrival: draw.arrival,
                departure: draw.departure,
                seed: task_seed,
                migrated: false,
                warm: None,
            },
            node,
            realtime,
            outcome,
        });
    }
    let tasks: Vec<PlannedTask> = slots
        .into_iter()
        .map(|t| t.expect("every draw planned"))
        .collect();
    if let Some(p) = pinned {
        admission = p.admission;
    }
    FleetPlan {
        tasks,
        vms,
        admission,
    }
}

/// Executes fleet scenarios across OS threads.
#[derive(Clone, Debug)]
pub struct ClusterRunner {
    threads: usize,
    chunk: Option<usize>,
    scan_placement: bool,
    sketch: bool,
    recycle: bool,
}

impl ClusterRunner {
    /// A runner using `threads` worker threads (clamped to ≥ 1).
    pub fn new(threads: usize) -> ClusterRunner {
        ClusterRunner {
            threads: threads.max(1),
            chunk: None,
            scan_placement: false,
            sketch: false,
            recycle: true,
        }
    }

    /// Routes every placement and rebalance decision through the original
    /// linear-scan placer instead of the bucketed headroom index — the
    /// escape hatch and the reference side of the fleet-level differential
    /// proptest. Decisions are byte-identical either way; only the cost
    /// per decision changes.
    pub fn with_scan_placement(mut self, scan: bool) -> ClusterRunner {
        self.scan_placement = scan;
        self
    }

    /// Replaces per-task report vectors with per-node mergeable histogram
    /// sketches: nodes keep O(bins) state instead of every inter-finish
    /// gap, and fleet CDFs come from an associative node-order merge.
    /// Quantiles are bin-quantised; aggregates remain byte-identical at
    /// any thread count. Default off — small fleets keep exact vectors
    /// and their CSV bytes.
    pub fn with_sketch_aggregates(mut self, sketch: bool) -> ClusterRunner {
        self.sketch = sketch;
        self
    }

    /// Toggles task-arena slot recycling on every node (default on).
    ///
    /// With recycling off, each node's arena grows monotonically with
    /// admissions — the pre-free-list behaviour — which is the "before"
    /// side of the churn memory benchmark. Report bytes are identical
    /// either way; only arena footprint and slot-reuse differ.
    pub fn with_recycling(mut self, recycle: bool) -> ClusterRunner {
        self.recycle = recycle;
        self
    }

    /// Overrides the work-stealing chunk size (nodes claimed per steal).
    ///
    /// The default balances steal overhead against skew tolerance. Setting
    /// the chunk to ≥ the per-thread node share reproduces the old static
    /// partition (useful for before/after benchmarking); `0` restores the
    /// default.
    pub fn with_chunk(mut self, chunk: usize) -> ClusterRunner {
        self.chunk = if chunk == 0 { None } else { Some(chunk) };
        self
    }

    /// A runner using all available hardware parallelism.
    pub fn available_parallelism() -> ClusterRunner {
        ClusterRunner::new(
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Plans and runs the scenario, reducing to fleet aggregates.
    ///
    /// Workers claim node ids in chunks from a shared atomic counter and
    /// build each claimed node locally (kernels are thread-bound), so a
    /// thread finishing its cheap nodes steals the remaining expensive
    /// ones. Reports are reassembled in node-id order, so thread count and
    /// chunk size affect wall-clock time only.
    pub fn run(&self, spec: &ScenarioSpec, seed: u64) -> AggregateMetrics {
        let plan = plan_fleet_impl(spec, seed, None, self.scan_placement);
        self.run_planned(spec, seed, &plan)
    }

    /// [`ClusterRunner::run`] plus the canonically ordered decision-event
    /// stream: everything a journal needs to make the run explainable and
    /// replayable. The stream is byte-for-byte independent of the thread
    /// count, exactly like the aggregates.
    ///
    /// Convenience wrapper over [`ClusterRunner::run_logged_with`] that
    /// buffers the whole stream; a streaming consumer (a log shipper)
    /// should pass its own sink instead and keep memory flat.
    pub fn run_logged(
        &self,
        spec: &ScenarioSpec,
        seed: u64,
    ) -> (AggregateMetrics, Vec<FleetEvent>) {
        let mut sink = CollectSink::default();
        let metrics = self.run_logged_with(spec, seed, &mut sink);
        let mut events = sink.events;
        sort_events(&mut events);
        (metrics, events)
    }

    /// Runs the scenario while streaming the decision-event batches into
    /// `sink` (see [`JournalSink`]) instead of buffering them: the plan
    /// batch up front, one batch per epoch boundary as the barrier leader
    /// takes the decisions, interim aggregates at the sink's checkpoint
    /// cadence, and the final aggregates at the horizon. Nothing is
    /// retained runner-side beyond the batch in flight.
    pub fn run_logged_with(
        &self,
        spec: &ScenarioSpec,
        seed: u64,
        sink: &mut dyn JournalSink,
    ) -> AggregateMetrics {
        let plan = plan_fleet_impl(spec, seed, None, self.scan_placement);
        self.run_inner(spec, seed, &plan, None, Some(sink), None)
    }

    /// Re-executes a (usually pinned) plan with per-epoch rebalance
    /// decisions substituted from a journal: epochs pinned in `moves`
    /// apply the recorded migrations verbatim (the leader still folds the
    /// pressure EWMA, so post-cut live decisions see the correct
    /// hysteresis state); epochs past the pin are decided live.
    pub fn run_pinned(
        &self,
        spec: &ScenarioSpec,
        seed: u64,
        plan: &FleetPlan,
        moves: &PinnedMoves,
    ) -> AggregateMetrics {
        self.run_inner(spec, seed, plan, Some(moves), None, None)
    }

    /// [`ClusterRunner::run_pinned`] cut short at epoch boundary `cursor`:
    /// applies the pinned decisions of epochs `< cursor`, stops the
    /// simulation exactly at the boundary instant (no post-horizon
    /// straggler flush, no decision *at* the boundary) and reduces
    /// aggregates there. This is the mirror a log-shipping follower keeps:
    /// its output is byte-identical to the interim aggregates the logged
    /// run emitted at the same checkpoint
    /// ([`JournalSink::on_checkpoint`]).
    ///
    /// # Panics
    ///
    /// Panics when `cursor` is not an epoch boundary index of `spec`
    /// (`cursor < ClusterRunner::epoch_ends(spec).len()`).
    pub fn run_pinned_prefix(
        &self,
        spec: &ScenarioSpec,
        seed: u64,
        plan: &FleetPlan,
        moves: &PinnedMoves,
        cursor: usize,
    ) -> AggregateMetrics {
        self.run_inner(spec, seed, plan, Some(moves), None, Some(cursor))
    }

    /// The effective steal-chunk size for an `nodes`-node fleet.
    fn chunk_for(&self, nodes: usize, workers: usize) -> usize {
        match self.chunk {
            Some(c) => c,
            // Quarter-share chunks: coarse enough that steal traffic is
            // negligible, fine enough to absorb ~4x per-node cost skew.
            None => (nodes / (workers * 4)).max(1),
        }
    }

    /// The epoch boundaries of a run: rebalance instants, then the horizon.
    ///
    /// With rebalance disabled (or a period at/after the horizon) there is
    /// a single epoch and the runner behaves exactly as before. Public so
    /// journal replay can size its per-epoch pin table without re-deriving
    /// the grid.
    pub fn epoch_ends(spec: &ScenarioSpec) -> Vec<Time> {
        let horizon = Time::ZERO + spec.horizon;
        let mut ends = Vec::new();
        // Node-level share re-bounding rides the same epoch grid, so it
        // alone is enough to cut the run into epochs.
        if (spec.rebalance.enabled || spec.node_share.enabled) && !spec.rebalance.period.is_zero() {
            let mut t = Time::ZERO + spec.rebalance.period;
            while t < horizon {
                ends.push(t);
                t += spec.rebalance.period;
            }
        }
        ends.push(horizon);
        ends
    }

    /// Runs a pre-built plan (lets callers inspect or reuse the plan).
    pub fn run_planned(
        &self,
        spec: &ScenarioSpec,
        seed: u64,
        plan: &FleetPlan,
    ) -> AggregateMetrics {
        self.run_inner(spec, seed, plan, None, None, None)
    }

    fn run_inner(
        &self,
        spec: &ScenarioSpec,
        seed: u64,
        plan: &FleetPlan,
        pinned: Option<&PinnedMoves>,
        sink: Option<&mut dyn JournalSink>,
        prefix: Option<usize>,
    ) -> AggregateMetrics {
        // Per-node distribution as index lists into the plan arena: tasks
        // are cloned exactly once, straight from the plan into the owning
        // node, instead of materialising intermediate per-node task
        // vectors (which doubled every allocation at 1M tasks). Arrivals
        // are monotone in fleet id for every schedule, so each list is
        // arrival-sorted by construction — that is what lets the epoch
        // loop admit arrivals in batches behind a plain cursor.
        let mut per_node: Vec<Vec<u32>> = vec![Vec::new(); spec.nodes];
        for (i, p) in plan.tasks.iter().enumerate() {
            if let Some(node) = p.node {
                per_node[node].push(i as u32);
            }
        }
        // Phase tasks break the id-order/arrival-order equivalence (a
        // flash crowd lands mid-stagger); re-sort so the cursor batching
        // below stays correct.
        if !spec.phases.is_empty() {
            for ids in &mut per_node {
                ids.sort_by_key(|&i| (plan.tasks[i as usize].task.arrival, i));
            }
        }
        let mut per_node_vms: Vec<Vec<NodeVm>> = vec![Vec::new(); spec.nodes];
        for p in &plan.vms {
            if let Some(node) = p.node {
                per_node_vms[node].push(p.vm.clone());
            }
        }

        let workers = self.threads.min(spec.nodes).max(1);
        let chunk = self.chunk_for(spec.nodes, workers);
        let scan_placement = self.scan_placement;
        let sketch = self.sketch;
        let recycle = self.recycle;
        let log = sink.is_some();
        let interval = sink.as_ref().and_then(|s| s.checkpoint_interval());
        // A prefix run truncates the epoch grid at the cursor boundary and
        // skips the final straggler flush: the simulation stops exactly at
        // the boundary instant, mirroring the state a logged run's interim
        // checkpoint reported there.
        let full_ends = ClusterRunner::epoch_ends(spec);
        let (ends, flush) = match prefix {
            Some(cursor) => {
                assert!(
                    cursor < full_ends.len(),
                    "prefix cursor {cursor} out of range (scenario has {} epoch boundaries)",
                    full_ends.len()
                );
                (full_ends[..=cursor].to_vec(), false)
            }
            None => (full_ends, true),
        };
        let horizon = *ends.last().expect("at least one epoch boundary");
        // Interim checkpoints: skip boundary 0 (nothing decided yet) and
        // the horizon (`on_finish` carries the final aggregates).
        let ckpt_at: Vec<bool> = (0..ends.len())
            .map(|ei| matches!(interval, Some(n) if ei > 0 && ei + 1 < ends.len() && ei % n == 0))
            .collect();
        let mut reports: Vec<Option<NodeReport>> = Vec::new();
        for _ in 0..spec.nodes {
            reports.push(None);
        }

        // Admissions and churn kills are plan-time decisions; shipping the
        // whole batch before simulation starts gives a streaming consumer
        // a complete placement pin table at any later cut point.
        let sink: Option<Mutex<&mut dyn JournalSink>> = sink.map(Mutex::new);
        if let Some(s) = &sink {
            let mut events = plan_events(spec, plan);
            sort_events(&mut events);
            s.lock()
                .expect("journal sink lock")
                .on_plan(&plan.admission, &events);
        }

        let next = AtomicUsize::new(0);
        let barrier = Barrier::new(workers);
        // Feedback snapshots, one slot per node, refilled every epoch.
        let feedback: Mutex<Vec<Option<NodeFeedback>>> = Mutex::new(vec![None; spec.nodes]);
        // Rebalance decisions of the current epoch, cumulative stats and
        // the cross-epoch EWMA pressure state; written by the barrier
        // leader, read by every worker.
        let shared: Mutex<(Vec<Migration>, RebalanceStats, Vec<f64>)> =
            Mutex::new((Vec::new(), RebalanceStats::default(), vec![0.0; spec.nodes]));
        // Node-level share state: one controller per node, the bound each
        // node currently runs under, and the re-bounds of the current
        // epoch (leader-written, applied by every worker to the nodes it
        // owns). Empty controllers when the plane is off.
        type NodeShareState = (Vec<ShareController>, Vec<f64>, Vec<(usize, f64)>);
        let node_share: Mutex<NodeShareState> = Mutex::new((
            if spec.node_share.enabled {
                (0..spec.nodes)
                    .map(|_| ShareController::new(node_share_config(spec)))
                    .collect()
            } else {
                Vec::new()
            },
            vec![spec.ulub; spec.nodes],
            Vec::new(),
        ));
        // Share-grant events drained by every worker at the barrier; the
        // leader merges them with its own decisions into the epoch batch.
        let batch_grants: Mutex<Vec<FleetEvent>> = Mutex::new(Vec::new());
        // Interim per-node reports, published at checkpoint barriers only.
        let ckpt_reports: Mutex<Vec<Option<NodeReport>>> = Mutex::new(vec![None; spec.nodes]);
        // Sketch-mode partial reduction, one reusable buffer per worker:
        // each worker pre-merges the sketches of the nodes it owns before
        // the leader's final combine, so the epoch-barrier reduction is a
        // balanced tree (worker partials over fixed node ranges, then one
        // top-level merge) instead of a serial node-id-order fold. Sketch
        // counts merge exactly under any grouping; the one order-sensitive
        // piece — the float sums — is re-serialised against node-id order
        // inside `AggregateMetrics::new_premerged`, so output bytes are
        // identical at any thread count. The flag marks a buffer that saw
        // at least one report this round; `clear()` keeps the bin
        // allocations, making this one allocation per worker per run.
        let ckpt_partials: Mutex<Vec<(bool, NodeSketches)>> =
            Mutex::new((0..workers).map(|_| (false, NodeSketches::new())).collect());

        thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let spec_ref = &*spec;
                let plan_ref = &*plan;
                let per_node = &per_node;
                let per_node_vms = &per_node_vms;
                let next = &next;
                let barrier = &barrier;
                let feedback = &feedback;
                let shared = &shared;
                let node_share = &node_share;
                let batch_grants = &batch_grants;
                let ckpt_reports = &ckpt_reports;
                let ckpt_partials = &ckpt_partials;
                let ckpt_at = &ckpt_at;
                let sink = sink.as_ref();
                let ends = &ends;
                handles.push(scope.spawn(move || {
                    // Epoch 0: claim node chunks (work-stealing), build
                    // each node locally and run it to the first boundary.
                    // Ownership is fixed afterwards — a node's tracer state
                    // is thread-bound.
                    let mut owned: Vec<Node> = Vec::new();
                    // Arrival cursor per owned node: how many of its
                    // planned tasks have been admitted into the kernel.
                    // With a single epoch everything is admitted up front
                    // (the historical behaviour); with rebalance epochs,
                    // arrivals are batched into the epoch they start in,
                    // so a node is not paying manager-step costs for tasks
                    // that arrive seconds later.
                    let mut cursors: Vec<usize> = Vec::new();
                    loop {
                        let base = next.fetch_add(chunk, Ordering::Relaxed);
                        if base >= spec_ref.nodes {
                            break;
                        }
                        let end = (base + chunk).min(spec_ref.nodes);
                        for (node_id, ids) in per_node.iter().enumerate().take(end).skip(base) {
                            let mut node = Node::new(node_id, spec_ref);
                            node.set_recycle(recycle);
                            for vm in &per_node_vms[node_id] {
                                node.add_vm(vm.clone());
                            }
                            let mut cursor = 0;
                            while cursor < ids.len() {
                                let t = &plan_ref.tasks[ids[cursor] as usize].task;
                                // A single-epoch *prefix* run must still
                                // gate arrivals at the boundary; only a
                                // full single-epoch run admits everything
                                // up front (the historical behaviour).
                                if (ends.len() > 1 || !flush) && t.arrival > ends[0] {
                                    break;
                                }
                                node.add_task(t.clone());
                                cursor += 1;
                            }
                            for w in &spec_ref.overload {
                                node.inject_overload(w);
                            }
                            node.run_to_horizon(ends[0]);
                            owned.push(node);
                            cursors.push(cursor);
                        }
                    }

                    for (ei, &t_end) in ends.iter().enumerate() {
                        if ei > 0 {
                            let last = ei == ends.len() - 1;
                            for (node, cursor) in owned.iter_mut().zip(cursors.iter_mut()) {
                                // Admit this epoch's planned arrivals in one
                                // batch (the final epoch also flushes any
                                // post-horizon stragglers so every planned
                                // task still appears in its node's report —
                                // unless this is a prefix run, which stops
                                // dead at the cursor boundary).
                                let ids = &per_node[node.id()];
                                while *cursor < ids.len() {
                                    let t = &plan_ref.tasks[ids[*cursor] as usize].task;
                                    if !(last && flush) && t.arrival > t_end {
                                        break;
                                    }
                                    node.add_task(t.clone());
                                    *cursor += 1;
                                }
                                node.run_to_horizon(t_end);
                            }
                        }
                        // Share-grant events drain at every boundary,
                        // *before* migrations release VMs; the leader (or,
                        // at the horizon, the reducing thread) owns the
                        // batch ordering.
                        if log {
                            let mut drained: Vec<FleetEvent> = Vec::new();
                            for node in &mut owned {
                                drained.append(&mut node.drain_share_events());
                            }
                            if !drained.is_empty() {
                                batch_grants
                                    .lock()
                                    .expect("grant batch lock")
                                    .append(&mut drained);
                            }
                        }
                        // Checkpoint barriers additionally publish an
                        // interim per-node report (a `&self` reduction —
                        // the simulation state is untouched).
                        if ckpt_at[ei] {
                            let mut slots = ckpt_reports.lock().expect("checkpoint report lock");
                            if sketch {
                                // Pre-merge this worker's node range into
                                // its reusable partial buffer — the
                                // leader's combine below then touches one
                                // buffer per worker, not one per node.
                                let mut partials =
                                    ckpt_partials.lock().expect("checkpoint partial lock");
                                let (saw, buf) = &mut partials[w];
                                buf.clear();
                                *saw = false;
                                for node in &owned {
                                    let rep = node.report_mode(t_end, false);
                                    if let Some(k) = &rep.sketches {
                                        buf.merge(k);
                                        *saw = true;
                                    }
                                    slots[node.id()] = Some(rep);
                                }
                            } else {
                                for node in &owned {
                                    slots[node.id()] = Some(node.report_mode(t_end, true));
                                }
                            }
                        }
                        if ei == ends.len() - 1 {
                            break; // horizon reached; no rebalance there
                        }

                        // Publish this worker's snapshots, then let exactly
                        // one thread decide for the whole fleet.
                        {
                            let mut slots = feedback.lock().expect("feedback lock");
                            for node in &mut owned {
                                let id = node.id();
                                slots[id] = Some(node.feedback(t_end));
                            }
                        }
                        if barrier.wait().is_leader() {
                            let slots = feedback.lock().expect("feedback lock");
                            let mut view = FeedbackView {
                                nodes: slots
                                    .iter()
                                    .map(|s| s.clone().expect("missing node feedback"))
                                    .collect(),
                                smoothed: None,
                            };
                            drop(slots);
                            let mut sh = shared.lock().expect("rebalance lock");
                            // Interim checkpoint: reduce the published
                            // per-node reports against the *pre-update*
                            // rebalance stats — exactly the state a pinned
                            // prefix re-execution reproduces at this
                            // boundary (it breaks before the boundary's
                            // decision, with `cursor` leader passes done).
                            if ckpt_at[ei] {
                                let nodes: Vec<NodeReport> = ckpt_reports
                                    .lock()
                                    .expect("checkpoint report lock")
                                    .iter_mut()
                                    .enumerate()
                                    .map(|(n, r)| {
                                        r.take().unwrap_or_else(|| {
                                            panic!("node {n} missing checkpoint report")
                                        })
                                    })
                                    .collect();
                                // Top of the reduction tree: combine the
                                // worker partials (worker-index order —
                                // deterministic, and exact because sums
                                // are re-serialised inside).
                                let premerged = if sketch {
                                    let partials =
                                        ckpt_partials.lock().expect("checkpoint partial lock");
                                    let mut combined = NodeSketches::new();
                                    let mut any = false;
                                    for (saw, buf) in partials.iter() {
                                        if *saw {
                                            combined.merge(buf);
                                            any = true;
                                        }
                                    }
                                    any.then_some(combined)
                                } else {
                                    None
                                };
                                let interim = AggregateMetrics::new_premerged(
                                    &spec_ref.name,
                                    seed,
                                    plan_ref.admission,
                                    nodes,
                                    premerged,
                                )
                                .with_rebalance(sh.1.clone());
                                if let Some(s) = sink {
                                    s.lock()
                                        .expect("journal sink lock")
                                        .on_checkpoint(ei, t_end, &interim);
                                }
                            }
                            // Cross-epoch hysteresis: fold this epoch's raw
                            // signal (miss rate + compression rate) into the
                            // EWMA, and let eviction act on the smoothed
                            // value. Pure f64 folds over node-id order — the
                            // thread count cannot leak in.
                            let alpha = spec_ref.rebalance.ewma_alpha;
                            for n in 0..spec_ref.nodes {
                                let raw = view.raw_signal(n);
                                sh.2[n] = alpha * raw + (1.0 - alpha) * sh.2[n];
                            }
                            view.smoothed = Some(sh.2.clone());
                            // Node-level share re-bounding runs before the
                            // rebalance decision of the same epoch: a node
                            // that can absorb its own pressure in place
                            // stops looking like a migration source, and a
                            // node that shed headroom stops looking like a
                            // destination. Pure per-node folds over
                            // node-id-ordered feedback — deterministic, and
                            // recomputed identically under pinned replay
                            // (the pinned simulation reproduces the same
                            // feedback, hence the same bounds).
                            let mut rebound_events: Vec<FleetEvent> = Vec::new();
                            let bounds: Option<Vec<f64>> = if spec_ref.node_share.enabled {
                                let mut ns = node_share.lock().expect("node share lock");
                                let (ctls, bounds, apply) = &mut *ns;
                                apply.clear();
                                for fb in &view.nodes {
                                    let n = fb.node;
                                    let (decision, trace) = ctls[n].step_traced(&DemandSignal {
                                        consumed_bw: fb.utilisation,
                                        booked_bw: fb.reserved_bw,
                                        granted_bw: bounds[n],
                                        // Misses count as saturation
                                        // evidence alongside supervisor
                                        // compressions: both mean the
                                        // bound, not the demand, is the
                                        // binding constraint.
                                        compressions: fb.compressions + fb.misses,
                                    });
                                    if let ShareDecision::Request(target) = decision {
                                        if log {
                                            rebound_events.push(FleetEvent::NodeRebound {
                                                at: t_end,
                                                epoch: ei,
                                                node: n,
                                                prev: bounds[n],
                                                bound: target,
                                                demand: trace.demand,
                                                reserved: fb.reserved_bw,
                                                miss_rate: fb.miss_rate(),
                                                compressions: fb.compressions,
                                            });
                                        }
                                        bounds[n] = target;
                                        apply.push((n, target));
                                    }
                                }
                                Some(bounds.clone())
                            } else {
                                None
                            };
                            // A pinned epoch applies the journal's decisions
                            // verbatim; an unpinned one decides live. The
                            // EWMA fold above runs either way, so decisions
                            // past a what-if cut see the same smoothed
                            // pressure history the recorded run saw.
                            let decision = if !spec_ref.rebalance.enabled {
                                EpochDecision::default()
                            } else {
                                match pinned
                                    .and_then(|p| p.epochs.get(ei))
                                    .and_then(Option::as_ref)
                                {
                                    Some(d) => d.clone(),
                                    None => {
                                        let o = rebalance_epoch(
                                            spec_ref,
                                            plan_ref,
                                            &view,
                                            t_end,
                                            scan_placement,
                                            bounds.as_deref(),
                                        );
                                        EpochDecision {
                                            moves: o.moves,
                                            failed: o.failed,
                                        }
                                    }
                                }
                            };
                            if spec_ref.rebalance.enabled {
                                sh.1.epochs += 1;
                            }
                            sh.1.moves += decision.moves.len() as u64;
                            sh.1.failed += decision.failed;
                            sh.1.records
                                .extend(decision.moves.iter().map(|m| MigrationRecord {
                                    epoch: ei as u64,
                                    fleet_id: m.fleet_id,
                                    vm: m.vm,
                                    from: m.from,
                                    to: m.to,
                                    demand: m.demand,
                                    dest_reserved_after: m.dest_reserved_after,
                                }));
                            if let Some(s) = sink {
                                // The epoch batch: every worker's drained
                                // share grants plus this boundary's
                                // decisions, canonically sorted and emitted
                                // before simulation resumes.
                                let mut batch: Vec<FleetEvent> = std::mem::take(
                                    &mut *batch_grants.lock().expect("grant batch lock"),
                                );
                                for fb in &view.nodes {
                                    if fb.compressions > 0 {
                                        batch.push(FleetEvent::Compression {
                                            at: t_end,
                                            epoch: ei,
                                            node: fb.node,
                                            count: fb.compressions,
                                        });
                                    }
                                }
                                batch.append(&mut rebound_events);
                                // No phantom pass records in a node-share-
                                // only journal: the rebalance event exists
                                // only when the rebalancer ran.
                                if spec_ref.rebalance.enabled {
                                    batch.push(FleetEvent::Rebalance {
                                        at: t_end,
                                        epoch: ei,
                                        snapshot: (0..spec_ref.nodes)
                                            .map(|n| NodeSnap {
                                                node: n,
                                                pressure: view.pressure(n),
                                                utilisation: view.utilisation(n),
                                            })
                                            .collect(),
                                        moves: decision.moves.len() as u64,
                                        failed: decision.failed,
                                    });
                                }
                                batch.extend(decision.moves.iter().enumerate().map(|(s, m)| {
                                    FleetEvent::Migration {
                                        at: t_end,
                                        epoch: ei,
                                        seq: s as u32,
                                        fleet_id: m.fleet_id,
                                        vm: m.vm,
                                        from: m.from,
                                        to: m.to,
                                        demand: m.demand,
                                        dest_reserved_after: m.dest_reserved_after,
                                        warm: m.warm,
                                        guest_warm: m.guest_warm.clone(),
                                    }
                                }));
                                sort_events(&mut batch);
                                s.lock()
                                    .expect("journal sink lock")
                                    .on_epoch(ei, t_end, &batch);
                            }
                            // A drained node sheds its pressure history with
                            // its load; keeping the old EWMA would drain it
                            // again next epoch on stale evidence. Halved
                            // once per drained *node*, however many units
                            // left it this epoch.
                            let mut drained = vec![false; spec_ref.nodes];
                            for m in &decision.moves {
                                if !drained[m.from] {
                                    drained[m.from] = true;
                                    sh.2[m.from] *= 0.5;
                                }
                            }
                            sh.0 = decision.moves;
                        }
                        barrier.wait();

                        // Apply the epoch's node re-bounds to the owned
                        // nodes first: a migration landing this epoch is
                        // admitted under the destination's *new* bound.
                        if spec_ref.node_share.enabled {
                            let ns = node_share.lock().expect("node share lock");
                            for &(n, bound) in &ns.2 {
                                for node in &mut owned {
                                    if node.id() == n {
                                        node.set_ulub(bound);
                                    }
                                }
                            }
                        }

                        // Apply the epoch's migrations to the owned nodes.
                        let sh = shared.lock().expect("rebalance lock");
                        for m in &sh.0 {
                            for node in &mut owned {
                                if m.vm {
                                    if node.id() == m.from {
                                        node.extract_vm(m.fleet_id);
                                    } else if node.id() == m.to {
                                        let base = &plan_ref.vms[m.fleet_id].vm;
                                        // `guest_warm` is already gated at the
                                        // producer: nodes only build grants
                                        // when rebalance runs with warm_start.
                                        node.add_vm(migrated_vm_incarnation(
                                            base,
                                            t_end,
                                            seed,
                                            ei,
                                            &m.guest_warm,
                                        ));
                                    }
                                } else if node.id() == m.from {
                                    node.extract_task(m.fleet_id);
                                } else if node.id() == m.to {
                                    let base = &plan_ref.tasks[m.fleet_id].task;
                                    node.add_task(NodeTask {
                                        fleet_id: base.fleet_id,
                                        label: format!("{}e{ei}", base.label),
                                        kind: base.kind.clone(),
                                        arrival: t_end,
                                        departure: base.departure,
                                        seed: derive_task_seed(
                                            seed ^ SEED_MIGRATION_SALT,
                                            ((base.fleet_id as u64) << 16) | ei as u64,
                                        ),
                                        migrated: true,
                                        warm: if spec_ref.rebalance.warm_start {
                                            m.warm
                                        } else {
                                            None
                                        },
                                    });
                                }
                            }
                        }
                    }

                    let finals = owned
                        .iter()
                        .map(|n| (n.id(), n.report_mode(horizon, !sketch)))
                        .collect::<Vec<_>>();
                    // Final-reduce partial, reusing the same buffer the
                    // checkpoint path cleared and refilled all run.
                    if sketch {
                        let mut partials = ckpt_partials.lock().expect("checkpoint partial lock");
                        let (saw, buf) = &mut partials[w];
                        buf.clear();
                        *saw = false;
                        for (_, rep) in &finals {
                            if let Some(k) = &rep.sketches {
                                buf.merge(k);
                                *saw = true;
                            }
                        }
                    }
                    finals
                }));
            }
            for h in handles {
                for (node_id, report) in h.join().expect("fleet worker panicked") {
                    reports[node_id] = Some(report);
                }
            }
        });

        let nodes: Vec<NodeReport> = reports
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("node {i} produced no report")))
            .collect();
        let (_, stats, _) = shared.into_inner().expect("rebalance lock");
        let premerged = if self.sketch {
            let partials = ckpt_partials.into_inner().expect("checkpoint partial lock");
            let mut combined = NodeSketches::new();
            let mut any = false;
            for (saw, buf) in &partials {
                if *saw {
                    combined.merge(buf);
                    any = true;
                }
            }
            any.then_some(combined)
        } else {
            None
        };
        let metrics =
            AggregateMetrics::new_premerged(&spec.name, seed, plan.admission, nodes, premerged)
                .with_rebalance(stats);

        // The horizon boundary has no barrier leader (workers break before
        // waiting); the reducing thread emits its batch — the last epoch's
        // share grants — and closes the stream with the final aggregates.
        if let Some(s) = &sink {
            let mut batch = batch_grants.into_inner().expect("grant batch lock");
            sort_events(&mut batch);
            let mut s = s.lock().expect("journal sink lock");
            s.on_epoch(ends.len() - 1, horizon, &batch);
            s.on_finish(&metrics);
        }
        metrics
    }
}

/// The buffering sink behind [`ClusterRunner::run_logged`]: concatenates
/// every batch for one final canonical sort.
#[derive(Default)]
struct CollectSink {
    events: Vec<FleetEvent>,
}

impl JournalSink for CollectSink {
    fn on_plan(&mut self, _admission: &AdmissionStats, events: &[FleetEvent]) {
        self.events.extend_from_slice(events);
    }

    fn on_epoch(&mut self, _epoch: usize, _at: Time, events: &[FleetEvent]) {
        self.events.extend_from_slice(events);
    }
}

/// The plan-derived decision events of a run: admissions (with the
/// placer's inputs) and the churn kills the leases will execute.
fn plan_events(spec: &ScenarioSpec, plan: &FleetPlan) -> Vec<FleetEvent> {
    let mut events = Vec::new();
    for p in &plan.vms {
        let (demand, retries, best_spare) = admission_inputs(p.outcome, || {
            spec.vms
                .get(p.vm.fleet_vm_id)
                .map_or(0.0, |vm_spec| vm_spec.share())
        });
        events.push(FleetEvent::VmAdmission {
            at: Time::ZERO,
            fleet_vm_id: p.vm.fleet_vm_id,
            demand,
            node: p.node,
            retries,
            best_spare,
        });
    }
    for p in &plan.tasks {
        if p.realtime {
            let (demand, retries, best_spare) = admission_inputs(p.outcome, || 0.0);
            events.push(FleetEvent::TaskAdmission {
                at: p.task.arrival,
                fleet_id: p.task.fleet_id,
                demand,
                node: p.node,
                retries,
                best_spare,
            });
        }
        // The lease kills the task wherever it lives; the planned node is
        // recorded (a later migration event documents any relocation).
        if let (Some(node), Some(departure)) = (p.node, p.task.departure) {
            events.push(FleetEvent::Kill {
                at: departure,
                node,
                fleet_id: p.task.fleet_id,
            });
        }
    }
    events
}

/// `(demand, retries, best_spare)` of one admission decision.
fn admission_inputs(
    outcome: Option<PlacementOutcome>,
    fallback_demand: impl FnOnce() -> f64,
) -> (f64, u32, f64) {
    match outcome {
        Some(PlacementOutcome::Admitted {
            demand, migrations, ..
        }) => (demand, migrations, 0.0),
        Some(PlacementOutcome::Rejected { demand, best_spare }) => (demand, 0, best_spare),
        None => (fallback_demand(), 0, 0.0),
    }
}

/// The re-admitted incarnation of a migrated VM: same share and guest
/// kinds, fresh labels and workload seeds, arriving at the epoch boundary.
/// `guest_warm` carries the source's granted inner reservations (by fleet
/// task id): each matching guest seeds its detected period and a
/// demand-sized budget inside the re-admitted VM instead of cold-starting.
fn migrated_vm_incarnation(
    base: &NodeVm,
    at: Time,
    seed: u64,
    epoch: usize,
    guest_warm: &[(usize, crate::node::WarmStart)],
) -> NodeVm {
    NodeVm {
        fleet_vm_id: base.fleet_vm_id,
        label: format!("{}e{epoch}", base.label),
        budget: base.budget,
        period: base.period,
        guests: base
            .guests
            .iter()
            .map(|g| NodeTask {
                fleet_id: g.fleet_id,
                label: format!("{}e{epoch}", g.label),
                kind: g.kind.clone(),
                arrival: at,
                departure: g.departure,
                seed: derive_task_seed(
                    seed ^ SEED_MIGRATION_SALT,
                    ((g.fleet_id as u64) << 16) | epoch as u64,
                ),
                migrated: true,
                warm: guest_warm
                    .iter()
                    .find(|&&(id, _)| id == g.fleet_id)
                    .map(|&(_, w)| w),
            })
            .collect(),
        arrival: at,
        migrated: true,
        elastic: base.elastic,
    }
}

/// The node-level share law: the fleet→node instance of
/// [`ShareControllerConfig`], bounded by the scenario's floor and cap.
/// One confirmation only — at epoch granularity, waiting two epochs to
/// confirm a trend means reacting after the phase that caused it.
fn node_share_config(spec: &ScenarioSpec) -> ShareControllerConfig {
    ShareControllerConfig {
        min_share: spec.node_share.floor,
        max_share: spec.node_share.cap,
        confirmations: 1,
        ..ShareControllerConfig::default()
    }
}

/// One deterministic rebalance decision pass: rebuilds the fleet's booked
/// bandwidth from the tasks and VMs the nodes report alive, then drains
/// pressured nodes through the placer's admission path. `bounds` carries
/// the per-node supervisor bounds when node-level re-bounding is on: a
/// node that shed headroom below the static `U_lub` gets the difference
/// booked as phantom load, so migrations stop treating capacity the node
/// no longer grants as free.
fn rebalance_epoch(
    spec: &ScenarioSpec,
    plan: &FleetPlan,
    view: &FeedbackView,
    now: Time,
    scan_placement: bool,
    bounds: Option<&[f64]>,
) -> crate::placer::RebalanceOutcome {
    let mut placer = Placer::new(spec.nodes, spec.ulub, spec.headroom, spec.policy);
    if scan_placement {
        placer.use_scan_placement();
    }
    let mut live: Vec<LiveTask> = Vec::new();
    let mut live_vms: Vec<LiveVmUnit> = Vec::new();
    let mut reserved = vec![0.0f64; spec.nodes];
    if let Some(bounds) = bounds {
        for n in 0..spec.nodes {
            reserved[n] += (spec.ulub - bounds[n]).max(0.0);
        }
    }
    // Planned arrivals that have not started yet still hold their nominal
    // booking on their target node — a destination about to receive them
    // is not as empty as its live set suggests.
    for p in &plan.tasks {
        if p.task.arrival <= now {
            continue;
        }
        if let (Some(node), Some(nominal)) = (p.node, p.task.kind.nominal()) {
            reserved[node] += placer.demand_of(nominal);
        }
    }
    for fb in &view.nodes {
        for rt in &fb.live_rt {
            let nominal: PeriodicTask = plan.tasks[rt.fleet_id]
                .task
                .kind
                .nominal()
                .expect("live_rt lists real-time tasks only");
            let t = LiveTask {
                fleet_id: rt.fleet_id,
                node: fb.node,
                nominal,
                measured_bw: rt.measured_bw,
                movable: rt.movable,
                granted: rt
                    .granted
                    .map(|(budget, period)| crate::node::WarmStart { budget, period }),
            };
            reserved[fb.node] += placer.effective_demand(&t);
            live.push(t);
        }
        for vm in &fb.live_vms {
            // Booked at the *granted* share: an elastically-shrunk VM
            // frees real headroom on its node, a grown one eats it.
            reserved[fb.node] += vm.share;
            live_vms.push(LiveVmUnit {
                fleet_vm_id: vm.fleet_vm_id,
                node: fb.node,
                share: vm.share,
                movable: vm.movable,
                elastic: vm.elastic,
                guest_grants: vm.guest_grants.clone(),
            });
        }
    }
    placer.sync_reserved(&reserved);
    placer.rebalance(view, &live, &live_vms, &spec.rebalance)
}

/// Domain separator between the planning RNG stream and workload streams.
const SEED_PLAN_SALT: u64 = 0x5EED_1234_ABCD_0001;

/// Domain separator for migrated-incarnation workload seeds (a re-admitted
/// task draws a fresh stream so it does not replay its start-of-run phase).
const SEED_MIGRATION_SALT: u64 = 0x5EED_1234_ABCD_0002;

/// Domain separator for VM guest workload seeds.
const SEED_VM_SALT: u64 = 0x5EED_1234_ABCD_0003;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Churn, TaskMix};

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec::new("runner-test", 3, 9, Dur::ms(1500)).with_mix(TaskMix::rt_only())
    }

    #[test]
    fn plan_is_deterministic() {
        let spec = small_spec();
        let a = plan_fleet(&spec, 11);
        let b = plan_fleet(&spec, 11);
        assert_eq!(a.tasks.len(), b.tasks.len());
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.task.seed, y.task.seed);
            assert_eq!(x.task.arrival, y.task.arrival);
            assert_eq!(x.task.kind, y.task.kind);
        }
        let c = plan_fleet(&spec, 12);
        let same = a
            .tasks
            .iter()
            .zip(&c.tasks)
            .filter(|(x, y)| x.task.seed == y.task.seed)
            .count();
        assert_eq!(same, 0, "different seeds must derive different streams");
    }

    #[test]
    fn task_seed_derivation_is_stateless() {
        assert_eq!(derive_task_seed(42, 7), derive_task_seed(42, 7));
        assert_ne!(derive_task_seed(42, 7), derive_task_seed(42, 8));
        assert_ne!(derive_task_seed(42, 7), derive_task_seed(43, 7));
    }

    #[test]
    fn one_and_many_threads_agree() {
        let spec = small_spec();
        let serial = ClusterRunner::new(1).run(&spec, 5);
        let parallel = ClusterRunner::new(3).run(&spec, 5);
        assert_eq!(serial.summary_csv(), parallel.summary_csv());
        assert!(serial.completions() > 0, "fleet did some work");
    }

    #[test]
    fn work_stealing_is_deterministic_at_1_2_and_8_threads() {
        let spec =
            ScenarioSpec::new("steal-test", 6, 18, Dur::ms(1200)).with_mix(TaskMix::rt_only());
        // Chunk 1 maximises steal interleaving; the aggregate must not care.
        let baseline = ClusterRunner::new(1).with_chunk(1).run(&spec, 9);
        for threads in [2usize, 8] {
            let m = ClusterRunner::new(threads).with_chunk(1).run(&spec, 9);
            assert_eq!(baseline.summary_csv(), m.summary_csv(), "{threads} threads");
        }
        // A chunk as large as the fleet (the old static partition) agrees too.
        let coarse = ClusterRunner::new(2).with_chunk(6).run(&spec, 9);
        assert_eq!(baseline.summary_csv(), coarse.summary_csv());
    }

    #[test]
    fn churned_tasks_depart_before_horizon() {
        let spec = small_spec().with_churn(Churn {
            mean_lifetime: Dur::ms(400),
            min_lifetime: Dur::ms(100),
        });
        let plan = plan_fleet(&spec, 3);
        let horizon = Time::ZERO + spec.horizon;
        assert!(plan
            .tasks
            .iter()
            .filter_map(|t| t.task.departure)
            .all(|d| d < horizon));
        assert!(
            plan.tasks.iter().any(|t| t.task.departure.is_some()),
            "some tasks should churn"
        );
    }

    #[test]
    fn more_threads_than_nodes_is_fine() {
        let spec = ScenarioSpec::new("tiny", 2, 4, Dur::ms(800)).with_mix(TaskMix::rt_only());
        let m = ClusterRunner::new(16).run(&spec, 1);
        assert_eq!(m.nodes.len(), 2);
    }

    #[test]
    fn run_logged_matches_run_and_is_thread_invariant() {
        let spec = ScenarioSpec::skewed_overload_demo(4, 12)
            .with_rebalance(ScenarioSpec::demo_rebalance());
        let plain = ClusterRunner::new(2).run(&spec, 7);
        let (logged, events) = ClusterRunner::new(2).run_logged(&spec, 7);
        assert_eq!(plain.summary_csv(), logged.summary_csv());
        assert!(
            events
                .iter()
                .any(|e| matches!(e, FleetEvent::TaskAdmission { .. })),
            "admissions journalled"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, FleetEvent::Rebalance { .. })),
            "rebalance passes journalled"
        );
        for threads in [1usize, 8] {
            let (m, ev) = ClusterRunner::new(threads).run_logged(&spec, 7);
            assert_eq!(plain.summary_csv(), m.summary_csv(), "{threads} threads");
            assert_eq!(events, ev, "event stream at {threads} threads");
        }
    }

    /// Collects every sink callback for the streaming-equivalence tests.
    #[derive(Default)]
    struct ProbeSink {
        every: usize,
        plan: Vec<FleetEvent>,
        batches: Vec<(usize, Vec<FleetEvent>)>,
        checkpoints: Vec<(usize, String)>,
        finale: Option<String>,
    }

    impl JournalSink for ProbeSink {
        fn checkpoint_interval(&self) -> Option<usize> {
            Some(self.every)
        }

        fn on_plan(&mut self, _admission: &AdmissionStats, events: &[FleetEvent]) {
            self.plan = events.to_vec();
        }

        fn on_checkpoint(&mut self, cursor: usize, _at: Time, interim: &AggregateMetrics) {
            self.checkpoints.push((cursor, interim.summary_csv()));
        }

        fn on_epoch(&mut self, epoch: usize, _at: Time, events: &[FleetEvent]) {
            self.batches.push((epoch, events.to_vec()));
        }

        fn on_finish(&mut self, finale: &AggregateMetrics) {
            self.finale = Some(finale.summary_csv());
        }
    }

    /// Per-epoch decisions reconstructed from a logged event stream (the
    /// same extraction `selftune-journal` performs).
    fn moves_from_events(spec: &ScenarioSpec, events: &[FleetEvent]) -> PinnedMoves {
        let n_epochs = ClusterRunner::epoch_ends(spec).len() - 1;
        let mut epochs: Vec<Option<EpochDecision>> = vec![None; n_epochs];
        for e in events {
            match e {
                FleetEvent::Rebalance { epoch, failed, .. } => {
                    epochs[*epoch]
                        .get_or_insert_with(EpochDecision::default)
                        .failed = *failed;
                }
                FleetEvent::Migration {
                    epoch,
                    fleet_id,
                    vm,
                    from,
                    to,
                    demand,
                    dest_reserved_after,
                    warm,
                    guest_warm,
                    ..
                } => {
                    epochs[*epoch]
                        .get_or_insert_with(EpochDecision::default)
                        .moves
                        .push(Migration {
                            fleet_id: *fleet_id,
                            vm: *vm,
                            from: *from,
                            to: *to,
                            demand: *demand,
                            dest_reserved_after: *dest_reserved_after,
                            warm: *warm,
                            guest_warm: guest_warm.clone(),
                        });
                }
                _ => {}
            }
        }
        PinnedMoves { epochs }
    }

    #[test]
    fn streamed_batches_and_checkpoints_match_the_buffered_run() {
        let mut spec = ScenarioSpec::diurnal_demo(4, 8)
            .with_rebalance(ScenarioSpec::diurnal_rebalance())
            .with_node_share(ScenarioSpec::diurnal_node_share());
        for vm in &mut spec.vms {
            vm.elastic = true;
        }
        let (live, events) = ClusterRunner::new(2).run_logged(&spec, 42);
        let mut sink = ProbeSink {
            every: 2,
            ..ProbeSink::default()
        };
        let streamed = ClusterRunner::new(2).run_logged_with(&spec, 42, &mut sink);
        assert_eq!(live.summary_csv(), streamed.summary_csv());
        assert_eq!(sink.finale.as_deref(), Some(live.summary_csv().as_str()));

        // One batch per epoch boundary, in order; merged and re-sorted they
        // are exactly the buffered stream.
        let n_bounds = ClusterRunner::epoch_ends(&spec).len();
        let batch_order: Vec<usize> = sink.batches.iter().map(|(e, _)| *e).collect();
        assert_eq!(batch_order, (0..n_bounds).collect::<Vec<_>>());
        let mut merged = sink.plan.clone();
        for (_, b) in &sink.batches {
            merged.extend(b.iter().cloned());
        }
        sort_events(&mut merged);
        assert_eq!(merged, events);

        // Every interim checkpoint equals the pinned prefix re-execution at
        // the same cursor — on a different thread count, too.
        assert!(
            sink.checkpoints.len() >= 3,
            "diurnal grid should checkpoint several times at interval 2"
        );
        let plan = plan_fleet(&spec, 42);
        let moves = moves_from_events(&spec, &events);
        for (cursor, summary) in &sink.checkpoints {
            let mirror = ClusterRunner::new(3).run_pinned_prefix(&spec, 42, &plan, &moves, *cursor);
            assert_eq!(
                &mirror.summary_csv(),
                summary,
                "prefix mirror diverged at cursor {cursor}"
            );
        }
    }

    #[test]
    fn pinned_plan_reproduces_live_plan() {
        let spec = small_spec();
        let live = plan_fleet(&spec, 11);
        let pinned = PinnedPlan {
            admission: live.admission,
            task_nodes: live.tasks.iter().map(|t| t.node).collect(),
            vm_nodes: live.vms.iter().map(|v| v.node).collect(),
        };
        let replay = plan_fleet_pinned(&spec, 11, &pinned);
        assert_eq!(replay.admission, live.admission);
        for (a, b) in live.tasks.iter().zip(&replay.tasks) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.task.seed, b.task.seed);
            assert_eq!(a.task.kind, b.task.kind);
            assert_eq!(a.task.departure, b.task.departure);
        }
    }

    #[test]
    fn pinned_moves_reproduce_a_rebalanced_run() {
        let spec = ScenarioSpec::skewed_overload_demo(4, 12)
            .with_rebalance(ScenarioSpec::demo_rebalance());
        let (live, events) = ClusterRunner::new(2).run_logged(&spec, 42);
        // Rebuild the per-epoch decisions from the event stream.
        let n_epochs = ClusterRunner::epoch_ends(&spec).len() - 1;
        let mut epochs: Vec<Option<EpochDecision>> = vec![None; n_epochs];
        for e in &events {
            match e {
                FleetEvent::Rebalance { epoch, failed, .. } => {
                    epochs[*epoch]
                        .get_or_insert_with(EpochDecision::default)
                        .failed = *failed;
                }
                FleetEvent::Migration {
                    epoch,
                    fleet_id,
                    vm,
                    from,
                    to,
                    demand,
                    dest_reserved_after,
                    warm,
                    guest_warm,
                    ..
                } => {
                    epochs[*epoch]
                        .get_or_insert_with(EpochDecision::default)
                        .moves
                        .push(Migration {
                            fleet_id: *fleet_id,
                            vm: *vm,
                            from: *from,
                            to: *to,
                            demand: *demand,
                            dest_reserved_after: *dest_reserved_after,
                            warm: *warm,
                            guest_warm: guest_warm.clone(),
                        });
                }
                _ => {}
            }
        }
        let plan = plan_fleet(&spec, 42);
        let replay = ClusterRunner::new(2).run_pinned(&spec, 42, &plan, &PinnedMoves { epochs });
        assert_eq!(live.summary_csv(), replay.summary_csv());
    }
}
