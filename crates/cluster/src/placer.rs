//! Cross-node admission control: which node, if any, takes a reservation.
//!
//! The placer is the fleet-level counterpart of the per-node
//! [`selftune_sched::Supervisor`]: before a real-time task is handed to a
//! node it must pass the node's bandwidth bound with the *minimum* budget
//! the schedulability analysis ([`selftune_analysis::min_bandwidth_single`])
//! says the task needs — inflated by the scenario's headroom factor, since
//! the LFS++ controller will request a margin above the measured demand.
//!
//! Placement is a pure function of the task sequence: it never looks at
//! simulation state, so the plan is identical no matter how many threads
//! later execute the nodes.

use std::collections::BTreeSet;

use selftune_analysis::{min_bandwidth_single, PeriodicTask};

use crate::index::{fit_threshold, HeadroomIndex};
use crate::node::{NodeFeedback, WarmStart};
use crate::spec::RebalanceSpec;

/// Which placement policy orders the candidate nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Lowest node id that fits (packs early nodes first).
    FirstFit,
    /// Least-reserved node first (spreads load; "worst fit").
    WorstFit,
    /// Tightest fit first: the node whose remaining bandwidth after
    /// admission would be smallest (packs densely, keeps whole nodes free
    /// for large arrivals).
    BandwidthAware,
}

impl PolicyKind {
    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::FirstFit => "first-fit",
            PolicyKind::WorstFit => "worst-fit",
            PolicyKind::BandwidthAware => "bandwidth-aware",
        }
    }

    /// Candidate node order given current per-node reserved bandwidth.
    /// Ties break on the lower node id, keeping the order fully
    /// deterministic; the admission loop skips candidates that do not fit.
    pub fn candidate_order(self, reserved: &[f64]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..reserved.len()).collect();
        match self {
            PolicyKind::FirstFit => {}
            PolicyKind::WorstFit => {
                order.sort_by(|&a, &b| {
                    reserved[a]
                        .partial_cmp(&reserved[b])
                        .expect("NaN reserved bandwidth")
                        .then(a.cmp(&b))
                });
            }
            PolicyKind::BandwidthAware => {
                // Fullest node first (tightest fit): dense packing keeps
                // whole nodes free for future large reservations.
                order.sort_by(|&a, &b| {
                    reserved[b]
                        .partial_cmp(&reserved[a])
                        .expect("NaN reserved bandwidth")
                        .then(a.cmp(&b))
                });
            }
        }
        order
    }
}

/// Outcome of one placement decision.
#[derive(Clone, Copy, Debug)]
pub enum PlacementOutcome {
    /// Admitted onto a node.
    Admitted {
        /// The node that took the task.
        node: usize,
        /// Bandwidth booked on that node.
        demand: f64,
        /// Candidates that rejected the task before one admitted it
        /// (each rejection migrates the request to the next candidate).
        migrations: u32,
    },
    /// No node could take the task.
    Rejected {
        /// Bandwidth the task would have needed.
        demand: f64,
        /// The largest spare bandwidth any node had at decision time —
        /// the witness that rejection was necessary.
        best_spare: f64,
    },
}

/// The fleet's live per-node load, as reported by the nodes themselves at
/// an epoch boundary — measurement, not nominal demand.
#[derive(Clone, Debug, Default)]
pub struct FeedbackView {
    /// Per-node feedback snapshots, in node-id order.
    pub nodes: Vec<NodeFeedback>,
    /// Cross-epoch smoothed pressure per node, when the caller maintains
    /// one (the runner's EWMA); eviction then reads this instead of the
    /// raw epoch signal, giving threshold oscillation hysteresis.
    pub smoothed: Option<Vec<f64>>,
}

impl FeedbackView {
    /// Nodes reporting a busy fraction above this are never chosen as
    /// migration destinations, even when their reservations have room —
    /// a hog-saturated node shows no RT misses but is no place to land.
    pub const DEST_UTIL_CAP: f64 = 0.97;

    /// Weight of the per-task compression-event rate in the raw pressure
    /// signal: a node whose supervisor curbs one grant per live task per
    /// epoch reads as this much extra pressure.
    pub const COMPRESSION_WEIGHT: f64 = 0.1;

    /// Raw (single-epoch) migration pressure of a node: its measured
    /// deadline-miss rate over the last epoch.
    ///
    /// A node with live real-time work, *zero* completion gaps and a
    /// saturated CPU is not healthy — it is so starved its tasks finished
    /// nothing all epoch, which no miss ratio can express. That state
    /// reads as maximal pressure. (Zero gaps on an unsaturated node — a
    /// long-period task between completions, or tasks that just arrived —
    /// stays zero pressure.)
    pub fn raw_pressure(&self, node: usize) -> f64 {
        let fb = &self.nodes[node];
        let live = !fb.live_rt.is_empty() || !fb.live_vms.is_empty();
        if fb.gaps == 0 && live && fb.utilisation > Self::DEST_UTIL_CAP {
            return 1.0;
        }
        fb.miss_rate()
    }

    /// Raw pressure plus the supervisor-compression term: the per-epoch
    /// signal the runner's EWMA accumulates. Compression events are a
    /// leading indicator — grants get curbed before misses pile up.
    pub fn raw_signal(&self, node: usize) -> f64 {
        let fb = &self.nodes[node];
        let units = (fb.live_rt.len() + fb.live_vms.len()).max(1) as f64;
        let compression = Self::COMPRESSION_WEIGHT * (fb.compressions as f64 / units);
        (self.raw_pressure(node) + compression).min(1.0)
    }

    /// The pressure eviction acts on: the smoothed signal when present,
    /// the raw per-epoch pressure otherwise.
    pub fn pressure(&self, node: usize) -> f64 {
        match &self.smoothed {
            Some(s) => s[node],
            None => self.raw_pressure(node),
        }
    }

    /// Measured CPU busy fraction of a node over the last epoch.
    pub fn utilisation(&self, node: usize) -> f64 {
        self.nodes[node].utilisation
    }
}

/// One live real-time task, as seen by the rebalancer.
#[derive(Clone, Copy, Debug)]
pub struct LiveTask {
    /// Fleet-wide task id.
    pub fleet_id: usize,
    /// Node currently running it.
    pub node: usize,
    /// Nominal `(C, P)` the task declared at admission.
    pub nominal: PeriodicTask,
    /// CPU bandwidth the task measurably consumed over the last epoch.
    pub measured_bw: f64,
    /// Whether the task is a migration candidate (resident on its node for
    /// a full epoch). Non-movable tasks still count toward booked
    /// bandwidth.
    pub movable: bool,
    /// The granted reservation at snapshot time — carried to the
    /// destination for a warm start when the task migrates.
    pub granted: Option<WarmStart>,
}

/// One live virtual platform, as seen by the rebalancer: a single move
/// unit booked at its *granted* share.
#[derive(Clone, Debug)]
pub struct LiveVmUnit {
    /// Fleet-wide VM id.
    pub fleet_vm_id: usize,
    /// Node currently hosting it.
    pub node: usize,
    /// The VM's granted share `Q/T` — what a destination must book. For
    /// an elastic VM this is the controller's live grant, so a shrunk
    /// tenant frees real placement headroom.
    pub share: f64,
    /// Whether the VM is a migration candidate.
    pub movable: bool,
    /// Whether a host-level share controller absorbs this VM's pressure
    /// locally; elastic VMs are never chosen as eviction victims.
    pub elastic: bool,
    /// Granted inner reservations of the VM's attached guests,
    /// `(fleet task id, grant)` — carried to the destination for
    /// per-guest warm starts.
    pub guest_grants: Vec<(usize, WarmStart)>,
}

/// One migration decision from a rebalance pass.
#[derive(Clone, Debug)]
pub struct Migration {
    /// Fleet id of the unit to move (task id, or VM id when `vm`).
    pub fleet_id: usize,
    /// Whether the unit is a whole virtual platform.
    pub vm: bool,
    /// Source node (extract here).
    pub from: usize,
    /// Destination node (re-admit here).
    pub to: usize,
    /// Bandwidth booked on the destination.
    pub demand: f64,
    /// Destination booked bandwidth right after admission.
    pub dest_reserved_after: f64,
    /// Carried controller state for warm-starting the destination (flat
    /// tasks only).
    pub warm: Option<WarmStart>,
    /// Carried per-guest grants for a VM move: the destination seeds each
    /// guest's manager with its detected period and a demand-sized budget
    /// instead of cold-starting the whole tenant.
    pub guest_warm: Vec<(usize, WarmStart)>,
}

/// The decisions of one rebalance pass.
#[derive(Clone, Debug, Default)]
pub struct RebalanceOutcome {
    /// Migrations to apply, in decision order.
    pub moves: Vec<Migration>,
    /// Evictions that found no admissible destination.
    pub failed: u64,
}

/// Fleet-level admission bookkeeping.
///
/// Tracks per-node reserved bandwidth over the arrival/departure timeline;
/// all methods are deterministic in call order.
#[derive(Clone, Debug)]
pub struct Placer {
    ulub: f64,
    headroom: f64,
    policy: PolicyKind,
    reserved: Vec<f64>,
    /// Best-effort task counts, for spreading unreserved work.
    best_effort: Vec<u64>,
    /// Pending releases: `(release_at_ns, node, demand)`.
    releases: Vec<(u64, usize, f64)>,
    /// Escape hatch: when set, every decision walks the original linear
    /// scan (kept verbatim below) instead of the bucketed index — the
    /// `use_heap_event_queue` / `use_scan_dispatch` pattern, held to the
    /// index by differential proptests.
    scan: bool,
    /// O(log n) query views over `reserved`; `None` in scan mode.
    index: Option<HeadroomIndex>,
    /// Best-effort counts ordered `(count, node)`; `None` in scan mode.
    be_order: Option<BTreeSet<(u64, usize)>>,
}

impl Placer {
    /// A placer over `nodes` empty nodes.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ulub <= 1`, `headroom >= 1` and `nodes > 0`.
    pub fn new(nodes: usize, ulub: f64, headroom: f64, policy: PolicyKind) -> Placer {
        assert!(nodes > 0, "placer needs at least one node");
        assert!(ulub > 0.0 && ulub <= 1.0, "ulub {ulub} out of (0, 1]");
        assert!(headroom >= 1.0, "headroom {headroom} below 1");
        Placer {
            ulub,
            headroom,
            policy,
            reserved: vec![0.0; nodes],
            best_effort: vec![0; nodes],
            releases: Vec::new(),
            scan: false,
            index: Some(HeadroomIndex::new(&vec![0.0; nodes])),
            be_order: Some((0..nodes).map(|i| (0u64, i)).collect()),
        }
    }

    /// Switches every placement decision back to the original linear-scan
    /// path. The index is the default; this is the escape hatch (and the
    /// reference side of the differential tests).
    pub fn use_scan_placement(&mut self) {
        self.scan = true;
        self.index = None;
        self.be_order = None;
    }

    /// Currently booked bandwidth per node.
    pub fn reserved(&self) -> &[f64] {
        &self.reserved
    }

    /// Writes one node's booked bandwidth, keeping the index in sync.
    fn set_reserved(&mut self, node: usize, value: f64) {
        self.reserved[node] = value;
        if let Some(idx) = self.index.as_mut() {
            idx.set(node, value);
        }
    }

    /// The bandwidth the placer books for `task`: the minimum schedulable
    /// bandwidth of a dedicated server at the task's own period, times the
    /// headroom factor, capped at 1.
    pub fn demand_of(&self, task: PeriodicTask) -> f64 {
        (min_bandwidth_single(task, task.period) * self.headroom).min(1.0)
    }

    /// Releases every reservation scheduled to end at or before `now_ns`.
    pub fn release_due(&mut self, now_ns: u64) {
        let mut i = 0;
        while i < self.releases.len() {
            if self.releases[i].0 <= now_ns {
                let (_, node, demand) = self.releases.swap_remove(i);
                self.set_reserved(node, (self.reserved[node] - demand).max(0.0));
            } else {
                i += 1;
            }
        }
    }

    /// Places a real-time task arriving at `now_ns`, optionally departing
    /// at `departs_ns`.
    ///
    /// Walks the policy's candidate order; each node that fails the
    /// admission test migrates the request to the next. Never admits a
    /// task onto a node where the booked bandwidth would exceed `ulub`.
    pub fn place(
        &mut self,
        task: PeriodicTask,
        now_ns: u64,
        departs_ns: Option<u64>,
    ) -> PlacementOutcome {
        let demand = self.demand_of(task);
        self.place_demand(demand, now_ns, departs_ns)
    }

    /// Places an explicit bandwidth demand (a VM's share, which is booked
    /// as given rather than derived from a nominal task).
    pub fn place_demand(
        &mut self,
        demand: f64,
        now_ns: u64,
        departs_ns: Option<u64>,
    ) -> PlacementOutcome {
        self.release_due(now_ns);
        if self.scan {
            let order = self.policy.candidate_order(&self.reserved);
            for (migrations, node) in order.into_iter().enumerate() {
                if self.reserved[node] + demand <= self.ulub + 1e-9 {
                    self.reserved[node] += demand;
                    if let Some(at) = departs_ns {
                        self.releases.push((at, node, demand));
                    }
                    return PlacementOutcome::Admitted {
                        node,
                        demand,
                        migrations: migrations as u32,
                    };
                }
            }
            let best_spare = self
                .reserved
                .iter()
                .map(|r| self.ulub - r)
                .fold(f64::NEG_INFINITY, f64::max);
            return PlacementOutcome::Rejected { demand, best_spare };
        }
        match self.admit_indexed(demand) {
            Some((node, migrations)) => {
                self.set_reserved(node, self.reserved[node] + demand);
                if let Some(at) = departs_ns {
                    self.releases.push((at, node, demand));
                }
                PlacementOutcome::Admitted {
                    node,
                    demand,
                    migrations,
                }
            }
            None => {
                // The scan's witness folds max over `ulub - reserved`;
                // subtraction from a fixed minuend is anti-monotone, so the
                // max is exactly `ulub - min reserved`.
                let (min_r, _) = self
                    .index
                    .as_ref()
                    .expect("index mode")
                    .min_reserved()
                    .expect("at least one node");
                PlacementOutcome::Rejected {
                    demand,
                    best_spare: self.ulub - min_r,
                }
            }
        }
    }

    /// The index-side admission decision: the winner node plus the exact
    /// `migrations` count the linear scan would have reported (candidates
    /// tried before the winner in the policy's order).
    fn admit_indexed(&self, demand: f64) -> Option<(usize, u32)> {
        let idx = self.index.as_ref().expect("index mode");
        let t = fit_threshold(self.ulub, demand)?;
        match self.policy {
            // Candidate order is the identity, so the scan bounced off
            // exactly `node` lower ids before the leftmost fit.
            PolicyKind::FirstFit => idx.first_fit(t).map(|node| (node, node as u32)),
            // Ascending load order: the very first candidate is the global
            // minimum; if it does not fit, nothing fuller can.
            PolicyKind::WorstFit => {
                let (r, node) = idx.min_reserved().expect("at least one node");
                (r <= t).then_some((node, 0))
            }
            // Descending load order, ties to the lower id: the winner is
            // the fullest fitting load class's lowest id, and every node
            // strictly fuller was tried (and rejected) before it.
            PolicyKind::BandwidthAware => idx
                .tightest_fit(t)
                .map(|(r, node)| (node, idx.count_heavier(r) as u32)),
        }
    }

    /// Places a best-effort task: least-loaded node by best-effort count,
    /// ties to the lower id. Best-effort work is never rejected.
    pub fn place_best_effort(&mut self) -> usize {
        if let Some(order) = self.be_order.as_mut() {
            let &(count, node) = order.first().expect("at least one node");
            order.remove(&(count, node));
            order.insert((count + 1, node));
            self.best_effort[node] += 1;
            return node;
        }
        let node = (0..self.best_effort.len())
            .min_by_key(|&i| (self.best_effort[i], i))
            .expect("at least one node");
        self.best_effort[node] += 1;
        node
    }

    /// Overwrites the per-node booked bandwidth with an externally computed
    /// live view (the rebalancer rebuilds it each epoch from the tasks the
    /// nodes report alive, so departures and extractions are reflected).
    ///
    /// # Panics
    ///
    /// Panics if `reserved` does not have one entry per node.
    pub fn sync_reserved(&mut self, reserved: &[f64]) {
        assert_eq!(reserved.len(), self.reserved.len(), "node count mismatch");
        self.reserved.copy_from_slice(reserved);
        self.releases.clear();
        if let Some(idx) = self.index.as_mut() {
            idx.rebuild(reserved);
        }
    }

    /// What feedback-informed placement books for a live real-time task:
    /// the larger of its nominal minbudget demand and its *measured* epoch
    /// bandwidth (inflated by the headroom factor and the caller's
    /// `starvation` multiplier, capped at 1). This is the single booking
    /// rule shared by the epoch reserved-state rebuild (`starvation = 1`)
    /// and the rebalancer's victim sizing — journal records and live
    /// decisions can never disagree on the math.
    pub fn live_booking(&self, nominal: PeriodicTask, measured_bw: f64, starvation: f64) -> f64 {
        self.demand_of(nominal)
            .max((measured_bw * self.headroom * starvation).min(1.0))
    }

    /// [`Placer::live_booking`] of a live task with no starvation
    /// inflation: a task whose claim understates its appetite is booked at
    /// what it was seen to burn — so a drained node cannot simply re-melt
    /// its destination.
    pub fn effective_demand(&self, task: &LiveTask) -> f64 {
        self.live_booking(task.nominal, task.measured_bw, 1.0)
    }

    /// Admission for a migrating task: walks the policy's candidate order,
    /// skipping `banned` nodes (the pressured sources and saturated
    /// destinations), and books the first node with room for `demand`
    /// under the same utilisation bound initial placement uses.
    pub fn place_excluding(&mut self, demand: f64, banned: &[bool]) -> Option<usize> {
        if self.scan {
            return self.place_excluding_scan(demand, banned);
        }
        // Suspend the banned nodes around one indexed query. The
        // rebalancer's drain loop does not pay this per call — it suspends
        // once per pass and goes through `place_excluding_active`.
        let idx = self.index.as_mut().expect("index mode");
        for (node, &b) in banned.iter().enumerate() {
            if b {
                idx.suspend(node);
            }
        }
        let placed = self.place_excluding_active(demand);
        let idx = self.index.as_mut().expect("index mode");
        for (node, &b) in banned.iter().enumerate() {
            if b {
                idx.restore(node);
            }
        }
        placed
    }

    /// [`Placer::place_demand`] restricted to non-banned nodes — the
    /// admission path of traffic-phase tasks, whose load targets one
    /// slice of the fleet. Identical in scan and index modes (it rides
    /// [`Placer::place_excluding`]); `migrations` is always reported as 0
    /// because the filtered walk does not count bounced candidates.
    pub fn place_demand_excluding(
        &mut self,
        demand: f64,
        now_ns: u64,
        departs_ns: Option<u64>,
        banned: &[bool],
    ) -> PlacementOutcome {
        self.release_due(now_ns);
        match self.place_excluding(demand, banned) {
            Some(node) => {
                if let Some(at) = departs_ns {
                    self.releases.push((at, node, demand));
                }
                PlacementOutcome::Admitted {
                    node,
                    demand,
                    migrations: 0,
                }
            }
            None => {
                let best_spare = self
                    .reserved
                    .iter()
                    .enumerate()
                    .filter(|&(n, _)| !banned[n])
                    .map(|(_, r)| self.ulub - r)
                    .fold(f64::NEG_INFINITY, f64::max);
                PlacementOutcome::Rejected { demand, best_spare }
            }
        }
    }

    /// The original linear-scan `place_excluding`, kept verbatim.
    fn place_excluding_scan(&mut self, demand: f64, banned: &[bool]) -> Option<usize> {
        let order = self.policy.candidate_order(&self.reserved);
        for node in order {
            if banned[node] {
                continue;
            }
            if self.reserved[node] + demand <= self.ulub + 1e-9 {
                self.reserved[node] += demand;
                return Some(node);
            }
        }
        None
    }

    /// Indexed admission over the non-suspended nodes: same winner the
    /// scan finds after skipping banned ids, because suspension removes a
    /// node from the load order without disturbing the others' ties.
    fn place_excluding_active(&mut self, demand: f64) -> Option<usize> {
        let t = fit_threshold(self.ulub, demand)?;
        let idx = self.index.as_ref().expect("index mode");
        let node = match self.policy {
            PolicyKind::FirstFit => idx.first_fit(t)?,
            PolicyKind::WorstFit => {
                let (r, node) = idx.min_reserved()?;
                if r <= t {
                    node
                } else {
                    return None;
                }
            }
            PolicyKind::BandwidthAware => idx.tightest_fit(t)?.1,
        };
        self.set_reserved(node, self.reserved[node] + demand);
        Some(node)
    }

    /// One feedback-driven rebalance pass over the live task set.
    ///
    /// Nodes whose measured pressure exceeds `cfg.pressure` are drained in
    /// descending-pressure order (ties to the lower id): their movable
    /// tasks are evicted largest-demand-first and re-placed through
    /// [`Placer::place_excluding`], until no admissible destination
    /// remains or the fleet-wide `cfg.max_moves` cap is reached. The drain
    /// is deliberately *not* bounded by nominal bandwidth balance: a node
    /// can be perfectly balanced on paper and still melting in
    /// measurement (that gap is the whole reason this pass exists), so
    /// pressure keeps evacuating it epoch by epoch until the feedback
    /// clears. Pure bookkeeping: the caller applies the returned moves to
    /// the simulated nodes.
    pub fn rebalance(
        &mut self,
        view: &FeedbackView,
        live: &[LiveTask],
        vms: &[LiveVmUnit],
        cfg: &RebalanceSpec,
    ) -> RebalanceOutcome {
        let nodes = self.reserved.len();
        let mut pressured: Vec<usize> = (0..nodes)
            .filter(|&n| view.pressure(n) > cfg.pressure)
            .collect();
        pressured.sort_by(|&a, &b| {
            view.pressure(b)
                .partial_cmp(&view.pressure(a))
                .expect("NaN pressure")
                .then(a.cmp(&b))
        });
        // A node is no destination if it is itself pressured, or if it
        // reports saturation (e.g. hog-bound) without any missing RT task.
        let banned: Vec<bool> = (0..nodes)
            .map(|n| {
                view.pressure(n) > cfg.pressure || view.utilisation(n) > FeedbackView::DEST_UTIL_CAP
            })
            .collect();
        let mut out = RebalanceOutcome::default();
        struct Victim {
            demand: f64,
            vm: bool,
            fleet_id: usize,
            warm: Option<WarmStart>,
            guest_warm: Vec<(usize, WarmStart)>,
        }
        // Group victim candidates per pressured source in ONE pass over
        // the live sets — the previous shape re-filtered every live task
        // for every drained node, O(sources × live), which is real money
        // at 10k nodes. Bucket order is live order, exactly what the
        // per-source filters used to see.
        let mut slot = vec![usize::MAX; nodes];
        for (k, &from) in pressured.iter().enumerate() {
            slot[from] = k;
        }
        // A task fleeing a missing node was measured while starved: it
        // consumed what it was *granted*, not what it needs. Book it at
        // the measurement inflated by the source's miss rate (a task
        // slipping every deadline by a full period needs roughly twice
        // what it was seen to burn).
        let starvation: Vec<f64> = pressured.iter().map(|&n| 1.0 + view.pressure(n)).collect();
        let mut buckets: Vec<Vec<Victim>> = pressured.iter().map(|_| Vec::new()).collect();
        for t in live {
            let k = slot[t.node];
            if !t.movable || k == usize::MAX {
                continue;
            }
            let demand = self.live_booking(t.nominal, t.measured_bw, starvation[k]);
            // The warm hand-over budget is floored at what this pass
            // books on the destination (see `WarmStart::demand_sized`).
            let warm = t
                .granted
                .map(|g| WarmStart::demand_sized(g.budget, g.period, demand));
            buckets[k].push(Victim {
                demand,
                vm: false,
                fleet_id: t.fleet_id,
                warm,
                guest_warm: Vec::new(),
            });
        }
        // Victim candidates also include whole virtual platforms (booked
        // at their granted share — a VM's consumption cannot exceed it,
        // so no starvation inflation applies). *Elastic* VMs are exempt:
        // their pressure is already being absorbed by the host-level
        // share controller, and yanking the tenant would discard that
        // loop's state for a problem it is actively solving.
        for v in vms {
            let k = slot[v.node];
            if !v.movable || v.elastic || k == usize::MAX {
                continue;
            }
            buckets[k].push(Victim {
                demand: v.share,
                vm: true,
                fleet_id: v.fleet_vm_id,
                warm: None,
                guest_warm: v.guest_grants.clone(),
            });
        }
        // Suspend every banned node from the index once for the whole
        // pass; sources are themselves banned, so their reserved
        // decrements below touch only the plain array until the restore.
        if let Some(idx) = self.index.as_mut() {
            for (node, &b) in banned.iter().enumerate() {
                if b {
                    idx.suspend(node);
                }
            }
        }
        'drain: for (k, &from) in pressured.iter().enumerate() {
            let mut victims = std::mem::take(&mut buckets[k]);
            // Largest demand first moves the most load per migration; ties
            // break tasks before VMs, then on the lower id.
            victims.sort_by(|a, b| {
                b.demand
                    .partial_cmp(&a.demand)
                    .expect("NaN demand")
                    .then(a.vm.cmp(&b.vm))
                    .then(a.fleet_id.cmp(&b.fleet_id))
            });
            for v in victims {
                if out.moves.len() as u32 >= cfg.max_moves {
                    break 'drain;
                }
                let dest = if self.scan {
                    self.place_excluding_scan(v.demand, &banned)
                } else {
                    self.place_excluding_active(v.demand)
                };
                match dest {
                    Some(to) => {
                        self.set_reserved(from, (self.reserved[from] - v.demand).max(0.0));
                        out.moves.push(Migration {
                            fleet_id: v.fleet_id,
                            vm: v.vm,
                            from,
                            to,
                            demand: v.demand,
                            dest_reserved_after: self.reserved[to],
                            warm: v.warm,
                            guest_warm: v.guest_warm,
                        });
                    }
                    None => out.failed += 1,
                }
            }
        }
        if let Some(idx) = self.index.as_mut() {
            for (node, &b) in banned.iter().enumerate() {
                if b {
                    idx.restore(node);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LiveRt;

    fn task(wcet: f64, period: f64) -> PeriodicTask {
        PeriodicTask::new(wcet, period)
    }

    #[test]
    fn first_fit_packs_low_ids() {
        let mut p = Placer::new(3, 0.9, 1.0, PolicyKind::FirstFit);
        for _ in 0..4 {
            match p.place(task(20.0, 100.0), 0, None) {
                PlacementOutcome::Admitted { node, .. } => assert_eq!(node, 0),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Node 0 is at 0.8; the fifth 20% task must spill to node 1.
        match p.place(task(20.0, 100.0), 0, None) {
            PlacementOutcome::Admitted {
                node, migrations, ..
            } => {
                assert_eq!(node, 1);
                assert_eq!(migrations, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn worst_fit_spreads() {
        let mut p = Placer::new(3, 0.9, 1.0, PolicyKind::WorstFit);
        let nodes: Vec<usize> = (0..6)
            .map(|_| match p.place(task(10.0, 100.0), 0, None) {
                PlacementOutcome::Admitted { node, .. } => node,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(nodes, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn bandwidth_aware_packs_tightest() {
        let mut p = Placer::new(2, 0.9, 1.0, PolicyKind::BandwidthAware);
        // Seed asymmetric load: 40% on node 0.
        let _ = p.place(task(40.0, 100.0), 0, None);
        // A 30% task fits on both; tightest fit is node 0 (0.4 + 0.3).
        match p.place(task(30.0, 100.0), 0, None) {
            PlacementOutcome::Admitted { node, .. } => assert_eq!(node, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn never_exceeds_ulub_and_rejects_with_witness() {
        let mut p = Placer::new(2, 0.5, 1.0, PolicyKind::FirstFit);
        let mut admitted = 0;
        for _ in 0..10 {
            match p.place(task(20.0, 100.0), 0, None) {
                PlacementOutcome::Admitted { .. } => admitted += 1,
                PlacementOutcome::Rejected { demand, best_spare } => {
                    assert!(demand > best_spare + 1e-12);
                }
            }
            for &r in p.reserved() {
                assert!(r <= 0.5 + 1e-9, "reserved {r} over ulub");
            }
        }
        // Two 20% tasks per node fit under 0.5; the rest bounce.
        assert_eq!(admitted, 4);
    }

    #[test]
    fn departures_free_bandwidth() {
        let mut p = Placer::new(1, 0.5, 1.0, PolicyKind::FirstFit);
        let _ = p.place(task(40.0, 100.0), 0, Some(1_000));
        match p.place(task(40.0, 100.0), 500, None) {
            PlacementOutcome::Rejected { .. } => {}
            other => panic!("expected rejection, got {other:?}"),
        }
        match p.place(task(40.0, 100.0), 1_000, None) {
            PlacementOutcome::Admitted { node, .. } => assert_eq!(node, 0),
            other => panic!("expected admission, got {other:?}"),
        }
    }

    #[test]
    fn headroom_inflates_demand() {
        let p1 = Placer::new(1, 0.9, 1.0, PolicyKind::FirstFit);
        let p2 = Placer::new(1, 0.9, 1.5, PolicyKind::FirstFit);
        let t = task(20.0, 100.0);
        let d1 = p1.demand_of(t);
        let d2 = p2.demand_of(t);
        assert!(d2 > d1 * 1.49 && d2 < d1 * 1.51, "{d1} vs {d2}");
    }

    #[test]
    fn live_booking_is_the_single_booking_rule() {
        let p = Placer::new(1, 0.9, 1.2, PolicyKind::FirstFit);
        let t = LiveTask {
            fleet_id: 0,
            node: 0,
            nominal: task(10.0, 100.0),
            measured_bw: 0.3,
            movable: true,
            granted: None,
        };
        // No starvation: effective_demand IS live_booking at factor 1.
        assert_eq!(
            p.effective_demand(&t),
            p.live_booking(t.nominal, t.measured_bw, 1.0)
        );
        // Starvation inflates the measured side only, capped at 1.
        let inflated = p.live_booking(t.nominal, t.measured_bw, 1.5);
        assert!((inflated - 0.3 * 1.2 * 1.5).abs() < 1e-12, "{inflated}");
        assert_eq!(p.live_booking(t.nominal, 0.9, 2.0), 1.0);
        // The nominal floor still wins when the measurement is tiny.
        assert_eq!(p.live_booking(t.nominal, 0.0, 1.0), p.demand_of(t.nominal));
    }

    fn view(miss_rates: &[f64], utils: &[f64]) -> FeedbackView {
        FeedbackView {
            nodes: miss_rates
                .iter()
                .zip(utils)
                .enumerate()
                .map(|(i, (&mr, &u))| NodeFeedback {
                    node: i,
                    utilisation: u,
                    gaps: 100,
                    misses: (mr * 100.0).round() as u64,
                    compressions: 0,
                    reserved_bw: 0.0,
                    live_rt: Vec::new(),
                    live_vms: Vec::new(),
                })
                .collect(),
            smoothed: None,
        }
    }

    fn cfg(pressure: f64, max_moves: u32) -> crate::spec::RebalanceSpec {
        crate::spec::RebalanceSpec {
            enabled: true,
            period: selftune_simcore::time::Dur::secs(1),
            pressure,
            max_moves,
            ..crate::spec::RebalanceSpec::default()
        }
    }

    #[test]
    fn rebalance_drains_pressured_node_to_idle_ones() {
        let mut p = Placer::new(3, 0.9, 1.0, PolicyKind::WorstFit);
        p.sync_reserved(&[0.8, 0.1, 0.1]);
        let live: Vec<LiveTask> = (0..4)
            .map(|i| LiveTask {
                fleet_id: i,
                node: 0,
                nominal: task(20.0, 100.0),
                measured_bw: 0.0,
                movable: true,
                granted: None,
            })
            .collect();
        let out = p.rebalance(
            &view(&[0.3, 0.0, 0.0], &[0.9, 0.2, 0.2]),
            &live,
            &[],
            &cfg(0.05, 8),
        );
        // The pressured node is fully evacuated (all four tasks fit
        // elsewhere), spread across both idle nodes by worst-fit order.
        assert_eq!(out.moves.len(), 4);
        assert_eq!(out.failed, 0);
        for m in &out.moves {
            assert_eq!(m.from, 0);
            assert!(m.to == 1 || m.to == 2, "moved to pressured node");
            assert!(m.dest_reserved_after <= 0.9 + 1e-9);
        }
        assert!(out.moves.iter().any(|m| m.to == 1));
        assert!(out.moves.iter().any(|m| m.to == 2));
        assert!(p.reserved()[0].abs() < 1e-9, "{}", p.reserved()[0]);
    }

    #[test]
    fn rebalance_respects_move_cap_and_bans_saturated_destinations() {
        let mut p = Placer::new(3, 0.9, 1.0, PolicyKind::WorstFit);
        p.sync_reserved(&[0.8, 0.0, 0.0]);
        let live: Vec<LiveTask> = (0..4)
            .map(|i| LiveTask {
                fleet_id: i,
                node: 0,
                nominal: task(20.0, 100.0),
                measured_bw: 0.0,
                movable: true,
                granted: None,
            })
            .collect();
        // Node 1 is hog-saturated (util 0.99): only node 2 may receive.
        let out = p.rebalance(
            &view(&[0.5, 0.0, 0.0], &[1.0, 0.99, 0.1]),
            &live,
            &[],
            &cfg(0.05, 1),
        );
        assert_eq!(out.moves.len(), 1);
        assert_eq!(out.moves[0].to, 2);
    }

    #[test]
    fn fully_starved_node_reads_as_maximal_pressure() {
        // Node 0: live RT work, zero completions all epoch, CPU pinned —
        // no miss ratio exists, but the node is maximally starved.
        let starved = NodeFeedback {
            node: 0,
            utilisation: 1.0,
            gaps: 0,
            misses: 0,
            compressions: 3,
            reserved_bw: 0.0,
            live_rt: vec![LiveRt {
                fleet_id: 0,
                measured_bw: 0.02,
                movable: true,
                granted: None,
            }],
            live_vms: Vec::new(),
        };
        // Node 1: also zero gaps, but idle with a long-period task — fine.
        let idle = NodeFeedback {
            node: 1,
            utilisation: 0.05,
            gaps: 0,
            misses: 0,
            compressions: 0,
            reserved_bw: 0.0,
            live_rt: vec![LiveRt {
                fleet_id: 1,
                measured_bw: 0.01,
                movable: true,
                granted: None,
            }],
            live_vms: Vec::new(),
        };
        let v = FeedbackView {
            nodes: vec![starved, idle],
            smoothed: None,
        };
        assert!((v.pressure(0) - 1.0).abs() < 1e-12);
        assert!(v.pressure(1).abs() < 1e-12);

        // And the rebalancer actually drains the starved node.
        let mut p = Placer::new(2, 0.9, 1.0, PolicyKind::WorstFit);
        p.sync_reserved(&[0.06, 0.06]);
        let live = [LiveTask {
            fleet_id: 0,
            node: 0,
            nominal: task(2.0, 40.0),
            measured_bw: 0.02,
            movable: true,
            granted: None,
        }];
        let out = p.rebalance(&v, &live, &[], &cfg(0.25, 4));
        assert_eq!(out.moves.len(), 1);
        assert_eq!(out.moves[0].from, 0);
        assert_eq!(out.moves[0].to, 1);
    }

    #[test]
    fn rebalance_without_pressure_is_a_noop() {
        let mut p = Placer::new(2, 0.9, 1.0, PolicyKind::WorstFit);
        p.sync_reserved(&[0.8, 0.1]);
        let live = [LiveTask {
            fleet_id: 0,
            node: 0,
            nominal: task(20.0, 100.0),
            measured_bw: 0.0,
            movable: true,
            granted: None,
        }];
        let out = p.rebalance(&view(&[0.01, 0.0], &[0.9, 0.1]), &live, &[], &cfg(0.05, 8));
        assert!(out.moves.is_empty());
        assert_eq!(out.failed, 0);
        assert_eq!(p.reserved(), &[0.8, 0.1]);
    }

    #[test]
    fn rebalance_counts_failed_moves_when_nothing_fits() {
        let mut p = Placer::new(2, 0.5, 1.0, PolicyKind::FirstFit);
        p.sync_reserved(&[0.45, 0.4]);
        let live = [
            LiveTask {
                fleet_id: 0,
                node: 0,
                nominal: task(20.0, 100.0),
                measured_bw: 0.0,
                movable: true,
                granted: None,
            },
            LiveTask {
                fleet_id: 1,
                node: 0,
                nominal: task(20.0, 100.0),
                measured_bw: 0.0,
                movable: true,
                granted: None,
            },
        ];
        // Node 1 is nearly as full: no destination admits a 0.2 task.
        let out = p.rebalance(&view(&[0.4, 0.0], &[0.5, 0.5]), &live, &[], &cfg(0.05, 8));
        assert!(out.moves.is_empty());
        assert!(out.failed > 0);
        assert_eq!(p.reserved(), &[0.45, 0.4]);
    }

    #[test]
    fn best_effort_round_robins() {
        let mut p = Placer::new(3, 0.9, 1.0, PolicyKind::FirstFit);
        let nodes: Vec<usize> = (0..7).map(|_| p.place_best_effort()).collect();
        assert_eq!(nodes, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    /// xorshift64 — a tiny deterministic stream for the differential tests.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    const ALL_POLICIES: [PolicyKind; 3] = [
        PolicyKind::FirstFit,
        PolicyKind::WorstFit,
        PolicyKind::BandwidthAware,
    ];

    #[test]
    fn index_and_scan_agree_on_every_decision() {
        // Drive an indexed placer and a scan placer through the same long
        // random operation sequence; every outcome — winner, migrations
        // count, rejection witness, best-effort pick, booked state — must
        // be bit-identical at each step, for every policy.
        for policy in ALL_POLICIES {
            for nodes in [1usize, 3, 7, 32] {
                let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ nodes as u64;
                let mut indexed = Placer::new(nodes, 0.9, 1.2, policy);
                let mut scan = Placer::new(nodes, 0.9, 1.2, policy);
                scan.use_scan_placement();
                let mut now = 0u64;
                for _ in 0..400 {
                    now += xorshift(&mut rng) % 50_000;
                    let op = xorshift(&mut rng) % 100;
                    if op < 55 {
                        let demand = (xorshift(&mut rng) % 1001) as f64 / 1000.0;
                        let departs = op
                            .is_multiple_of(3)
                            .then(|| now + 1 + xorshift(&mut rng) % 100_000);
                        let a = indexed.place_demand(demand, now, departs);
                        let b = scan.place_demand(demand, now, departs);
                        assert_eq!(format!("{a:?}"), format!("{b:?}"), "policy {policy:?}");
                    } else if op < 70 {
                        assert_eq!(indexed.place_best_effort(), scan.place_best_effort());
                    } else if op < 90 {
                        let banned: Vec<bool> = (0..nodes)
                            .map(|_| xorshift(&mut rng).is_multiple_of(4))
                            .collect();
                        let demand = (xorshift(&mut rng) % 1001) as f64 / 1000.0;
                        assert_eq!(
                            indexed.place_excluding(demand, &banned),
                            scan.place_excluding(demand, &banned),
                            "policy {policy:?}"
                        );
                    } else {
                        // The epoch rebuild: arbitrary live bookings, which
                        // may exceed ulub and even 1.0.
                        let rs: Vec<f64> = (0..nodes)
                            .map(|_| (xorshift(&mut rng) % 1300) as f64 / 1000.0)
                            .collect();
                        indexed.sync_reserved(&rs);
                        scan.sync_reserved(&rs);
                    }
                    assert_eq!(indexed.reserved(), scan.reserved(), "policy {policy:?}");
                }
            }
        }
    }

    #[test]
    fn index_and_scan_rebalance_identically() {
        // Random pressured fleets with flat tasks and VM units: the drain
        // must produce identical move lists (sources, destinations,
        // demands, warm payloads) and identical failure counts.
        for policy in ALL_POLICIES {
            let mut rng = 0xD1B5_4A32_D192_ED03u64;
            for round in 0..40 {
                let nodes = 2 + (xorshift(&mut rng) % 7) as usize;
                let mut indexed = Placer::new(nodes, 0.9, 1.1, policy);
                let mut scan = Placer::new(nodes, 0.9, 1.1, policy);
                scan.use_scan_placement();
                let rs: Vec<f64> = (0..nodes)
                    .map(|_| (xorshift(&mut rng) % 1000) as f64 / 1000.0)
                    .collect();
                indexed.sync_reserved(&rs);
                scan.sync_reserved(&rs);
                let fb = FeedbackView {
                    nodes: (0..nodes)
                        .map(|i| NodeFeedback {
                            node: i,
                            utilisation: (xorshift(&mut rng) % 100) as f64 / 100.0,
                            gaps: 10,
                            misses: xorshift(&mut rng) % 11,
                            compressions: 0,
                            reserved_bw: 0.0,
                            live_rt: Vec::new(),
                            live_vms: Vec::new(),
                        })
                        .collect(),
                    smoothed: None,
                };
                let live: Vec<LiveTask> = (0..(xorshift(&mut rng) % 12))
                    .map(|i| LiveTask {
                        fleet_id: i as usize,
                        node: (xorshift(&mut rng) % nodes as u64) as usize,
                        nominal: task(1.0 + (xorshift(&mut rng) % 30) as f64, 100.0),
                        measured_bw: (xorshift(&mut rng) % 40) as f64 / 100.0,
                        movable: !xorshift(&mut rng).is_multiple_of(4),
                        granted: xorshift(&mut rng).is_multiple_of(2).then(|| WarmStart {
                            budget: selftune_simcore::time::Dur::ms(5),
                            period: selftune_simcore::time::Dur::ms(100),
                        }),
                    })
                    .collect();
                let vms: Vec<LiveVmUnit> = (0..(xorshift(&mut rng) % 4))
                    .map(|i| LiveVmUnit {
                        fleet_vm_id: 100 + i as usize,
                        node: (xorshift(&mut rng) % nodes as u64) as usize,
                        share: (10 + xorshift(&mut rng) % 30) as f64 / 100.0,
                        movable: !xorshift(&mut rng).is_multiple_of(3),
                        elastic: xorshift(&mut rng).is_multiple_of(4),
                        guest_grants: vec![(
                            i as usize,
                            WarmStart {
                                budget: selftune_simcore::time::Dur::ms(10),
                                period: selftune_simcore::time::Dur::ms(50),
                            },
                        )],
                    })
                    .collect();
                let cfg = cfg(0.15, 1 + (xorshift(&mut rng) % 6) as u32);
                let a = indexed.rebalance(&fb, &live, &vms, &cfg);
                let b = scan.rebalance(&fb, &live, &vms, &cfg);
                assert_eq!(
                    format!("{:?}", a.moves),
                    format!("{:?}", b.moves),
                    "policy {policy:?} round {round}"
                );
                assert_eq!(a.failed, b.failed, "policy {policy:?} round {round}");
                assert_eq!(indexed.reserved(), scan.reserved());
            }
        }
    }
}
