//! Cross-node admission control: which node, if any, takes a reservation.
//!
//! The placer is the fleet-level counterpart of the per-node
//! [`selftune_sched::Supervisor`]: before a real-time task is handed to a
//! node it must pass the node's bandwidth bound with the *minimum* budget
//! the schedulability analysis ([`selftune_analysis::min_bandwidth_single`])
//! says the task needs — inflated by the scenario's headroom factor, since
//! the LFS++ controller will request a margin above the measured demand.
//!
//! Placement is a pure function of the task sequence: it never looks at
//! simulation state, so the plan is identical no matter how many threads
//! later execute the nodes.

use selftune_analysis::{min_bandwidth_single, PeriodicTask};

/// Which placement policy orders the candidate nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Lowest node id that fits (packs early nodes first).
    FirstFit,
    /// Least-reserved node first (spreads load; "worst fit").
    WorstFit,
    /// Tightest fit first: the node whose remaining bandwidth after
    /// admission would be smallest (packs densely, keeps whole nodes free
    /// for large arrivals).
    BandwidthAware,
}

impl PolicyKind {
    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::FirstFit => "first-fit",
            PolicyKind::WorstFit => "worst-fit",
            PolicyKind::BandwidthAware => "bandwidth-aware",
        }
    }

    /// Candidate node order given current per-node reserved bandwidth.
    /// Ties break on the lower node id, keeping the order fully
    /// deterministic; the admission loop skips candidates that do not fit.
    pub fn candidate_order(self, reserved: &[f64]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..reserved.len()).collect();
        match self {
            PolicyKind::FirstFit => {}
            PolicyKind::WorstFit => {
                order.sort_by(|&a, &b| {
                    reserved[a]
                        .partial_cmp(&reserved[b])
                        .expect("NaN reserved bandwidth")
                        .then(a.cmp(&b))
                });
            }
            PolicyKind::BandwidthAware => {
                // Fullest node first (tightest fit): dense packing keeps
                // whole nodes free for future large reservations.
                order.sort_by(|&a, &b| {
                    reserved[b]
                        .partial_cmp(&reserved[a])
                        .expect("NaN reserved bandwidth")
                        .then(a.cmp(&b))
                });
            }
        }
        order
    }
}

/// Outcome of one placement decision.
#[derive(Clone, Copy, Debug)]
pub enum PlacementOutcome {
    /// Admitted onto a node.
    Admitted {
        /// The node that took the task.
        node: usize,
        /// Bandwidth booked on that node.
        demand: f64,
        /// Candidates that rejected the task before one admitted it
        /// (each rejection migrates the request to the next candidate).
        migrations: u32,
    },
    /// No node could take the task.
    Rejected {
        /// Bandwidth the task would have needed.
        demand: f64,
        /// The largest spare bandwidth any node had at decision time —
        /// the witness that rejection was necessary.
        best_spare: f64,
    },
}

/// Fleet-level admission bookkeeping.
///
/// Tracks per-node reserved bandwidth over the arrival/departure timeline;
/// all methods are deterministic in call order.
#[derive(Clone, Debug)]
pub struct Placer {
    ulub: f64,
    headroom: f64,
    policy: PolicyKind,
    reserved: Vec<f64>,
    /// Best-effort task counts, for spreading unreserved work.
    best_effort: Vec<u64>,
    /// Pending releases: `(release_at_ns, node, demand)`.
    releases: Vec<(u64, usize, f64)>,
}

impl Placer {
    /// A placer over `nodes` empty nodes.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ulub <= 1`, `headroom >= 1` and `nodes > 0`.
    pub fn new(nodes: usize, ulub: f64, headroom: f64, policy: PolicyKind) -> Placer {
        assert!(nodes > 0, "placer needs at least one node");
        assert!(ulub > 0.0 && ulub <= 1.0, "ulub {ulub} out of (0, 1]");
        assert!(headroom >= 1.0, "headroom {headroom} below 1");
        Placer {
            ulub,
            headroom,
            policy,
            reserved: vec![0.0; nodes],
            best_effort: vec![0; nodes],
            releases: Vec::new(),
        }
    }

    /// Currently booked bandwidth per node.
    pub fn reserved(&self) -> &[f64] {
        &self.reserved
    }

    /// The bandwidth the placer books for `task`: the minimum schedulable
    /// bandwidth of a dedicated server at the task's own period, times the
    /// headroom factor, capped at 1.
    pub fn demand_of(&self, task: PeriodicTask) -> f64 {
        (min_bandwidth_single(task, task.period) * self.headroom).min(1.0)
    }

    /// Releases every reservation scheduled to end at or before `now_ns`.
    pub fn release_due(&mut self, now_ns: u64) {
        let mut i = 0;
        while i < self.releases.len() {
            if self.releases[i].0 <= now_ns {
                let (_, node, demand) = self.releases.swap_remove(i);
                self.reserved[node] = (self.reserved[node] - demand).max(0.0);
            } else {
                i += 1;
            }
        }
    }

    /// Places a real-time task arriving at `now_ns`, optionally departing
    /// at `departs_ns`.
    ///
    /// Walks the policy's candidate order; each node that fails the
    /// admission test migrates the request to the next. Never admits a
    /// task onto a node where the booked bandwidth would exceed `ulub`.
    pub fn place(
        &mut self,
        task: PeriodicTask,
        now_ns: u64,
        departs_ns: Option<u64>,
    ) -> PlacementOutcome {
        self.release_due(now_ns);
        let demand = self.demand_of(task);
        let order = self.policy.candidate_order(&self.reserved);
        for (migrations, node) in order.into_iter().enumerate() {
            if self.reserved[node] + demand <= self.ulub + 1e-9 {
                self.reserved[node] += demand;
                if let Some(at) = departs_ns {
                    self.releases.push((at, node, demand));
                }
                return PlacementOutcome::Admitted {
                    node,
                    demand,
                    migrations: migrations as u32,
                };
            }
        }
        let best_spare = self
            .reserved
            .iter()
            .map(|r| self.ulub - r)
            .fold(f64::NEG_INFINITY, f64::max);
        PlacementOutcome::Rejected { demand, best_spare }
    }

    /// Places a best-effort task: least-loaded node by best-effort count,
    /// ties to the lower id. Best-effort work is never rejected.
    pub fn place_best_effort(&mut self) -> usize {
        let node = (0..self.best_effort.len())
            .min_by_key(|&i| (self.best_effort[i], i))
            .expect("at least one node");
        self.best_effort[node] += 1;
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(wcet: f64, period: f64) -> PeriodicTask {
        PeriodicTask::new(wcet, period)
    }

    #[test]
    fn first_fit_packs_low_ids() {
        let mut p = Placer::new(3, 0.9, 1.0, PolicyKind::FirstFit);
        for _ in 0..4 {
            match p.place(task(20.0, 100.0), 0, None) {
                PlacementOutcome::Admitted { node, .. } => assert_eq!(node, 0),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Node 0 is at 0.8; the fifth 20% task must spill to node 1.
        match p.place(task(20.0, 100.0), 0, None) {
            PlacementOutcome::Admitted {
                node, migrations, ..
            } => {
                assert_eq!(node, 1);
                assert_eq!(migrations, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn worst_fit_spreads() {
        let mut p = Placer::new(3, 0.9, 1.0, PolicyKind::WorstFit);
        let nodes: Vec<usize> = (0..6)
            .map(|_| match p.place(task(10.0, 100.0), 0, None) {
                PlacementOutcome::Admitted { node, .. } => node,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(nodes, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn bandwidth_aware_packs_tightest() {
        let mut p = Placer::new(2, 0.9, 1.0, PolicyKind::BandwidthAware);
        // Seed asymmetric load: 40% on node 0.
        let _ = p.place(task(40.0, 100.0), 0, None);
        // A 30% task fits on both; tightest fit is node 0 (0.4 + 0.3).
        match p.place(task(30.0, 100.0), 0, None) {
            PlacementOutcome::Admitted { node, .. } => assert_eq!(node, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn never_exceeds_ulub_and_rejects_with_witness() {
        let mut p = Placer::new(2, 0.5, 1.0, PolicyKind::FirstFit);
        let mut admitted = 0;
        for _ in 0..10 {
            match p.place(task(20.0, 100.0), 0, None) {
                PlacementOutcome::Admitted { .. } => admitted += 1,
                PlacementOutcome::Rejected { demand, best_spare } => {
                    assert!(demand > best_spare + 1e-12);
                }
            }
            for &r in p.reserved() {
                assert!(r <= 0.5 + 1e-9, "reserved {r} over ulub");
            }
        }
        // Two 20% tasks per node fit under 0.5; the rest bounce.
        assert_eq!(admitted, 4);
    }

    #[test]
    fn departures_free_bandwidth() {
        let mut p = Placer::new(1, 0.5, 1.0, PolicyKind::FirstFit);
        let _ = p.place(task(40.0, 100.0), 0, Some(1_000));
        match p.place(task(40.0, 100.0), 500, None) {
            PlacementOutcome::Rejected { .. } => {}
            other => panic!("expected rejection, got {other:?}"),
        }
        match p.place(task(40.0, 100.0), 1_000, None) {
            PlacementOutcome::Admitted { node, .. } => assert_eq!(node, 0),
            other => panic!("expected admission, got {other:?}"),
        }
    }

    #[test]
    fn headroom_inflates_demand() {
        let p1 = Placer::new(1, 0.9, 1.0, PolicyKind::FirstFit);
        let p2 = Placer::new(1, 0.9, 1.5, PolicyKind::FirstFit);
        let t = task(20.0, 100.0);
        let d1 = p1.demand_of(t);
        let d2 = p2.demand_of(t);
        assert!(d2 > d1 * 1.49 && d2 < d1 * 1.51, "{d1} vs {d2}");
    }

    #[test]
    fn best_effort_round_robins() {
        let mut p = Placer::new(3, 0.9, 1.0, PolicyKind::FirstFit);
        let nodes: Vec<usize> = (0..7).map(|_| p.place_best_effort()).collect();
        assert_eq!(nodes, vec![0, 1, 2, 0, 1, 2, 0]);
    }
}
