//! One fleet node: a virtualised kernel + tracers + self-tuning managers
//! bundle that runs its share of the scenario to the horizon.
//!
//! A node is the paper's single-machine stack, virtualised: flat tasks run
//! under the host-level self-tuning manager exactly as before, while each
//! placed [`NodeVm`] is a whole tenant — a host CBS share containing a
//! nested scheduler and its own per-guest manager (see `selftune-virt`).
//! Nodes are built *inside* their worker thread (tracer state is shared
//! through `Rc`, so a node never crosses threads); everything needed to
//! build one — the task and VM plans — is plain `Send` data.

use selftune_apps::CpuHog;
use selftune_core::{ControllerConfig, ManagerConfig};
use selftune_sched::{CbsMode, Supervisor};
use selftune_simcore::kernel::TaskState;
use selftune_simcore::metrics::MetricKey;
use selftune_simcore::rng::Rng;
use selftune_simcore::task::{Action, TaskCtx, TaskId, Workload};
use selftune_simcore::time::{Dur, Time};
use selftune_virt::{GuestPolicy, VirtPlatform, VmConfig, VmElasticConfig, VmId};

use crate::aggregate::{NodeReport, NodeSketches, NodeTotals, TaskReport};
use crate::events::FleetEvent;
use crate::spec::{OverloadWindow, ScenarioSpec, TaskKind};

/// A task's lifetime lease: delegates to the inner workload until the
/// deadline, then exits (simulating the user closing the application).
pub struct Lease {
    inner: Box<dyn Workload>,
    until: Time,
}

impl Lease {
    /// Wraps `inner` so it exits at the first scheduling opportunity at or
    /// after `until`.
    pub fn new(inner: Box<dyn Workload>, until: Time) -> Lease {
        Lease { inner, until }
    }
}

impl Workload for Lease {
    fn next(&mut self, ctx: &mut TaskCtx<'_>) -> Action {
        if ctx.now >= self.until {
            return Action::Exit;
        }
        self.inner.next(ctx)
    }
}

/// Controller state carried across a live migration: the source node's
/// granted reservation, used to warm-start the destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WarmStart {
    /// Granted budget at extraction time.
    pub budget: Dur,
    /// Reservation period (the detected task period).
    pub period: Dur,
}

impl WarmStart {
    /// A hand-over grant that keeps the source's *period* (the
    /// expensive-to-learn state) but sizes the budget at no less than
    /// `demand` (a CPU fraction), clamped into the period. The single
    /// source of the "never carry a compressed grant verbatim" rule: a
    /// budget measured under compression re-creates the starvation on the
    /// destination, so it is floored at the demand the hand-over books.
    pub fn demand_sized(granted: Dur, period: Dur, demand: f64) -> WarmStart {
        WarmStart {
            budget: granted.max(period.mul_f64(demand)).min(period),
            period,
        }
    }
}

/// A task assigned to this node (the node-local slice of the fleet plan).
#[derive(Clone, Debug)]
pub struct NodeTask {
    /// Fleet-wide task index.
    pub fleet_id: usize,
    /// Metric label, unique fleet-wide (e.g. `"t042"`).
    pub label: String,
    /// What to run.
    pub kind: TaskKind,
    /// Arrival instant.
    pub arrival: Time,
    /// Departure instant, if the scenario churns tasks.
    pub departure: Option<Time>,
    /// Workload RNG seed (derived deterministically by the planner).
    pub seed: u64,
    /// Whether this incarnation was admitted through a live migration
    /// (rather than at its original fleet arrival).
    pub migrated: bool,
    /// Carried controller state for a warm-started migration.
    pub warm: Option<WarmStart>,
}

/// A virtual platform assigned to this node: placed (and migrated) as one
/// unit, booked at its share.
#[derive(Clone, Debug)]
pub struct NodeVm {
    /// Fleet-wide VM index (its own id space, disjoint from task ids).
    pub fleet_vm_id: usize,
    /// Label, unique fleet-wide (e.g. `"v03"`).
    pub label: String,
    /// Share budget per share period.
    pub budget: Dur,
    /// Share period.
    pub period: Dur,
    /// Guest task plans.
    pub guests: Vec<NodeTask>,
    /// Arrival instant of this incarnation (t = 0, or the migration epoch).
    pub arrival: Time,
    /// Whether this incarnation arrived through a live migration.
    pub migrated: bool,
    /// Whether the node runs a host-level share controller for this VM.
    pub elastic: bool,
}

/// The frozen remains of a departed task: everything its node report
/// still needs, in ~80 bytes instead of a full arena slot. Completion
/// counts and gap vectors are *not* frozen — marks persist in the kernel
/// metrics store after the task dies, so report time recomputes them from
/// the interned mark key; only state a dead task can no longer produce
/// (its drop counter, its first attach instant) is captured at retirement.
struct RetiredTask {
    /// Arena-wide admission sequence number (report order).
    seq: u32,
    /// Fleet-wide task index.
    fleet_id: u32,
    /// Drop counter frozen at retirement (a dead task drops no more).
    dropped: u32,
    /// Interned completion-mark key (None for kinds without marks).
    mark: Option<MetricKey>,
    /// Nominal period in milliseconds, for miss classification.
    period_ms: Option<f64>,
    /// First-attach delay frozen at retirement.
    attach_delay_ms: Option<f64>,
    /// Metric label, moved out of the plan at retirement.
    label: String,
    realtime: bool,
    migrated: bool,
}

/// Completion marks scanned out of slots at retirement, parked until the
/// next feedback snapshot drains them into its epoch counters — retiring
/// a slot mid-epoch must not lose the gaps it produced since the last
/// snapshot.
#[derive(Clone, Copy, Debug, Default)]
struct PendingMarks {
    gaps: u64,
    misses: u64,
}

/// Resident-memory accounting for a node's task state, summed over the
/// flat arena and every guest arena (see [`Node::mem_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ArenaMemStats {
    /// Tasks ever admitted (fresh and recycled slots alike).
    pub admitted: u64,
    /// Physical arena slots currently allocated.
    pub slots: usize,
    /// Slots currently occupied by a live task.
    pub live: usize,
    /// Retired-task records held for report reconstruction.
    pub retired: usize,
    /// Approximate resident bytes of all task bookkeeping.
    pub bytes: usize,
}

impl ArenaMemStats {
    fn absorb(&mut self, other: ArenaMemStats) {
        self.admitted += other.admitted;
        self.slots += other.slots;
        self.live += other.live;
        self.retired += other.retired;
        self.bytes += other.bytes;
    }

    /// Resident bytes per ever-admitted task — the churn-workload figure
    /// `BENCH_cluster.json` tracks as `cluster/milliontask/bytes_per_task`.
    pub fn bytes_per_task(&self) -> f64 {
        if self.admitted == 0 {
            0.0
        } else {
            self.bytes as f64 / self.admitted as f64
        }
    }
}

/// Managed-task state in struct-of-arrays layout: one parallel column per
/// field, plus an index list over the real-time slots the per-sampling-step
/// liveness scan still has to visit. At fleet scale that scan is the inner
/// loop — walking a compact `tids` column for the live slots beats chasing
/// one heap struct per task, and retiring a task shrinks the scan instead
/// of leaving a tombstone it re-checks forever.
///
/// Under churn the arena recycles: a retired slot's report-relevant state
/// is frozen into a compact [`RetiredTask`], the slot's generation is
/// bumped so stale references can never resurrect the departed task, and
/// the slot joins a free list the next admission pops. Report order is
/// recovered from per-occupant admission sequence numbers, so the output
/// bytes are identical to the grow-forever arena's slot walk.
struct TaskArena {
    /// Cold plan data (label, kind, arrival, …), one entry per slot.
    plans: Vec<NodeTask>,
    /// Kernel task ids (hot column).
    tids: Vec<TaskId>,
    /// Reservation released / task retired (hot column).
    released: Vec<bool>,
    /// CPU consumed up to the last feedback snapshot (for epoch deltas).
    fb_consumed: Vec<Dur>,
    /// Interned completion-mark keys (None for kinds without marks), so
    /// the per-epoch scan neither formats nor hashes strings.
    mark_keys: Vec<Option<MetricKey>>,
    /// Cached nominal periods in milliseconds, for miss classification.
    periods_ms: Vec<Option<f64>>,
    /// Completion marks already consumed by previous feedback snapshots —
    /// each epoch only walks the marks it has not seen yet.
    fb_mark_pos: Vec<usize>,
    /// Slots of real-time, not-yet-retired tasks in admission order — the
    /// only slots the per-step liveness scan touches.
    active_rt: Vec<usize>,
    /// Admission sequence number of each slot's current occupant.
    seqs: Vec<u32>,
    /// Slot generation, bumped at every retirement — the tag that makes a
    /// recycled slot a *different* identity from its departed occupant.
    gens: Vec<u32>,
    /// Next admission sequence number (== tasks ever admitted).
    next_seq: u32,
    /// Retired slots awaiting reuse (only popped when `recycle` is on).
    free: Vec<usize>,
    /// Frozen records of every departed occupant, in retirement order.
    retired: Vec<RetiredTask>,
    /// Whether retired slots are recycled (on by default; the memory
    /// bench turns it off to measure the grow-forever baseline).
    recycle: bool,
}

impl Default for TaskArena {
    fn default() -> TaskArena {
        TaskArena {
            plans: Vec::new(),
            tids: Vec::new(),
            released: Vec::new(),
            fb_consumed: Vec::new(),
            mark_keys: Vec::new(),
            periods_ms: Vec::new(),
            fb_mark_pos: Vec::new(),
            active_rt: Vec::new(),
            seqs: Vec::new(),
            gens: Vec::new(),
            next_seq: 0,
            free: Vec::new(),
            retired: Vec::new(),
            recycle: true,
        }
    }
}

impl TaskArena {
    /// Admits a plan into a recycled slot when one is free (and recycling
    /// is on), else a fresh one. Returns the slot index.
    fn push(&mut self, plan: NodeTask, tid: TaskId, mark: Option<MetricKey>) -> usize {
        let seq = self.next_seq;
        self.next_seq += 1;
        let realtime = plan.kind.is_realtime();
        let period_ms = plan.kind.nominal().map(|t| t.period);
        let recycled = if self.recycle { self.free.pop() } else { None };
        let slot = match recycled {
            Some(slot) => {
                debug_assert!(self.released[slot], "free list held a live slot");
                self.plans[slot] = plan;
                self.tids[slot] = tid;
                self.released[slot] = false;
                self.fb_consumed[slot] = Dur::ZERO;
                self.mark_keys[slot] = mark;
                self.periods_ms[slot] = period_ms;
                self.fb_mark_pos[slot] = 0;
                self.seqs[slot] = seq;
                slot
            }
            None => {
                let slot = self.plans.len();
                self.plans.push(plan);
                self.tids.push(tid);
                self.released.push(false);
                self.fb_consumed.push(Dur::ZERO);
                self.mark_keys.push(mark);
                self.periods_ms.push(period_ms);
                self.fb_mark_pos.push(0);
                self.seqs.push(seq);
                self.gens.push(0);
                slot
            }
        };
        // Appended at the end: active_rt stays in *admission* order (the
        // order the old grow-forever arena scanned), not slot order.
        if realtime {
            self.active_rt.push(slot);
        }
        slot
    }

    /// Retires a slot: freezes its compact [`RetiredTask`] record, bumps
    /// the slot generation, drops it from the active scan list and (when
    /// recycling) returns the slot to the free list. `dropped` and
    /// `attach_delay_ms` are the metric reads a dead task can no longer
    /// change, captured by the caller while the label was still in place.
    fn retire(&mut self, slot: usize, dropped: u32, attach_delay_ms: Option<f64>) {
        debug_assert!(!self.released[slot], "double retirement");
        self.released[slot] = true;
        if let Some(pos) = self.active_rt.iter().position(|&s| s == slot) {
            self.active_rt.remove(pos);
        }
        let plan = &mut self.plans[slot];
        self.retired.push(RetiredTask {
            seq: self.seqs[slot],
            fleet_id: plan.fleet_id as u32,
            dropped,
            mark: self.mark_keys[slot],
            period_ms: self.periods_ms[slot],
            attach_delay_ms,
            label: std::mem::take(&mut plan.label),
            realtime: plan.kind.is_realtime(),
            migrated: plan.migrated,
        });
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        if self.recycle {
            self.free.push(slot);
        }
    }

    /// Every task ever admitted, as `(index, is_retired)` pairs in
    /// admission order: `index` points into `retired` for departed tasks
    /// and at a live slot otherwise. This is what keeps recycled-arena
    /// reports byte-identical to the grow-forever slot walk — admission
    /// sequence numbers recover the order that slot indices used to carry.
    fn admission_order(&self) -> Vec<(usize, bool)> {
        let mut order: Vec<(u32, usize, bool)> =
            Vec::with_capacity(self.retired.len() + self.plans.len());
        for (i, r) in self.retired.iter().enumerate() {
            order.push((r.seq, i, true));
        }
        for slot in 0..self.plans.len() {
            if !self.released[slot] {
                order.push((self.seqs[slot], slot, false));
            }
        }
        order.sort_unstable_by_key(|&(seq, _, _)| seq);
        order
            .into_iter()
            .map(|(_, i, retired)| (i, retired))
            .collect()
    }

    /// Resident-byte accounting over every column, label heap and retired
    /// record of this arena.
    fn mem_stats(&self) -> ArenaMemStats {
        use std::mem::size_of;
        let mut bytes = self.plans.capacity() * size_of::<NodeTask>()
            + self.tids.capacity() * size_of::<TaskId>()
            + self.released.capacity()
            + self.fb_consumed.capacity() * size_of::<Dur>()
            + self.mark_keys.capacity() * size_of::<Option<MetricKey>>()
            + self.periods_ms.capacity() * size_of::<Option<f64>>()
            + self.fb_mark_pos.capacity() * size_of::<usize>()
            + self.active_rt.capacity() * size_of::<usize>()
            + (self.seqs.capacity() + self.gens.capacity()) * size_of::<u32>()
            + self.free.capacity() * size_of::<usize>()
            + self.retired.capacity() * size_of::<RetiredTask>();
        for p in &self.plans {
            bytes += p.label.capacity();
        }
        for r in &self.retired {
            bytes += r.label.capacity();
        }
        let live = self.released.iter().filter(|&&r| !r).count();
        ArenaMemStats {
            admitted: u64::from(self.next_seq),
            slots: self.plans.len(),
            live,
            retired: self.retired.len(),
            bytes,
        }
    }
}

struct VmRt {
    vm: VmId,
    plan: NodeVm,
    guests: TaskArena,
    released: bool,
    /// VM share consumption up to the last feedback snapshot.
    fb_consumed: Dur,
}

/// One live real-time task in a node's feedback snapshot.
#[derive(Clone, Copy, Debug)]
pub struct LiveRt {
    /// Fleet-wide task id.
    pub fleet_id: usize,
    /// CPU bandwidth the task *measurably* consumed over the epoch — what
    /// feedback-informed placement books instead of the nominal claim.
    pub measured_bw: f64,
    /// Resident on this node for the whole epoch → migration candidate. A
    /// task that just landed has produced no feedback on its new placement
    /// yet, and re-moving it would be thrash, not feedback.
    pub movable: bool,
    /// The task's currently granted reservation `(budget, period)`, if its
    /// manager attached one — the controller state a warm-started
    /// migration carries to the destination.
    pub granted: Option<(Dur, Dur)>,
}

/// One live virtual platform in a node's feedback snapshot.
#[derive(Clone, Debug)]
pub struct LiveVm {
    /// Fleet-wide VM id.
    pub fleet_vm_id: usize,
    /// The share currently *granted* to the VM, `Q/T` — under an elastic
    /// controller this is the live re-granted value, not the nominal
    /// `VmSpec` share, so fleet decisions see the bandwidth the VM really
    /// holds (an elastically-shrunk VM frees real placement headroom).
    pub share: f64,
    /// CPU bandwidth the VM measurably consumed over the epoch.
    pub measured_bw: f64,
    /// Resident for a full epoch → migration candidate.
    pub movable: bool,
    /// Whether a host-level share controller is absorbing this VM's
    /// pressure locally. Elastic VMs are never rebalance victims: evicting
    /// a tenant whose share is already being re-sized on the spot would
    /// fight the inner loop.
    pub elastic: bool,
    /// The inner reservation of each currently-attached guest,
    /// `(fleet task id, grant)` in guest spawn order — the controller
    /// state a warm-started VM migration carries to the destination. The
    /// budget is sized at no less than the guest's measured demand (plus
    /// headroom): a grant compressed inside an overloaded tenant is not
    /// carried verbatim. Empty unless the scenario can consume it
    /// (rebalance with `warm_start`, non-elastic VM).
    pub guest_grants: Vec<(usize, WarmStart)>,
}

/// What a node *measured* over the last epoch — the live signal the fleet
/// rebalancer feeds on, as opposed to the nominal demand the initial
/// placement trusted.
#[derive(Clone, Debug, Default)]
pub struct NodeFeedback {
    /// The reporting node.
    pub node: usize,
    /// CPU busy fraction over the epoch.
    pub utilisation: f64,
    /// Completion gaps observed during the epoch (flat + guest tasks).
    pub gaps: u64,
    /// Gaps that exceeded the miss factor during the epoch.
    pub misses: u64,
    /// Supervisor grants compressed below request during the epoch, on the
    /// host manager and inside every guest manager.
    pub compressions: u64,
    /// Host bandwidth currently booked by reservations (flat tasks and VM
    /// shares), `Σ Q/T` — what the node-level share controller treats as
    /// the booked demand when re-bounding the supervisor.
    pub reserved_bw: f64,
    /// Real-time flat tasks currently alive on this node (started, not
    /// exited, not already extracted) with their measured bandwidth,
    /// sorted by fleet id.
    pub live_rt: Vec<LiveRt>,
    /// Virtual platforms currently alive on this node, sorted by fleet VM
    /// id.
    pub live_vms: Vec<LiveVm>,
}

impl NodeFeedback {
    /// Epoch deadline-miss rate (zero when no gaps were observed).
    pub fn miss_rate(&self) -> f64 {
        if self.gaps == 0 {
            0.0
        } else {
            self.misses as f64 / self.gaps as f64
        }
    }
}

/// Running totals behind the per-epoch deltas of [`NodeFeedback`] (the
/// per-task gap positions live in each `Managed` entry).
#[derive(Clone, Copy, Debug, Default)]
struct FeedbackMark {
    busy: Dur,
    compressions: u64,
    at: Option<Time>,
}

/// One simulated machine of the fleet.
pub struct Node {
    id: usize,
    platform: VirtPlatform,
    sampling: Dur,
    /// Admission headroom factor (scenario `headroom`), used to size
    /// warm hand-over budgets from measured demand.
    headroom: f64,
    /// Whether feedback snapshots should carry per-guest grants for
    /// warm-started VM migrations (rebalance enabled with `warm_start`;
    /// building them is wasted work otherwise).
    guest_warm_carry: bool,
    /// The supervisor bound currently in force (starts at the spec's
    /// static `U_lub`; node-level re-bounding moves it at epoch barriers).
    ulub: f64,
    /// Whether elastic VMs also adapt their share *period* to the dominant
    /// guest period (on when the scenario runs node-level re-bounding —
    /// the fully-closed plane aligns replenishment across levels too).
    share_adapt: bool,
    tasks: TaskArena,
    vms: Vec<VmRt>,
    fb_mark: FeedbackMark,
    /// Marks scanned out of retired slots, awaiting the next feedback.
    pending: PendingMarks,
    /// Reusable metric-name buffer (`"{label}.dropped"` and friends) —
    /// retirement and report paths format into this instead of
    /// allocating a fresh `String` per task.
    scratch: String,
    /// Slot-recycling toggle copied into every new arena.
    recycle: bool,
}

impl Node {
    /// Builds the node's kernel/tracer/manager stack per the spec.
    pub fn new(id: usize, spec: &ScenarioSpec) -> Node {
        let platform = VirtPlatform::new(ManagerConfig {
            sampling: spec.sampling,
            supervisor: Supervisor::new(spec.ulub),
            cbs_mode: CbsMode::Hard,
        });
        Node {
            id,
            platform,
            sampling: spec.sampling,
            headroom: spec.headroom,
            guest_warm_carry: spec.rebalance.enabled && spec.rebalance.warm_start,
            ulub: spec.ulub,
            share_adapt: spec.node_share.enabled,
            tasks: TaskArena::default(),
            vms: Vec::new(),
            fb_mark: FeedbackMark::default(),
            pending: PendingMarks::default(),
            scratch: String::new(),
            recycle: true,
        }
    }

    /// Turns arena slot recycling on or off (on by default) for the flat
    /// arena and every guest arena created afterwards. The memory bench
    /// uses `off` to measure the grow-forever baseline; reports are
    /// byte-identical either way.
    pub fn set_recycle(&mut self, on: bool) {
        self.recycle = on;
        self.tasks.recycle = on;
        for rt in &mut self.vms {
            rt.guests.recycle = on;
        }
    }

    /// Resident-memory accounting over the flat task arena and every
    /// guest arena — what `mem_report` prints and the million-task bench
    /// tracks as bytes/task.
    pub fn mem_stats(&self) -> ArenaMemStats {
        let mut stats = self.tasks.mem_stats();
        for rt in &self.vms {
            stats.absorb(rt.guests.mem_stats());
        }
        stats
    }

    /// The node's id within the fleet.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The supervisor bound currently in force.
    pub fn ulub(&self) -> f64 {
        self.ulub
    }

    /// Re-bounds the node's supervisor to `ulub` (a node-level share
    /// decision taken at an epoch barrier): lowering the bound
    /// proportionally recompresses every live grant in place, raising it
    /// restores headroom the next self-tuning requests can claim.
    pub fn set_ulub(&mut self, ulub: f64) {
        self.ulub = ulub;
        self.platform.set_host_ulub(ulub);
    }

    /// Builds a plan's workload, lease-wrapped when it departs — shared
    /// by the flat-task and VM-guest admission paths so lifetime handling
    /// cannot diverge between them.
    fn leased_workload(plan: &NodeTask) -> Box<dyn Workload> {
        let mut workload = plan.kind.instantiate(&plan.label, Rng::new(plan.seed));
        if let Some(dep) = plan.departure {
            workload = Box::new(Lease::new(workload, dep));
        }
        workload
    }

    /// Adds a planned task: spawns its workload at the arrival instant
    /// (wrapped in a [`Lease`] when it departs) and, for real-time kinds,
    /// puts it under the host self-tuning manager — warm-started from the
    /// carried controller state when the plan brings one.
    pub fn add_task(&mut self, plan: NodeTask) {
        let workload = Node::leased_workload(&plan);
        let tid = self
            .platform
            .kernel_mut()
            .spawn_at(&plan.label, workload, plan.arrival);
        if plan.kind.is_realtime() {
            match plan.warm {
                Some(w) => self.platform.manage_host_warm(
                    tid,
                    &plan.label,
                    ControllerConfig::default(),
                    w.budget,
                    w.period,
                ),
                None => self
                    .platform
                    .manage_host(tid, &plan.label, ControllerConfig::default()),
            }
        }
        let mark = Node::intern_mark(&mut self.platform, &plan);
        self.tasks.push(plan, tid, mark);
    }

    /// Interns a plan's completion-mark name into the kernel metrics
    /// store, so per-epoch scans and reports look marks up by key. The
    /// store only surfaces streams that recorded something, so interning
    /// at admission is unobservable in any output.
    fn intern_mark(platform: &mut VirtPlatform, plan: &NodeTask) -> Option<MetricKey> {
        plan.kind
            .mark_name(&plan.label)
            .map(|name| platform.kernel_mut().metrics_mut().key(&name))
    }

    /// Adds a planned virtual platform: admits its share, spawns every
    /// guest into it and puts real-time guests under the VM's own manager.
    ///
    /// The share goes through the curbed admission path: the placer's
    /// booked model can drift from this node's live self-tuned grants
    /// (a flat task that idled all epoch reports near-zero measured
    /// bandwidth while its grant stays large), so a migrated VM may land
    /// on a node with less room than the rebalancer believed. It is then
    /// compressed rather than rejected — the next feedback epoch sees the
    /// resulting pressure and moves work again.
    pub fn add_vm(&mut self, plan: NodeVm) {
        let (vm, _granted) = self.platform.create_vm_curbed(VmConfig {
            label: plan.label.clone(),
            budget: plan.budget,
            period: plan.period,
            policy: GuestPolicy::SelfTuning(ManagerConfig {
                sampling: self.sampling,
                // The guest supervisor enforces the same `U_lub` rule as
                // the host one (previously hard-coded to 1.0, which let a
                // tenant book every last slice of its own share while the
                // host level kept the paper's bound).
                supervisor: Supervisor::new(self.ulub),
                cbs_mode: CbsMode::Hard,
            }),
        });
        if plan.elastic {
            self.platform.make_vm_elastic(
                vm,
                VmElasticConfig {
                    adapt_period: self.share_adapt,
                    ..VmElasticConfig::default()
                },
            );
        }
        let mut guests = TaskArena::default();
        for g in &plan.guests {
            let workload = Node::leased_workload(g);
            let tid = self
                .platform
                .spawn_in_vm_at(vm, &g.label, workload, g.arrival);
            if g.kind.is_realtime() {
                match g.warm {
                    Some(w) => self.platform.manage_warm_in_vm(
                        vm,
                        tid,
                        &g.label,
                        ControllerConfig::default(),
                        w.budget,
                        w.period,
                    ),
                    None => {
                        self.platform
                            .manage_in_vm(vm, tid, &g.label, ControllerConfig::default())
                    }
                }
            }
            let mark = Node::intern_mark(&mut self.platform, g);
            guests.push(g.clone(), tid, mark);
        }
        guests.recycle = self.recycle;
        self.vms.push(VmRt {
            vm,
            plan,
            guests,
            released: false,
            fb_consumed: Dur::ZERO,
        });
    }

    /// Injects `window.hogs_per_node` fair-class CPU hogs for the span of
    /// the overload window, if this node is targeted by the window's
    /// [`NodeFilter`](crate::spec::NodeFilter).
    pub fn inject_overload(&mut self, window: &OverloadWindow) {
        if !window.nodes.matches(self.id) {
            return;
        }
        for h in 0..window.hogs_per_node {
            let hog = Box::new(CpuHog::new(window.chunk));
            let leased = Box::new(Lease::new(hog, Time::ZERO + window.end));
            self.platform.kernel_mut().spawn_at(
                &format!("hog{}w{h}", self.id),
                leased,
                Time::ZERO + window.start,
            );
        }
    }

    /// Runs to the horizon, stepping every manager every sampling period
    /// and releasing the reservations of departed tasks along the way.
    ///
    /// The per-step liveness scan walks only the arena's active real-time
    /// slots — a released or best-effort task costs nothing here, which is
    /// what keeps the step affordable on nodes that have churned through
    /// many tasks. Workloads can exit on their own (leases, application
    /// `Exit`), so this stays a scan over the live set rather than a
    /// departure-schedule cursor.
    pub fn run_to_horizon(&mut self, horizon: Time) {
        while self.platform.now() < horizon {
            let next = (self.platform.now() + self.sampling).min(horizon);
            self.platform.kernel_mut().run_until(next);
            let mut i = 0;
            while i < self.tasks.active_rt.len() {
                let slot = self.tasks.active_rt[i];
                let tid = self.tasks.tids[slot];
                if self.platform.kernel().task_state(tid) == TaskState::Exited {
                    self.platform.unmanage_host(tid);
                    self.platform.kernel_mut().reclaim(tid);
                    Node::retire_slot(
                        &self.platform,
                        &mut self.tasks,
                        &mut self.pending,
                        &mut self.scratch,
                        slot,
                    );
                } else {
                    i += 1;
                }
            }
            for rt in &mut self.vms {
                if rt.released {
                    continue;
                }
                let mut i = 0;
                while i < rt.guests.active_rt.len() {
                    let slot = rt.guests.active_rt[i];
                    let tid = rt.guests.tids[slot];
                    if self.platform.kernel().task_state(tid) == TaskState::Exited {
                        self.platform.unmanage_in_vm(rt.vm, tid);
                        self.platform.kernel_mut().reclaim(tid);
                        Node::retire_slot(
                            &self.platform,
                            &mut rt.guests,
                            &mut self.pending,
                            &mut self.scratch,
                            slot,
                        );
                    } else {
                        i += 1;
                    }
                }
            }
            self.platform.step_managers();
        }
    }

    /// Walks a task's fresh completion marks, updating the epoch counters.
    fn scan_marks(
        platform: &VirtPlatform,
        mark: Option<MetricKey>,
        period_ms: Option<f64>,
        pos: &mut usize,
        gaps: &mut u64,
        misses: &mut u64,
    ) {
        if let (Some(key), Some(period_ms)) = (mark, period_ms) {
            let marks = platform.kernel().metrics().marks_k(key);
            while *pos + 1 < marks.len() {
                let gap_ms = (marks[*pos + 1] - marks[*pos]).as_ms_f64();
                *gaps += 1;
                if gap_ms / period_ms > NodeReport::MISS_FACTOR {
                    *misses += 1;
                }
                *pos += 1;
            }
        }
    }

    /// Formats `"{label}{suffix}"` into the reusable scratch buffer.
    fn metric_name<'a>(scratch: &'a mut String, label: &str, suffix: &str) -> &'a str {
        scratch.clear();
        scratch.push_str(label);
        scratch.push_str(suffix);
        scratch
    }

    /// Retires an arena slot: takes the departed task's final mark scan
    /// into the pending epoch counters, freezes the metric reads a dead
    /// task can no longer change, and hands the slot to the arena's free
    /// list. An associated function over split borrows so callers holding
    /// `&mut` arena references (the per-VM loop) can use it.
    fn retire_slot(
        platform: &VirtPlatform,
        arena: &mut TaskArena,
        pending: &mut PendingMarks,
        scratch: &mut String,
        slot: usize,
    ) {
        Node::scan_marks(
            platform,
            arena.mark_keys[slot],
            arena.periods_ms[slot],
            &mut arena.fb_mark_pos[slot],
            &mut pending.gaps,
            &mut pending.misses,
        );
        let metrics = platform.kernel().metrics();
        let plan = &arena.plans[slot];
        let dropped = metrics.counter(Node::metric_name(scratch, &plan.label, ".dropped")) as u32;
        let attach_delay_ms = metrics
            .marks(Node::metric_name(scratch, &plan.label, ".attached"))
            .first()
            .map(|&t| t.saturating_since(plan.arrival).as_ms_f64());
        arena.retire(slot, dropped, attach_delay_ms);
    }

    /// Publishes the feedback snapshot for the epoch ending at `now` and
    /// re-arms the epoch counters: measured utilisation, deadline-miss
    /// rate and supervisor compressions *since the previous snapshot*,
    /// plus the live real-time task set and the live VM set.
    ///
    /// The gap scan is incremental — each task remembers how many
    /// completion marks previous snapshots consumed — so an epoch
    /// boundary costs O(new marks), not O(marks since t = 0).
    pub fn feedback(&mut self, now: Time) -> NodeFeedback {
        let busy = self.platform.kernel().busy_time();
        let mut compressions = self.platform.host_manager().compressed_grants();
        for rt in &self.vms {
            if let Some(mgr) = self.platform.guest_manager(rt.vm) {
                compressions += mgr.compressed_grants();
            }
        }
        let span = now.saturating_since(self.fb_mark.at.unwrap_or(Time::ZERO));
        let epoch_busy = busy.saturating_sub(self.fb_mark.busy);
        let prev = self.fb_mark.at.unwrap_or(Time::ZERO);
        // Slots retired since the previous snapshot already contributed
        // their final marks at retirement; drain that parked tally first.
        let mut gaps = self.pending.gaps;
        let mut misses = self.pending.misses;
        self.pending = PendingMarks::default();
        let mut live_rt: Vec<LiveRt> = Vec::new();
        for i in 0..self.tasks.active_rt.len() {
            let slot = self.tasks.active_rt[i];
            Node::scan_marks(
                &self.platform,
                self.tasks.mark_keys[slot],
                self.tasks.periods_ms[slot],
                &mut self.tasks.fb_mark_pos[slot],
                &mut gaps,
                &mut misses,
            );
            let plan = &self.tasks.plans[slot];
            let tid = self.tasks.tids[slot];
            let live = matches!(
                self.platform.kernel().task_state(tid),
                TaskState::Ready | TaskState::Blocked
            );
            if !live {
                continue;
            }
            let consumed = self.platform.kernel().thread_time(tid);
            let epoch_consumed = consumed.saturating_sub(self.tasks.fb_consumed[slot]);
            self.tasks.fb_consumed[slot] = consumed;
            // Normalise by the task's *residency* in the epoch, not the
            // whole epoch: a task that landed mid-epoch burned its share
            // over a shorter window.
            let resident = now.saturating_since(if plan.arrival > prev {
                plan.arrival
            } else {
                prev
            });
            let granted = self.platform.host_manager().server_of(tid).map(|sid| {
                let cfg = self.platform.kernel().sched().host().server(sid).config();
                (cfg.budget, cfg.period)
            });
            live_rt.push(LiveRt {
                fleet_id: plan.fleet_id,
                measured_bw: if resident.is_zero() {
                    0.0
                } else {
                    epoch_consumed.ratio(resident)
                },
                movable: plan.arrival <= prev,
                granted,
            });
        }
        live_rt.sort_unstable_by_key(|t| t.fleet_id);
        let mut live_vms: Vec<LiveVm> = Vec::new();
        for rt in &mut self.vms {
            // Per-guest epoch bandwidth rides along with the mark scan:
            // it sizes the warm hand-over budget below (a guest grant
            // measured under tenant-internal compression must not be
            // re-created verbatim on a migration destination). Keyed by
            // slot because the grant loop below re-reads the arena.
            let mut guest_bw: Vec<(usize, f64)> = Vec::new();
            // Grants (and the per-guest bandwidth that sizes them) are
            // only built where a warm VM migration can consume them:
            // rebalance with warm hand-over on, and not an elastic VM
            // (those are never eviction victims) nor a released one.
            let carry = self.guest_warm_carry && !rt.plan.elastic && !rt.released;
            if carry {
                guest_bw.reserve(rt.guests.active_rt.len());
            }
            for i in 0..rt.guests.active_rt.len() {
                let slot = rt.guests.active_rt[i];
                Node::scan_marks(
                    &self.platform,
                    rt.guests.mark_keys[slot],
                    rt.guests.periods_ms[slot],
                    &mut rt.guests.fb_mark_pos[slot],
                    &mut gaps,
                    &mut misses,
                );
                if !carry {
                    continue;
                }
                let tid = rt.guests.tids[slot];
                let consumed = self.platform.kernel().thread_time(tid);
                let delta = consumed.saturating_sub(rt.guests.fb_consumed[slot]);
                rt.guests.fb_consumed[slot] = consumed;
                let arrival = rt.guests.plans[slot].arrival;
                let resident = now.saturating_since(if arrival > prev { arrival } else { prev });
                guest_bw.push((
                    slot,
                    if resident.is_zero() {
                        0.0
                    } else {
                        delta.ratio(resident)
                    },
                ));
            }
            if rt.released {
                continue;
            }
            let consumed = self.platform.vm_consumed(rt.vm);
            let epoch_consumed = consumed.saturating_sub(rt.fb_consumed);
            rt.fb_consumed = consumed;
            let resident = now.saturating_since(if rt.plan.arrival > prev {
                rt.plan.arrival
            } else {
                prev
            });
            let guest_grants = match (
                carry.then(|| self.platform.guest_manager(rt.vm)).flatten(),
                self.platform.kernel().sched().guest(rt.vm),
            ) {
                (Some(mgr), selftune_virt::GuestSched::Reservation(g)) => guest_bw
                    .iter()
                    .filter_map(|&(slot, bw)| {
                        let cfg = g.server(mgr.server_of(rt.guests.tids[slot])?).config();
                        // The source's grant may have been compressed
                        // inside the tenant; floor the carried budget at
                        // the measured demand plus headroom (see
                        // `WarmStart::demand_sized`).
                        let demand = (bw * self.headroom).min(1.0);
                        Some((
                            rt.guests.plans[slot].fleet_id,
                            WarmStart::demand_sized(cfg.budget, cfg.period, demand),
                        ))
                    })
                    .collect(),
                _ => Vec::new(),
            };
            live_vms.push(LiveVm {
                fleet_vm_id: rt.plan.fleet_vm_id,
                share: self.platform.vm_share(rt.vm),
                measured_bw: if resident.is_zero() {
                    0.0
                } else {
                    epoch_consumed.ratio(resident)
                },
                movable: rt.plan.arrival <= prev,
                elastic: rt.plan.elastic,
                guest_grants,
            });
        }
        live_vms.sort_unstable_by_key(|v| v.fleet_vm_id);
        let fb = NodeFeedback {
            node: self.id,
            utilisation: if span.is_zero() {
                0.0
            } else {
                epoch_busy.ratio(span)
            },
            gaps,
            misses,
            compressions: compressions - self.fb_mark.compressions,
            reserved_bw: self.platform.host_reserved_bandwidth(),
            live_rt,
            live_vms,
        };
        self.fb_mark = FeedbackMark {
            busy,
            compressions,
            at: Some(now),
        };
        fb
    }

    /// Drains the platform's executed elastic share re-grants into fleet
    /// decision events, mapping kernel VM ids back to fleet VM ids.
    /// Grants of a VM that was since extracted are dropped — its fleet
    /// identity now lives (re-granted afresh) on the destination node.
    pub fn drain_share_events(&mut self) -> Vec<FleetEvent> {
        let vms = &self.vms;
        let id = self.id;
        self.platform
            .drain_share_grants()
            .into_iter()
            .filter_map(|e| {
                let rt = vms.iter().find(|rt| rt.vm == e.vm && !rt.released)?;
                Some(FleetEvent::ShareGrant {
                    at: e.at,
                    node: id,
                    fleet_vm_id: rt.plan.fleet_vm_id,
                    demand: e.demand,
                    target: e.target,
                    granted: e.granted,
                    compressed: e.compressed,
                    clamp: e.clamp,
                    pending: e.pending,
                    available: e.available,
                })
            })
            .collect()
    }

    /// Extracts a running task for migration: releases its reservation,
    /// terminates its kernel incarnation and returns the carried
    /// controller state (`Some(None)` when it had no reservation yet).
    /// The task's completions so far stay in this node's report; the
    /// runner re-admits the plan (kind, lifetime, fresh seed) on the
    /// destination node.
    ///
    /// Returns `None` when the task is unknown, already departed or
    /// already extracted — the migration is then dropped.
    pub fn extract_task(&mut self, fleet_id: usize) -> Option<Option<WarmStart>> {
        // Migration decisions are made from `live_rt` feedback, so the
        // target is always a live real-time task — the active list *is*
        // the search space (and it is generation-safe: a retired slot
        // recycled to a new task left the list under the old identity).
        let slot = self
            .tasks
            .active_rt
            .iter()
            .copied()
            .find(|&s| self.tasks.plans[s].fleet_id == fleet_id)?;
        let tid = self.tasks.tids[slot];
        if self.platform.kernel().task_state(tid) == TaskState::Exited {
            return None;
        }
        let warm = self.platform.host_manager().server_of(tid).map(|sid| {
            let cfg = self.platform.kernel().sched().host().server(sid).config();
            WarmStart {
                budget: cfg.budget,
                period: cfg.period,
            }
        });
        self.platform.unmanage_host(tid);
        self.platform.kernel_mut().kill(tid);
        self.platform.kernel_mut().reclaim(tid);
        Node::retire_slot(
            &self.platform,
            &mut self.tasks,
            &mut self.pending,
            &mut self.scratch,
            slot,
        );
        Some(warm)
    }

    /// Extracts a whole virtual platform for migration: kills every guest
    /// task and releases the VM's share. Completions so far stay in this
    /// node's report. Returns `false` when the VM is unknown or already
    /// extracted.
    pub fn extract_vm(&mut self, fleet_vm_id: usize) -> bool {
        let Some(idx) = self
            .vms
            .iter()
            .position(|rt| rt.plan.fleet_vm_id == fleet_vm_id && !rt.released)
        else {
            return false;
        };
        self.vms[idx].released = true;
        // Retire every still-live guest in slot order (guest arenas never
        // recycle after construction, so slot order is admission order).
        for slot in 0..self.vms[idx].guests.plans.len() {
            if self.vms[idx].guests.released[slot] {
                continue;
            }
            Node::retire_slot(
                &self.platform,
                &mut self.vms[idx].guests,
                &mut self.pending,
                &mut self.scratch,
                slot,
            );
        }
        let vm = self.vms[idx].vm;
        let guest_tids = self.vms[idx].guests.tids.clone();
        let killed = self.platform.kill_vm(vm);
        for tid in guest_tids {
            self.platform.kernel_mut().reclaim(tid);
        }
        killed
    }

    /// Builds the report of a live (never-retired) slot.
    fn task_report(
        &self,
        arena: &TaskArena,
        slot: usize,
        vm_mgr: Option<VmId>,
        scratch: &mut String,
    ) -> TaskReport {
        let plan = &arena.plans[slot];
        let tid = arena.tids[slot];
        let metrics = self.platform.kernel().metrics();
        let (completions, ift_norm) =
            Node::mark_windows(metrics, arena.mark_keys[slot], arena.periods_ms[slot]);
        let misses = ift_norm
            .iter()
            .filter(|&&x| x > NodeReport::MISS_FACTOR)
            .count() as u32;
        let dropped = metrics.counter(Node::metric_name(scratch, &plan.label, ".dropped")) as u32;
        let attached = match vm_mgr {
            Some(vm) => self
                .platform
                .guest_manager(vm)
                .is_some_and(|mgr| mgr.server_of(tid).is_some()),
            None => self.platform.host_manager().server_of(tid).is_some(),
        };
        let attach_delay_ms = metrics
            .marks(Node::metric_name(scratch, &plan.label, ".attached"))
            .first()
            .map(|&t| t.saturating_since(plan.arrival).as_ms_f64());
        TaskReport {
            fleet_id: plan.fleet_id as u32,
            label: plan.label.clone(),
            realtime: plan.kind.is_realtime(),
            attached,
            migrated: plan.migrated,
            in_vm: vm_mgr.is_some(),
            completions,
            misses,
            dropped,
            ift_norm,
            attach_delay_ms,
        }
    }

    /// Re-materialises a retired task's report from its frozen record and
    /// the kernel's persistent mark store — byte-identical to what the
    /// slot would have reported had it never been recycled (a departed
    /// task always counted as attached: its reservation was released).
    fn retired_report(&self, r: &RetiredTask, in_vm: bool) -> TaskReport {
        let metrics = self.platform.kernel().metrics();
        let (completions, ift_norm) = Node::mark_windows(metrics, r.mark, r.period_ms);
        let misses = ift_norm
            .iter()
            .filter(|&&x| x > NodeReport::MISS_FACTOR)
            .count() as u32;
        TaskReport {
            fleet_id: r.fleet_id,
            label: r.label.clone(),
            realtime: r.realtime,
            attached: true,
            migrated: r.migrated,
            in_vm,
            completions,
            misses,
            dropped: r.dropped,
            ift_norm,
            attach_delay_ms: r.attach_delay_ms,
        }
    }

    /// Completion count and period-normalised inter-completion gaps of a
    /// mark stream (empty for kinds without marks).
    fn mark_windows(
        metrics: &selftune_simcore::metrics::Metrics,
        mark: Option<MetricKey>,
        period_ms: Option<f64>,
    ) -> (u32, Vec<f64>) {
        match (mark, period_ms) {
            (Some(key), Some(p)) => {
                let marks = metrics.marks_k(key);
                let norm: Vec<f64> = marks
                    .windows(2)
                    .map(|w| (w[1] - w[0]).as_ms_f64() / p)
                    .collect();
                (marks.len() as u32, norm)
            }
            _ => (0, Vec::new()),
        }
    }

    /// Extracts the node's contribution to the fleet aggregate.
    ///
    /// Deadline misses are derived from completion gaps: a task with
    /// nominal period `P` misses when a completion-to-completion gap
    /// exceeds [`NodeReport::MISS_FACTOR`]` × P`. Guest tasks report after
    /// the node's flat tasks, in (VM, spawn) order.
    pub fn report(&self, horizon: Time) -> NodeReport {
        self.report_mode(horizon, true)
    }

    /// [`Node::report`] with the retention mode explicit. `detailed`
    /// keeps every per-task [`TaskReport`] (the small-fleet default);
    /// otherwise each task is folded into [`NodeTotals`] counters and
    /// [`NodeSketches`] histograms as it is visited and dropped — O(1)
    /// retained state per task, the fleet-scale mode behind
    /// `ClusterRunner::with_sketch_aggregates`.
    pub fn report_mode(&self, horizon: Time, detailed: bool) -> NodeReport {
        let busy = self.platform.kernel().busy_time();
        let span = horizon.saturating_since(Time::ZERO);
        let utilisation = if span.is_zero() {
            0.0
        } else {
            busy.ratio(span)
        };
        let reserved_bw = self.platform.host_reserved_bandwidth();
        let ctx_switches = self.platform.kernel().context_switches();
        let mut scratch = String::new();
        if detailed {
            let mut tasks = Vec::new();
            for (idx, is_retired) in self.tasks.admission_order() {
                tasks.push(if is_retired {
                    self.retired_report(&self.tasks.retired[idx], false)
                } else {
                    self.task_report(&self.tasks, idx, None, &mut scratch)
                });
            }
            for rt in &self.vms {
                for (idx, is_retired) in rt.guests.admission_order() {
                    tasks.push(if is_retired {
                        self.retired_report(&rt.guests.retired[idx], true)
                    } else {
                        self.task_report(&rt.guests, idx, Some(rt.vm), &mut scratch)
                    });
                }
            }
            return NodeReport::from_tasks(self.id, tasks, utilisation, reserved_bw, ctx_switches);
        }
        // The fleet-scale fold streams each task's mark windows straight
        // into the counters and sketches — no `TaskReport` (label clone +
        // gap vector) is ever materialised. Visit order is admission
        // order: sketch float sums are order-sensitive, and byte-identity
        // with the pre-recycling slot walk demands the same sequence.
        let mut totals = NodeTotals::default();
        let mut sk = NodeSketches::new();
        self.fold_arena(&self.tasks, None, &mut scratch, &mut totals, &mut sk);
        for rt in &self.vms {
            self.fold_arena(&rt.guests, Some(rt.vm), &mut scratch, &mut totals, &mut sk);
        }
        NodeReport::from_sketches(self.id, totals, sk, utilisation, reserved_bw, ctx_switches)
    }

    /// Folds every task ever admitted to `arena` (live and retired, in
    /// admission order) into the sketch-mode accumulators.
    fn fold_arena(
        &self,
        arena: &TaskArena,
        vm_mgr: Option<VmId>,
        scratch: &mut String,
        totals: &mut NodeTotals,
        sk: &mut NodeSketches,
    ) {
        let metrics = self.platform.kernel().metrics();
        for (idx, is_retired) in arena.admission_order() {
            let (realtime, migrated, mark, period_ms, dropped, attach_delay_ms);
            if is_retired {
                let r = &arena.retired[idx];
                realtime = r.realtime;
                migrated = r.migrated;
                mark = r.mark;
                period_ms = r.period_ms;
                dropped = u64::from(r.dropped);
                attach_delay_ms = r.attach_delay_ms;
            } else {
                let plan = &arena.plans[idx];
                realtime = plan.kind.is_realtime();
                migrated = plan.migrated;
                mark = arena.mark_keys[idx];
                period_ms = arena.periods_ms[idx];
                dropped = metrics.counter(Node::metric_name(scratch, &plan.label, ".dropped"));
                // Attach delays only feed the (migrated-only) hand-over
                // sketches — skip the mark lookup for everything else.
                attach_delay_ms = if migrated {
                    metrics
                        .marks(Node::metric_name(scratch, &plan.label, ".attached"))
                        .first()
                        .map(|&t| t.saturating_since(plan.arrival).as_ms_f64())
                } else {
                    None
                };
            }
            totals.tasks += 1;
            if realtime {
                totals.rt_tasks += 1;
            }
            totals.dropped += dropped;
            if let (Some(key), Some(p)) = (mark, period_ms) {
                let marks = metrics.marks_k(key);
                totals.completions += marks.len() as u64;
                totals.gaps += marks.len().saturating_sub(1) as u64;
                for w in marks.windows(2) {
                    let g = (w[1] - w[0]).as_ms_f64() / p;
                    if g > NodeReport::MISS_FACTOR {
                        totals.misses += 1;
                    }
                    sk.gaps.record(g);
                    if migrated {
                        sk.post_migration.record(g);
                    }
                }
            }
            // Attach delays feed the migration hand-over metrics, which
            // only read migrated incarnations — mirror that filter here.
            if migrated {
                if let Some(d) = attach_delay_ms {
                    if vm_mgr.is_some() {
                        sk.vm_attach.record(d);
                    } else {
                        sk.attach.record(d);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{RebalanceSpec, ScenarioSpec};

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec::new("node-test", 1, 0, Dur::secs(3))
    }

    fn rt_task(fleet_id: usize, label: &str) -> NodeTask {
        NodeTask {
            fleet_id,
            label: label.into(),
            kind: TaskKind::PeriodicRt {
                wcet: Dur::ms(4),
                period: Dur::ms(40),
            },
            arrival: Time::ZERO,
            departure: None,
            seed: 11,
            migrated: false,
            warm: None,
        }
    }

    #[test]
    fn node_attaches_and_reports() {
        let spec = tiny_spec();
        let mut node = Node::new(0, &spec);
        node.add_task(NodeTask {
            seed: 7,
            ..rt_task(0, "t000")
        });
        let horizon = Time::ZERO + spec.horizon;
        node.run_to_horizon(horizon);
        let report = node.report(horizon);
        assert_eq!(report.node, 0);
        assert_eq!(report.tasks.len(), 1);
        let t = &report.tasks[0];
        assert!(t.attached, "manager attached a reservation");
        assert!(t.completions > 50, "jobs completed: {}", t.completions);
        assert!(
            t.attach_delay_ms.expect("attached") > 0.0,
            "cold start detects first"
        );
        assert!(report.utilisation > 0.05 && report.utilisation < 0.5);
        assert!(report.reserved_bw > 0.05);
    }

    #[test]
    fn lease_departs_and_releases_bandwidth() {
        let spec = tiny_spec();
        let mut node = Node::new(0, &spec);
        node.add_task(NodeTask {
            departure: Some(Time::ZERO + Dur::ms(1800)),
            seed: 7,
            ..rt_task(0, "t000")
        });
        let horizon = Time::ZERO + spec.horizon;
        node.run_to_horizon(horizon);
        let report = node.report(horizon);
        // The task left; its reservation was shrunk to the floor.
        assert!(report.reserved_bw < 0.05, "residual {}", report.reserved_bw);
        let t = &report.tasks[0];
        assert!(t.completions > 20 && t.completions < 60);
    }

    #[test]
    fn overload_window_is_bounded() {
        let spec = tiny_spec();
        let mut node = Node::new(0, &spec);
        node.inject_overload(&OverloadWindow {
            start: Dur::ms(500),
            end: Dur::ms(1500),
            hogs_per_node: 1,
            chunk: Dur::ms(10),
            nodes: crate::spec::NodeFilter::All,
        });
        let horizon = Time::ZERO + spec.horizon;
        node.run_to_horizon(horizon);
        let report = node.report(horizon);
        // The hog burns CPU only inside its window (~1s of the 3s run).
        assert!(
            report.utilisation > 0.25 && report.utilisation < 0.5,
            "utilisation {}",
            report.utilisation
        );
    }

    #[test]
    fn overload_skips_unmatched_nodes() {
        let spec = tiny_spec();
        let mut node = Node::new(3, &spec);
        node.inject_overload(&OverloadWindow {
            start: Dur::ms(500),
            end: Dur::ms(1500),
            hogs_per_node: 1,
            chunk: Dur::ms(10),
            nodes: crate::spec::NodeFilter::First(2),
        });
        let horizon = Time::ZERO + spec.horizon;
        node.run_to_horizon(horizon);
        // Node 3 is outside First(2): no hog ran, the node stayed idle.
        assert!(node.report(horizon).utilisation < 0.01);
    }

    #[test]
    fn feedback_reports_epoch_deltas_and_live_tasks() {
        let spec = tiny_spec();
        let mut node = Node::new(0, &spec);
        node.add_task(rt_task(7, "t007"));
        let e1 = Time::ZERO + Dur::ms(1_000);
        node.run_to_horizon(e1);
        let fb1 = node.feedback(e1);
        assert_eq!(fb1.node, 0);
        assert!(fb1.gaps > 10, "first epoch saw gaps: {}", fb1.gaps);
        assert_eq!(fb1.live_rt.len(), 1);
        assert_eq!(fb1.live_rt[0].fleet_id, 7);
        assert!(fb1.live_rt[0].movable, "resident since t=0");
        // A 4/40 task measurably burns ~10% CPU.
        let bw = fb1.live_rt[0].measured_bw;
        assert!(bw > 0.05 && bw < 0.25, "measured bw {bw}");
        assert!(fb1.utilisation > 0.05);

        // The second snapshot counts only the second epoch's gaps, and by
        // now the manager has attached — the granted pair rides along.
        let e2 = Time::ZERO + Dur::ms(2_000);
        node.run_to_horizon(e2);
        let fb2 = node.feedback(e2);
        assert!(
            fb2.gaps >= 20 && fb2.gaps <= 30,
            "epoch delta, not running total: {}",
            fb2.gaps
        );
        let (budget, period) = fb2.live_rt[0].granted.expect("attached by 2s");
        assert!((period.as_ms_f64() - 40.0).abs() < 2.0, "{period}");
        assert!(budget > Dur::ms(2) && budget < Dur::ms(12), "{budget}");
    }

    #[test]
    fn extract_task_stops_work_and_carries_warm_state() {
        let spec = tiny_spec();
        let mut node = Node::new(0, &spec);
        node.add_task(rt_task(0, "t000"));
        let e1 = Time::ZERO + Dur::ms(2_000);
        node.run_to_horizon(e1);
        assert!(node.feedback(e1).live_rt.len() == 1);

        let warm = node.extract_task(0).expect("live task extracts");
        let warm = warm.expect("attached task carries its grant");
        assert!((warm.period.as_ms_f64() - 40.0).abs() < 2.0);
        assert!(node.extract_task(0).is_none(), "second extraction no-ops");
        assert!(node.extract_task(99).is_none(), "unknown fleet id no-ops");

        let e2 = Time::ZERO + Dur::ms(3_000);
        node.run_to_horizon(e2);
        let fb = node.feedback(e2);
        assert!(fb.live_rt.is_empty(), "extracted task left the live set");
        assert_eq!(fb.gaps, 0, "no completions after extraction");
        // The reservation was shrunk back to (almost) nothing.
        let report = node.report(e2);
        assert!(report.reserved_bw < 0.05, "residual {}", report.reserved_bw);
        assert!(report.tasks[0].completions > 0, "pre-extraction work kept");
    }

    #[test]
    fn warm_started_task_attaches_at_arrival() {
        let spec = tiny_spec();
        let mut node = Node::new(0, &spec);
        node.add_task(NodeTask {
            migrated: true,
            warm: Some(WarmStart {
                budget: Dur::ms(5),
                period: Dur::ms(40),
            }),
            ..rt_task(0, "t000m")
        });
        let horizon = Time::ZERO + Dur::ms(1500);
        node.run_to_horizon(horizon);
        let report = node.report(horizon);
        let t = &report.tasks[0];
        assert!(t.attached);
        assert_eq!(t.attach_delay_ms, Some(0.0), "no hand-over gap");
        assert!(t.completions > 30, "ran from the start: {}", t.completions);
    }

    fn vm_plan(fleet_vm_id: usize) -> NodeVm {
        NodeVm {
            fleet_vm_id,
            label: format!("v{fleet_vm_id:02}"),
            budget: Dur::ms(3),
            period: Dur::ms(10),
            guests: vec![NodeTask {
                seed: 5,
                ..rt_task(1000 + fleet_vm_id, &format!("v{fleet_vm_id:02}g0"))
            }],
            arrival: Time::ZERO,
            migrated: false,
            elastic: false,
        }
    }

    #[test]
    fn vm_guests_run_under_their_own_manager_and_report() {
        let spec = tiny_spec();
        let mut node = Node::new(0, &spec);
        node.add_task(rt_task(0, "t000"));
        node.add_vm(vm_plan(0));
        let horizon = Time::ZERO + spec.horizon;
        node.run_to_horizon(horizon);
        let report = node.report(horizon);
        assert_eq!(report.tasks.len(), 2, "flat task + guest task");
        let guest = &report.tasks[1];
        assert_eq!(guest.fleet_id, 1000);
        assert!(guest.attached, "guest attached inside the VM");
        assert!(guest.completions > 40, "guest ran: {}", guest.completions);
        // The host books the flat task's reservation plus the VM share.
        assert!(report.reserved_bw > 0.3, "booked {}", report.reserved_bw);

        let mut node2 = Node::new(0, &spec);
        node2.add_vm(vm_plan(0));
        let e1 = Time::ZERO + Dur::ms(1000);
        node2.run_to_horizon(e1);
        let fb = node2.feedback(e1);
        assert_eq!(fb.live_vms.len(), 1);
        assert!((fb.live_vms[0].share - 0.3).abs() < 1e-9);
        assert!(fb.live_vms[0].measured_bw > 0.05);
        assert!(fb.live_vms[0].movable);
        assert!(fb.gaps > 10, "guest gaps feed node pressure: {}", fb.gaps);
    }

    #[test]
    fn elastic_vm_feedback_reports_granted_share_and_guest_grants() {
        // Warm rebalance on, so the node carries guest grants for the
        // (non-elastic) migratable VM.
        let spec = tiny_spec().with_rebalance(RebalanceSpec {
            enabled: true,
            warm_start: true,
            ..RebalanceSpec::default()
        });
        let mut node = Node::new(0, &spec);
        node.add_vm(NodeVm {
            elastic: true,
            ..vm_plan(0)
        });
        node.add_vm(vm_plan(1));
        let e1 = Time::ZERO + Dur::ms(2_500);
        node.run_to_horizon(e1);
        let fb = node.feedback(e1);
        assert_eq!(fb.live_vms.len(), 2);

        let elastic = &fb.live_vms[0];
        assert!(elastic.elastic, "elastic flag must reach the rebalancer");
        // Elastic VMs are never eviction victims, so no warm state is
        // built for them.
        assert!(elastic.guest_grants.is_empty());
        // The reported share is the controller's live grant: the guest
        // books ~0.1 + margin, well below the nominal 0.3 — the
        // controller sheds the slack, freeing real placement headroom.
        assert!(
            elastic.share < 0.3 - 1e-9,
            "elastic share did not adapt below nominal: {}",
            elastic.share
        );
        assert!(
            elastic.share > 0.05,
            "share collapsed under demand: {}",
            elastic.share
        );

        // The static VM carries its attached guest's grant for a
        // warm-started migration, budget at no less than measured demand.
        let stat = &fb.live_vms[1];
        assert!(!stat.elastic);
        assert!((stat.share - 0.3).abs() < 1e-9, "static share frozen");
        assert_eq!(stat.guest_grants.len(), 1);
        let (fleet_id, warm) = stat.guest_grants[0];
        assert_eq!(fleet_id, 1001);
        assert!((warm.period.as_ms_f64() - 40.0).abs() < 2.0, "{:?}", warm);
        // A 4/40 guest burns ~0.1; the carried budget covers at least
        // that demand (with headroom) within the period.
        assert!(
            warm.budget >= warm.period.mul_f64(0.08),
            "carried budget below measured demand: {:?}",
            warm
        );
        assert!(warm.budget <= warm.period);
    }

    #[test]
    fn extract_vm_releases_share_and_stops_guests() {
        let spec = tiny_spec();
        let mut node = Node::new(0, &spec);
        node.add_vm(vm_plan(3));
        let e1 = Time::ZERO + Dur::ms(1000);
        node.run_to_horizon(e1);
        assert_eq!(node.feedback(e1).live_vms.len(), 1);

        assert!(node.extract_vm(3));
        assert!(!node.extract_vm(3), "second extraction is a no-op");
        assert!(!node.extract_vm(99), "unknown VM is a no-op");

        let e2 = Time::ZERO + Dur::ms(2000);
        node.run_to_horizon(e2);
        let fb = node.feedback(e2);
        assert!(fb.live_vms.is_empty());
        assert_eq!(fb.gaps, 0, "no guest completions after extraction");
        let report = node.report(e2);
        assert!(report.reserved_bw < 0.05, "residual {}", report.reserved_bw);
        assert!(report.tasks[0].completions > 0, "pre-extraction work kept");
    }
}
