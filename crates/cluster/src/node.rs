//! One fleet node: a kernel + tracer + self-tuning manager bundle that
//! runs its share of the scenario to the horizon.
//!
//! A node is exactly the paper's single-machine stack — the cluster layer
//! replicates it. Nodes are built *inside* their worker thread (the tracer
//! shares state through `Rc`, so a node never crosses threads); everything
//! needed to build one — the task plans — is plain `Send` data.

use selftune_apps::CpuHog;
use selftune_core::{ControllerConfig, ManagerConfig, SelfTuningManager};
use selftune_sched::{CbsMode, ReservationScheduler, Supervisor};
use selftune_simcore::kernel::TaskState;
use selftune_simcore::rng::Rng;
use selftune_simcore::task::{Action, TaskCtx, TaskId, Workload};
use selftune_simcore::time::{Dur, Time};
use selftune_simcore::Kernel;
use selftune_tracer::{Tracer, TracerConfig};

use crate::aggregate::{NodeReport, TaskReport};
use crate::spec::{OverloadWindow, ScenarioSpec, TaskKind};

/// A task's lifetime lease: delegates to the inner workload until the
/// deadline, then exits (simulating the user closing the application).
pub struct Lease {
    inner: Box<dyn Workload>,
    until: Time,
}

impl Lease {
    /// Wraps `inner` so it exits at the first scheduling opportunity at or
    /// after `until`.
    pub fn new(inner: Box<dyn Workload>, until: Time) -> Lease {
        Lease { inner, until }
    }
}

impl Workload for Lease {
    fn next(&mut self, ctx: &mut TaskCtx<'_>) -> Action {
        if ctx.now >= self.until {
            return Action::Exit;
        }
        self.inner.next(ctx)
    }
}

/// A task assigned to this node (the node-local slice of the fleet plan).
#[derive(Clone, Debug)]
pub struct NodeTask {
    /// Fleet-wide task index.
    pub fleet_id: usize,
    /// Metric label, unique fleet-wide (e.g. `"t042"`).
    pub label: String,
    /// What to run.
    pub kind: TaskKind,
    /// Arrival instant.
    pub arrival: Time,
    /// Departure instant, if the scenario churns tasks.
    pub departure: Option<Time>,
    /// Workload RNG seed (derived deterministically by the planner).
    pub seed: u64,
    /// Whether this incarnation was admitted through a live migration
    /// (rather than at its original fleet arrival).
    pub migrated: bool,
}

struct Managed {
    tid: TaskId,
    task: NodeTask,
    released: bool,
    /// CPU consumed up to the last feedback snapshot (for epoch deltas).
    fb_consumed: Dur,
    /// Cached completion-mark name (None for kinds without marks), so the
    /// per-epoch scan formats no strings.
    mark: Option<String>,
    /// Cached nominal period in milliseconds, for miss classification.
    period_ms: Option<f64>,
    /// Completion marks already scanned by previous feedback snapshots —
    /// each epoch only walks the marks it has not seen yet.
    fb_mark_pos: usize,
}

/// One live real-time task in a node's feedback snapshot.
#[derive(Clone, Copy, Debug)]
pub struct LiveRt {
    /// Fleet-wide task id.
    pub fleet_id: usize,
    /// CPU bandwidth the task *measurably* consumed over the epoch — what
    /// feedback-informed placement books instead of the nominal claim.
    pub measured_bw: f64,
    /// Resident on this node for the whole epoch → migration candidate. A
    /// task that just landed has produced no feedback on its new placement
    /// yet, and re-moving it would be thrash, not feedback.
    pub movable: bool,
}

/// What a node *measured* over the last epoch — the live signal the fleet
/// rebalancer feeds on, as opposed to the nominal demand the initial
/// placement trusted.
#[derive(Clone, Debug, Default)]
pub struct NodeFeedback {
    /// The reporting node.
    pub node: usize,
    /// CPU busy fraction over the epoch.
    pub utilisation: f64,
    /// Completion gaps observed during the epoch.
    pub gaps: u64,
    /// Gaps that exceeded the miss factor during the epoch.
    pub misses: u64,
    /// Supervisor grants compressed below request during the epoch.
    pub compressions: u64,
    /// Real-time tasks currently alive on this node (started, not exited,
    /// not already extracted) with their measured bandwidth, sorted by
    /// fleet id.
    pub live_rt: Vec<LiveRt>,
}

impl NodeFeedback {
    /// Epoch deadline-miss rate (zero when no gaps were observed).
    pub fn miss_rate(&self) -> f64 {
        if self.gaps == 0 {
            0.0
        } else {
            self.misses as f64 / self.gaps as f64
        }
    }
}

/// Running totals behind the per-epoch deltas of [`NodeFeedback`] (the
/// per-task gap positions live in each `Managed` entry).
#[derive(Clone, Copy, Debug, Default)]
struct FeedbackMark {
    busy: Dur,
    compressions: u64,
    at: Option<Time>,
}

/// One simulated machine of the fleet.
pub struct Node {
    id: usize,
    kernel: Kernel<ReservationScheduler>,
    manager: SelfTuningManager,
    sampling: Dur,
    tasks: Vec<Managed>,
    fb_mark: FeedbackMark,
}

impl Node {
    /// Builds the node's kernel/tracer/manager stack per the spec.
    pub fn new(id: usize, spec: &ScenarioSpec) -> Node {
        let mut kernel = Kernel::new(ReservationScheduler::with_fair_slice(Dur::ms(4)));
        let (hook, reader) = Tracer::create(TracerConfig {
            capacity: 1 << 16,
            ..TracerConfig::default()
        });
        kernel.install_hook(Box::new(hook));
        let manager = SelfTuningManager::new(
            ManagerConfig {
                sampling: spec.sampling,
                supervisor: Supervisor::new(spec.ulub),
                cbs_mode: CbsMode::Hard,
            },
            reader,
        );
        Node {
            id,
            kernel,
            manager,
            sampling: spec.sampling,
            tasks: Vec::new(),
            fb_mark: FeedbackMark::default(),
        }
    }

    /// The node's id within the fleet.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Adds a planned task: spawns its workload at the arrival instant
    /// (wrapped in a [`Lease`] when it departs) and, for real-time kinds,
    /// puts it under the self-tuning manager.
    pub fn add_task(&mut self, plan: NodeTask) {
        let rng = Rng::new(plan.seed);
        let mut workload = plan.kind.instantiate(&plan.label, rng);
        if let Some(dep) = plan.departure {
            workload = Box::new(Lease::new(workload, dep));
        }
        let tid = self.kernel.spawn_at(&plan.label, workload, plan.arrival);
        if plan.kind.is_realtime() {
            self.manager
                .manage(tid, &plan.label, ControllerConfig::default());
        }
        let mark = plan.kind.mark_name(&plan.label);
        let period_ms = plan.kind.nominal().map(|t| t.period);
        self.tasks.push(Managed {
            tid,
            task: plan,
            released: false,
            fb_consumed: Dur::ZERO,
            mark,
            period_ms,
            fb_mark_pos: 0,
        });
    }

    /// Injects `window.hogs_per_node` fair-class CPU hogs for the span of
    /// the overload window, if this node is targeted by the window's
    /// [`NodeFilter`](crate::spec::NodeFilter).
    pub fn inject_overload(&mut self, window: &OverloadWindow) {
        if !window.nodes.matches(self.id) {
            return;
        }
        for h in 0..window.hogs_per_node {
            let hog = Box::new(CpuHog::new(window.chunk));
            let leased = Box::new(Lease::new(hog, Time::ZERO + window.end));
            self.kernel.spawn_at(
                &format!("hog{}w{h}", self.id),
                leased,
                Time::ZERO + window.start,
            );
        }
    }

    /// Runs to the horizon, stepping the manager every sampling period and
    /// releasing the reservations of departed tasks along the way.
    pub fn run_to_horizon(&mut self, horizon: Time) {
        while self.kernel.now() < horizon {
            let next = (self.kernel.now() + self.sampling).min(horizon);
            self.kernel.run_until(next);
            for m in &mut self.tasks {
                if !m.released
                    && m.task.kind.is_realtime()
                    && self.kernel.task_state(m.tid) == TaskState::Exited
                {
                    self.manager.unmanage(&mut self.kernel, m.tid);
                    m.released = true;
                }
            }
            self.manager.step(&mut self.kernel);
        }
    }

    /// Publishes the feedback snapshot for the epoch ending at `now` and
    /// re-arms the epoch counters: measured utilisation, deadline-miss
    /// rate and supervisor compressions *since the previous snapshot*,
    /// plus the live real-time task set.
    ///
    /// The gap scan is incremental — each task remembers how many
    /// completion marks previous snapshots consumed — so an epoch
    /// boundary costs O(new marks), not O(marks since t = 0).
    pub fn feedback(&mut self, now: Time) -> NodeFeedback {
        let busy = self.kernel.busy_time();
        let compressions = self.manager.compressed_grants();
        let span = now.saturating_since(self.fb_mark.at.unwrap_or(Time::ZERO));
        let epoch_busy = busy.saturating_sub(self.fb_mark.busy);
        let prev = self.fb_mark.at.unwrap_or(Time::ZERO);
        let mut gaps = 0u64;
        let mut misses = 0u64;
        let mut live_rt: Vec<LiveRt> = Vec::new();
        for m in &mut self.tasks {
            if let (Some(name), Some(period_ms)) = (&m.mark, m.period_ms) {
                let marks = self.kernel.metrics().marks(name);
                while m.fb_mark_pos + 1 < marks.len() {
                    let gap_ms = (marks[m.fb_mark_pos + 1] - marks[m.fb_mark_pos]).as_ms_f64();
                    gaps += 1;
                    if gap_ms / period_ms > NodeReport::MISS_FACTOR {
                        misses += 1;
                    }
                    m.fb_mark_pos += 1;
                }
            }
            let live = m.task.kind.is_realtime()
                && !m.released
                && matches!(
                    self.kernel.task_state(m.tid),
                    TaskState::Ready | TaskState::Blocked
                );
            if !live {
                continue;
            }
            let consumed = self.kernel.thread_time(m.tid);
            let epoch_consumed = consumed.saturating_sub(m.fb_consumed);
            m.fb_consumed = consumed;
            // Normalise by the task's *residency* in the epoch, not the
            // whole epoch: a task that landed mid-epoch burned its share
            // over a shorter window.
            let resident = now.saturating_since(if m.task.arrival > prev {
                m.task.arrival
            } else {
                prev
            });
            live_rt.push(LiveRt {
                fleet_id: m.task.fleet_id,
                measured_bw: if resident.is_zero() {
                    0.0
                } else {
                    epoch_consumed.ratio(resident)
                },
                movable: m.task.arrival <= prev,
            });
        }
        live_rt.sort_unstable_by_key(|t| t.fleet_id);
        let fb = NodeFeedback {
            node: self.id,
            utilisation: if span.is_zero() {
                0.0
            } else {
                epoch_busy.ratio(span)
            },
            gaps,
            misses,
            compressions: compressions - self.fb_mark.compressions,
            live_rt,
        };
        self.fb_mark = FeedbackMark {
            busy,
            compressions,
            at: Some(now),
        };
        fb
    }

    /// Extracts a running task for migration: releases its reservation,
    /// terminates its kernel incarnation and returns `true`. The task's
    /// completions so far stay in this node's report; the runner re-admits
    /// the plan (kind, lifetime, fresh seed) on the destination node.
    ///
    /// Returns `false` when the task is unknown, already departed or
    /// already extracted — the migration is then dropped.
    pub fn extract_task(&mut self, fleet_id: usize) -> bool {
        let Some(m) = self
            .tasks
            .iter_mut()
            .find(|m| m.task.fleet_id == fleet_id && !m.released)
        else {
            return false;
        };
        let tid = m.tid;
        let realtime = m.task.kind.is_realtime();
        if self.kernel.task_state(tid) == TaskState::Exited {
            return false;
        }
        m.released = true;
        if realtime {
            self.manager.unmanage(&mut self.kernel, tid);
        }
        self.kernel.kill(tid);
        true
    }

    /// Extracts the node's contribution to the fleet aggregate.
    ///
    /// Deadline misses are derived from completion gaps: a task with
    /// nominal period `P` misses when a completion-to-completion gap
    /// exceeds [`NodeReport::MISS_FACTOR`]` × P`.
    pub fn report(&self, horizon: Time) -> NodeReport {
        let metrics = self.kernel.metrics();
        let mut tasks = Vec::new();
        for m in &self.tasks {
            let nominal = m.task.kind.nominal();
            let mark = m.task.kind.mark_name(&m.task.label);
            let (completions, ift_norm) = match (&mark, &nominal) {
                (Some(name), Some(t)) => {
                    let gaps = metrics.inter_mark_times_ms(name);
                    let norm: Vec<f64> = gaps.iter().map(|&g| g / t.period).collect();
                    (metrics.marks(name).len() as u64, norm)
                }
                _ => (0, Vec::new()),
            };
            let misses = ift_norm
                .iter()
                .filter(|&&x| x > NodeReport::MISS_FACTOR)
                .count() as u64;
            let dropped = metrics.counter(&format!("{}.dropped", m.task.label));
            tasks.push(TaskReport {
                fleet_id: m.task.fleet_id,
                label: m.task.label.clone(),
                realtime: m.task.kind.is_realtime(),
                attached: self.manager.server_of(m.tid).is_some() || m.released,
                migrated: m.task.migrated,
                completions,
                misses,
                dropped,
                ift_norm,
            });
        }
        let busy = self.kernel.busy_time();
        let span = horizon.saturating_since(Time::ZERO);
        NodeReport {
            node: self.id,
            tasks,
            utilisation: if span.is_zero() {
                0.0
            } else {
                busy.ratio(span)
            },
            reserved_bw: self.kernel.sched().total_reserved_bandwidth(),
            ctx_switches: self.kernel.context_switches(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec::new("node-test", 1, 0, Dur::secs(3))
    }

    #[test]
    fn node_attaches_and_reports() {
        let spec = tiny_spec();
        let mut node = Node::new(0, &spec);
        node.add_task(NodeTask {
            fleet_id: 0,
            label: "t000".into(),
            kind: TaskKind::PeriodicRt {
                wcet: Dur::ms(4),
                period: Dur::ms(40),
            },
            arrival: Time::ZERO,
            departure: None,
            seed: 7,
            migrated: false,
        });
        let horizon = Time::ZERO + spec.horizon;
        node.run_to_horizon(horizon);
        let report = node.report(horizon);
        assert_eq!(report.node, 0);
        assert_eq!(report.tasks.len(), 1);
        let t = &report.tasks[0];
        assert!(t.attached, "manager attached a reservation");
        assert!(t.completions > 50, "jobs completed: {}", t.completions);
        assert!(report.utilisation > 0.05 && report.utilisation < 0.5);
        assert!(report.reserved_bw > 0.05);
    }

    #[test]
    fn lease_departs_and_releases_bandwidth() {
        let spec = tiny_spec();
        let mut node = Node::new(0, &spec);
        node.add_task(NodeTask {
            fleet_id: 0,
            label: "t000".into(),
            kind: TaskKind::PeriodicRt {
                wcet: Dur::ms(4),
                period: Dur::ms(40),
            },
            arrival: Time::ZERO,
            departure: Some(Time::ZERO + Dur::ms(1800)),
            seed: 7,
            migrated: false,
        });
        let horizon = Time::ZERO + spec.horizon;
        node.run_to_horizon(horizon);
        let report = node.report(horizon);
        // The task left; its reservation was shrunk to the floor.
        assert!(report.reserved_bw < 0.05, "residual {}", report.reserved_bw);
        let t = &report.tasks[0];
        assert!(t.completions > 20 && t.completions < 60);
    }

    #[test]
    fn overload_window_is_bounded() {
        let spec = tiny_spec();
        let mut node = Node::new(0, &spec);
        node.inject_overload(&OverloadWindow {
            start: Dur::ms(500),
            end: Dur::ms(1500),
            hogs_per_node: 1,
            chunk: Dur::ms(10),
            nodes: crate::spec::NodeFilter::All,
        });
        let horizon = Time::ZERO + spec.horizon;
        node.run_to_horizon(horizon);
        let report = node.report(horizon);
        // The hog burns CPU only inside its window (~1s of the 3s run).
        assert!(
            report.utilisation > 0.25 && report.utilisation < 0.5,
            "utilisation {}",
            report.utilisation
        );
    }

    #[test]
    fn overload_skips_unmatched_nodes() {
        let spec = tiny_spec();
        let mut node = Node::new(3, &spec);
        node.inject_overload(&OverloadWindow {
            start: Dur::ms(500),
            end: Dur::ms(1500),
            hogs_per_node: 1,
            chunk: Dur::ms(10),
            nodes: crate::spec::NodeFilter::First(2),
        });
        let horizon = Time::ZERO + spec.horizon;
        node.run_to_horizon(horizon);
        // Node 3 is outside First(2): no hog ran, the node stayed idle.
        assert!(node.report(horizon).utilisation < 0.01);
    }

    fn rt_task(fleet_id: usize, label: &str) -> NodeTask {
        NodeTask {
            fleet_id,
            label: label.into(),
            kind: TaskKind::PeriodicRt {
                wcet: Dur::ms(4),
                period: Dur::ms(40),
            },
            arrival: Time::ZERO,
            departure: None,
            seed: 11,
            migrated: false,
        }
    }

    #[test]
    fn feedback_reports_epoch_deltas_and_live_tasks() {
        let spec = tiny_spec();
        let mut node = Node::new(0, &spec);
        node.add_task(rt_task(7, "t007"));
        let e1 = Time::ZERO + Dur::ms(1_000);
        node.run_to_horizon(e1);
        let fb1 = node.feedback(e1);
        assert_eq!(fb1.node, 0);
        assert!(fb1.gaps > 10, "first epoch saw gaps: {}", fb1.gaps);
        assert_eq!(fb1.live_rt.len(), 1);
        assert_eq!(fb1.live_rt[0].fleet_id, 7);
        assert!(fb1.live_rt[0].movable, "resident since t=0");
        // A 4/40 task measurably burns ~10% CPU.
        let bw = fb1.live_rt[0].measured_bw;
        assert!(bw > 0.05 && bw < 0.25, "measured bw {bw}");
        assert!(fb1.utilisation > 0.05);

        // The second snapshot counts only the second epoch's gaps.
        let e2 = Time::ZERO + Dur::ms(2_000);
        node.run_to_horizon(e2);
        let fb2 = node.feedback(e2);
        assert!(
            fb2.gaps >= 20 && fb2.gaps <= 30,
            "epoch delta, not running total: {}",
            fb2.gaps
        );
    }

    #[test]
    fn extract_task_stops_work_and_leaves_the_live_set() {
        let spec = tiny_spec();
        let mut node = Node::new(0, &spec);
        node.add_task(rt_task(0, "t000"));
        let e1 = Time::ZERO + Dur::ms(1_000);
        node.run_to_horizon(e1);
        assert!(node.feedback(e1).live_rt.len() == 1);

        assert!(node.extract_task(0), "live task extracts");
        assert!(!node.extract_task(0), "second extraction is a no-op");
        assert!(!node.extract_task(99), "unknown fleet id is a no-op");

        let e2 = Time::ZERO + Dur::ms(2_000);
        node.run_to_horizon(e2);
        let fb = node.feedback(e2);
        assert!(fb.live_rt.is_empty(), "extracted task left the live set");
        assert_eq!(fb.gaps, 0, "no completions after extraction");
        // The reservation was shrunk back to (almost) nothing.
        let report = node.report(e2);
        assert!(report.reserved_bw < 0.05, "residual {}", report.reserved_bw);
        assert!(report.tasks[0].completions > 0, "pre-extraction work kept");
    }
}
