//! One fleet node: a kernel + tracer + self-tuning manager bundle that
//! runs its share of the scenario to the horizon.
//!
//! A node is exactly the paper's single-machine stack — the cluster layer
//! replicates it. Nodes are built *inside* their worker thread (the tracer
//! shares state through `Rc`, so a node never crosses threads); everything
//! needed to build one — the task plans — is plain `Send` data.

use selftune_apps::CpuHog;
use selftune_core::{ControllerConfig, ManagerConfig, SelfTuningManager};
use selftune_sched::{CbsMode, ReservationScheduler, Supervisor};
use selftune_simcore::kernel::TaskState;
use selftune_simcore::rng::Rng;
use selftune_simcore::task::{Action, TaskCtx, TaskId, Workload};
use selftune_simcore::time::{Dur, Time};
use selftune_simcore::Kernel;
use selftune_tracer::{Tracer, TracerConfig};

use crate::aggregate::{NodeReport, TaskReport};
use crate::spec::{OverloadWindow, ScenarioSpec, TaskKind};

/// A task's lifetime lease: delegates to the inner workload until the
/// deadline, then exits (simulating the user closing the application).
pub struct Lease {
    inner: Box<dyn Workload>,
    until: Time,
}

impl Lease {
    /// Wraps `inner` so it exits at the first scheduling opportunity at or
    /// after `until`.
    pub fn new(inner: Box<dyn Workload>, until: Time) -> Lease {
        Lease { inner, until }
    }
}

impl Workload for Lease {
    fn next(&mut self, ctx: &mut TaskCtx<'_>) -> Action {
        if ctx.now >= self.until {
            return Action::Exit;
        }
        self.inner.next(ctx)
    }
}

/// A task assigned to this node (the node-local slice of the fleet plan).
#[derive(Clone, Debug)]
pub struct NodeTask {
    /// Fleet-wide task index.
    pub fleet_id: usize,
    /// Metric label, unique fleet-wide (e.g. `"t042"`).
    pub label: String,
    /// What to run.
    pub kind: TaskKind,
    /// Arrival instant.
    pub arrival: Time,
    /// Departure instant, if the scenario churns tasks.
    pub departure: Option<Time>,
    /// Workload RNG seed (derived deterministically by the planner).
    pub seed: u64,
}

struct Managed {
    tid: TaskId,
    task: NodeTask,
    released: bool,
}

/// One simulated machine of the fleet.
pub struct Node {
    id: usize,
    kernel: Kernel<ReservationScheduler>,
    manager: SelfTuningManager,
    sampling: Dur,
    tasks: Vec<Managed>,
}

impl Node {
    /// Builds the node's kernel/tracer/manager stack per the spec.
    pub fn new(id: usize, spec: &ScenarioSpec) -> Node {
        let mut kernel = Kernel::new(ReservationScheduler::with_fair_slice(Dur::ms(4)));
        let (hook, reader) = Tracer::create(TracerConfig {
            capacity: 1 << 16,
            ..TracerConfig::default()
        });
        kernel.install_hook(Box::new(hook));
        let manager = SelfTuningManager::new(
            ManagerConfig {
                sampling: spec.sampling,
                supervisor: Supervisor::new(spec.ulub),
                cbs_mode: CbsMode::Hard,
            },
            reader,
        );
        Node {
            id,
            kernel,
            manager,
            sampling: spec.sampling,
            tasks: Vec::new(),
        }
    }

    /// The node's id within the fleet.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Adds a planned task: spawns its workload at the arrival instant
    /// (wrapped in a [`Lease`] when it departs) and, for real-time kinds,
    /// puts it under the self-tuning manager.
    pub fn add_task(&mut self, plan: NodeTask) {
        let rng = Rng::new(plan.seed);
        let mut workload = plan.kind.instantiate(&plan.label, rng);
        if let Some(dep) = plan.departure {
            workload = Box::new(Lease::new(workload, dep));
        }
        let tid = self.kernel.spawn_at(&plan.label, workload, plan.arrival);
        if plan.kind.is_realtime() {
            self.manager
                .manage(tid, &plan.label, ControllerConfig::default());
        }
        self.tasks.push(Managed {
            tid,
            task: plan,
            released: false,
        });
    }

    /// Injects `window.hogs_per_node` fair-class CPU hogs for the span of
    /// the overload window.
    pub fn inject_overload(&mut self, window: &OverloadWindow) {
        for h in 0..window.hogs_per_node {
            let hog = Box::new(CpuHog::new(window.chunk));
            let leased = Box::new(Lease::new(hog, Time::ZERO + window.end));
            self.kernel.spawn_at(
                &format!("hog{}w{h}", self.id),
                leased,
                Time::ZERO + window.start,
            );
        }
    }

    /// Runs to the horizon, stepping the manager every sampling period and
    /// releasing the reservations of departed tasks along the way.
    pub fn run_to_horizon(&mut self, horizon: Time) {
        while self.kernel.now() < horizon {
            let next = (self.kernel.now() + self.sampling).min(horizon);
            self.kernel.run_until(next);
            for m in &mut self.tasks {
                if !m.released
                    && m.task.kind.is_realtime()
                    && self.kernel.task_state(m.tid) == TaskState::Exited
                {
                    self.manager.unmanage(&mut self.kernel, m.tid);
                    m.released = true;
                }
            }
            self.manager.step(&mut self.kernel);
        }
    }

    /// Extracts the node's contribution to the fleet aggregate.
    ///
    /// Deadline misses are derived from completion gaps: a task with
    /// nominal period `P` misses when a completion-to-completion gap
    /// exceeds [`NodeReport::MISS_FACTOR`]` × P`.
    pub fn report(&self, horizon: Time) -> NodeReport {
        let metrics = self.kernel.metrics();
        let mut tasks = Vec::new();
        for m in &self.tasks {
            let nominal = m.task.kind.nominal();
            let mark = m.task.kind.mark_name(&m.task.label);
            let (completions, ift_norm) = match (&mark, &nominal) {
                (Some(name), Some(t)) => {
                    let gaps = metrics.inter_mark_times_ms(name);
                    let norm: Vec<f64> = gaps.iter().map(|&g| g / t.period).collect();
                    (metrics.marks(name).len() as u64, norm)
                }
                _ => (0, Vec::new()),
            };
            let misses = ift_norm
                .iter()
                .filter(|&&x| x > NodeReport::MISS_FACTOR)
                .count() as u64;
            let dropped = metrics.counter(&format!("{}.dropped", m.task.label));
            tasks.push(TaskReport {
                fleet_id: m.task.fleet_id,
                label: m.task.label.clone(),
                realtime: m.task.kind.is_realtime(),
                attached: self.manager.server_of(m.tid).is_some() || m.released,
                completions,
                misses,
                dropped,
                ift_norm,
            });
        }
        let busy = self.kernel.busy_time();
        let span = horizon.saturating_since(Time::ZERO);
        NodeReport {
            node: self.id,
            tasks,
            utilisation: if span.is_zero() {
                0.0
            } else {
                busy.ratio(span)
            },
            reserved_bw: self.kernel.sched().total_reserved_bandwidth(),
            ctx_switches: self.kernel.context_switches(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec::new("node-test", 1, 0, Dur::secs(3))
    }

    #[test]
    fn node_attaches_and_reports() {
        let spec = tiny_spec();
        let mut node = Node::new(0, &spec);
        node.add_task(NodeTask {
            fleet_id: 0,
            label: "t000".into(),
            kind: TaskKind::PeriodicRt {
                wcet: Dur::ms(4),
                period: Dur::ms(40),
            },
            arrival: Time::ZERO,
            departure: None,
            seed: 7,
        });
        let horizon = Time::ZERO + spec.horizon;
        node.run_to_horizon(horizon);
        let report = node.report(horizon);
        assert_eq!(report.node, 0);
        assert_eq!(report.tasks.len(), 1);
        let t = &report.tasks[0];
        assert!(t.attached, "manager attached a reservation");
        assert!(t.completions > 50, "jobs completed: {}", t.completions);
        assert!(report.utilisation > 0.05 && report.utilisation < 0.5);
        assert!(report.reserved_bw > 0.05);
    }

    #[test]
    fn lease_departs_and_releases_bandwidth() {
        let spec = tiny_spec();
        let mut node = Node::new(0, &spec);
        node.add_task(NodeTask {
            fleet_id: 0,
            label: "t000".into(),
            kind: TaskKind::PeriodicRt {
                wcet: Dur::ms(4),
                period: Dur::ms(40),
            },
            arrival: Time::ZERO,
            departure: Some(Time::ZERO + Dur::ms(1800)),
            seed: 7,
        });
        let horizon = Time::ZERO + spec.horizon;
        node.run_to_horizon(horizon);
        let report = node.report(horizon);
        // The task left; its reservation was shrunk to the floor.
        assert!(report.reserved_bw < 0.05, "residual {}", report.reserved_bw);
        let t = &report.tasks[0];
        assert!(t.completions > 20 && t.completions < 60);
    }

    #[test]
    fn overload_window_is_bounded() {
        let spec = tiny_spec();
        let mut node = Node::new(0, &spec);
        node.inject_overload(&OverloadWindow {
            start: Dur::ms(500),
            end: Dur::ms(1500),
            hogs_per_node: 1,
            chunk: Dur::ms(10),
        });
        let horizon = Time::ZERO + spec.horizon;
        node.run_to_horizon(horizon);
        let report = node.report(horizon);
        // The hog burns CPU only inside its window (~1s of the 3s run).
        assert!(
            report.utilisation > 0.25 && report.utilisation < 0.5,
            "utilisation {}",
            report.utilisation
        );
    }
}
