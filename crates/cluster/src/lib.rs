//! # selftune-cluster
//!
//! Multi-node fleet simulation for the `selftune` reproduction of
//! *"Self-tuning Schedulers for Legacy Real-Time Applications"*
//! (EuroSys 2010): the paper's single-machine self-tuning stack —
//! tracer → period analyser → LFS++ feedback → CBS supervisor —
//! replicated across a fleet of simulated nodes and driven by one
//! declarative scenario.
//!
//! ## Architecture
//!
//! ```text
//!   ScenarioSpec ──► plan_fleet ──► Placer ──► per-node task slices
//!        │            (arrivals,    (minbudget admission,
//!        │             kinds,        first/worst/bandwidth-aware fit,
//!        │             lifetimes)    migration on rejection)
//!        ▼
//!   ClusterRunner ──► worker threads ──► Node = Kernel + Tracer
//!        │            (round-robin        + SelfTuningManager
//!        │             node deal)         run to horizon
//!        ▼
//!   AggregateMetrics: miss CDF, utilisation histogram,
//!                     admission counters, CSV export
//! ```
//!
//! * [`spec`] — declarative scenarios: node/task counts, weighted
//!   [`TaskMix`], arrival schedules, churn, overload windows.
//! * [`placer`] — cross-node admission: candidate ordering policies over
//!   per-node reserved bandwidth, backed by the
//!   [`selftune_analysis::min_bandwidth_single`] schedulability test.
//! * [`node`] — one machine: kernel, tracer and self-tuning manager
//!   bundled, with lifetime leases and overload injection.
//! * [`runner`] — the parallel scenario runner with stateless per-task
//!   seed derivation; same `(spec, seed)` ⇒ byte-identical aggregates at
//!   any thread count.
//! * [`aggregate`] — fleet-wide reducers and CSV export.
//!
//! ## Determinism
//!
//! Everything random is derived from `(spec, seed)` before any thread is
//! spawned: the plan (kinds, arrivals, lifetimes, per-task workload
//! seeds) and the placement. Worker threads only execute disjoint,
//! pre-assigned node simulations; reports are reassembled in node-id
//! order. [`AggregateMetrics::summary_csv`] over 1 thread and N threads
//! is byte-identical — a property test enforces it.
//!
//! ## Example
//!
//! ```
//! use selftune_cluster::prelude::*;
//! use selftune_simcore::time::Dur;
//!
//! let spec = ScenarioSpec::new("smoke", 4, 12, Dur::secs(2))
//!     .with_mix(TaskMix::rt_only())
//!     .with_policy(PolicyKind::WorstFit);
//! let fleet = ClusterRunner::new(2).run(&spec, 42);
//! assert_eq!(fleet.nodes.len(), 4);
//! assert!(fleet.completions() > 0);
//! println!("{}", fleet.render());
//! ```

pub mod aggregate;
pub mod node;
pub mod placer;
pub mod runner;
pub mod spec;

pub use aggregate::{AdmissionStats, AggregateMetrics, NodeReport, TaskReport};
pub use node::{Lease, Node, NodeTask};
pub use placer::{PlacementOutcome, Placer, PolicyKind};
pub use runner::{derive_task_seed, plan_fleet, ClusterRunner, FleetPlan, PlannedTask};
pub use spec::{ArrivalSchedule, Churn, OverloadWindow, ScenarioSpec, TaskKind, TaskMix};

/// One-stop imports for fleet experiments.
pub mod prelude {
    pub use crate::aggregate::{AdmissionStats, AggregateMetrics, NodeReport};
    pub use crate::placer::{PlacementOutcome, Placer, PolicyKind};
    pub use crate::runner::{plan_fleet, ClusterRunner, FleetPlan};
    pub use crate::spec::{
        ArrivalSchedule, Churn, OverloadWindow, ScenarioSpec, TaskKind, TaskMix,
    };
}
