//! # selftune-cluster
//!
//! Multi-node fleet simulation for the `selftune` reproduction of
//! *"Self-tuning Schedulers for Legacy Real-Time Applications"*
//! (EuroSys 2010): the paper's single-machine self-tuning stack —
//! tracer → period analyser → LFS++ feedback → CBS supervisor —
//! replicated across a fleet of simulated nodes and driven by one
//! declarative scenario.
//!
//! ## Architecture
//!
//! ```text
//!   ScenarioSpec ──► plan_fleet ──► Placer ──► per-node task slices
//!        │            (arrivals,    (minbudget admission,
//!        │             kinds,        first/worst/bandwidth-aware fit,
//!        │             lifetimes)    migration on rejection)
//!        ▼
//!   ClusterRunner ──► worker threads ──► Node = Kernel + Tracer
//!        │            (work-stealing       + SelfTuningManager
//!        │             node claim)         run epoch by epoch
//!        │   ▲                                   │
//!        │   │  migrations                       │ NodeFeedback
//!        │   └───── Placer::rebalance ◄──────────┘ (measured util,
//!        │          (barrier leader,               miss rate,
//!        ▼           every epoch)                  live tasks + bw)
//!   AggregateMetrics: miss CDF, utilisation histogram, admission
//!                     counters, migration records, CSV export
//! ```
//!
//! * [`spec`] — declarative scenarios: node/task counts, weighted
//!   [`TaskMix`], arrival schedules, churn, (optionally skewed) overload
//!   windows, and the [`RebalanceSpec`] feedback loop; plain-text
//!   round-trip via [`textio`].
//! * [`placer`] — cross-node admission: candidate ordering policies over
//!   per-node reserved bandwidth, backed by the
//!   [`selftune_analysis::min_bandwidth_single`] schedulability test,
//!   plus the feedback rebalance pass over live [`FeedbackView`]s.
//! * [`index`] — the bucketed node-headroom index behind the placer:
//!   every `place*` / rebalance destination query answered in O(log n)
//!   instead of a full fleet scan, byte-identical to the scan path (which
//!   stays available behind `Placer::use_scan_placement`).
//! * [`node`] — one machine: kernel, tracer and self-tuning manager
//!   bundled, with lifetime leases, overload injection, per-epoch
//!   [`NodeFeedback`] snapshots and running-task extraction.
//! * [`runner`] — the parallel scenario runner with stateless per-task
//!   seed derivation and barrier-synchronised rebalance epochs; same
//!   `(spec, seed)` ⇒ byte-identical aggregates at any thread count.
//! * [`aggregate`] — fleet-wide reducers, migration records and CSV
//!   export.
//! * [`sketch`] — mergeable fixed-grid histogram sketches; the opt-in
//!   fleet-scale replacement for per-task gap vectors
//!   (`ClusterRunner::with_sketch_aggregates`).
//!
//! ## Determinism
//!
//! Everything random is derived from `(spec, seed)` before any thread is
//! spawned: the plan (kinds, arrivals, lifetimes, per-task workload
//! seeds) and the placement. Worker threads only execute disjoint,
//! pre-assigned node simulations; reports are reassembled in node-id
//! order. With rebalancing enabled, feedback snapshots are functions of
//! node-local state at a global virtual-time barrier and the migration
//! decision is a pure function of the snapshots in node-id order, so
//! thread count still cannot leak in. [`AggregateMetrics::summary_csv`]
//! over 1 thread and N threads is byte-identical — property tests
//! enforce it with and without rebalancing.
//!
//! ## Example
//!
//! ```
//! use selftune_cluster::prelude::*;
//! use selftune_simcore::time::Dur;
//!
//! let spec = ScenarioSpec::new("smoke", 4, 12, Dur::secs(2))
//!     .with_mix(TaskMix::rt_only())
//!     .with_policy(PolicyKind::WorstFit);
//! let fleet = ClusterRunner::new(2).run(&spec, 42);
//! assert_eq!(fleet.nodes.len(), 4);
//! assert!(fleet.completions() > 0);
//! println!("{}", fleet.render());
//! ```

pub mod aggregate;
pub mod events;
pub mod index;
pub mod mem;
pub mod node;
pub mod placer;
pub mod runner;
pub mod sketch;
pub mod spec;
pub mod textio;

pub use aggregate::{
    AdmissionStats, AggregateMetrics, MigrationRecord, NodeReport, NodeSketches, NodeTotals,
    RebalanceStats, TaskReport,
};
pub use events::{sort_events, FleetEvent, JournalSink, NodeSnap};
pub use index::HeadroomIndex;
pub use mem::{churn_mem_report, ChurnMemReport};
pub use node::{
    ArenaMemStats, Lease, LiveRt, LiveVm, Node, NodeFeedback, NodeTask, NodeVm, WarmStart,
};
pub use placer::{
    FeedbackView, LiveTask, LiveVmUnit, Migration, PlacementOutcome, Placer, PolicyKind,
    RebalanceOutcome,
};
pub use runner::{
    derive_task_seed, plan_fleet, plan_fleet_pinned, ClusterRunner, EpochDecision, FleetPlan,
    PinnedMoves, PinnedPlan, PlannedTask, PlannedVm,
};
pub use sketch::StreamSketch;
pub use spec::{
    ArrivalSchedule, Churn, NodeFilter, NodeShareSpec, OverloadWindow, RebalanceSpec, ScenarioSpec,
    TaskKind, TaskMix, TrafficPhase, VmSpec,
};

/// One-stop imports for fleet experiments.
pub mod prelude {
    pub use crate::aggregate::{
        AdmissionStats, AggregateMetrics, MigrationRecord, NodeReport, RebalanceStats,
    };
    pub use crate::events::{sort_events, FleetEvent, JournalSink, NodeSnap};
    pub use crate::node::{NodeFeedback, WarmStart};
    pub use crate::placer::{FeedbackView, Migration, PlacementOutcome, Placer, PolicyKind};
    pub use crate::runner::{
        plan_fleet, plan_fleet_pinned, ClusterRunner, EpochDecision, FleetPlan, PinnedMoves,
        PinnedPlan,
    };
    pub use crate::spec::{
        ArrivalSchedule, Churn, NodeFilter, NodeShareSpec, OverloadWindow, RebalanceSpec,
        ScenarioSpec, TaskKind, TaskMix, TrafficPhase, VmSpec,
    };
}
