//! Mergeable histogram sketches for fleet-scale aggregate CDFs.
//!
//! At 8 nodes the aggregates keep every inter-finish gap of every task and
//! sort them once at the end — exact, and exactly what you cannot afford
//! at 10k nodes / 1M tasks, where the gap population runs into the tens of
//! millions. A [`StreamSketch`] replaces the vector with a fixed grid of
//! `u64` bin counters: O(1) per recorded value, O(bins) memory per node,
//! and *associative, commutative* merging — integer adds — so per-node
//! sketches folded in node-id order produce byte-identical fleet CDFs at
//! any thread count, the same determinism argument the exact path uses.
//!
//! Quantiles read from a sketch are bin-quantised (each reported value is
//! a bin's representative midpoint, except the tracked exact maximum for
//! the top of the distribution). That resolution is the deliberate trade:
//! sketch mode is opt-in (`ClusterRunner::with_sketch_aggregates`) and the
//! small-fleet default keeps the exact vectors and their CSV bytes.

/// A fixed-grid streaming histogram: linear bins of `width`, values past
/// the grid clamp into the last bin, exact count/sum/min/max carried
/// alongside for means and tail reporting.
///
/// The bin vector allocates lazily on the first [`StreamSketch::record`]:
/// in a 10k-node fleet most nodes are idle, and an empty sketch must cost
/// a handful of words, not `bins × 8` bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamSketch {
    width: f64,
    bins: usize,
    /// Empty until the first record, `bins` long afterwards.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl StreamSketch {
    /// An empty sketch of `bins` linear bins of `width` each.
    ///
    /// # Panics
    ///
    /// Panics unless `width > 0` and `bins > 0`.
    pub fn new(width: f64, bins: usize) -> StreamSketch {
        assert!(width > 0.0, "bin width {width} must be positive");
        assert!(bins > 0, "sketch needs at least one bin");
        StreamSketch {
            width,
            bins,
            counts: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// A sketch sized for normalised inter-finish gaps (gap / period):
    /// healthy values sit near 1, the miss threshold at 1.5; 0.01
    /// resolution up to 20 periods covers any tail worth plotting.
    pub fn for_gap_norm() -> StreamSketch {
        StreamSketch::new(0.01, 2000)
    }

    /// A sketch sized for attach delays in milliseconds: 1 ms resolution
    /// up to 4 s (cold-start hand-overs sit in the hundreds of ms).
    pub fn for_delay_ms() -> StreamSketch {
        StreamSketch::new(1.0, 4000)
    }

    /// Records one value (negative values clamp into the first bin).
    pub fn record(&mut self, value: f64) {
        if self.counts.is_empty() {
            self.counts = vec![0; self.bins];
        }
        let bin = if value <= 0.0 {
            0
        } else {
            ((value / self.width) as usize).min(self.bins - 1)
        };
        self.counts[bin] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another sketch of the same shape into this one. Bin counts,
    /// count, min and max merge fully order-insensitively; the float `sum`
    /// is an ordinary f64 accumulation, exact only for a *fixed* merge
    /// order — which the runner guarantees by always folding per-node
    /// sketches in node-id order, regardless of which thread produced
    /// them. That fixed order is the whole determinism argument.
    ///
    /// # Panics
    ///
    /// Panics when the grids differ.
    pub fn merge(&mut self, other: &StreamSketch) {
        assert_eq!(self.width, other.width, "sketch grid mismatch");
        assert_eq!(self.bins, other.bins, "sketch grid mismatch");
        if !other.counts.is_empty() {
            if self.counts.is_empty() {
                self.counts = vec![0; self.bins];
            }
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += b;
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The running sum of recorded values (order-sensitive f64 state; see
    /// [`StreamSketch::merge`]).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Overwrites the running sum. The deterministic tree reduction merges
    /// the order-insensitive integer state in whatever grouping is
    /// cheapest, then re-serialises the one order-sensitive float by
    /// folding the per-node sums in node-id order and writing the result
    /// back through this — bin counts and extremes are untouched.
    pub fn set_sum(&mut self, sum: f64) {
        self.sum = sum;
    }

    /// Resets the sketch to empty while *keeping* the bin allocation — the
    /// point of a reused per-worker partial buffer. A cleared sketch is
    /// observationally identical to a fresh one (every read is gated on
    /// `count`), but not `==` to it: the fresh one has no bin vector yet.
    pub fn clear(&mut self) {
        for c in &mut self.counts {
            *c = 0;
        }
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded values (exact, from the running sum).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) at bin resolution: the midpoint of
    /// the bin holding the rank-`round(q·(n-1))` value (nearest rank,
    /// where the exact path's `quantile_sorted` interpolates — bin
    /// quantisation dominates either way). The extremes return the exact
    /// tracked min/max.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let rank = (q * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (bin, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                // A sparse top (or bottom) bin's midpoint can overshoot the
                // exact tracked extremes — e.g. a lone value at the bin's
                // left edge, or anything clamped into the overflow bin — so
                // the representative is clamped into [min, max]: no sketch
                // quantile may leave the range of the recorded data.
                return Some(((bin as f64 + 0.5) * self.width).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Count of values at or above `threshold`, over-approximated to bin
    /// granularity (values in the threshold's own bin all count).
    pub fn count_at_least(&self, threshold: f64) -> u64 {
        if self.counts.is_empty() {
            return 0;
        }
        let from = if threshold <= 0.0 {
            0
        } else {
            ((threshold / self.width) as usize).min(self.bins - 1)
        };
        self.counts[from..].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports_basic_stats() {
        let mut s = StreamSketch::new(0.1, 100);
        for v in [0.25, 0.55, 0.95, 3.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean().unwrap() - (0.25 + 0.55 + 0.95 + 3.0) / 4.0).abs() < 1e-12);
        assert_eq!(s.max(), Some(3.0));
        assert_eq!(s.quantile(0.0), Some(0.25));
        assert_eq!(s.quantile(1.0), Some(3.0));
    }

    #[test]
    fn quantiles_land_in_the_right_bin() {
        let mut s = StreamSketch::new(1.0, 50);
        for i in 0..100 {
            s.record(i as f64 / 10.0); // 0.0 .. 9.9, ten per unit bin
        }
        let med = s.quantile(0.5).unwrap();
        assert!((med - 4.5).abs() < 1.0 + 1e-12, "median bin ~[4,5): {med}");
        let p90 = s.quantile(0.9).unwrap();
        assert!((8.0..=10.0).contains(&p90), "p90 {p90}");
    }

    #[test]
    fn merge_is_associative_and_order_insensitive_on_counts() {
        let mut a = StreamSketch::new(0.5, 20);
        let mut b = StreamSketch::new(0.5, 20);
        let mut c = StreamSketch::new(0.5, 20);
        for v in [0.1, 1.0, 2.2] {
            a.record(v);
        }
        for v in [3.3, 0.4] {
            b.record(v);
        }
        c.record(7.7);
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        // Integer state is associative outright; the float sum only up to
        // rounding (the runner fixes the merge order, so it never relies
        // on more than this).
        assert_eq!(ab_c.counts, a_bc.counts);
        assert_eq!(ab_c.count(), a_bc.count());
        assert_eq!(ab_c.min, a_bc.min);
        assert_eq!(ab_c.max, a_bc.max);
        assert!((ab_c.sum - a_bc.sum).abs() < 1e-9);
        assert_eq!(ab_c.count(), 6);
    }

    #[test]
    fn empty_sketches_cost_no_bins_and_merge_cleanly() {
        let empty = StreamSketch::for_gap_norm();
        assert!(empty.is_empty());
        assert_eq!(empty.counts.capacity(), 0, "bins must allocate lazily");
        assert_eq!(empty.count_at_least(0.0), 0);
        assert_eq!(empty.quantile(0.5), None);
        // empty ← empty stays unallocated; full ← empty and empty ← full
        // both end up with the recorded values.
        let mut a = StreamSketch::for_gap_norm();
        a.merge(&empty);
        assert_eq!(a.counts.capacity(), 0);
        let mut full = StreamSketch::for_gap_norm();
        full.record(1.25);
        a.merge(&full);
        assert_eq!(a.count(), 1);
        assert_eq!(a.count_at_least(1.0), 1);
        full.merge(&empty);
        assert_eq!(full.count(), 1);
    }

    #[test]
    fn clear_keeps_the_bin_allocation_and_resets_all_state() {
        let mut s = StreamSketch::new(0.5, 10);
        for v in [0.2, 1.7, 9.9] {
            s.record(v);
        }
        let cap = s.counts.capacity();
        assert!(cap >= 10);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.counts.capacity(), cap, "clear must keep the buffer");
        assert_eq!(s.sum(), 0.0);
        assert_eq!(s.quantile(0.5), None);
        // A cleared sketch records and merges like a fresh one.
        s.record(1.25);
        assert_eq!(s.count(), 1);
        assert_eq!(s.quantile(1.0), Some(1.25));
        let mut fresh = StreamSketch::new(0.5, 10);
        fresh.record(1.25);
        assert_eq!(fresh.counts, s.counts);
    }

    #[test]
    fn overflow_values_clamp_into_the_last_bin() {
        let mut s = StreamSketch::new(1.0, 4);
        s.record(1000.0);
        s.record(2000.0);
        assert_eq!(s.count_at_least(3.0), 2);
        assert_eq!(s.max(), Some(2000.0));
        // Interior quantiles stay on the grid; the extremes are exact.
        assert_eq!(s.quantile(1.0), Some(2000.0));
    }

    #[test]
    fn quantiles_never_leave_the_recorded_range() {
        // A lone value near a bin's left edge: the raw midpoint of its bin
        // (0.15) would overshoot the exact max (0.11).
        let mut s = StreamSketch::new(0.1, 100);
        s.record(0.11);
        for q in [0.25, 0.5, 0.75] {
            assert_eq!(s.quantile(q), Some(0.11), "q={q}");
        }
        // Overflow values clamp into the last bin, whose midpoint (3.5)
        // undershoots the exact max — interior quantiles must still not
        // *under*shoot the exact min either.
        let mut o = StreamSketch::new(1.0, 4);
        o.record(900.0);
        o.record(1000.0);
        let med = o.quantile(0.5).unwrap();
        assert!(
            (900.0..=1000.0).contains(&med),
            "midpoint must clamp into [min, max]: {med}"
        );
    }

    #[test]
    fn count_at_least_matches_threshold_semantics() {
        let mut s = StreamSketch::new(0.5, 10);
        for v in [0.2, 0.7, 1.6, 1.9, 2.4] {
            s.record(v);
        }
        // Bins: [0,0.5) has 1, [0.5,1) has 1, [1.5,2) has 2, [2,2.5) has 1.
        assert_eq!(s.count_at_least(1.5), 3);
        assert_eq!(s.count_at_least(0.0), 5);
        assert_eq!(s.count_at_least(99.0), 0);
    }
}
