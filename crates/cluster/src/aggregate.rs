//! Fleet-wide metric reduction: miss CDFs, utilisation histograms,
//! admission counters, CSV export.
//!
//! Aggregation folds node reports in node-id order, so the result is
//! independent of the thread count that produced them — the byte-identical
//! CSV across 1 and N threads is a tested invariant.

use std::path::Path;

use selftune_simcore::metrics::write_csv;
use selftune_simcore::stats;

use crate::sketch::StreamSketch;

/// Per-task slice of a node report.
///
/// Detailed mode materialises one of these per task, so the struct is on
/// a memory diet: per-task counters are `u32` (a task would need >4×10⁹
/// completions within one run to overflow — at the 25 Hz frame rates the
/// scenarios model that is five simulated years), and the fleet id is
/// `u32` (the fleet axis caps at millions, not billions). Fleet-level
/// sums still accumulate in `u64` inside [`NodeTotals`]. The layout is
/// pinned by a size-audit test (`task_report_stays_on_its_memory_diet`).
#[derive(Clone, Debug)]
pub struct TaskReport {
    /// Fleet-wide task index.
    pub fleet_id: u32,
    /// Whether the task ran under a reservation.
    pub realtime: bool,
    /// Whether the manager attached a reservation during the run.
    pub attached: bool,
    /// Whether this incarnation arrived through a live migration.
    pub migrated: bool,
    /// Whether the task ran as a guest inside a virtual platform (its
    /// attach delay is then a *guest-manager* property, reported
    /// separately from flat-task hand-over gaps).
    pub in_vm: bool,
    /// Completed jobs/frames.
    pub completions: u32,
    /// Completion gaps exceeding the miss factor.
    pub misses: u32,
    /// Frames dropped by the application itself.
    pub dropped: u32,
    /// Metric label.
    pub label: String,
    /// Completion gaps normalised by the nominal period (1.0 = on time).
    pub ift_norm: Vec<f64>,
    /// Milliseconds from arrival to the manager attaching a reservation
    /// (`None` while detection is still running, or for best-effort
    /// tasks). Warm-started migrations report 0 — the hand-over gap the
    /// carried controller state eliminates.
    pub attach_delay_ms: Option<f64>,
}

/// Exact per-node counters, maintained in both report modes. In detailed
/// mode they are derived from the task vector; in sketch mode they are
/// the *only* exact state the node keeps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeTotals {
    /// Tasks that ran on the node (including released/departed ones).
    pub tasks: usize,
    /// Tasks that ran under a reservation.
    pub rt_tasks: usize,
    /// Completed jobs/frames across all tasks.
    pub completions: u64,
    /// Deadline misses across all tasks.
    pub misses: u64,
    /// Completion gaps observed across all tasks (the miss-ratio
    /// denominator).
    pub gaps: u64,
    /// Frames dropped by the applications themselves.
    pub dropped: u64,
}

/// Per-node mergeable distribution state for fleet-scale runs: histogram
/// sketches instead of per-task gap vectors. Merging is associative
/// integer accumulation, so folding per-node sketches in node-id order is
/// byte-identical at any thread count.
#[derive(Clone, Debug)]
pub struct NodeSketches {
    /// Normalised completion gaps (gap / period) of every task.
    pub gaps: StreamSketch,
    /// Normalised completion gaps of migrated incarnations only.
    pub post_migration: StreamSketch,
    /// Attach delays (ms) of migrated flat-task incarnations.
    pub attach: StreamSketch,
    /// Attach delays (ms) of guests re-admitted inside migrated VMs.
    pub vm_attach: StreamSketch,
}

impl NodeSketches {
    /// Empty sketches on the canonical fleet grids.
    pub fn new() -> NodeSketches {
        NodeSketches {
            gaps: StreamSketch::for_gap_norm(),
            post_migration: StreamSketch::for_gap_norm(),
            attach: StreamSketch::for_delay_ms(),
            vm_attach: StreamSketch::for_delay_ms(),
        }
    }

    /// Folds another node's sketches into this one.
    pub fn merge(&mut self, other: &NodeSketches) {
        self.gaps.merge(&other.gaps);
        self.post_migration.merge(&other.post_migration);
        self.attach.merge(&other.attach);
        self.vm_attach.merge(&other.vm_attach);
    }

    /// Resets all four sketches to empty, keeping their bin allocations —
    /// how a worker's partial-merge buffer is recycled across epoch
    /// barriers (one allocation per worker for the whole run).
    pub fn clear(&mut self) {
        self.gaps.clear();
        self.post_migration.clear();
        self.attach.clear();
        self.vm_attach.clear();
    }

    /// Reduces the per-node sketches of `nodes` (sorted by node id) with a
    /// balanced binary tree over fixed node-id ranges, byte-identical to
    /// the historical serial node-order fold. `None` iff no node reported
    /// sketches.
    ///
    /// Bin counts, value counts and min/max merge in exact integer (or
    /// exact-min/max float) arithmetic, so any merge grouping produces the
    /// same state; only the running f64 `sum` is order-sensitive, and it
    /// is re-serialised afterwards (see [`NodeSketches::with_serial_sums`]).
    /// The split points depend only on the node-id-ordered slice — never
    /// on the thread count — which keeps the determinism contract intact
    /// while letting workers pre-merge their own partials in parallel.
    pub fn tree_reduce(nodes: &[NodeReport]) -> Option<NodeSketches> {
        fn reduce(nodes: &[NodeReport]) -> Option<NodeSketches> {
            match nodes.len() {
                0 => None,
                1 => nodes[0].sketches.clone(),
                n => {
                    let (lo, hi) = nodes.split_at(n / 2);
                    match (reduce(lo), reduce(hi)) {
                        (Some(mut a), Some(b)) => {
                            a.merge(&b);
                            Some(a)
                        }
                        (a, b) => a.or(b),
                    }
                }
            }
        }
        reduce(nodes).map(|m| NodeSketches::with_serial_sums(m, nodes))
    }

    /// Overwrites each family's order-sensitive float sum with the serial
    /// node-id-order left fold the historical reduction produced: the
    /// accumulator starts at the *first* sketch-bearing node's sum and
    /// adds each later node's in turn. Applied after any parallel or tree
    /// merge so the cached fleet sketch is byte-identical to the serial
    /// fold regardless of merge grouping.
    pub fn with_serial_sums(mut merged: NodeSketches, nodes: &[NodeReport]) -> NodeSketches {
        fn serial_sum(nodes: &[NodeReport], pick: impl Fn(&NodeSketches) -> &StreamSketch) -> f64 {
            let mut acc: Option<f64> = None;
            for n in nodes {
                if let Some(k) = &n.sketches {
                    let s = pick(k).sum();
                    acc = Some(match acc {
                        None => s,
                        Some(a) => a + s,
                    });
                }
            }
            acc.unwrap_or(0.0)
        }
        merged.gaps.set_sum(serial_sum(nodes, |k| &k.gaps));
        merged
            .post_migration
            .set_sum(serial_sum(nodes, |k| &k.post_migration));
        merged.attach.set_sum(serial_sum(nodes, |k| &k.attach));
        merged
            .vm_attach
            .set_sum(serial_sum(nodes, |k| &k.vm_attach));
        merged
    }
}

impl Default for NodeSketches {
    fn default() -> NodeSketches {
        NodeSketches::new()
    }
}

/// One node's contribution to the aggregate.
#[derive(Clone, Debug)]
pub struct NodeReport {
    /// Node id.
    pub node: usize,
    /// Tasks that ran on this node. Empty in sketch mode, where per-task
    /// vectors are exactly what a 1M-task fleet cannot retain.
    pub tasks: Vec<TaskReport>,
    /// Exact per-node counters (kept in both modes).
    pub totals: NodeTotals,
    /// Distribution sketches; `Some` iff the node reported in sketch mode.
    pub sketches: Option<NodeSketches>,
    /// CPU busy fraction over the horizon.
    pub utilisation: f64,
    /// Reserved bandwidth at the horizon.
    pub reserved_bw: f64,
    /// Context switches over the run.
    pub ctx_switches: u64,
}

impl NodeReport {
    /// A completion gap above `MISS_FACTOR × P` counts as a deadline miss.
    pub const MISS_FACTOR: f64 = 1.5;

    /// A detailed-mode report: totals derived from the task vector.
    pub fn from_tasks(
        node: usize,
        tasks: Vec<TaskReport>,
        utilisation: f64,
        reserved_bw: f64,
        ctx_switches: u64,
    ) -> NodeReport {
        let totals = NodeTotals {
            tasks: tasks.len(),
            rt_tasks: tasks.iter().filter(|t| t.realtime).count(),
            completions: tasks.iter().map(|t| u64::from(t.completions)).sum(),
            misses: tasks.iter().map(|t| u64::from(t.misses)).sum(),
            gaps: tasks.iter().map(|t| t.ift_norm.len() as u64).sum(),
            dropped: tasks.iter().map(|t| u64::from(t.dropped)).sum(),
        };
        NodeReport {
            node,
            tasks,
            totals,
            sketches: None,
            utilisation,
            reserved_bw,
            ctx_switches,
        }
    }

    /// A sketch-mode report: exact counters plus distribution sketches,
    /// no per-task retention.
    pub fn from_sketches(
        node: usize,
        totals: NodeTotals,
        sketches: NodeSketches,
        utilisation: f64,
        reserved_bw: f64,
        ctx_switches: u64,
    ) -> NodeReport {
        NodeReport {
            node,
            tasks: Vec::new(),
            totals,
            sketches: Some(sketches),
            utilisation,
            reserved_bw,
            ctx_switches,
        }
    }

    /// Total completions on the node.
    pub fn completions(&self) -> u64 {
        self.totals.completions
    }

    /// Total misses on the node.
    pub fn misses(&self) -> u64 {
        self.totals.misses
    }
}

/// Fleet-level admission statistics (from the placement plan).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Real-time tasks admitted onto some node.
    pub admitted: u64,
    /// Real-time tasks no node could take.
    pub rejected: u64,
    /// Best-effort tasks (always placed).
    pub best_effort: u64,
    /// Candidate-node rejections that migrated a request onward.
    pub migrations: u64,
    /// Virtual platforms admitted onto some node.
    pub vms_admitted: u64,
    /// Virtual platforms no node could take.
    pub vms_rejected: u64,
}

/// One applied live migration, as recorded by the rebalance pass.
#[derive(Clone, Copy, Debug)]
pub struct MigrationRecord {
    /// Epoch index (0 = first rebalance boundary).
    pub epoch: u64,
    /// Fleet id of the migrated unit (task id, or VM id when `vm`).
    pub fleet_id: usize,
    /// Whether the unit was a whole virtual platform.
    pub vm: bool,
    /// Node the unit was extracted from.
    pub from: usize,
    /// Node the unit was re-admitted on.
    pub to: usize,
    /// Bandwidth booked on the destination (minbudget × headroom for a
    /// task; the share for a VM).
    pub demand: f64,
    /// Destination's booked bandwidth right after admission — the witness
    /// that the move respected the admission bound.
    pub dest_reserved_after: f64,
}

/// Feedback-driven re-placement statistics of one fleet run.
#[derive(Clone, Debug, Default)]
pub struct RebalanceStats {
    /// Rebalance boundaries the run passed through.
    pub epochs: u64,
    /// Migrations applied.
    pub moves: u64,
    /// Evictions that found no admissible destination (task stayed put).
    pub failed: u64,
    /// Every applied migration, in decision order.
    pub records: Vec<MigrationRecord>,
}

/// The reduced outcome of one fleet run.
#[derive(Clone, Debug)]
pub struct AggregateMetrics {
    /// Scenario name.
    pub scenario: String,
    /// Base seed of the run.
    pub seed: u64,
    /// Admission statistics from the placement plan.
    pub admission: AdmissionStats,
    /// Feedback re-placement statistics (all-zero when rebalance is off).
    pub rebalance: RebalanceStats,
    /// Per-node reports, in node-id order.
    pub nodes: Vec<NodeReport>,
    /// The fleet-level merge of every node's sketches, computed once at
    /// construction (tree reduction, or adopted from the runner's worker
    /// partials) instead of re-folded per summary read. `None` iff no
    /// node reported sketches.
    merged: Option<NodeSketches>,
}

/// Quantile grid of the miss CDF export (percent steps).
const CDF_STEPS: usize = 100;
/// Bins of the utilisation histogram export.
const UTIL_BINS: usize = 10;

impl AggregateMetrics {
    /// Folds node reports (sorted by node id internally). The fleet-level
    /// sketch merge happens here, once, via the deterministic tree
    /// reduction.
    pub fn new(
        scenario: &str,
        seed: u64,
        admission: AdmissionStats,
        mut nodes: Vec<NodeReport>,
    ) -> AggregateMetrics {
        nodes.sort_by_key(|n| n.node);
        let merged = NodeSketches::tree_reduce(&nodes);
        AggregateMetrics {
            scenario: scenario.to_owned(),
            seed,
            admission,
            rebalance: RebalanceStats::default(),
            nodes,
            merged,
        }
    }

    /// Like [`AggregateMetrics::new`], but adopts a pre-merged fleet
    /// sketch — the runner's workers each fold their owned nodes'
    /// sketches into a per-worker partial, and the leader combines the
    /// partials in any order. Integer sketch state merges associatively
    /// and commutatively, and the order-sensitive float sums are
    /// re-serialised from the node reports in node-id order here, so the
    /// result is byte-identical to [`AggregateMetrics::new`] at any
    /// thread count. `premerged: None` (detailed-mode runs) falls back to
    /// the tree reduction, which is then a no-op.
    pub fn new_premerged(
        scenario: &str,
        seed: u64,
        admission: AdmissionStats,
        mut nodes: Vec<NodeReport>,
        premerged: Option<NodeSketches>,
    ) -> AggregateMetrics {
        nodes.sort_by_key(|n| n.node);
        let merged = match premerged {
            Some(m) => Some(NodeSketches::with_serial_sums(m, &nodes)),
            None => NodeSketches::tree_reduce(&nodes),
        };
        AggregateMetrics {
            scenario: scenario.to_owned(),
            seed,
            admission,
            rebalance: RebalanceStats::default(),
            nodes,
            merged,
        }
    }

    /// Attaches rebalance statistics (builder-style; the runner uses this
    /// when feedback re-placement is enabled).
    pub fn with_rebalance(mut self, rebalance: RebalanceStats) -> AggregateMetrics {
        self.rebalance = rebalance;
        self
    }

    /// All normalised completion gaps across the fleet, in (node, task)
    /// order. Detailed mode only: empty when the nodes reported sketches
    /// (per-task gap vectors are exactly what sketch mode does not keep).
    pub fn ift_norm_all(&self) -> Vec<f64> {
        self.nodes
            .iter()
            .flat_map(|n| n.tasks.iter().flat_map(|t| t.ift_norm.iter().copied()))
            .collect()
    }

    /// Total completions across the fleet.
    pub fn completions(&self) -> u64 {
        self.nodes.iter().map(NodeReport::completions).sum()
    }

    /// Total deadline misses across the fleet.
    pub fn misses(&self) -> u64 {
        self.nodes.iter().map(NodeReport::misses).sum()
    }

    /// Fleet deadline-miss ratio (misses over completion gaps observed).
    /// Exact in both report modes — gaps and misses are integer counters
    /// in [`NodeTotals`].
    pub fn miss_ratio(&self) -> f64 {
        let gaps: u64 = self.nodes.iter().map(|n| n.totals.gaps).sum();
        if gaps == 0 {
            0.0
        } else {
            self.misses() as f64 / gaps as f64
        }
    }

    /// Mean node utilisation (streaming; no intermediate vector).
    pub fn mean_utilisation(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.nodes.iter().map(|n| n.utilisation).sum();
        sum / self.nodes.len() as f64
    }

    /// One family of the cached fleet-level sketch merge. `Some` iff at
    /// least one node reported sketches.
    fn merged_sketch(
        &self,
        pick: impl Fn(&NodeSketches) -> &StreamSketch,
    ) -> Option<&StreamSketch> {
        self.merged.as_ref().map(pick)
    }

    /// All normalised completion gaps, sorted ascending, written into the
    /// caller's scratch buffer (cleared first) so repeated extractions —
    /// summary, CSV export, render — reuse one allocation.
    pub fn ift_norm_sorted_into(&self, buf: &mut Vec<f64>) {
        buf.clear();
        for n in &self.nodes {
            for t in &n.tasks {
                buf.extend_from_slice(&t.ift_norm);
            }
        }
        buf.sort_by(|a, b| a.partial_cmp(b).expect("NaN completion gap"));
    }

    /// Normalised completion gaps of *migrated* task incarnations, sorted
    /// ascending into the caller's scratch buffer — the post-migration
    /// behaviour of re-placed tasks.
    pub fn post_migration_sorted_into(&self, buf: &mut Vec<f64>) {
        buf.clear();
        for t in self.nodes.iter().flat_map(|n| n.tasks.iter()) {
            if t.migrated {
                buf.extend_from_slice(&t.ift_norm);
            }
        }
        buf.sort_by(|a, b| a.partial_cmp(b).expect("NaN completion gap"));
    }

    /// Samples a CDF on the fixed quantile grid from exact sorted data.
    fn cdf_from_sorted(xs: &[f64]) -> Vec<(f64, f64)> {
        if xs.is_empty() {
            return Vec::new();
        }
        (0..=CDF_STEPS)
            .map(|i| {
                let p = i as f64 / CDF_STEPS as f64;
                (p, stats::quantile_sorted(xs, p))
            })
            .collect()
    }

    /// Samples a CDF on the fixed quantile grid from a merged sketch.
    fn cdf_from_sketch(s: &StreamSketch) -> Vec<(f64, f64)> {
        if s.is_empty() {
            return Vec::new();
        }
        (0..=CDF_STEPS)
            .map(|i| {
                let p = i as f64 / CDF_STEPS as f64;
                (p, s.quantile(p).expect("non-empty sketch"))
            })
            .collect()
    }

    /// The fleet-wide CDF of normalised completion gaps, sampled on a
    /// fixed quantile grid (so export size is independent of fleet size).
    /// Sketch-mode fleets read it from the merged gap sketch at bin
    /// resolution; detailed fleets from the exact sorted gaps.
    pub fn miss_cdf(&self) -> Vec<(f64, f64)> {
        self.miss_cdf_with(&mut Vec::new())
    }

    /// [`AggregateMetrics::miss_cdf`] reusing a caller scratch buffer for
    /// the sort in detailed mode.
    pub fn miss_cdf_with(&self, scratch: &mut Vec<f64>) -> Vec<(f64, f64)> {
        if let Some(s) = self.merged_sketch(|k| &k.gaps) {
            return AggregateMetrics::cdf_from_sketch(s);
        }
        self.ift_norm_sorted_into(scratch);
        AggregateMetrics::cdf_from_sorted(scratch)
    }

    /// The miss CDF restricted to gaps observed after a migration (i.e. on
    /// the re-placed incarnations). Empty when nothing migrated.
    pub fn post_migration_cdf(&self) -> Vec<(f64, f64)> {
        self.post_migration_cdf_with(&mut Vec::new())
    }

    /// [`AggregateMetrics::post_migration_cdf`] reusing a caller scratch
    /// buffer for the sort in detailed mode.
    pub fn post_migration_cdf_with(&self, scratch: &mut Vec<f64>) -> Vec<(f64, f64)> {
        if let Some(s) = self.merged_sketch(|k| &k.post_migration) {
            return AggregateMetrics::cdf_from_sketch(s);
        }
        self.post_migration_sorted_into(scratch);
        AggregateMetrics::cdf_from_sorted(scratch)
    }

    fn mean_attach_delay_where(&self, pred: impl Fn(&TaskReport) -> bool) -> Option<f64> {
        let (mut sum, mut count) = (0.0f64, 0u64);
        for d in self
            .nodes
            .iter()
            .flat_map(|n| n.tasks.iter())
            .filter(|t| t.migrated && pred(t))
            .filter_map(|t| t.attach_delay_ms)
        {
            sum += d;
            count += 1;
        }
        (count > 0).then(|| sum / count as f64)
    }

    /// Mean attach delay (ms) of migrated *flat-task* incarnations that
    /// attached — the hand-over gap. Warm-started migrations pull this to
    /// zero. Guests of migrated VMs are excluded (see
    /// [`AggregateMetrics::mean_migrated_vm_guest_attach_delay_ms`]);
    /// blending the two regimes made the metric unreadable on fleets
    /// mixing VM and task moves. `None` when nothing migrated-and-attached.
    pub fn mean_migrated_attach_delay_ms(&self) -> Option<f64> {
        if let Some(s) = self.merged_sketch(|k| &k.attach) {
            return s.mean();
        }
        self.mean_attach_delay_where(|t| !t.in_vm)
    }

    /// Mean attach delay (ms) of guests re-admitted inside a *migrated
    /// VM*. With per-guest warm-start the destination seeds each guest's
    /// detected period and a demand-sized budget, so this collapses to
    /// zero; cold guests re-run detection inside the re-admitted VM.
    pub fn mean_migrated_vm_guest_attach_delay_ms(&self) -> Option<f64> {
        if let Some(s) = self.merged_sketch(|k| &k.vm_attach) {
            return s.mean();
        }
        self.mean_attach_delay_where(|t| t.in_vm)
    }

    /// Histogram of per-node utilisation over `[0, 1]`.
    pub fn utilisation_histogram(&self) -> Vec<(f64, u64)> {
        let u: Vec<f64> = self.nodes.iter().map(|n| n.utilisation).collect();
        stats::histogram(&u, 0.0, 1.0, UTIL_BINS)
    }

    /// Per-node CSV rows (the `cluster_nodes.csv` payload).
    pub fn node_rows(&self) -> Vec<Vec<String>> {
        self.nodes
            .iter()
            .map(|n| {
                vec![
                    n.node.to_string(),
                    n.totals.tasks.to_string(),
                    n.totals.rt_tasks.to_string(),
                    format!("{:.6}", n.utilisation),
                    format!("{:.6}", n.reserved_bw),
                    n.completions().to_string(),
                    n.misses().to_string(),
                    n.ctx_switches.to_string(),
                ]
            })
            .collect()
    }

    /// Header matching [`AggregateMetrics::node_rows`].
    pub const NODE_HEADER: [&'static str; 8] = [
        "node",
        "tasks",
        "rt_tasks",
        "utilisation",
        "reserved_bw",
        "completions",
        "misses",
        "ctx_switches",
    ];

    /// A canonical multi-line string of the whole aggregate — the
    /// byte-identical artefact the determinism property compares across
    /// thread counts.
    pub fn summary_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "scenario,{}\nseed,{}\nadmitted,{}\nrejected,{}\nbest_effort,{}\nmigrations,{}\n",
            self.scenario,
            self.seed,
            self.admission.admitted,
            self.admission.rejected,
            self.admission.best_effort,
            self.admission.migrations,
        ));
        if self.admission.vms_admitted + self.admission.vms_rejected > 0 {
            out.push_str(&format!(
                "vms_admitted,{}\nvms_rejected,{}\n",
                self.admission.vms_admitted, self.admission.vms_rejected,
            ));
        }
        out.push_str(&format!(
            "rb_epochs,{}\nrb_moves,{}\nrb_failed,{}\n",
            self.rebalance.epochs, self.rebalance.moves, self.rebalance.failed,
        ));
        for r in &self.rebalance.records {
            out.push_str(&format!(
                "move,{},{},{},{},{},{:.6},{:.6}\n",
                r.epoch,
                if r.vm { "vm" } else { "task" },
                r.fleet_id,
                r.from,
                r.to,
                r.demand,
                r.dest_reserved_after,
            ));
        }
        if let Some(d) = self.mean_migrated_attach_delay_ms() {
            out.push_str(&format!("migrated_attach_delay_ms,{d:.3}\n"));
        }
        if let Some(d) = self.mean_migrated_vm_guest_attach_delay_ms() {
            out.push_str(&format!("vm_guest_attach_delay_ms,{d:.3}\n"));
        }
        out.push_str(&format!(
            "completions,{}\nmisses,{}\nmiss_ratio,{:.6}\nmean_utilisation,{:.6}\n",
            self.completions(),
            self.misses(),
            self.miss_ratio(),
            self.mean_utilisation(),
        ));
        out.push_str(&AggregateMetrics::NODE_HEADER.join(","));
        out.push('\n');
        for row in self.node_rows() {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        let mut scratch = Vec::new();
        for (p, q) in self.miss_cdf_with(&mut scratch) {
            out.push_str(&format!("cdf,{p:.2},{q:.6}\n"));
        }
        for (p, q) in self.post_migration_cdf_with(&mut scratch) {
            out.push_str(&format!("pmcdf,{p:.2},{q:.6}\n"));
        }
        out
    }

    /// Writes `cluster_nodes.csv`, `cluster_miss_cdf.csv` and
    /// `cluster_util_hist.csv` into `dir`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or files.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut scratch = Vec::new();
        write_csv(
            dir.join("cluster_nodes.csv"),
            &AggregateMetrics::NODE_HEADER,
            &self.node_rows(),
        )?;
        let cdf_rows: Vec<Vec<String>> = self
            .miss_cdf_with(&mut scratch)
            .iter()
            .map(|&(p, q)| vec![format!("{p:.2}"), format!("{q:.6}")])
            .collect();
        write_csv(
            dir.join("cluster_miss_cdf.csv"),
            &["quantile", "ift_over_period"],
            &cdf_rows,
        )?;
        let hist_rows: Vec<Vec<String>> = self
            .utilisation_histogram()
            .iter()
            .map(|&(lo, n)| vec![format!("{lo:.2}"), n.to_string()])
            .collect();
        write_csv(
            dir.join("cluster_util_hist.csv"),
            &["utilisation_bin", "nodes"],
            &hist_rows,
        )?;
        let move_rows: Vec<Vec<String>> = self
            .rebalance
            .records
            .iter()
            .map(|r| {
                vec![
                    r.epoch.to_string(),
                    if r.vm { "vm" } else { "task" }.to_owned(),
                    r.fleet_id.to_string(),
                    r.from.to_string(),
                    r.to.to_string(),
                    format!("{:.6}", r.demand),
                    format!("{:.6}", r.dest_reserved_after),
                ]
            })
            .collect();
        write_csv(
            dir.join("cluster_migrations.csv"),
            &[
                "epoch",
                "unit",
                "fleet_id",
                "from",
                "to",
                "demand",
                "dest_reserved_after",
            ],
            &move_rows,
        )?;
        let pm_rows: Vec<Vec<String>> = self
            .post_migration_cdf_with(&mut scratch)
            .iter()
            .map(|&(p, q)| vec![format!("{p:.2}"), format!("{q:.6}")])
            .collect();
        write_csv(
            dir.join("cluster_post_migration_cdf.csv"),
            &["quantile", "ift_over_period"],
            &pm_rows,
        )?;
        Ok(())
    }

    /// A human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet '{}' (seed {}): {} nodes, {} tasks admitted, {} rejected, {} best-effort, {} migrations\n",
            self.scenario,
            self.seed,
            self.nodes.len(),
            self.admission.admitted,
            self.admission.rejected,
            self.admission.best_effort,
            self.admission.migrations,
        ));
        if self.rebalance.epochs > 0 {
            out.push_str(&format!(
                "rebalance: {} epochs, {} migrations applied, {} failed\n",
                self.rebalance.epochs, self.rebalance.moves, self.rebalance.failed,
            ));
        }
        out.push_str(&format!(
            "completions {}   deadline misses {}   miss ratio {:.4}   mean node utilisation {:.1}%\n",
            self.completions(),
            self.misses(),
            self.miss_ratio(),
            100.0 * self.mean_utilisation(),
        ));
        match self.merged_sketch(|k| &k.gaps) {
            Some(s) => {
                if !s.is_empty() {
                    out.push_str(&format!(
                        "completion gap / period: p50 {:.3}  p95 {:.3}  p99 {:.3}  max {:.3}\n",
                        s.quantile(0.50).expect("non-empty"),
                        s.quantile(0.95).expect("non-empty"),
                        s.quantile(0.99).expect("non-empty"),
                        s.max().expect("non-empty"),
                    ));
                }
            }
            None => {
                let mut xs = Vec::new();
                self.ift_norm_sorted_into(&mut xs);
                if !xs.is_empty() {
                    out.push_str(&format!(
                        "completion gap / period: p50 {:.3}  p95 {:.3}  p99 {:.3}  max {:.3}\n",
                        stats::quantile_sorted(&xs, 0.50),
                        stats::quantile_sorted(&xs, 0.95),
                        stats::quantile_sorted(&xs, 0.99),
                        xs.last().expect("non-empty"),
                    ));
                }
            }
        }
        for n in &self.nodes {
            out.push_str(&format!(
                "  node {:>3}: {:>2} tasks  util {:>5.1}%  reserved {:>5.1}%  misses {}\n",
                n.node,
                n.totals.tasks,
                100.0 * n.utilisation,
                100.0 * n.reserved_bw,
                n.misses(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(node: usize, util: f64, ift: Vec<f64>) -> NodeReport {
        NodeReport::from_tasks(
            node,
            vec![TaskReport {
                fleet_id: node as u32,
                label: format!("t{node}"),
                realtime: true,
                attached: true,
                migrated: false,
                in_vm: false,
                completions: ift.len() as u32 + 1,
                misses: ift.iter().filter(|&&x| x > NodeReport::MISS_FACTOR).count() as u32,
                dropped: 0,
                ift_norm: ift,
                attach_delay_ms: None,
            }],
            util,
            util * 0.8,
            100,
        )
    }

    /// The same node as `report`, reduced to sketch form.
    fn sketch_report(node: usize, util: f64, ift: Vec<f64>) -> NodeReport {
        let mut sk = NodeSketches::new();
        for &x in &ift {
            sk.gaps.record(x);
        }
        let totals = NodeTotals {
            tasks: 1,
            rt_tasks: 1,
            completions: ift.len() as u64 + 1,
            misses: ift.iter().filter(|&&x| x > NodeReport::MISS_FACTOR).count() as u64,
            gaps: ift.len() as u64,
            dropped: 0,
        };
        NodeReport::from_sketches(node, totals, sk, util, util * 0.8, 100)
    }

    #[test]
    fn task_report_stays_on_its_memory_diet() {
        // The detailed-mode per-task struct: u32 counters + flags pack
        // into 20 bytes, then label (String), ift_norm (Vec) and the
        // Option<f64> attach delay — 88 bytes total on 64-bit, down from
        // 104 with the old usize/u64 fields. Regressing past 88 means a
        // field grew back to a fat type.
        assert!(
            std::mem::size_of::<TaskReport>() <= 88,
            "TaskReport grew to {} bytes",
            std::mem::size_of::<TaskReport>()
        );
    }

    #[test]
    fn tree_reduce_matches_the_serial_fold_on_mixed_nodes() {
        // Non-power-of-two node count with sketch-less nodes interleaved:
        // the tree split points must not care.
        let nodes: Vec<NodeReport> = (0..7)
            .map(|n| {
                if n % 3 == 2 {
                    report(n, 0.2, vec![1.0 + n as f64 * 0.01])
                } else {
                    sketch_report(n, 0.2, vec![0.9, 1.2 + n as f64 * 0.1, 3.0])
                }
            })
            .collect();
        let serial = {
            let mut acc: Option<NodeSketches> = None;
            for n in &nodes {
                if let Some(k) = &n.sketches {
                    match &mut acc {
                        None => acc = Some(k.clone()),
                        Some(a) => a.merge(k),
                    }
                }
            }
            acc.unwrap()
        };
        let tree = NodeSketches::tree_reduce(&nodes).unwrap();
        assert_eq!(tree.gaps, serial.gaps);
        assert_eq!(tree.post_migration, serial.post_migration);
        assert_eq!(tree.attach, serial.attach);
        assert_eq!(tree.vm_attach, serial.vm_attach);
        // No sketches at all → no merged sketch.
        let detailed: Vec<NodeReport> = (0..3).map(|n| report(n, 0.1, vec![1.0])).collect();
        assert!(NodeSketches::tree_reduce(&detailed).is_none());
    }

    #[test]
    fn premerged_construction_matches_new_in_any_partial_order() {
        let nodes: Vec<NodeReport> = (0..5)
            .map(|n| sketch_report(n, 0.3, vec![0.8 + n as f64 * 0.07, 2.0]))
            .collect();
        let baseline = AggregateMetrics::new("s", 9, AdmissionStats::default(), nodes.clone());
        // Simulate two workers owning interleaved node sets, merged in
        // "wrong" (worker-completion) order.
        let mut w0 = NodeSketches::new();
        let mut w1 = NodeSketches::new();
        for n in &nodes {
            let k = n.sketches.as_ref().unwrap();
            if n.node % 2 == 0 {
                w0.merge(k);
            } else {
                w1.merge(k);
            }
        }
        let mut combined = NodeSketches::new();
        combined.merge(&w1);
        combined.merge(&w0);
        let premerged = AggregateMetrics::new_premerged(
            "s",
            9,
            AdmissionStats::default(),
            nodes,
            Some(combined),
        );
        assert_eq!(baseline.summary_csv(), premerged.summary_csv());
    }

    #[test]
    fn aggregation_is_order_independent() {
        let a = report(0, 0.3, vec![1.0, 1.1]);
        let b = report(1, 0.5, vec![0.9, 2.0]);
        let fwd = AggregateMetrics::new(
            "s",
            1,
            AdmissionStats::default(),
            vec![a.clone(), b.clone()],
        );
        let rev = AggregateMetrics::new("s", 1, AdmissionStats::default(), vec![b, a]);
        assert_eq!(fwd.summary_csv(), rev.summary_csv());
    }

    #[test]
    fn miss_ratio_counts_factor_exceedances() {
        let m = AggregateMetrics::new(
            "s",
            1,
            AdmissionStats::default(),
            vec![report(0, 0.3, vec![1.0, 1.6, 0.9, 3.0])],
        );
        assert_eq!(m.misses(), 2);
        assert!((m.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_grid_is_fixed_size() {
        let m = AggregateMetrics::new(
            "s",
            1,
            AdmissionStats::default(),
            vec![report(
                0,
                0.3,
                (0..1000).map(|i| i as f64 / 500.0).collect(),
            )],
        );
        let cdf = m.miss_cdf();
        assert_eq!(cdf.len(), CDF_STEPS + 1);
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1), "CDF monotone");
    }

    #[test]
    fn rebalance_stats_flow_into_summary_and_cdf() {
        let mut migrated_node = report(1, 0.4, vec![1.0, 1.1, 0.9]);
        migrated_node.tasks[0].migrated = true;
        let m = AggregateMetrics::new(
            "s",
            1,
            AdmissionStats::default(),
            vec![report(0, 0.3, vec![2.0]), migrated_node],
        )
        .with_rebalance(RebalanceStats {
            epochs: 3,
            moves: 1,
            failed: 2,
            records: vec![MigrationRecord {
                epoch: 1,
                fleet_id: 1,
                vm: false,
                from: 0,
                to: 1,
                demand: 0.25,
                dest_reserved_after: 0.25,
            }],
        });
        let csv = m.summary_csv();
        assert!(csv.contains("rb_epochs,3"));
        assert!(csv.contains("rb_moves,1"));
        assert!(csv.contains("rb_failed,2"));
        assert!(csv.contains("move,1,task,1,0,1,0.250000,0.250000"));
        // The post-migration CDF covers only the migrated incarnation's
        // gaps, all of which sit at or below 1.1.
        let pm = m.post_migration_cdf();
        assert_eq!(pm.len(), CDF_STEPS + 1);
        assert!(pm.last().unwrap().1 <= 1.1 + 1e-12);
        assert!(csv.contains("pmcdf,1.00,"));
        // A run without migrations exports no post-migration CDF.
        let plain = AggregateMetrics::new(
            "s",
            1,
            AdmissionStats::default(),
            vec![report(0, 0.3, vec![2.0])],
        );
        assert!(plain.post_migration_cdf().is_empty());
        assert!(!plain.summary_csv().contains("pmcdf"));
    }

    #[test]
    fn sketch_reports_keep_counters_exact_and_cdfs_close() {
        let gaps_a = vec![1.0, 1.1, 0.9, 3.0];
        let gaps_b = vec![0.95, 1.6, 1.05];
        let exact = AggregateMetrics::new(
            "s",
            1,
            AdmissionStats::default(),
            vec![
                report(0, 0.3, gaps_a.clone()),
                report(1, 0.5, gaps_b.clone()),
            ],
        );
        let sketched = AggregateMetrics::new(
            "s",
            1,
            AdmissionStats::default(),
            vec![sketch_report(0, 0.3, gaps_a), sketch_report(1, 0.5, gaps_b)],
        );
        // Counters are exact in both modes.
        assert_eq!(sketched.completions(), exact.completions());
        assert_eq!(sketched.misses(), exact.misses());
        assert!((sketched.miss_ratio() - exact.miss_ratio()).abs() < 1e-12);
        assert_eq!(sketched.node_rows(), exact.node_rows());
        // The sketch CDF lands within half a bin of the nearest-rank data
        // value at every grid point (the exact path interpolates between
        // ranks, so compare against the rank value, not the exact CDF).
        let mut sorted = Vec::new();
        exact.ift_norm_sorted_into(&mut sorted);
        let s = sketched.miss_cdf();
        assert_eq!(s.len(), CDF_STEPS + 1);
        for &(p, qs) in &s {
            if p <= 0.0 || p >= 1.0 {
                let exact_end = if p <= 0.0 {
                    sorted[0]
                } else {
                    sorted[sorted.len() - 1]
                };
                assert_eq!(qs, exact_end, "extremes are exact");
                continue;
            }
            let rank = (p * (sorted.len() - 1) as f64).round() as usize;
            assert!(
                (qs - sorted[rank]).abs() <= 0.0051,
                "p {p}: sketch {qs} vs rank value {}",
                sorted[rank]
            );
        }
        // Sketch-mode summaries are still order-independent over nodes.
        let swapped = AggregateMetrics::new(
            "s",
            1,
            AdmissionStats::default(),
            vec![sketched.nodes[1].clone(), sketched.nodes[0].clone()],
        );
        assert_eq!(sketched.summary_csv(), swapped.summary_csv());
    }

    #[test]
    fn sketch_mode_attach_delay_means_come_from_the_sketches() {
        let mut node = sketch_report(0, 0.4, vec![1.0]);
        let sk = node.sketches.as_mut().expect("sketch mode");
        sk.attach.record(120.0);
        sk.attach.record(80.0);
        sk.vm_attach.record(0.0);
        let m = AggregateMetrics::new("s", 1, AdmissionStats::default(), vec![node]);
        assert!((m.mean_migrated_attach_delay_ms().unwrap() - 100.0).abs() < 1e-9);
        assert_eq!(m.mean_migrated_vm_guest_attach_delay_ms(), Some(0.0));
        let csv = m.summary_csv();
        assert!(csv.contains("migrated_attach_delay_ms,100.000"));
        assert!(csv.contains("vm_guest_attach_delay_ms,0.000"));
    }

    #[test]
    fn scratch_buffer_extractions_match_the_owned_ones() {
        let m = AggregateMetrics::new(
            "s",
            1,
            AdmissionStats::default(),
            vec![report(0, 0.3, vec![1.2, 0.8]), report(1, 0.5, vec![2.0])],
        );
        let mut buf = vec![99.0; 8]; // dirty scratch must be cleared
        m.ift_norm_sorted_into(&mut buf);
        assert_eq!(buf, vec![0.8, 1.2, 2.0]);
        assert_eq!(m.miss_cdf_with(&mut buf), m.miss_cdf());
        m.post_migration_sorted_into(&mut buf);
        assert!(buf.is_empty());
        assert!(m.post_migration_cdf_with(&mut buf).is_empty());
    }

    #[test]
    fn csv_files_are_written() {
        let dir = std::env::temp_dir().join("selftune-cluster-agg-test");
        let m = AggregateMetrics::new(
            "s",
            1,
            AdmissionStats::default(),
            vec![report(0, 0.3, vec![1.0])],
        );
        m.write_csv(&dir).unwrap();
        for f in [
            "cluster_nodes.csv",
            "cluster_miss_cdf.csv",
            "cluster_util_hist.csv",
            "cluster_migrations.csv",
            "cluster_post_migration_cdf.csv",
        ] {
            assert!(dir.join(f).exists(), "{f} missing");
        }
    }
}
