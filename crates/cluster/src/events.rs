//! Plain-data fleet decision events: everything a decision journal needs
//! to make a run explainable and replayable, with none of the runner's
//! machinery attached.
//!
//! The runner emits these from exactly three places — the fleet plan
//! (admissions and churn kills), the barrier leader (per-epoch
//! compressions, rebalance passes and migrations) and the nodes
//! themselves (executed elastic share re-grants) — and merges them into
//! one deterministic stream via [`sort_events`]. `selftune-journal`
//! converts the stream into its on-disk records; keeping the event type
//! here (and free of journal types) is what breaks the dependency cycle
//! between the two crates.

use selftune_core::share::ClampReason;
use selftune_simcore::time::Time;

use crate::aggregate::{AdmissionStats, AggregateMetrics};
use crate::node::WarmStart;

/// One node's smoothed pressure and utilisation inside a rebalance pass —
/// the feedback snapshot the drain decision was computed from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeSnap {
    /// The node.
    pub node: usize,
    /// Smoothed pressure signal (EWMA of miss + compression rate).
    pub pressure: f64,
    /// Measured utilisation over the epoch.
    pub utilisation: f64,
}

/// One fleet-level decision, in the order and with the inputs that pinned
/// it (see the module docs).
#[derive(Clone, Debug, PartialEq)]
pub enum FleetEvent {
    /// A real-time task walked the placer's admission path.
    TaskAdmission {
        /// Arrival instant (placement happens at plan time, but the
        /// booking is dated at the arrival).
        at: Time,
        /// Fleet task id.
        fleet_id: usize,
        /// The minbudget demand the placer booked (headroom included).
        demand: f64,
        /// Destination node; `None` when admission rejected the task.
        node: Option<usize>,
        /// Release-retry passes the placement needed ("migrations" in the
        /// admission statistics).
        retries: u32,
        /// Largest spare capacity any node could offer (the rejection
        /// witness; equals spare capacity of some node on acceptance too).
        best_spare: f64,
    },
    /// A virtual platform walked the placer's admission path.
    VmAdmission {
        /// Admission instant (VMs are placed at plan time, t = 0).
        at: Time,
        /// Fleet VM id.
        fleet_vm_id: usize,
        /// The share booked on the destination.
        demand: f64,
        /// Destination node; `None` when admission rejected the VM.
        node: Option<usize>,
        /// Release-retry passes the placement needed.
        retries: u32,
        /// Largest spare capacity any node could offer.
        best_spare: f64,
    },
    /// A churned task's lease expires: the node kills it at this instant.
    Kill {
        /// The departure instant from the plan.
        at: Time,
        /// Node the task was living on.
        node: usize,
        /// Fleet task id.
        fleet_id: usize,
    },
    /// One *executed* elastic VM share re-grant, with the controller
    /// inputs (demand signal, hysteresis state, clamp reason) and the
    /// host supervisor's arithmetic.
    ShareGrant {
        /// When the control step ran.
        at: Time,
        /// Node hosting the VM.
        node: usize,
        /// Fleet VM id.
        fleet_vm_id: usize,
        /// Smoothed demand estimate behind the request.
        demand: f64,
        /// The hysteresis-adopted target requested.
        target: f64,
        /// The share the host supervisor granted.
        granted: f64,
        /// Whether the supervisor curbed the request.
        compressed: bool,
        /// Which controller bound clipped the candidate.
        clamp: ClampReason,
        /// Unconfirmed hysteresis change after the step, if any.
        pending: Option<(f64, u32)>,
        /// Host bandwidth the request competed for.
        available: f64,
    },
    /// One node's supervisor compressions over one epoch (only nodes with
    /// a non-zero count are journalled).
    Compression {
        /// Epoch boundary the count was sampled at.
        at: Time,
        /// Rebalance epoch index.
        epoch: usize,
        /// The node.
        node: usize,
        /// Compressions during the epoch (host + guest supervisors).
        count: u64,
    },
    /// One node-level share re-bound: the epoch leader moved a node's
    /// supervisor `U_lub` from the fleet feedback (the fleet→node instance
    /// of the share law), before the rebalance pass of the same epoch.
    NodeRebound {
        /// Epoch boundary the decision ran at.
        at: Time,
        /// Rebalance epoch index.
        epoch: usize,
        /// The re-bounded node.
        node: usize,
        /// The bound that was in force before.
        prev: f64,
        /// The bound now in force.
        bound: f64,
        /// The controller's smoothed demand estimate behind the decision.
        demand: f64,
        /// Host bandwidth the node's reservations held at the snapshot.
        reserved: f64,
        /// The node's deadline-miss rate over the epoch.
        miss_rate: f64,
        /// Supervisor compressions on the node over the epoch.
        compressions: u64,
    },
    /// One rebalance decision pass: the feedback snapshot it saw and what
    /// it decided.
    Rebalance {
        /// Epoch boundary the pass ran at.
        at: Time,
        /// Rebalance epoch index.
        epoch: usize,
        /// Smoothed pressure / utilisation per node, in node-id order.
        snapshot: Vec<NodeSnap>,
        /// Moves planned (each detailed in a following `Migration`).
        moves: u64,
        /// Victims with no admissible destination.
        failed: u64,
    },
    /// One migration the pass planned, in decision order (`seq`), with
    /// the booking math that admitted it on the destination.
    Migration {
        /// Epoch boundary the move executes at.
        at: Time,
        /// Rebalance epoch index.
        epoch: usize,
        /// Position in the epoch's decision order — replay applies moves
        /// in exactly this order.
        seq: u32,
        /// Fleet task id (or fleet VM id when `vm`).
        fleet_id: usize,
        /// Whether a whole virtual platform moved.
        vm: bool,
        /// Source node (pressured).
        from: usize,
        /// Destination node.
        to: usize,
        /// What the pass booked on the destination (starvation-inflated
        /// live booking for tasks, granted share for VMs).
        demand: f64,
        /// Destination booking right after this move.
        dest_reserved_after: f64,
        /// Warm-start hand-over for a task victim.
        warm: Option<WarmStart>,
        /// Warm-start hand-overs for a VM victim's guests, by fleet id.
        guest_warm: Vec<(usize, WarmStart)>,
    },
}

impl FleetEvent {
    /// The instant the decision is dated at.
    pub fn at(&self) -> Time {
        match self {
            FleetEvent::TaskAdmission { at, .. }
            | FleetEvent::VmAdmission { at, .. }
            | FleetEvent::Kill { at, .. }
            | FleetEvent::ShareGrant { at, .. }
            | FleetEvent::Compression { at, .. }
            | FleetEvent::NodeRebound { at, .. }
            | FleetEvent::Rebalance { at, .. }
            | FleetEvent::Migration { at, .. } => *at,
        }
    }

    /// Rank of the event class at equal instants: admissions before
    /// kills, epoch bookkeeping (compressions, then node re-bounds, then
    /// the rebalance pass, then its migrations) before the share grants
    /// of the next epoch. The ranks are in-memory ordering keys only —
    /// they are never serialised, so inserting a class renumbers freely.
    fn class(&self) -> u8 {
        match self {
            FleetEvent::VmAdmission { .. } => 0,
            FleetEvent::TaskAdmission { .. } => 1,
            FleetEvent::Kill { .. } => 2,
            FleetEvent::Compression { .. } => 3,
            FleetEvent::NodeRebound { .. } => 4,
            FleetEvent::Rebalance { .. } => 5,
            FleetEvent::Migration { .. } => 6,
            FleetEvent::ShareGrant { .. } => 7,
        }
    }

    /// Tie-break key inside one class at one instant. Migrations order by
    /// their decision sequence; everything else by `(node, unit id)`.
    ///
    /// Slot-recycling audit: arena slots are node-local and their
    /// generation tags never appear in events — the unit ids used here
    /// are *fleet* ids, which the planner assigns uniquely across the
    /// whole run and never reuses (a migrated incarnation keeps its fleet
    /// id; a recycled slot's new occupant brings its own). Two same-
    /// instant departures whose tasks lived in the same recycled slot
    /// therefore still carry distinct `(node, fleet_id)` keys, and the
    /// order stays total without generations in the key (regression test:
    /// `same_instant_kills_from_recycled_slots_order_totally`).
    fn tie(&self) -> (usize, usize) {
        match self {
            FleetEvent::TaskAdmission { fleet_id, node, .. } => {
                (node.unwrap_or(usize::MAX), *fleet_id)
            }
            FleetEvent::VmAdmission {
                fleet_vm_id, node, ..
            } => (node.unwrap_or(usize::MAX), *fleet_vm_id),
            FleetEvent::Kill { node, fleet_id, .. } => (*node, *fleet_id),
            FleetEvent::ShareGrant {
                node, fleet_vm_id, ..
            } => (*node, *fleet_vm_id),
            FleetEvent::Compression { node, .. } => (*node, 0),
            FleetEvent::NodeRebound { node, .. } => (*node, 0),
            FleetEvent::Rebalance { epoch, .. } => (*epoch, 0),
            FleetEvent::Migration { epoch, seq, .. } => (*epoch, *seq as usize),
        }
    }
}

/// Incremental consumer of a logged run's decision stream.
///
/// [`ClusterRunner::run_logged_with`](crate::runner::ClusterRunner::run_logged_with)
/// drives a sink instead of materialising the full event vector: the
/// plan-derived decisions arrive first in one batch, then every epoch
/// boundary delivers its decision batch as soon as the barrier leader has
/// taken it, and the final aggregates close the stream. Each batch is
/// canonically sorted internally ([`sort_events`]); concatenating the
/// batches and re-sorting yields exactly the stream `run_logged` returns.
///
/// All callbacks run on a runner thread (the barrier leader or the
/// calling thread), serialised by the runner — implementations never see
/// concurrent calls. Default method bodies ignore the data, so a sink
/// implements only what it consumes.
pub trait JournalSink: Send {
    /// Checkpoint cadence: `Some(n)` asks the runner to assemble interim
    /// fleet aggregates at every `n`-th epoch boundary (skipping the
    /// trivial boundary 0 and the horizon, which [`JournalSink::on_finish`]
    /// covers). `None` — the default — skips the interim reductions
    /// entirely.
    fn checkpoint_interval(&self) -> Option<usize> {
        None
    }

    /// The plan-derived decisions (admissions and churn kills), emitted
    /// once in canonical order before simulation starts. Admissions are
    /// plan-time decisions: shipping them up front gives a consumer a
    /// complete placement pin table at any later cut point.
    fn on_plan(&mut self, admission: &AdmissionStats, events: &[FleetEvent]) {
        let _ = (admission, events);
    }

    /// Interim fleet aggregates at epoch boundary `cursor`: the state at
    /// instant `at` with the decisions of epochs `< cursor` applied,
    /// captured *before* the boundary's own decision batch is emitted. A
    /// prefix re-execution over the same decisions reproduces these
    /// aggregates byte for byte
    /// ([`ClusterRunner::run_pinned_prefix`](crate::runner::ClusterRunner::run_pinned_prefix)).
    fn on_checkpoint(&mut self, cursor: usize, at: Time, interim: &AggregateMetrics) {
        let _ = (cursor, at, interim);
    }

    /// The decision batch of epoch boundary `epoch` (canonically sorted).
    /// The final boundary (the horizon) carries only the share grants of
    /// the last epoch — no rebalance decision runs there.
    fn on_epoch(&mut self, epoch: usize, at: Time, events: &[FleetEvent]) {
        let _ = (epoch, at, events);
    }

    /// The final fleet aggregates, after the last epoch batch.
    fn on_finish(&mut self, finale: &AggregateMetrics) {
        let _ = finale;
    }
}

/// Sorts a merged event stream into its canonical order:
/// `(instant, class, tie-break)`. Every producer is deterministic on its
/// own; this fixes the *interleaving* so the merged stream cannot depend
/// on which worker thread claimed which node.
pub fn sort_events(events: &mut [FleetEvent]) {
    events.sort_by(|a, b| {
        (a.at(), a.class(), a.tie())
            .partial_cmp(&(b.at(), b.class(), b.tie()))
            .expect("total event order")
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kill(at_ms: u64, node: usize, fleet_id: usize) -> FleetEvent {
        FleetEvent::Kill {
            at: Time::ZERO + selftune_simcore::time::Dur::ms(at_ms),
            node,
            fleet_id,
        }
    }

    #[test]
    fn canonical_order_is_time_class_then_tie() {
        let reb = FleetEvent::Rebalance {
            at: Time::ZERO + selftune_simcore::time::Dur::ms(5),
            epoch: 0,
            snapshot: Vec::new(),
            moves: 1,
            failed: 0,
        };
        let mig = FleetEvent::Migration {
            at: Time::ZERO + selftune_simcore::time::Dur::ms(5),
            epoch: 0,
            seq: 0,
            fleet_id: 9,
            vm: false,
            from: 1,
            to: 0,
            demand: 0.2,
            dest_reserved_after: 0.2,
            warm: None,
            guest_warm: Vec::new(),
        };
        let rebound = FleetEvent::NodeRebound {
            at: Time::ZERO + selftune_simcore::time::Dur::ms(5),
            epoch: 0,
            node: 1,
            prev: 0.9,
            bound: 0.95,
            demand: 0.97,
            reserved: 0.88,
            miss_rate: 0.2,
            compressions: 4,
        };
        let mut events = vec![
            kill(5, 2, 3),
            mig.clone(),
            kill(1, 9, 9),
            reb.clone(),
            rebound.clone(),
        ];
        sort_events(&mut events);
        assert_eq!(events[0], kill(1, 9, 9));
        assert_eq!(events[1], kill(5, 2, 3));
        assert_eq!(events[2], rebound, "re-bounds precede the rebalance pass");
        assert_eq!(events[3], reb);
        assert_eq!(events[4], mig);
    }

    #[test]
    fn sort_is_invariant_under_input_permutation() {
        let mut a = vec![kill(3, 0, 1), kill(3, 0, 0), kill(2, 1, 5), kill(3, 1, 0)];
        let mut b: Vec<FleetEvent> = a.iter().rev().cloned().collect();
        sort_events(&mut a);
        sort_events(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn same_instant_kills_from_recycled_slots_order_totally() {
        // Churn scenario: tasks 4 and 11 lived (sequentially) in the same
        // recycled arena slot on node 2, and the planner scheduled other
        // departures at the very same instant on the same and other
        // nodes. The tie key is `(node, fleet_id)` — fleet ids are
        // planner-unique and never recycled, so the order is total and
        // permutation-invariant with no generation tag in the key.
        let same_instant = [
            kill(7, 2, 11),
            kill(7, 2, 4),
            kill(7, 0, 30),
            kill(7, 2, 19),
        ];
        let mut a = same_instant.to_vec();
        let mut b: Vec<FleetEvent> = same_instant.iter().rev().cloned().collect();
        sort_events(&mut a);
        sort_events(&mut b);
        assert_eq!(a, b, "same-instant departures permute identically");
        assert_eq!(a[0], kill(7, 0, 30));
        assert_eq!(
            a[1],
            kill(7, 2, 4),
            "within a node, fleet id breaks the tie"
        );
        assert_eq!(a[2], kill(7, 2, 11));
        assert_eq!(a[3], kill(7, 2, 19));
        // No two distinct kill events can compare equal: the planner
        // never issues one fleet id twice, and equal keys would need
        // exactly that.
        for (i, x) in a.iter().enumerate() {
            for y in &a[i + 1..] {
                assert_ne!((x.at(), x.class(), x.tie()), (y.at(), y.class(), y.tie()));
            }
        }
    }
}
