//! Property-based tests for the predictors and feedback laws.

use proptest::prelude::*;
use selftune_core::{Lfs, LfsConfig, LfsPlusPlus, LfsPpConfig, Predictor, QuantileEstimator};
use selftune_simcore::time::Dur;

/// Naive reference: the (j+1)-th largest of the last n samples.
fn naive_quantile(samples: &[u64], n: usize, p: f64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let tail: Vec<u64> = samples[samples.len().saturating_sub(n)..].to_vec();
    let mut sorted = tail;
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let j = ((1.0 - p) * n as f64).round() as usize;
    Some(sorted[j.min(n - 1).min(sorted.len() - 1)])
}

proptest! {
    /// The streaming quantile estimator agrees with the naive sorted
    /// reference on every prefix.
    #[test]
    fn quantile_matches_naive(
        samples in prop::collection::vec(1u64..1_000_000, 1..100),
        n in 1usize..32,
        j in 0usize..8,
    ) {
        let p = ((n.saturating_sub(j)).max(1)) as f64 / n as f64;
        let mut est = QuantileEstimator::new(n, p);
        for (i, &s) in samples.iter().enumerate() {
            est.observe(Dur::ns(s));
            let got = est.predict().map(|d| d.as_ns());
            let want = naive_quantile(&samples[..=i], n, p);
            prop_assert_eq!(got, want);
        }
    }

    /// LFS bandwidth stays inside its clamps for any sensor sequence, and
    /// is monotone in the sensor (more starvation ⇒ no less bandwidth).
    #[test]
    fn lfs_stays_clamped(flags in prop::collection::vec(any::<bool>(), 1..300)) {
        let cfg = LfsConfig::default();
        let mut lfs = Lfs::new(cfg.clone());
        let mut starving = Lfs::new(cfg.clone());
        for &f in &flags {
            let _ = lfs.step(f, Dur::ms(40));
            let _ = starving.step(true, Dur::ms(40));
            prop_assert!(lfs.bandwidth() >= cfg.min_bw - 1e-12);
            prop_assert!(lfs.bandwidth() <= cfg.max_bw + 1e-12);
            prop_assert!(starving.bandwidth() >= lfs.bandwidth() - 1e-12);
        }
    }

    /// LFS++ requests never exceed the period (bandwidth ≤ 1) and match
    /// the closed-form (1+x)·quantile of the per-interval job costs.
    #[test]
    fn lfspp_requests_are_bounded_and_correct(
        increments_us in prop::collection::vec(0u64..800_000, 2..40),
        period_ms in 10u64..100,
        spread in 0.0f64..0.5,
    ) {
        let period = Dur::ms(period_ms);
        let elapsed = Dur::secs(1);
        let cfg = LfsPpConfig { spread, window: 16, quantile: 0.9375 };
        let mut ctl = LfsPlusPlus::new(cfg);
        let mut naive_samples: Vec<u64> = Vec::new();
        let mut total = Dur::ZERO;
        let mut first = true;
        for &inc in &increments_us {
            total += Dur::us(inc);
            let req = ctl.step(total, elapsed, period);
            if first {
                prop_assert_eq!(req, None);
                first = false;
                continue;
            }
            // Per-job cost sample c = P·ΔW/S.
            let c = Dur::us(inc).mul_f64(period.ratio(elapsed));
            naive_samples.push(c.as_ns());
            let want = naive_quantile(&naive_samples, 16, 0.9375)
                .map(|ns| Dur::ns(ns).mul_f64(1.0 + spread).min(period));
            let got = req.map(|r| r.budget);
            prop_assert_eq!(got, want);
            if let Some(r) = req {
                prop_assert!(r.budget <= r.period);
            }
        }
    }
}
