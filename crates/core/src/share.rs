//! The reusable share-controller plane: demand signals, hysteresis and
//! the bandwidth-share feedback law.
//!
//! The paper's loop — observe a consumer, estimate its demand, re-request
//! its bandwidth through a supervisor that may compress the grant — runs
//! at two levels of the stack:
//!
//! * **task level** — [`TaskController`](crate::TaskController) inside
//!   [`SelfTuningManager`](crate::SelfTuningManager) adapts one task's CBS
//!   reservation from its traced activations and consumed time;
//! * **VM level** — `selftune-virt`'s `VmShareController` adapts a whole
//!   tenant's host share from the demand its *guest* manager measured.
//!
//! Both loops need the same two ingredients this module factors out:
//!
//! * [`Hysteresis`] — a relative deadband with confirmation counting, so
//!   estimator jitter cannot churn reservations (the task controller's
//!   period adoption and the share controller's target adoption share this
//!   exact state machine instead of duplicating it);
//! * [`ShareController`] — the share feedback law proper: fold a
//!   [`DemandSignal`] into a smoothed demand estimate, add the LFS++-style
//!   margin, clamp to the configured floor/cap, and re-request only when
//!   the hysteresis-filtered target drifts away from the current grant.

/// A relative deadband with confirmation counting: the change-suppression
/// state machine shared by the period estimator and the share controller.
///
/// A candidate within `band` of the current belief is absorbed (and clears
/// any pending change); a candidate outside the band is adopted only after
/// `confirmations` consecutive agreeing estimates. The first candidate
/// ever seen is adopted immediately — initial latency matters more than
/// initial stability, and a wrong first guess is corrected by the same
/// confirmation path.
#[derive(Clone, Debug)]
pub struct Hysteresis {
    band: f64,
    confirmations: u32,
    /// Pending change: `(candidate, consecutive confirmations)`.
    pending: Option<(f64, u32)>,
}

impl Hysteresis {
    /// A deadband of relative width `band`, adopting an out-of-band
    /// candidate after `confirmations` consecutive agreeing estimates.
    pub fn new(band: f64, confirmations: u32) -> Hysteresis {
        Hysteresis {
            band,
            confirmations,
            pending: None,
        }
    }

    /// Whether `a` lies within the deadband around `b`.
    pub fn within(&self, a: f64, b: f64) -> bool {
        if b == 0.0 {
            return a == 0.0;
        }
        ((a - b) / b).abs() <= self.band
    }

    /// The pending out-of-band change, if any: `(candidate, consecutive
    /// confirmations so far)`. Decision journals record this so a grant
    /// can be explained mid-confirmation.
    pub fn pending(&self) -> Option<(f64, u32)> {
        self.pending
    }

    /// Feeds one estimate; returns the newly adopted value, if any.
    pub fn filter(&mut self, current: Option<f64>, candidate: f64) -> Option<f64> {
        let Some(cur) = current else {
            // Initial adoption: no belief to defend yet.
            self.pending = None;
            return Some(candidate);
        };
        if self.within(candidate, cur) {
            // Agreeing estimate: drop any pending change.
            self.pending = None;
            return None;
        }
        self.pending = match self.pending {
            Some((cand, n)) if self.within(candidate, cand) => Some((cand, n + 1)),
            _ => Some((candidate, 1)),
        };
        if let Some((cand, n)) = self.pending {
            if n >= self.confirmations {
                self.pending = None;
                return Some(cand);
            }
        }
        None
    }
}

/// What a share controller observed about its consumer over one control
/// period — pure measurement, assembled by whoever owns the consumer (the
/// virt platform for a VM, a manager for its task set).
#[derive(Clone, Copy, Debug, Default)]
pub struct DemandSignal {
    /// CPU bandwidth the consumer measurably burned over the period.
    pub consumed_bw: f64,
    /// Bandwidth the consumer's own admission layer has booked (for a VM:
    /// the guest manager's granted inner reservations). Booked demand
    /// leads consumption — an idle-but-reserved consumer still needs its
    /// booking honoured.
    pub booked_bw: f64,
    /// The share currently granted to the consumer.
    pub granted_bw: f64,
    /// Saturation events inside the consumer during the period (its inner
    /// supervisor compressing grants): the signal that demand exceeds the
    /// current share, however much the bounded booking hides it.
    pub compressions: u64,
}

/// Configuration of a [`ShareController`].
#[derive(Clone, Copy, Debug)]
pub struct ShareControllerConfig {
    /// Headroom requested above the estimated demand (the LFS++ margin
    /// `x`: request `(1 + x) ×` the estimate).
    pub margin: f64,
    /// Relative deadband of target adoption (see [`Hysteresis`]).
    pub hysteresis: f64,
    /// Consecutive out-of-band estimates before the target moves.
    pub confirmations: u32,
    /// Never request below this share (keeps a starved consumer's
    /// controller observable, mirroring the supervisor's budget floor).
    pub min_share: f64,
    /// Never request above this share. The VM-level controller sets this
    /// to the host supervisor's bound — an elastic consumer can never ask
    /// its way past what the node could grant anyone.
    pub max_share: f64,
    /// EWMA weight of the newest demand sample in `(0, 1]`.
    pub ewma_alpha: f64,
    /// Saturated-growth factor: while the consumer reports compressions,
    /// its true demand is unobservable (the grant clips it), so the raw
    /// sample reads as at least `growth ×` the current grant — the
    /// controller probes upward until compression stops or the cap binds.
    pub growth: f64,
}

impl Default for ShareControllerConfig {
    fn default() -> Self {
        ShareControllerConfig {
            margin: 0.15,
            hysteresis: 0.1,
            confirmations: 2,
            min_share: 0.01,
            max_share: 1.0,
            ewma_alpha: 0.5,
            growth: 1.5,
        }
    }
}

/// What the owner should do with the consumer's share this period.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ShareDecision {
    /// The grant tracks the target; leave the share alone.
    Hold,
    /// Re-request the share at this bandwidth (the supervisor may still
    /// compress the actual grant).
    Request(f64),
}

/// Which bound clipped the margin-inflated candidate, if any.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ClampReason {
    /// The candidate fit inside `[min_share, max_share]`.
    #[default]
    None,
    /// Clipped up to `min_share`.
    Floor,
    /// Clipped down to `max_share`.
    Cap,
}

impl ClampReason {
    /// Stable lowercase name, used by the journal codec.
    pub fn name(self) -> &'static str {
        match self {
            ClampReason::None => "none",
            ClampReason::Floor => "floor",
            ClampReason::Cap => "cap",
        }
    }

    /// Inverse of [`ClampReason::name`].
    pub fn from_name(s: &str) -> Option<ClampReason> {
        match s {
            "none" => Some(ClampReason::None),
            "floor" => Some(ClampReason::Floor),
            "cap" => Some(ClampReason::Cap),
            _ => None,
        }
    }
}

/// The inputs and intermediate state behind one share decision — what a
/// decision journal needs to make the grant explainable after the fact.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShareTrace {
    /// The raw demand sample after saturated-growth substitution.
    pub raw: f64,
    /// Whether the consumer reported compressions (saturated sample).
    pub saturated: bool,
    /// The smoothed demand estimate after folding `raw`.
    pub demand: f64,
    /// The margin-inflated, clamped request candidate.
    pub candidate: f64,
    /// Which bound clipped the candidate.
    pub clamp: ClampReason,
    /// Hysteresis state after the step: a not-yet-confirmed change.
    pub pending: Option<(f64, u32)>,
    /// The target adopted *this* step, if the hysteresis let one through.
    pub adopted: Option<f64>,
}

/// Share-*period* adaptation: the paper's `T^s = P` rule lifted one
/// level. A task-level reservation serves its task best when the server
/// period equals the task's period; the same holds one level up — a VM's
/// (or node's) share granularity should track the dominant period of the
/// consumers inside it, so inner deadlines align with outer replenishment
/// instead of beating against it.
///
/// The adapter is a thin policy over the shared [`Hysteresis`] state
/// machine: dominant-period observations inside the deadband are
/// absorbed, an out-of-band shift is adopted only after the configured
/// confirmations, and the adopted period is clamped into `[min, max]` so
/// a mis-detected outlier cannot drive the share period degenerate.
#[derive(Clone, Debug)]
pub struct PeriodAdapter {
    hyst: Hysteresis,
    min: f64,
    max: f64,
    period: Option<f64>,
}

impl PeriodAdapter {
    /// An adapter with deadband `band`, `confirmations` consecutive
    /// agreeing observations before a move, clamping adopted periods into
    /// `[min, max]` (seconds).
    ///
    /// # Panics
    ///
    /// Panics on an empty or non-positive `[min, max]` interval.
    pub fn new(band: f64, confirmations: u32, min: f64, max: f64) -> PeriodAdapter {
        assert!(
            min > 0.0 && min <= max,
            "degenerate period bounds [{min}, {max}]"
        );
        PeriodAdapter {
            hyst: Hysteresis::new(band, confirmations),
            min,
            max,
            period: None,
        }
    }

    /// The currently adopted share period (seconds), if any observation
    /// has been adopted yet.
    pub fn period(&self) -> Option<f64> {
        self.period
    }

    /// Feeds one dominant-consumer-period observation (seconds). Returns
    /// the newly adopted share period if this observation confirmed a
    /// move; non-positive or non-finite observations are ignored (no
    /// consumer period detected yet).
    pub fn observe(&mut self, dominant: f64) -> Option<f64> {
        if !dominant.is_finite() || dominant <= 0.0 {
            return None;
        }
        let candidate = dominant.clamp(self.min, self.max);
        let adopted = self.hyst.filter(self.period, candidate)?;
        self.period = Some(adopted);
        Some(adopted)
    }
}

/// The share feedback law (see the module docs).
#[derive(Clone, Debug)]
pub struct ShareController {
    cfg: ShareControllerConfig,
    hyst: Hysteresis,
    /// Smoothed demand estimate.
    demand: Option<f64>,
    /// Hysteresis-adopted request target.
    target: Option<f64>,
}

impl ShareController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (non-positive cap, empty
    /// `(min, max)` interval, `ewma_alpha` outside `(0, 1]`).
    pub fn new(cfg: ShareControllerConfig) -> ShareController {
        assert!(
            cfg.max_share > 0.0 && cfg.min_share <= cfg.max_share,
            "degenerate share bounds [{}, {}]",
            cfg.min_share,
            cfg.max_share
        );
        assert!(
            cfg.ewma_alpha > 0.0 && cfg.ewma_alpha <= 1.0,
            "ewma_alpha {} out of (0, 1]",
            cfg.ewma_alpha
        );
        let hyst = Hysteresis::new(cfg.hysteresis, cfg.confirmations);
        ShareController {
            cfg,
            hyst,
            demand: None,
            target: None,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ShareControllerConfig {
        &self.cfg
    }

    /// The smoothed demand estimate, if any sample arrived yet.
    pub fn demand(&self) -> Option<f64> {
        self.demand
    }

    /// The current hysteresis-adopted request target, if any.
    pub fn target(&self) -> Option<f64> {
        self.target
    }

    /// Folds one control period's observation and decides.
    pub fn step(&mut self, sig: &DemandSignal) -> ShareDecision {
        self.step_traced(sig).0
    }

    /// [`ShareController::step`] plus the [`ShareTrace`] a decision
    /// journal records alongside the decision.
    pub fn step_traced(&mut self, sig: &DemandSignal) -> (ShareDecision, ShareTrace) {
        let mut raw = sig.consumed_bw.max(sig.booked_bw);
        let saturated = sig.compressions > 0;
        if saturated {
            // Saturated: the observable samples are clipped at the grant.
            raw = raw.max(sig.granted_bw * self.cfg.growth);
        }
        let alpha = self.cfg.ewma_alpha;
        let demand = match self.demand {
            Some(d) => alpha * raw + (1.0 - alpha) * d,
            None => raw,
        };
        self.demand = Some(demand);
        let unclamped = demand * (1.0 + self.cfg.margin);
        let candidate = unclamped.clamp(self.cfg.min_share, self.cfg.max_share);
        let clamp = if unclamped < self.cfg.min_share {
            ClampReason::Floor
        } else if unclamped > self.cfg.max_share {
            ClampReason::Cap
        } else {
            ClampReason::None
        };
        let adopted = self.hyst.filter(self.target, candidate);
        if let Some(t) = adopted {
            self.target = Some(t);
        }
        let decision = match self.target {
            // A target tracking the grant within the deadband holds: the
            // share only moves on confirmed drift, not estimator jitter.
            Some(t) if !self.hyst.within(t, sig.granted_bw.max(1e-12)) => ShareDecision::Request(t),
            _ => ShareDecision::Hold,
        };
        let trace = ShareTrace {
            raw,
            saturated,
            demand,
            candidate,
            clamp,
            pending: self.hyst.pending(),
            adopted,
        };
        (decision, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(consumed: f64, booked: f64, granted: f64, compressions: u64) -> DemandSignal {
        DemandSignal {
            consumed_bw: consumed,
            booked_bw: booked,
            granted_bw: granted,
            compressions,
        }
    }

    #[test]
    fn hysteresis_adopts_first_and_suppresses_jitter() {
        let mut h = Hysteresis::new(0.1, 3);
        assert_eq!(h.filter(None, 0.5), Some(0.5));
        // Within-band estimates are absorbed.
        assert_eq!(h.filter(Some(0.5), 0.52), None);
        assert_eq!(h.filter(Some(0.5), 0.46), None);
        // An out-of-band change needs 3 consecutive confirmations.
        assert_eq!(h.filter(Some(0.5), 0.8), None);
        assert_eq!(h.filter(Some(0.5), 0.82), None);
        assert_eq!(h.filter(Some(0.5), 0.79), Some(0.8));
        // A within-band estimate resets a pending change.
        assert_eq!(h.filter(Some(0.5), 0.8), None);
        assert_eq!(h.filter(Some(0.5), 0.5), None);
        assert_eq!(h.filter(Some(0.5), 0.8), None);
    }

    #[test]
    fn period_adapter_tracks_the_dominant_period_with_hysteresis() {
        let mut a = PeriodAdapter::new(0.1, 2, 0.001, 1.0);
        assert_eq!(a.period(), None);
        // First observation adopts immediately (initial latency beats
        // initial stability, same as the share target).
        assert_eq!(a.observe(0.040), Some(0.040));
        // Jitter inside the deadband is absorbed.
        assert_eq!(a.observe(0.042), None);
        assert_eq!(a.observe(0.038), None);
        assert_eq!(a.period(), Some(0.040));
        // A real shift (guests re-tuned to 100 ms) needs 2 confirmations.
        assert_eq!(a.observe(0.100), None);
        assert_eq!(a.observe(0.101), Some(0.100));
        assert_eq!(a.period(), Some(0.100));
    }

    #[test]
    fn period_adapter_clamps_and_ignores_degenerate_observations() {
        let mut a = PeriodAdapter::new(0.1, 1, 0.010, 0.200);
        // Outliers clamp into the configured band instead of driving the
        // share period degenerate.
        assert_eq!(a.observe(5.0), Some(0.200));
        // Non-observations (no consumer period detected) change nothing.
        assert_eq!(a.observe(0.0), None);
        assert_eq!(a.observe(f64::NAN), None);
        assert_eq!(a.observe(-1.0), None);
        assert_eq!(a.period(), Some(0.200));
        assert_eq!(a.observe(0.0001), Some(0.010));
    }

    #[test]
    #[should_panic(expected = "degenerate period bounds")]
    fn period_adapter_rejects_empty_bounds() {
        let _ = PeriodAdapter::new(0.1, 1, 0.5, 0.1);
    }

    #[test]
    fn grows_under_compression_until_cap() {
        let mut c = ShareController::new(ShareControllerConfig {
            max_share: 0.9,
            confirmations: 1,
            ..ShareControllerConfig::default()
        });
        // Saturated at a 0.3 grant: the controller probes upward.
        let d = c.step(&sig(0.29, 0.3, 0.3, 4));
        match d {
            ShareDecision::Request(t) => assert!(t > 0.3, "grew to {t}"),
            other => panic!("expected growth, got {other:?}"),
        }
        // Still compressed at larger grants: requests rise toward the cap
        // and never past it (the hysteresis band may park the target just
        // under the clamp).
        let mut granted = 0.45;
        for _ in 0..20 {
            match c.step(&sig(granted, granted, granted, 1)) {
                ShareDecision::Request(t) => {
                    assert!(t <= 0.9 + 1e-12, "cap violated: {t}");
                    granted = t;
                }
                ShareDecision::Hold => {}
            }
        }
        assert!(
            granted > 0.8 && granted <= 0.9 + 1e-12,
            "converged near cap, got {granted}"
        );
    }

    #[test]
    fn shrinks_when_demand_collapses() {
        let mut c = ShareController::new(ShareControllerConfig {
            confirmations: 2,
            ..ShareControllerConfig::default()
        });
        // Steady demand around 0.4 under a 0.5 grant.
        for _ in 0..4 {
            c.step(&sig(0.4, 0.42, 0.5, 0));
        }
        // Demand collapses (idle phase): after the EWMA decays and the
        // confirmations pass, the controller requests a smaller share.
        let mut last_request = None;
        for _ in 0..12 {
            if let ShareDecision::Request(t) = c.step(&sig(0.01, 0.02, 0.5, 0)) {
                last_request = Some(t);
            }
        }
        let t = last_request.expect("idle consumer must shed its share");
        assert!(t < 0.1, "shrunk to {t}");
        assert!(t >= c.config().min_share);
    }

    #[test]
    fn holds_when_grant_tracks_target() {
        let mut c = ShareController::new(ShareControllerConfig::default());
        // First sample sets the target; grant already matches it.
        let demand = 0.4;
        let target = demand * 1.15;
        assert_eq!(c.step(&sig(demand, demand, target, 0)), ShareDecision::Hold);
        // Jitter within the deadband keeps holding.
        for bump in [0.39, 0.41, 0.4] {
            assert_eq!(c.step(&sig(bump, bump, target, 0)), ShareDecision::Hold);
        }
    }

    #[test]
    fn booked_demand_counts_even_when_idle() {
        let mut c = ShareController::new(ShareControllerConfig::default());
        // The consumer booked 0.5 but burned almost nothing this period
        // (e.g. guests between activations): the booking drives the
        // estimate, so the share is not yanked away mid-reservation.
        let d = c.step(&sig(0.02, 0.5, 0.1, 0));
        match d {
            ShareDecision::Request(t) => assert!(t > 0.4, "{t}"),
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn trace_explains_the_decision() {
        let mut c = ShareController::new(ShareControllerConfig {
            max_share: 0.5,
            confirmations: 2,
            ..ShareControllerConfig::default()
        });
        // Saturated first sample: raw substituted with growth × grant,
        // candidate clipped at the cap.
        let (d, tr) = c.step_traced(&sig(0.3, 0.3, 0.6, 2));
        assert!(tr.saturated);
        assert!((tr.raw - 0.9).abs() < 1e-12, "raw {}", tr.raw);
        assert_eq!(tr.clamp, ClampReason::Cap);
        assert_eq!(tr.adopted, Some(0.5));
        assert_eq!(tr.pending, None);
        assert_eq!(d, ShareDecision::Request(0.5));

        // Demand collapses. The first idle sample still caps (the EWMA
        // remembers the saturated 0.9) and is absorbed by the deadband…
        let (_, tr) = c.step_traced(&sig(0.01, 0.01, 0.5, 0));
        assert_eq!(tr.adopted, None);
        assert_eq!(tr.pending, None);
        assert_eq!(tr.clamp, ClampReason::Cap);
        // …the second leaves the band and starts a pending change: the
        // trace shows the unconfirmed candidate while the decision keeps
        // requesting the adopted target.
        let (_, tr) = c.step_traced(&sig(0.01, 0.01, 0.5, 0));
        assert_eq!(tr.adopted, None);
        let (cand, n) = tr.pending.expect("change pending");
        assert!(cand < 0.5);
        assert_eq!(n, 1);
        assert_eq!(tr.clamp, ClampReason::None);
    }

    #[test]
    fn step_and_step_traced_agree() {
        let mut a = ShareController::new(ShareControllerConfig::default());
        let mut b = ShareController::new(ShareControllerConfig::default());
        for s in [
            sig(0.3, 0.2, 0.3, 0),
            sig(0.6, 0.6, 0.3, 3),
            sig(0.01, 0.0, 0.7, 0),
            sig(0.01, 0.0, 0.7, 0),
            sig(0.01, 0.0, 0.7, 0),
        ] {
            assert_eq!(a.step(&s), b.step_traced(&s).0);
        }
        assert_eq!(a.demand(), b.demand());
        assert_eq!(a.target(), b.target());
    }

    #[test]
    #[should_panic(expected = "degenerate share bounds")]
    fn degenerate_bounds_panic() {
        let _ = ShareController::new(ShareControllerConfig {
            min_share: 0.5,
            max_share: 0.2,
            ..ShareControllerConfig::default()
        });
    }
}
